"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.train.adam import AdamConfig
from repro.train.model_zoo import tiny_test_model
from repro.train.sharding import build_shard_layout
from repro.train.transformer import TransformerLM


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tier_dirs(tmp_path):
    """Two tier directories standing in for the node-local NVMe and the PFS."""
    local = tmp_path / "nvme"
    remote = tmp_path / "pfs"
    local.mkdir()
    remote.mkdir()
    return {"nvme": local, "pfs": remote}


@pytest.fixture
def two_tier_config(tier_dirs) -> MLPOffloadConfig:
    """A small fully-enabled MLP-Offload configuration over two file tiers."""
    return MLPOffloadConfig(
        tiers=(
            TierConfig(name="nvme", path=str(tier_dirs["nvme"]), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig(name="pfs", path=str(tier_dirs["pfs"]), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=1000,
        host_cache_bytes=64 * 1024,
        adam=AdamConfig(lr=1e-3),
    )


@pytest.fixture
def tiny_model():
    """A miniature transformer geometry for functional end-to-end tests."""
    return tiny_test_model(num_layers=2, hidden_dim=32, num_heads=4, vocab_size=64, sequence_length=16)


@pytest.fixture
def tiny_transformer(tiny_model) -> TransformerLM:
    return TransformerLM(tiny_model)


@pytest.fixture
def small_layout():
    """A single-rank layout of 10,000 parameters split into 1,000-parameter subgroups."""
    return build_shard_layout(total_params=10_000, num_ranks=1, subgroup_size=1_000)
