"""End-to-end tests: tiny transformer trained through the offloading engines."""

import numpy as np
import pytest

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.model_zoo import tiny_test_model
from repro.train.sharding import build_shard_layout
from repro.train.trainer import FunctionalTrainer, InMemoryReferenceTrainer, TrainerConfig
from repro.train.transformer import TransformerLM
from repro.zero.zero3_engine import ZeRO3OffloadEngine

SUBGROUP_SIZE = 20_000


@pytest.fixture
def model_config():
    return tiny_test_model(num_layers=2, hidden_dim=32, num_heads=4, vocab_size=64, sequence_length=16)


@pytest.fixture
def offload_config(tier_dirs):
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(tier_dirs["nvme"]), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(tier_dirs["pfs"]), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=SUBGROUP_SIZE,
        host_cache_bytes=2 * SUBGROUP_SIZE * 12,
        adam=AdamConfig(lr=1e-3),
    )


def _build_trainer(model_config, offload_config, engine_cls, **trainer_kwargs):
    model = TransformerLM(model_config)
    layout = build_shard_layout(model.num_params, num_ranks=1, subgroup_size=SUBGROUP_SIZE)
    engine = engine_cls(offload_config, layout, rank=0)
    trainer = FunctionalTrainer(
        model_config,
        engine,
        trainer_config=TrainerConfig(**trainer_kwargs),
    )
    return trainer, engine


class TestEndToEndTraining:
    def test_offloaded_training_matches_in_memory_reference(self, model_config, offload_config):
        trainer, engine = _build_trainer(model_config, offload_config, MLPOffloadEngine)
        reference = InMemoryReferenceTrainer(
            model_config, subgroup_size=SUBGROUP_SIZE, adam=offload_config.adam
        )
        try:
            reports = trainer.train(3)
            reference_losses = reference.train(3)
            np.testing.assert_array_equal(trainer.master_params(), reference.master_params())
            np.testing.assert_array_equal(trainer.working_params(), reference.working_params())
            # Losses of each iteration match as well.
            assert [r.mean_loss for r in reports] == pytest.approx(
                [float(np.mean(losses)) for losses in reference_losses]
            )
        finally:
            engine.close()

    def test_loss_decreases_over_training(self, model_config, offload_config):
        trainer, engine = _build_trainer(model_config, offload_config, MLPOffloadEngine)
        try:
            reports = trainer.train(6)
            losses = [r.mean_loss for r in reports]
            assert losses[-1] < losses[0]
            assert all(np.isfinite(losses))
        finally:
            engine.close()

    def test_baseline_engine_trains_equivalently(self, model_config, offload_config):
        ours_trainer, ours_engine = _build_trainer(model_config, offload_config, MLPOffloadEngine)
        base_trainer, base_engine = _build_trainer(model_config, offload_config, ZeRO3OffloadEngine)
        try:
            ours_losses = [r.mean_loss for r in ours_trainer.train(3)]
            base_losses = [r.mean_loss for r in base_trainer.train(3)]
            # Same data, same init: per-iteration losses agree to FP16 rounding.
            assert ours_losses == pytest.approx(base_losses, rel=1e-3)
            np.testing.assert_allclose(
                ours_trainer.master_params(), base_trainer.master_params(), rtol=1e-3, atol=1e-5
            )
        finally:
            ours_engine.close()
            base_engine.close()

    def test_gradient_accumulation_equals_reference_accumulation(self, model_config, offload_config):
        trainer, engine = _build_trainer(
            model_config, offload_config, MLPOffloadEngine, gradient_accumulation_steps=3
        )
        reference = InMemoryReferenceTrainer(
            model_config,
            subgroup_size=SUBGROUP_SIZE,
            adam=offload_config.adam,
            trainer_config=TrainerConfig(gradient_accumulation_steps=3),
        )
        try:
            report = trainer.train_iteration()
            reference.train_iteration()
            assert len(report.losses) == 3
            np.testing.assert_array_equal(trainer.master_params(), reference.master_params())
        finally:
            engine.close()

    def test_iteration_report_structure(self, model_config, offload_config):
        trainer, engine = _build_trainer(model_config, offload_config, MLPOffloadEngine)
        try:
            report = trainer.train_iteration()
            assert report.total_seconds > 0
            assert report.forward_seconds >= 0 and report.backward_seconds >= 0
            assert report.update_report.stats.subgroups_processed == len(engine.subgroups)
            assert report.update_report.stats.params_updated == engine.layout.total_params
        finally:
            engine.close()

    def test_layout_and_model_must_agree(self, model_config, offload_config):
        wrong_layout = build_shard_layout(1234, num_ranks=1, subgroup_size=100)
        engine = MLPOffloadEngine(offload_config, wrong_layout, rank=0)
        try:
            with pytest.raises(ValueError):
                FunctionalTrainer(model_config, engine)
        finally:
            engine.close()
