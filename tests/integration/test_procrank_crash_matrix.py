"""Kill -9 crash matrix against real OS worker processes.

Every cell spawns one subprocess per rank (``repro.ckpt.procrank``), arms a
victim — purely through its environment — to ``SIGKILL`` itself at an exact
protocol phase, then resumes with a fresh, unarmed wave of processes.  The
contract per cell:

* the resume wave restarts every rank from **one** consistent global cut;
* the finished trajectory is **bitwise-equal** to an uninterrupted run
  (the world-size-invariant single-rank reference);
* no ``DRAIN-*.lease`` or ``GLOBAL.lock`` survives the job.

The deterministic matrix covers every phase with a representative victim
(including the elected promoter, by arming every rank for promoter-side
phases).  On top of it, a seed-driven random campaign samples (phase ×
victim × crash version) cells — a bounded sample on every CI run, the full
space behind the ``fault_campaign`` marker plus ``REPRO_FULL_FAULT_SWEEP=1``.
"""

from __future__ import annotations

import itertools
import os
import random

import numpy as np
import pytest

from repro.ckpt.faults import COORDINATOR_PHASES
from repro.ckpt.procrank import (
    WorldSpec,
    leaked_sentinels,
    reference_state,
    run_crash_scenario,
)

WORLD = 3
ITERATIONS = 3
CAMPAIGN_SEED = 20250807
#: Cells sampled by the random campaign on an ordinary test run.
CAMPAIGN_SAMPLE = 2


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted trajectory — identical for every world size."""
    spec = WorldSpec(workdir=str(tmp_path_factory.mktemp("reference")))
    return reference_state(spec, ITERATIONS)


def run_cell(tmp_path, reference, *, phase, victim, version, resume_world=None):
    spec = WorldSpec(workdir=str(tmp_path), world_size=WORLD, iterations=ITERATIONS)
    out = run_crash_scenario(
        spec, phase=phase, victim=victim, version=version,
        resume_world_size=resume_world,
    )
    ref_fp16, ref_master = reference
    assert np.array_equal(out["fp16"], ref_fp16), (
        f"{phase}@{version} victim={victim}: FP16 params diverged after resume"
    )
    assert np.array_equal(out["master"], ref_master), (
        f"{phase}@{version} victim={victim}: FP32 master state diverged"
    )
    assert leaked_sentinels(spec) == [], "leases or election locks leaked"
    return out


@pytest.mark.parametrize("phase", COORDINATOR_PHASES)
def test_sigkill_at_each_protocol_phase(tmp_path, reference, phase):
    """One representative victim per phase; promoter phases arm every rank,
    so whichever process actually wins the election is the one that dies."""
    run_cell(tmp_path, reference, phase=phase, victim=1, version=2)


def test_sigkill_of_every_rank_at_the_publish_boundary(tmp_path, reference):
    """Any single rank's death at the pre/post-publish boundary recovers —
    the surviving ranks' later versions are discarded or rolled forward as
    the protocol dictates, never mixed."""
    for victim in range(WORLD):
        phase = "pre-publish" if victim % 2 == 0 else "post-publish"
        run_cell(
            tmp_path / f"victim{victim}", reference,
            phase=phase, victim=victim, version=2,
        )


def _campaign_cells():
    versions = range(1, ITERATIONS + 1)
    return list(itertools.product(COORDINATOR_PHASES, range(WORLD), versions))


def test_randomized_fault_campaign_sample(tmp_path, reference):
    """A seed-driven sample of the (phase × victim × version) space; the
    seed is fixed so a failure reproduces, and the full sweep lives behind
    the ``fault_campaign`` marker."""
    cells = _campaign_cells()
    picked = random.Random(CAMPAIGN_SEED).sample(cells, CAMPAIGN_SAMPLE)
    for phase, victim, version in picked:
        run_cell(
            tmp_path / f"{phase}-r{victim}-v{version}", reference,
            phase=phase, victim=victim, version=version,
        )


@pytest.mark.fault_campaign
@pytest.mark.skipif(
    os.environ.get("REPRO_FULL_FAULT_SWEEP") != "1",
    reason="full kill-matrix sweep only with REPRO_FULL_FAULT_SWEEP=1",
)
def test_randomized_fault_campaign_full_sweep(tmp_path, reference):
    cells = _campaign_cells()
    random.Random(CAMPAIGN_SEED).shuffle(cells)
    for phase, victim, version in cells:
        run_cell(
            tmp_path / f"{phase}-r{victim}-v{version}", reference,
            phase=phase, victim=victim, version=version,
        )
