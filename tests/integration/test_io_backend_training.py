"""Backend equivalence: the raw-I/O discipline must never change the math.

The ``thread`` and ``odirect`` backends differ only in how blob bytes reach
the device (buffered ``readinto``/``pwrite`` vs aligned O_DIRECT transfers
through bounce buffers).  Training state — the FP16 working copy, the FP32
master parameters, every Adam moment — and restored checkpoints must be
bitwise identical across them; even the tier directories must hold
byte-for-byte identical blob files.  Skipped wherever the filesystem
rejects O_DIRECT (CI's ``io-backend-smoke`` job runs it on ext4).
"""

import numpy as np
import pytest

from repro.aio import backends
from repro.core.config import IOBackendConfig, MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 6_000
SUBGROUP = 750
ITERATIONS = 3


@pytest.fixture(autouse=True)
def _require_odirect(tmp_path, monkeypatch):
    # The whole point is comparing explicit backends; an external
    # REPRO_IO_BACKEND override (CI's odirect tier-1 run) must not redirect.
    monkeypatch.delenv(backends.BACKEND_ENV_VAR, raising=False)
    backends.probe_cache_clear()
    if backends.resolve("odirect", tmp_path).name != "odirect":
        pytest.skip(f"O_DIRECT unavailable on {tmp_path}")
    yield
    backends.probe_cache_clear()


@pytest.fixture
def layout():
    return build_shard_layout(TOTAL_PARAMS, num_ranks=1, subgroup_size=SUBGROUP)


@pytest.fixture
def workload(rng):
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    grads = [
        rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1 for _ in range(ITERATIONS)
    ]
    return initial, grads


def _make_config(root, backend, **overrides):
    (root / "nvme").mkdir(parents=True, exist_ok=True)
    (root / "pfs").mkdir(parents=True, exist_ok=True)
    defaults = dict(
        subgroup_size=SUBGROUP,
        host_cache_bytes=0.0,
        adam=AdamConfig(lr=1e-2),
        io=IOBackendConfig(backend=backend),
        adaptive_bandwidth=False,
    )
    defaults.update(overrides)
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(root / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(root / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        **defaults,
    )


def _drive(config, layout, initial, grads, *, checkpoint=False):
    views = flat_views(None, layout, 0)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        assert {s.backend_name for s in engine.tier.stores.values()} == {config.io.backend}
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        for grad in grads:
            for index, view in views.items():
                engine.on_backward_gradient(index, grad[view].astype(np.float16))
            engine.on_microbatch_complete()
            engine.run_update(fp16)
            if checkpoint:
                engine.maybe_checkpoint(fp16)
        if checkpoint:
            engine.checkpoint_wait()
        master = engine.fetch_master_params()
    return fp16, master


def _tier_blob_bytes(root):
    """key -> raw file bytes for every blob under both tier directories."""
    blobs = {}
    for tier in ("nvme", "pfs"):
        for path in sorted((root / tier).glob("*.bin")):
            blobs[f"{tier}/{path.name}"] = path.read_bytes()
    return blobs


class TestBackendBitwiseEquivalence:
    def test_training_state_identical_across_backends(self, tmp_path, layout, workload):
        initial, grads = workload
        fp16_t, master_t = _drive(
            _make_config(tmp_path / "thread", "thread"), layout, initial, grads
        )
        fp16_o, master_o = _drive(
            _make_config(tmp_path / "odirect", "odirect"), layout, initial, grads
        )
        np.testing.assert_array_equal(fp16_t, fp16_o)
        np.testing.assert_array_equal(master_t, master_o)

    def test_tier_blob_files_bitwise_identical(self, tmp_path, layout, workload):
        initial, grads = workload
        _drive(_make_config(tmp_path / "thread", "thread"), layout, initial, grads)
        _drive(_make_config(tmp_path / "odirect", "odirect"), layout, initial, grads)
        thread_blobs = _tier_blob_bytes(tmp_path / "thread")
        odirect_blobs = _tier_blob_bytes(tmp_path / "odirect")
        assert thread_blobs.keys() == odirect_blobs.keys()
        for key, data in thread_blobs.items():
            assert data == odirect_blobs[key], f"blob {key} differs across backends"

    @pytest.mark.parametrize("backend", ["thread", "odirect"])
    def test_checkpoint_restore_roundtrip(self, tmp_path, layout, workload, backend):
        initial, grads = workload
        root = tmp_path / backend
        config = _make_config(root, backend, checkpoint_dir=str(root / "ckpt"))
        fp16, master = _drive(config, layout, initial, grads, checkpoint=True)
        resumed = MLPOffloadEngine(
            _make_config(root, backend, checkpoint_dir=str(root / "ckpt")), layout, rank=0
        )
        try:
            restored = resumed.restore_checkpoint()
            np.testing.assert_array_equal(restored.fp16_params, fp16)
            np.testing.assert_array_equal(resumed.fetch_master_params(), master)
        finally:
            resumed.close()

    def test_cross_backend_restore(self, tmp_path, layout, workload):
        """A checkpoint written under odirect restores under thread (same disk format)."""
        initial, grads = workload
        root = tmp_path / "cross"
        write_config = _make_config(root, "odirect", checkpoint_dir=str(root / "ckpt"))
        fp16, master = _drive(write_config, layout, initial, grads, checkpoint=True)
        resumed = MLPOffloadEngine(
            _make_config(root, "thread", checkpoint_dir=str(root / "ckpt")), layout, rank=0
        )
        try:
            restored = resumed.restore_checkpoint()
            np.testing.assert_array_equal(restored.fp16_params, fp16)
            np.testing.assert_array_equal(resumed.fetch_master_params(), master)
        finally:
            resumed.close()
