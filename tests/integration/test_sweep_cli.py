"""Integration tests for the sweep CLI: end-to-end runs, kill-resume, gating.

These drive ``python -m repro.sweep`` in a subprocess — the same entry point
users and CI call — including the ISSUE's acceptance flow (a weak-scaling
sweep whose ``SWEEP_*.json`` the trajectory gate accepts) and the resume
contract under a real mid-sweep SIGKILL injected between cell record writes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sweep.runner import FAULT_ENV

REPO_ROOT = Path(__file__).resolve().parents[2]
CHECK_TRAJECTORY = REPO_ROOT / "benchmarks" / "check_trajectory.py"


def run_sweep_cli(args, cwd, fault=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop(FAULT_ENV, None)
    if fault is not None:
        env[FAULT_ENV] = fault
    return subprocess.run(
        [sys.executable, "-m", "repro.sweep", *args],
        cwd=str(cwd),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_list_shows_registered_matrices(tmp_path):
    proc = run_sweep_cli(["list"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    for name in ("model_size", "weak_scaling", "engine_smoke"):
        assert name in proc.stdout


def test_unknown_matrix_is_a_usage_error(tmp_path):
    proc = run_sweep_cli(["run", "--matrix", "nope"], tmp_path)
    assert proc.returncode == 2
    assert "unknown matrix" in proc.stderr


def test_weak_scaling_acceptance_flow(tmp_path):
    """The ISSUE acceptance criterion, verbatim: run, inspect, gate."""
    proc = run_sweep_cli(
        ["run", "--matrix", "weak_scaling", "--repeats", "3", "--table"], tmp_path
    )
    assert proc.returncode == 0, proc.stderr
    payload_file = tmp_path / "SWEEP_weak_scaling.json"
    assert payload_file.is_file()
    payload = json.loads(payload_file.read_text(encoding="utf-8"))
    cells = payload["series"]["cells"]
    assert len(cells) == 10
    for row in cells:
        assert row["repeats"] == 3
        assert row["update_s_median"] > 0
        assert "update_s_iqr" in row
    assert payload["median_speedup"] > 1.0

    # The committed-baseline gate accepts the payload (same-machine and the
    # cross-machine ratios-only variant both run clean against itself).
    for extra in ((), ("--ratios-only",)):
        gate = subprocess.run(
            [
                sys.executable,
                str(CHECK_TRAJECTORY),
                "--baseline",
                str(tmp_path),
                "--candidate",
                str(tmp_path),
                *extra,
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert gate.returncode == 0, gate.stderr
        assert "SWEEP_weak_scaling.json" in gate.stdout


def test_kill_between_cells_then_resume(tmp_path):
    """SIGKILL after 3 cell writes; the re-invocation skips exactly those 3."""
    args = ["run", "--matrix", "model_size", "--repeats", "2"]
    killed = run_sweep_cli(args, tmp_path, fault="after-cells:3")
    assert killed.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL)
    cells_dir = tmp_path / "sweep-cells" / "model_size"
    survivors = sorted(cells_dir.glob("*.json"))
    assert len(survivors) == 3
    before = {path.name: path.read_bytes() for path in survivors}
    # The interrupt died before writing any result table.
    assert not (tmp_path / "SWEEP_model_size.json").exists()

    resumed = run_sweep_cli(args, tmp_path)
    assert resumed.returncode == 0, resumed.stderr
    assert "7 executed, 3 resumed from disk" in resumed.stdout
    # Completed cells were skipped, not redone: their record files (nonce
    # included) are byte-identical to the pre-kill state.
    for name, content in before.items():
        assert (cells_dir / name).read_bytes() == content
    assert len(list(cells_dir.glob("*.json"))) == 10
    payload = json.loads((tmp_path / "SWEEP_model_size.json").read_text(encoding="utf-8"))
    assert payload["cell_count"] == 10


def test_interrupted_sweep_is_idempotent_when_complete(tmp_path):
    args = [
        "run",
        "--matrix",
        "weak_scaling",
        "--repeats",
        "2",
        "--include",
        "config=40B@1,70B@2",
    ]
    first = run_sweep_cli(args, tmp_path)
    assert first.returncode == 0, first.stderr
    assert "4 executed, 0 resumed from disk" in first.stdout
    second = run_sweep_cli(args, tmp_path)
    assert second.returncode == 0, second.stderr
    assert "0 executed, 4 resumed from disk" in second.stdout


@pytest.mark.parametrize("seed", [11])
def test_engine_campaign_smoke(tmp_path, seed):
    """A seeded real-engine campaign slice: bitwise checks green end to end."""
    proc = run_sweep_cli(
        [
            "run",
            "--matrix",
            "engine_smoke",
            "--repeats",
            "1",
            "--campaign",
            "2",
            "--seed",
            str(seed),
            "--table",
        ],
        tmp_path,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads((tmp_path / "SWEEP_engine_smoke.json").read_text(encoding="utf-8"))
    assert payload["cell_count"] == 2
    assert payload["reference_match_ratio"] == 1.0
    assert payload["restore_ok_ratio"] == 1.0
    rerun = run_sweep_cli(
        [
            "run",
            "--matrix",
            "engine_smoke",
            "--repeats",
            "1",
            "--campaign",
            "2",
            "--seed",
            str(seed),
        ],
        tmp_path,
    )
    assert rerun.returncode == 0, rerun.stderr
    # Same seed -> same sampled cells -> a full resume.
    assert "0 executed, 2 resumed from disk" in rerun.stdout


def test_table_subcommand_renders_payload(tmp_path):
    run_sweep_cli(
        ["run", "--matrix", "weak_scaling", "--repeats", "1", "--include", "config=40B@1"],
        tmp_path,
    )
    proc = run_sweep_cli(["table", "SWEEP_weak_scaling.json"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "per-cell medians/IQR" in proc.stdout
    missing = run_sweep_cli(["table", "missing.json"], tmp_path)
    assert missing.returncode == 2
