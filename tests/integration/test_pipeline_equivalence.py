"""Pipelined vs sequential update phase: bitwise equivalence and zero-alloc.

The windowed prefetch/flush pipeline must be a pure scheduling change: for
every gradient policy, ordering policy and lookahead depth it has to produce
exactly the same Adam states, FP16 working parameters and tier contents as
the single-buffered baseline loop.  On top of that, the steady-state update loop
must stop allocating: once the buffer pool is warm, every fetch/flush runs on
recycled arrays.
"""

import numpy as np
import pytest

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 6_000
SUBGROUP = 750


@pytest.fixture
def layout():
    return build_shard_layout(TOTAL_PARAMS, num_ranks=1, subgroup_size=SUBGROUP)


@pytest.fixture
def training_inputs(rng):
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    grads = [rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1 for _ in range(4)]
    return initial, grads


def _make_config(
    root,
    *,
    pipelined,
    prefetch_depth=2,
    delayed_grads=True,
    cache_reorder=True,
    host_cache_bytes=3 * SUBGROUP * 12,
):
    local = root / "nvme"
    remote = root / "pfs"
    local.mkdir(parents=True, exist_ok=True)
    remote.mkdir(parents=True, exist_ok=True)
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(local), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(remote), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=SUBGROUP,
        host_cache_bytes=host_cache_bytes,
        adam=AdamConfig(lr=1e-2),
        pipeline_update_phase=pipelined,
        prefetch_depth=prefetch_depth,
        enable_delayed_grad_conversion=delayed_grads,
        enable_cache_reorder=cache_reorder,
    )


def _drive(config, layout, initial, grads):
    """Run a full training loop; return everything observable about the result."""
    views = flat_views(None, layout, 0)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        orders = []
        for grad in grads:
            for index, view in views.items():
                engine.on_backward_gradient(index, grad[view].astype(np.float16))
            engine.on_microbatch_complete()
            orders.append(engine.run_update(fp16).order)
        master = engine.fetch_master_params()
        steps = dict(engine._steps)
        tier_contents = {}
        for name, store in engine.tier.stores.items():
            for key in store.keys():
                tier_contents[(name, key)] = store.read(key).tobytes()
    return fp16, master, steps, orders, tier_contents


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("prefetch_depth", [1, 2, 4])
    @pytest.mark.parametrize("delayed_grads", [True, False])
    @pytest.mark.parametrize("cache_reorder", [True, False])
    def test_pipelined_matches_sequential(
        self, tmp_path, layout, training_inputs, prefetch_depth, delayed_grads, cache_reorder
    ):
        initial, grads = training_inputs
        seq = _drive(
            _make_config(
                tmp_path / "seq",
                pipelined=False,
                delayed_grads=delayed_grads,
                cache_reorder=cache_reorder,
            ),
            layout,
            initial,
            grads,
        )
        pipe = _drive(
            _make_config(
                tmp_path / "pipe",
                pipelined=True,
                prefetch_depth=prefetch_depth,
                delayed_grads=delayed_grads,
                cache_reorder=cache_reorder,
            ),
            layout,
            initial,
            grads,
        )
        fp16_seq, master_seq, steps_seq, orders_seq, tiers_seq = seq
        fp16_pipe, master_pipe, steps_pipe, orders_pipe, tiers_pipe = pipe
        assert orders_seq == orders_pipe
        assert steps_seq == steps_pipe
        np.testing.assert_array_equal(fp16_seq, fp16_pipe)
        np.testing.assert_array_equal(master_seq, master_pipe)
        assert tiers_seq == tiers_pipe

    def test_no_host_cache_still_equivalent(self, tmp_path, layout, training_inputs):
        """Every subgroup round-trips the tiers (all lazy flushes go async)."""
        initial, grads = training_inputs
        seq = _drive(
            _make_config(tmp_path / "seq", pipelined=False, host_cache_bytes=0.0),
            layout,
            initial,
            grads,
        )
        pipe = _drive(
            _make_config(
                tmp_path / "pipe", pipelined=True, prefetch_depth=4, host_cache_bytes=0.0
            ),
            layout,
            initial,
            grads,
        )
        np.testing.assert_array_equal(seq[0], pipe[0])
        np.testing.assert_array_equal(seq[1], pipe[1])
        assert seq[4] == pipe[4]


class TestZeroAllocationSteadyState:
    @pytest.mark.parametrize("host_cache_bytes", [0.0, 3 * SUBGROUP * 12])
    def test_pool_stops_allocating_after_warmup(
        self, tmp_path, layout, training_inputs, host_cache_bytes, rng
    ):
        initial, _ = training_inputs
        config = _make_config(
            tmp_path / "warm", pipelined=True, prefetch_depth=2, host_cache_bytes=host_cache_bytes
        )
        views = flat_views(None, layout, 0)
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            engine.initialize(initial.copy())
            fp16 = initial.astype(np.float16)

            def one_phase():
                grad = rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1
                for index, view in views.items():
                    engine.on_backward_gradient(index, grad[view].astype(np.float16))
                engine.on_microbatch_complete()
                engine.run_update(fp16)

            # Warm-up reaches the in-flight high-water mark, whose exact value
            # depends on flush-completion timing; steady state is reached when
            # three consecutive phases allocate nothing.  The loop bound keeps
            # a broken pool (allocating every phase) failing loudly.
            quiet_phases = 0
            for _ in range(15):
                before = engine.pool.stats.allocations
                one_phase()
                quiet_phases = quiet_phases + 1 if engine.pool.stats.allocations == before else 0
                if quiet_phases == 3:
                    break
            assert quiet_phases == 3, (
                f"pool never stopped allocating: {engine.pool.stats.allocations} "
                "allocations after 15 phases"
            )
            assert engine.pool.stats.hit_rate > 0.5
