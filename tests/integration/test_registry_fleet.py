"""Fleet load test: ≥100 concurrent clients through push/restore/GC churn.

One registry service, one asyncio loop hosting a hundred-plus simulated
training jobs (async tasks) plus a handful of *real* separate client
processes, all pushing versioned manifests whose blobs overlap a shared
base-model pool — the cross-job dedup case — while fetching each other's
checkpoints back and kicking off GC.  The invariants under churn:

* **no lost manifests** — every client's retained versions are exactly the
  retention window of what it pushed;
* **no dedup corruption** — every blob fetched back (ranged, chunked) is
  byte-identical to what some client uploaded under that key;
* **bounded memory** — the vault holds one copy per distinct payload, so its
  size is capped by the distinct-content bound, not the push count;
* **clean idle state** — no live sessions, no leases, no incoming temps, and
  ``/healthz`` reports ``ok`` once the fleet drains.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import textwrap
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.ckpt.manifest import (
    BlobRef,
    BlobSegment,
    CheckpointManifest,
    cas_key,
)
from repro.registry import AsyncRegistryClient, RegistryClient, RegistryServerThread
from repro.tiers.file_store import FileStore, payload_digest

CLIENTS = 104  # async simulated jobs
PROC_CLIENTS = 3  # real separate client processes on top
VERSIONS = 3
TENANTS = 8
SHARED_BLOBS = 6  # the "base model" pool every job references
RETENTION = 2
BLOB_ELEMENTS = 1_000


def _blob(seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(BLOB_ELEMENTS).astype(np.float32)


def _file_bytes(scratch: FileStore, array: np.ndarray) -> Tuple[str, bytes]:
    """The (CAS key, on-disk blob file bytes) pair for one payload."""
    key = cas_key(payload_digest(array), array.nbytes)
    if not scratch.contains(key):
        scratch.write(key, array)
    return key, scratch.path_of(key).read_bytes()


def _segment(key: str, array: np.ndarray) -> BlobSegment:
    return BlobSegment(
        tier="nvme",
        key=key,
        start=0,
        count=int(array.size),
        nbytes=int(array.nbytes),
        digest=payload_digest(array),
    )


def _ref(key: str, array: np.ndarray) -> BlobRef:
    return BlobRef(
        dtype="float32", count=int(array.size), source="staged", segments=(_segment(key, array),)
    )


def _manifest(worker: str, version: int, refs: Dict[str, Tuple[str, np.ndarray]]):
    named = {name: _ref(key, arr) for name, (key, arr) in refs.items()}
    return CheckpointManifest(
        version=version,
        worker=worker,
        iteration=version * 10,
        layout={"num_ranks": 1},
        steps={},
        placement={},
        subgroups={0: {k: v for k, v in named.items() if k != "fp16"}},
        fp16_params=named["fp16"],
    )


async def _run_job(
    url: str, index: int, pool: List[Tuple[str, np.ndarray, bytes]], failures: List[str]
) -> None:
    """One simulated training job: push VERSIONS checkpoints, restore one."""
    tenant = f"tenant{index % TENANTS}"
    worker = f"job{index:03d}"
    client = AsyncRegistryClient(url, tenant=tenant)
    try:
        for version in range(1, VERSIONS + 1):
            scratch = {}
            shared_a = pool[(index + version) % len(pool)]
            shared_b = pool[(index * 3 + version) % len(pool)]
            unique = _blob(100_000 + index * 17 + version)
            ukey = cas_key(payload_digest(unique), unique.nbytes)
            scratch[shared_a[0]] = shared_a[2]
            scratch[shared_b[0]] = shared_b[2]
            manifest = _manifest(
                worker,
                version,
                {
                    "fp16": (ukey, unique),
                    "master": (shared_a[0], shared_a[1]),
                    "exp_avg": (shared_b[0], shared_b[1]),
                },
            )
            missing, session = await client.missing([ukey, shared_a[0], shared_b[0]])
            for key in missing:
                if key == ukey:
                    # the unique blob: serialize through a private in-memory store
                    data = _raw_file_bytes(unique)
                else:
                    data = scratch[key]
                await client.upload_blob(key, data, session=session)
            await client.commit_manifest(manifest, session=session)
            if (index + version) % 13 == 0:
                await client.collect_garbage()
        # restore leg: read a random other job's latest manifest and verify
        # one of its blobs byte-for-byte through chunked ranged GETs
        other = f"job{(index * 7 + 1) % CLIENTS:03d}"
        fetched = await client.fetch_manifest(other)
        if fetched is not None:
            seg = fetched.fp16_params.segments[0]
            data = await client.fetch_blob_bytes(seg.key, chunk_bytes=1024)
            array = _payload_of(data)
            if payload_digest(array) != seg.digest:
                failures.append(f"{worker}: fetched blob {seg.key} digest mismatch")
        versions = await client.versions(worker)
        expected = list(range(VERSIONS - RETENTION + 1, VERSIONS + 1))
        if versions != expected:
            failures.append(f"{worker}: versions {versions} != {expected}")
    except Exception as exc:  # noqa: BLE001 - surfaced as a test failure
        failures.append(f"{worker}: {type(exc).__name__}: {exc}")
    finally:
        await client.close()


_RAW_CACHE: Dict[bytes, bytes] = {}


def _raw_file_bytes(array: np.ndarray) -> bytes:
    """Serialize one payload to FileStore on-disk bytes (cached, in-memory)."""
    digest = array.tobytes()
    cached = _RAW_CACHE.get(digest)
    if cached is None:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            store = FileStore(Path(tmp) / "s", name="s")
            key = cas_key(payload_digest(array), array.nbytes)
            store.write(key, array)
            cached = store.path_of(key).read_bytes()
        _RAW_CACHE[digest] = cached
    return cached


def _payload_of(file_bytes: bytes) -> np.ndarray:
    """Deserialize FileStore blob-file bytes back into the payload array."""
    import tempfile

    from repro.tiers.file_store import read_blob_file

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "blob.bin"
        path.write_bytes(file_bytes)
        return read_blob_file(path)


_PROC_SCRIPT = textwrap.dedent(
    """
    import sys
    import numpy as np
    from repro.ckpt.manifest import BlobRef, BlobSegment, CheckpointManifest, cas_key
    from repro.registry import RegistryClient
    from repro.tiers.file_store import FileStore, payload_digest

    url, tenant, worker, scratch_dir = sys.argv[1:5]
    store = FileStore(scratch_dir, name="nvme")
    client = RegistryClient(url, tenant=tenant)
    for version in (1, 2):
        arr = np.random.default_rng(hash(worker) % 1000 + version).standard_normal(
            1000
        ).astype(np.float32)
        key = cas_key(payload_digest(arr), arr.nbytes)
        store.write(key, arr)
        seg = BlobSegment(tier="nvme", key=key, start=0, count=arr.size,
                          nbytes=arr.nbytes, digest=payload_digest(arr))
        ref = BlobRef(dtype="float32", count=arr.size, source="staged", segments=(seg,))
        manifest = CheckpointManifest(
            version=version, worker=worker, iteration=version, layout={"num_ranks": 1},
            steps={}, placement={}, subgroups={}, fp16_params=ref)
        client.push_manifest(manifest, {"nvme": store})
    assert client.versions(worker) == [1, 2]
    back = client.fetch_manifest(worker)
    assert back is not None and back.version == 2
    client.close()
    print("proc-client-ok")
    """
)


def test_fleet_push_restore_gc_churn(tmp_path):
    scratch = FileStore(tmp_path / "scratch", name="nvme")
    pool = []
    for i in range(SHARED_BLOBS):
        array = _blob(i)
        key, data = _file_bytes(scratch, array)
        pool.append((key, array, data))

    failures: List[str] = []
    with RegistryServerThread(
        tmp_path / "srv", retention=RETENTION, scrub_interval=0.1
    ) as srv:
        # real separate client processes, concurrent with the async fleet
        script = tmp_path / "proc_client.py"
        script.write_text(_PROC_SCRIPT, encoding="utf-8")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        procs = []
        for p in range(PROC_CLIENTS):
            workdir = tmp_path / f"proc{p}"
            workdir.mkdir()
            procs.append(
                subprocess.Popen(
                    [sys.executable, str(script), srv.url, "proc-tenant", f"proc{p}",
                     str(workdir)],
                    env=env,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                )
            )

        async def fleet():
            await asyncio.gather(
                *(_run_job(srv.url, i, pool, failures) for i in range(CLIENTS))
            )

        asyncio.run(fleet())

        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0, out.decode()
            assert b"proc-client-ok" in out

        with RegistryClient(srv.url, tenant="tenant0") as client:
            # final GC pass, then the idle-state audit
            client.collect_garbage()
            health = client.healthz()

        server = srv.server
        assert not failures, "\n".join(failures[:20])
        assert health["status"] == "ok"
        assert health["quarantined"] == []
        assert health["active_pushes"] == 0
        # no lost manifests: every job retained exactly the retention window
        assert health["manifests"] == CLIENTS * RETENTION + PROC_CLIENTS * 2
        # cross-job dedup bounds the vault: at most one copy per distinct
        # payload ever referenced (shared pool + per-job uniques + proc blobs)
        distinct = SHARED_BLOBS + CLIENTS * VERSIONS + PROC_CLIENTS * 2
        assert health["blobs"] <= distinct
        assert server.stats.blobs_deduped + server.stats.blobs_ingested >= CLIENTS
        # every payload is ~4KB + header; the vault must hold one copy each,
        # not one per push
        assert health["blob_bytes"] <= distinct * (BLOB_ELEMENTS * 4 + 256)
        # clean idle state on disk
        assert list((tmp_path / "srv" / "leases").glob("*.lease")) == []
        assert list((tmp_path / "srv" / "incoming").glob("*.tmp")) == []
        assert not server._sessions
