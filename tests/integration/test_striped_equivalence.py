"""Striped multi-path reads: bitwise equivalence with the unstriped baseline.

Striping is a pure layout/scheduling change: with it on, every subgroup's
fields are split across NVMe and PFS and fetched from both paths at once,
but the Adam updates, FP16 working parameters and FP32 master state must be
exactly the ones the single-path engine produces.  The degenerate
single-path configuration (``stripe_paths=1``) must not merely match
numerically — it must leave the tier directories byte-for-byte identical to
a run with striping disabled.
"""

import threading

import numpy as np
import pytest

from repro.aio.locks import TierLockManager
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 6_000
SUBGROUP = 750
FIELD_BYTES = SUBGROUP * 4


@pytest.fixture
def layout():
    return build_shard_layout(TOTAL_PARAMS, num_ranks=1, subgroup_size=SUBGROUP)


@pytest.fixture
def training_inputs(rng):
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    grads = [rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1 for _ in range(4)]
    return initial, grads


def _make_config(root, **overrides):
    local = root / "nvme"
    remote = root / "pfs"
    local.mkdir(parents=True, exist_ok=True)
    remote.mkdir(parents=True, exist_ok=True)
    defaults = dict(
        subgroup_size=SUBGROUP,
        host_cache_bytes=0.0,
        adam=AdamConfig(lr=1e-2),
        stripe_threshold_bytes=float(FIELD_BYTES // 2),
    )
    defaults.update(overrides)
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(local), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(remote), read_bw=3.6e9, write_bw=3.6e9),
        ),
        **defaults,
    )


def _drive(config, layout, initial, grads):
    views = flat_views(None, layout, 0)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        for grad in grads:
            for index, view in views.items():
                engine.on_backward_gradient(index, grad[view].astype(np.float16))
            engine.on_microbatch_complete()
            engine.run_update(fp16)
        master = engine.fetch_master_params()
        steps = dict(engine._steps)
        io = engine.tier.io_summary()
    return fp16, master, steps, io


class TestStripedBitwiseEquivalence:
    @pytest.mark.parametrize("pipelined", [False, True])
    @pytest.mark.parametrize("delayed_grads", [True, False])
    def test_striping_on_matches_off(
        self, tmp_path, layout, training_inputs, pipelined, delayed_grads
    ):
        initial, grads = training_inputs
        off = _drive(
            _make_config(
                tmp_path / "off",
                enable_striped_reads=False,
                pipeline_update_phase=pipelined,
                enable_delayed_grad_conversion=delayed_grads,
            ),
            layout,
            initial,
            grads,
        )
        on = _drive(
            _make_config(
                tmp_path / "on",
                enable_striped_reads=True,
                pipeline_update_phase=pipelined,
                enable_delayed_grad_conversion=delayed_grads,
            ),
            layout,
            initial,
            grads,
        )
        np.testing.assert_array_equal(off[0], on[0])
        np.testing.assert_array_equal(off[1], on[1])
        assert off[2] == on[2]

    def test_striped_fetches_engage_both_paths(self, tmp_path, layout, training_inputs):
        """With striping on, every tier serves read bytes — no idle path."""
        initial, grads = training_inputs
        # Freeze the estimator at the configured hints so the expected
        # bandwidth-proportional split is deterministic on any test machine.
        _, _, _, io = _drive(
            _make_config(tmp_path / "on", enable_striped_reads=True, adaptive_bandwidth=False),
            layout,
            initial,
            grads,
        )
        assert io["nvme"]["bytes_read"] > 0
        assert io["pfs"]["bytes_read"] > 0
        # The bandwidth-weighted split sends the larger share to the faster path.
        assert io["nvme"]["bytes_read"] > io["pfs"]["bytes_read"]

    def test_tier_distribution_apportions_striped_bytes(self, tmp_path, layout, training_inputs):
        """The distribution report splits striped state across the stripe paths."""
        initial, grads = training_inputs
        views = flat_views(None, layout, 0)
        config = _make_config(
            tmp_path / "dist", enable_striped_reads=True, adaptive_bandwidth=False
        )
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            engine.initialize(initial.copy())
            fp16 = initial.astype(np.float16)
            for index, view in views.items():
                engine.on_backward_gradient(index, grads[0][view].astype(np.float16))
            engine.on_microbatch_complete()
            engine.run_update(fp16)
            distribution = engine.tier_distribution()
        total_state = sum(sg.optimizer_state_bytes for sg in engine.subgroups)
        assert distribution["nvme"] > 0 and distribution["pfs"] > 0
        assert distribution["nvme"] + distribution["pfs"] == pytest.approx(total_state)
        # Bandwidth-proportional: the faster hinted path holds the larger share.
        assert distribution["nvme"] > distribution["pfs"]

    def test_two_workers_sharing_lock_manager_do_not_deadlock(self, tmp_path, rng):
        """Striped flushes span both tiers; with tier-exclusive locking on and
        two workers sharing one lock manager, no flush/fetch may wait on one
        tier's lease while holding the other's (the ABBA hazard)."""
        layout = build_shard_layout(TOTAL_PARAMS, num_ranks=2, subgroup_size=SUBGROUP)
        config = _make_config(
            tmp_path / "mw",
            enable_striped_reads=True,
            pipeline_update_phase=False,
            enable_delayed_grad_conversion=False,  # exercise the backward flush too
        )
        manager = TierLockManager()
        initials = {
            rank: rng.standard_normal(layout.rank_params(rank)).astype(np.float32)
            for rank in (0, 1)
        }
        grads = {
            rank: [
                rng.standard_normal(layout.rank_params(rank)).astype(np.float32) * 0.1
                for _ in range(2)
            ]
            for rank in (0, 1)
        }
        errors = []

        def work(rank):
            try:
                views = flat_views(None, layout, rank)
                with MLPOffloadEngine(config, layout, rank=rank, lock_manager=manager) as engine:
                    engine.initialize(initials[rank].copy())
                    fp16 = initials[rank].astype(np.float16)
                    for grad in grads[rank]:
                        for index, view in views.items():
                            engine.on_backward_gradient(index, grad[view].astype(np.float16))
                        engine.on_microbatch_complete()
                        engine.run_update(fp16)
            except BaseException as exc:  # noqa: BLE001 - surfaced to the main thread
                errors.append((rank, exc))

        threads = [
            threading.Thread(target=work, args=(rank,), daemon=True) for rank in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads), "workers deadlocked (ABBA on tier leases)"
        assert not errors, f"worker raised: {errors}"

    def test_single_path_degenerate_config_is_byte_identical(
        self, tmp_path, layout, training_inputs
    ):
        """``stripe_paths=1`` must leave the exact files striping-off leaves."""
        initial, grads = training_inputs
        _drive(
            _make_config(tmp_path / "off", enable_striped_reads=False),
            layout,
            initial,
            grads,
        )
        _drive(
            _make_config(tmp_path / "deg", enable_striped_reads=True, stripe_paths=1),
            layout,
            initial,
            grads,
        )
        for tier in ("nvme", "pfs"):
            off_dir = tmp_path / "off" / tier
            deg_dir = tmp_path / "deg" / tier
            off_files = sorted(p.name for p in off_dir.glob("*.bin"))
            deg_files = sorted(p.name for p in deg_dir.glob("*.bin"))
            assert off_files == deg_files
            for name in off_files:
                assert (off_dir / name).read_bytes() == (deg_dir / name).read_bytes(), name
