"""Pipelined backward gradient flush: bitwise equivalence with the sync path.

The FLUSH_FP32 baseline policy writes each subgroup's up-converted FP32
gradient to its tier during the backward pass.  With
``pipeline_backward_flush`` on, those writes are submitted asynchronously
through pooled staging buffers and drained before the update phase fetches
them — a pure scheduling change.  These tests pin the contract: identical
Adam state, FP16 parameters and tier contents, including with gradient
accumulation (where the same gradient key is re-flushed every micro-batch
and the writes must land in accumulation order).
"""

import numpy as np
import pytest

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 6_000
SUBGROUP = 750


def make_engine(root, *, pipelined, striped=True):
    (root / "nvme").mkdir(parents=True, exist_ok=True)
    (root / "pfs").mkdir(parents=True, exist_ok=True)
    config = MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(root / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(root / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=SUBGROUP,
        host_cache_bytes=2 * SUBGROUP * 12,
        enable_delayed_grad_conversion=False,  # the policy that flushes grads
        pipeline_backward_flush=pipelined,
        stripe_threshold_bytes=float(SUBGROUP * 2) if striped else float(1 << 30),
        adam=AdamConfig(lr=1e-3),
    )
    layout = build_shard_layout(TOTAL_PARAMS, num_ranks=1, subgroup_size=SUBGROUP)
    return MLPOffloadEngine(config, layout, rank=0), layout


def run_training(root, *, pipelined, micro_batches=1, striped=True, rng_seed=7):
    engine, layout = make_engine(root, pipelined=pipelined, striped=striped)
    views = flat_views(None, layout, 0)
    rng = np.random.default_rng(rng_seed)
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    with engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        flush_seconds = []
        for _ in range(3):
            for _ in range(micro_batches):
                grad = rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1
                for index, view in views.items():
                    flush_seconds.append(
                        engine.on_backward_gradient(index, grad[view].astype(np.float16))
                    )
                engine.on_microbatch_complete()
            report = engine.run_update(fp16)
        master = engine.fetch_master_params()
        tier_blobs = {}
        for name, store in engine.tier.stores.items():
            for key in store.keys():
                tier_blobs[(name, key)] = store.read(key).tobytes()
    return fp16, master, tier_blobs, flush_seconds, report


@pytest.mark.parametrize("micro_batches", [1, 3])
@pytest.mark.parametrize("striped", [True, False])
def test_async_backward_flush_is_bitwise_equivalent(tmp_path, micro_batches, striped):
    fp16_sync, master_sync, blobs_sync, _, _ = run_training(
        tmp_path / "sync", pipelined=False, micro_batches=micro_batches, striped=striped
    )
    fp16_pipe, master_pipe, blobs_pipe, _, report = run_training(
        tmp_path / "pipe", pipelined=True, micro_batches=micro_batches, striped=striped
    )
    assert np.array_equal(fp16_sync, fp16_pipe)
    assert np.array_equal(master_sync, master_pipe)
    assert blobs_sync == blobs_pipe, "tier contents diverged between flush modes"
    # The drain barrier is accounted where it lands (start of the update
    # phase) — it exists whenever flushes were still in flight.
    assert report.stats.grad_drain_seconds >= 0.0


def test_async_flush_leaves_no_buffers_or_io_behind(tmp_path):
    engine, layout = make_engine(tmp_path / "drain", pipelined=True)
    views = flat_views(None, layout, 0)
    rng = np.random.default_rng(11)
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    with engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        grad = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
        for index, view in views.items():
            engine.on_backward_gradient(index, grad[view].astype(np.float16))
        engine.on_microbatch_complete()
        assert engine._grad_flushes, "async flushes should be in flight"
        engine.run_update(fp16)
        assert not engine._grad_flushes, "update phase must drain backward flushes"
        # Pool leaks would show as outstanding buffers beyond the cached
        # subgroups' arrays (cache holds up to 2 subgroups x 3 fields).
        assert engine.pool.outstanding_count <= 2 * 3
