"""Elastic restart: restore a global cut under a *different* world size.

A ``GLOBAL-<v>`` cut records the world size that wrote it.  When a job
restarts with a different ``checkpoint_world_size`` — fewer nodes survived,
or more became available — the engine re-plans its ``ShardLayout`` and
re-partitions every rank's fp16 shard and per-subgroup FP32 optimizer state
from the old cut's blobs at restore time.  The optimizer is elementwise, so
the *gathered* global state is invariant under re-sharding: both the FP16
working parameters and the FP32 master state gathered from the resized
world must be bitwise-equal to the pre-crash gather, and training must
continue bit-for-bit as if the world had never changed.

Covered here in-process (the subprocess analogue lives in the procrank
crash matrix): shrink 3 -> 2, grow 2 -> 4, and a single-rank
``FunctionalTrainer(resume=True)`` swallowing a two-rank cut whole.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aio.locks import TierLockManager
from repro.ckpt import CheckpointCoordinator
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 6_000
SUBGROUP = 500
ITERATIONS = 3


def make_config(base, **overrides) -> MLPOffloadConfig:
    (base / "nvme").mkdir(exist_ok=True)
    (base / "pfs").mkdir(exist_ok=True)
    defaults = dict(
        subgroup_size=SUBGROUP,
        host_cache_bytes=2 * SUBGROUP * 12,
        stripe_threshold_bytes=float(SUBGROUP * 2),
        checkpoint_dir=str(base / "ckpt"),
        checkpoint_coordination=True,
        adam=AdamConfig(lr=1e-3),
    )
    defaults.update(overrides)
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(base / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(base / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        **defaults,
    )


def build_world(base, world: int):
    """Engines + coordinator for one world size over the shared directory."""
    layout = build_shard_layout(TOTAL_PARAMS, num_ranks=world, subgroup_size=SUBGROUP)
    config = make_config(base)
    coordinator = CheckpointCoordinator(
        config, workers=config.checkpoint_workers(world)
    )
    manager = TierLockManager()
    engines = [
        MLPOffloadEngine(
            config, layout, rank=rank, lock_manager=manager,
            checkpoint_coordinator=coordinator,
        )
        for rank in range(world)
    ]
    return layout, coordinator, engines


def global_workload():
    """World-size-independent initial parameters and per-iteration gradients."""
    rng = np.random.default_rng(11)
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    grads = [
        np.random.default_rng(100 + it).standard_normal(TOTAL_PARAMS).astype(np.float32)
        * 0.1
        for it in range(ITERATIONS + 1)
    ]
    return initial, grads


def feed_iteration(layout, engines, grad_global, fp16s):
    for rank, engine in enumerate(engines):
        start, stop = layout.rank_intervals[rank]
        local = grad_global[start:stop]
        for index, view in flat_views(None, layout, rank).items():
            engine.on_backward_gradient(index, local[view].astype(np.float16))
        engine.on_microbatch_complete()
        engine.run_update(fp16s[rank])


def gather(layout, engines, fp16s):
    """(global FP16 params, global FP32 master state) in rank order."""
    fp16 = np.concatenate(fp16s)
    master = np.concatenate([engine.fetch_master_params() for engine in engines])
    assert fp16.size == layout.total_params
    return fp16, master


def write_cut(base, world: int, initial, grads):
    """Train ``ITERATIONS`` globally-committed iterations at ``world`` ranks."""
    layout, coordinator, engines = build_world(base, world)
    fp16s = []
    for rank, engine in enumerate(engines):
        start, stop = layout.rank_intervals[rank]
        engine.initialize(initial[start:stop].copy())
        fp16s.append(initial[start:stop].astype(np.float16))
    for grad_global in grads[:ITERATIONS]:
        feed_iteration(layout, engines, grad_global, fp16s)
        for rank, engine in enumerate(engines):
            engine.save_checkpoint(fp16s[rank])
    for engine in engines:
        engine.checkpoint_wait()
    assert coordinator.global_versions()[-1] == ITERATIONS
    state = gather(layout, engines, fp16s)
    for engine in engines:
        engine.close()  # process death stand-in; the directory state stays
    return state


def restore_elastic(base, world: int):
    """Restore the newest global cut at ``world`` ranks; engines stay open."""
    layout, _coordinator, engines = build_world(base, world)
    fp16s = []
    for engine in engines:
        restored = engine.restore_checkpoint()
        # The resized world still resolves the one consistent global cut.
        assert restored.version == ITERATIONS
        assert restored.global_version == ITERATIONS
        assert restored.iteration == ITERATIONS
        assert restored.mode == "eager"  # re-partitioned state is always eager
        fp16s.append(restored.fp16_params)
    return layout, engines, fp16s


@pytest.mark.parametrize(
    ("old_world", "new_world"), [(3, 2), (2, 4)], ids=["shrink-3-to-2", "grow-2-to-4"]
)
def test_elastic_restore_is_bitwise_across_world_sizes(tmp_path, old_world, new_world):
    """The gathered FP16 and FP32 state of the resized world is bitwise-equal
    to the pre-crash gather — shrink and grow alike."""
    initial, grads = global_workload()
    fp16_before, master_before = write_cut(tmp_path, old_world, initial, grads)
    layout, engines, fp16s = restore_elastic(tmp_path, new_world)
    try:
        fp16_after, master_after = gather(layout, engines, fp16s)
        assert np.array_equal(fp16_after, fp16_before), "gathered FP16 params diverged"
        assert np.array_equal(master_after, master_before), (
            "gathered FP32 master state diverged across the re-shard"
        )
    finally:
        for engine in engines:
            engine.close()


def test_training_continues_bitwise_after_the_reshard(tmp_path):
    """One more iteration after a 3 -> 2 restart matches an uninterrupted
    2-rank trajectory — per-subgroup step counters survive re-partitioning."""
    initial, grads = global_workload()

    # Uninterrupted 2-rank reference over ITERATIONS + 1 iterations.
    ref_base = tmp_path / "reference"
    ref_base.mkdir()
    layout, _coordinator, engines = build_world(ref_base, 2)
    fp16s = []
    for rank, engine in enumerate(engines):
        start, stop = layout.rank_intervals[rank]
        engine.initialize(initial[start:stop].copy())
        fp16s.append(initial[start:stop].astype(np.float16))
    for grad_global in grads:
        feed_iteration(layout, engines, grad_global, fp16s)
    fp16_ref, master_ref = gather(layout, engines, fp16s)
    for engine in engines:
        engine.close()

    crash_base = tmp_path / "crashed"
    crash_base.mkdir()
    write_cut(crash_base, 3, initial, grads)
    layout, engines, fp16s = restore_elastic(crash_base, 2)
    try:
        feed_iteration(layout, engines, grads[ITERATIONS], fp16s)
        fp16_after, master_after = gather(layout, engines, fp16s)
        assert np.array_equal(fp16_after, fp16_ref)
        assert np.array_equal(master_after, master_ref)
    finally:
        for engine in engines:
            engine.close()


def test_trainer_resumes_a_two_rank_cut_single_rank(tmp_path, tiny_model):
    """``FunctionalTrainer(resume=True)`` at world 1 swallows a 2-rank cut:
    the engine takes the elastic path under the trainer without the trainer
    knowing, and surfaces the global cut on ``last_restored``."""
    from repro.train.trainer import FunctionalTrainer, TrainerConfig
    from repro.train.transformer import TransformerLM

    num_params = TransformerLM(tiny_model).num_params
    subgroup = 2_000

    def config_for(base):
        (base / "nvme").mkdir(exist_ok=True)
        (base / "pfs").mkdir(exist_ok=True)
        return MLPOffloadConfig(
            tiers=(
                TierConfig("nvme", str(base / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
                TierConfig("pfs", str(base / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
            ),
            subgroup_size=subgroup,
            host_cache_bytes=2 * subgroup * 12,
            checkpoint_dir=str(base / "ckpt"),
            checkpoint_coordination=True,
            adam=AdamConfig(lr=1e-3),
        )

    base = tmp_path / "elastic-trainer"
    base.mkdir()

    # Write a one-iteration 2-rank cut by hand (the functional trainer drives
    # exactly one rank, so the multi-rank past is simulated with engines).
    config = config_for(base)
    layout2 = build_shard_layout(num_params, num_ranks=2, subgroup_size=subgroup)
    coordinator = CheckpointCoordinator(config, workers=config.checkpoint_workers(2))
    manager = TierLockManager()
    engines = [
        MLPOffloadEngine(
            config, layout2, rank=rank, lock_manager=manager,
            checkpoint_coordinator=coordinator,
        )
        for rank in range(2)
    ]
    rng = np.random.default_rng(5)
    initial = rng.standard_normal(num_params).astype(np.float32)
    grad = rng.standard_normal(num_params).astype(np.float32) * 0.1
    fp16s = []
    for rank, engine in enumerate(engines):
        start, stop = layout2.rank_intervals[rank]
        engine.initialize(initial[start:stop].copy())
        fp16s.append(initial[start:stop].astype(np.float16))
    for rank, engine in enumerate(engines):
        start, stop = layout2.rank_intervals[rank]
        local = grad[start:stop]
        for index, view in flat_views(None, layout2, rank).items():
            engine.on_backward_gradient(index, local[view].astype(np.float16))
        engine.on_microbatch_complete()
        engine.run_update(fp16s[rank])
        engine.save_checkpoint(fp16s[rank], user_data={"trainer_step": 1})
    for engine in engines:
        engine.checkpoint_wait()
    assert coordinator.global_versions() == [1]
    fp16_before = np.concatenate(fp16s)
    master_before = np.concatenate(
        [engine.fetch_master_params() for engine in engines]
    )
    for engine in engines:
        engine.close()

    layout1 = build_shard_layout(num_params, num_ranks=1, subgroup_size=subgroup)
    resumed_engine = MLPOffloadEngine(config_for(base), layout1, rank=0)
    trainer = FunctionalTrainer(
        tiny_model, resumed_engine, trainer_config=TrainerConfig(seed=3), resume=True
    )
    try:
        assert trainer.last_restored is not None
        assert trainer.last_restored.global_version == 1
        assert np.array_equal(trainer.working_params(), fp16_before)
        assert np.array_equal(trainer.master_params(), master_before)
    finally:
        resumed_engine.close()
