"""Integration tests of the functional offloading engines against real file tiers.

These tests exercise the full Algorithm 1 path — placement, prefetch, host
cache, delayed gradient conversion, CPU Adam, lazy flush — on small state and
verify numerical equivalence with an offloading-free reference.
"""

import numpy as np
import pytest

from repro.aio.locks import TierLockManager
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.core.gradient_policy import GradientConversionPolicy
from repro.tiers.file_store import StoreError
from repro.train.adam import AdamConfig, AdamState, adam_update
from repro.train.sharding import build_shard_layout, flat_views
from repro.zero.zero3_engine import ZeRO3OffloadEngine

TOTAL_PARAMS = 5_000
SUBGROUP = 600


@pytest.fixture
def layout():
    return build_shard_layout(TOTAL_PARAMS, num_ranks=1, subgroup_size=SUBGROUP)


@pytest.fixture
def config(tier_dirs):
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(tier_dirs["nvme"]), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(tier_dirs["pfs"]), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=SUBGROUP,
        host_cache_bytes=3 * SUBGROUP * 12,  # three subgroups' optimizer state
        adam=AdamConfig(lr=1e-2),
    )


def _reference_update(initial, grads_per_iter, adam, layout):
    """Offloading-free reference: same accumulator-free math, in memory."""
    views = flat_views(None, layout, 0)
    states = {i: AdamState.zeros(v.stop - v.start, init=initial[v]) for i, v in views.items()}
    for grads in grads_per_iter:
        for i, v in views.items():
            grad_fp32 = grads[v].astype(np.float16).astype(np.float32)
            adam_update(states[i], grad_fp32, adam)
    out = np.empty(TOTAL_PARAMS, dtype=np.float32)
    for i, v in views.items():
        out[v] = states[i].params
    return out


def _drive_engine(engine, initial, grads_per_iter, layout):
    views = flat_views(None, layout, 0)
    engine.initialize(initial.copy())
    fp16 = initial.astype(np.float16)
    reports = []
    for grads in grads_per_iter:
        for i, v in views.items():
            engine.on_backward_gradient(i, grads[v].astype(np.float16))
        engine.on_microbatch_complete()
        reports.append(engine.run_update(fp16))
    return fp16, reports


@pytest.fixture
def training_inputs(rng):
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    grads = [rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1 for _ in range(4)]
    return initial, grads


class TestNumericalEquivalence:
    def test_mlp_offload_matches_in_memory_reference_bitwise(self, config, layout, training_inputs):
        initial, grads = training_inputs
        expected = _reference_update(initial, grads, config.adam, layout)
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            _drive_engine(engine, initial, grads, layout)
            master = engine.fetch_master_params()
        np.testing.assert_array_equal(master, expected)

    def test_zero3_baseline_reaches_the_same_parameters(self, config, layout, training_inputs):
        initial, grads = training_inputs
        with MLPOffloadEngine(config, layout, rank=0) as ours_engine:
            _drive_engine(ours_engine, initial, grads, layout)
            ours = ours_engine.fetch_master_params()
        with ZeRO3OffloadEngine(config, layout, rank=0) as base_engine:
            _drive_engine(base_engine, initial, grads, layout)
            baseline = base_engine.fetch_master_params()
        # The baseline converts gradients through an extra FP16->FP32->disk
        # round-trip, so allow for half-precision rounding only.
        np.testing.assert_allclose(ours, baseline, rtol=1e-3, atol=1e-5)

    def test_update_order_reversal_does_not_change_results(self, config, layout, training_inputs):
        from dataclasses import replace

        initial, grads = training_inputs
        sequential_cfg = replace(config, enable_cache_reorder=False)
        with MLPOffloadEngine(config, layout, rank=0) as alternating:
            _drive_engine(alternating, initial, grads, layout)
            result_alt = alternating.fetch_master_params()
        with MLPOffloadEngine(sequential_cfg, layout, rank=0) as sequential:
            _drive_engine(sequential, initial, grads, layout)
            result_seq = sequential.fetch_master_params()
        np.testing.assert_array_equal(result_alt, result_seq)

    def test_fp16_working_copy_tracks_master(self, config, layout, training_inputs):
        initial, grads = training_inputs
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            fp16, _ = _drive_engine(engine, initial, grads, layout)
            master = engine.fetch_master_params()
        np.testing.assert_array_equal(fp16, master.astype(np.float16))


class TestEngineBehaviour:
    def test_ordering_alternates_between_updates(self, config, layout, training_inputs):
        initial, grads = training_inputs
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            _, reports = _drive_engine(engine, initial, grads, layout)
        assert reports[0].order == sorted(reports[0].order)
        assert reports[1].order == sorted(reports[1].order, reverse=True)
        assert reports[2].order == reports[0].order

    def test_baseline_keeps_sequential_order(self, config, layout, training_inputs):
        initial, grads = training_inputs
        with ZeRO3OffloadEngine(config, layout, rank=0) as engine:
            _, reports = _drive_engine(engine, initial, grads, layout)
        assert all(r.order == sorted(r.order) for r in reports)

    def test_cache_reordering_produces_hits(self, config, layout, training_inputs):
        initial, grads = training_inputs
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            _, reports = _drive_engine(engine, initial, grads, layout)
        # From the second update phase on, the alternating order re-uses the
        # subgroups still resident in the host cache.
        assert reports[1].stats.cache_hits > 0
        assert reports[1].stats.skipped_flushes > 0

    def test_subgroups_distributed_across_both_tiers(self, config, layout, training_inputs):
        initial, grads = training_inputs
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            _drive_engine(engine, initial, grads, layout)
            distribution = engine.tier_distribution()
            placement_counts = engine.tier.placement.counts()
        assert placement_counts["nvme"] > 0 and placement_counts["pfs"] > 0
        assert set(distribution) >= {"nvme", "pfs", "host"}
        total = sum(distribution.values())
        assert total == pytest.approx(sum(sg.optimizer_state_bytes for sg in engine.subgroups))

    def test_baseline_flushes_fp32_gradients_during_backward(self, config, layout, training_inputs):
        initial, grads = training_inputs
        with ZeRO3OffloadEngine(config, layout, rank=0) as engine:
            assert engine.gradient_policy is GradientConversionPolicy.FLUSH_FP32
            views = flat_views(None, layout, 0)
            engine.initialize(initial.copy())
            seconds = 0.0
            for i, v in views.items():
                seconds += engine.on_backward_gradient(i, grads[0][v].astype(np.float16))
            assert seconds > 0.0
            summary = engine.tier.io_summary()
            assert summary["nvme"]["bytes_written"] > 0

    def test_mlp_offload_backward_hook_is_free_of_io(self, config, layout, training_inputs):
        initial, grads = training_inputs
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            engine.initialize(initial.copy())
            before = engine.tier.io_summary()
            views = flat_views(None, layout, 0)
            for i, v in views.items():
                assert engine.on_backward_gradient(i, grads[0][v].astype(np.float16)) == 0.0
            after = engine.tier.io_summary()
        assert before == after

    def test_adaptive_bandwidth_estimates_update(self, config, layout, training_inputs):
        initial, grads = training_inputs
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            _, reports = _drive_engine(engine, initial, grads, layout)
        assert set(reports[-1].bandwidth_estimates) == {"nvme", "pfs"}
        # Real tmpfs-backed I/O is far faster than the configured 5.3/3.6 GB/s
        # hints, so at least one adaptive estimate must have moved upward.
        assert any(
            reports[-1].bandwidth_estimates[t] != config.bandwidth_hints()[t]
            for t in ("nvme", "pfs")
        )

    def test_two_workers_share_a_lock_manager(self, tier_dirs, rng):
        layout = build_shard_layout(4_000, num_ranks=2, subgroup_size=500)
        config = MLPOffloadConfig(
            tiers=(
                TierConfig("nvme", str(tier_dirs["nvme"]), read_bw=5e9, write_bw=5e9),
                TierConfig("pfs", str(tier_dirs["pfs"]), read_bw=3e9, write_bw=3e9),
            ),
            subgroup_size=500,
            host_cache_bytes=2 * 500 * 12,
        )
        manager = TierLockManager()
        engines = [
            MLPOffloadEngine(config, layout, rank=r, lock_manager=manager) for r in range(2)
        ]
        try:
            for rank, engine in enumerate(engines):
                rank_params = layout.rank_params(rank)
                engine.initialize(rng.standard_normal(rank_params).astype(np.float32))
                for sg in engine.subgroups:
                    engine.on_backward_gradient(
                        sg.index, rng.standard_normal(sg.num_params).astype(np.float16)
                    )
                engine.on_microbatch_complete()
                fp16 = np.zeros(rank_params, dtype=np.float16)
                report = engine.run_update(fp16)
                assert report.stats.subgroups_processed == len(engine.subgroups)
            assert manager.stats("nvme").acquisitions > 0
        finally:
            for engine in engines:
                engine.close()


class TestFailureInjection:
    def test_missing_subgroup_blob_surfaces_as_error(self, config, layout, training_inputs, tier_dirs):
        initial, grads = training_inputs
        engine = MLPOffloadEngine(config, layout, rank=0)
        try:
            engine.initialize(initial.copy())
            # Corrupt the offloaded state: delete every blob from both tiers
            # and drop the host cache so fetches must hit storage.
            engine.cache.clear()
            for store in engine.tier.stores.values():
                store.clear()
            views = flat_views(None, layout, 0)
            for i, v in views.items():
                engine.on_backward_gradient(i, grads[0][v].astype(np.float16))
            engine.on_microbatch_complete()
            with pytest.raises(StoreError):
                engine.run_update(initial.astype(np.float16))
        finally:
            engine.close()

    def test_double_initialize_rejected(self, config, layout, training_inputs):
        initial, _ = training_inputs
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            engine.initialize(initial.copy())
            with pytest.raises(RuntimeError):
                engine.initialize(initial.copy())

    def test_update_before_initialize_rejected(self, config, layout):
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            with pytest.raises(RuntimeError):
                engine.run_update(np.zeros(TOTAL_PARAMS, dtype=np.float16))
            with pytest.raises(RuntimeError):
                engine.on_backward_gradient(0, np.zeros(SUBGROUP, dtype=np.float16))

    def test_wrong_shapes_rejected(self, config, layout, training_inputs):
        initial, _ = training_inputs
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            with pytest.raises(ValueError):
                engine.initialize(np.zeros(10, dtype=np.float32))
            engine.initialize(initial.copy())
            with pytest.raises(TypeError):
                engine.run_update(np.zeros(TOTAL_PARAMS, dtype=np.float32))
            with pytest.raises(ValueError):
                engine.run_update(np.zeros(7, dtype=np.float16))
