"""Crash-and-restore equivalence for the checkpoint subsystem.

The contract: restarting from any committed checkpoint version reproduces a
bitwise-identical training trajectory, no matter where the previous process
died — after a clean iteration boundary, mid-backward (gradients partially
accumulated or partially flushed), after an un-checkpointed update phase, or
mid-checkpoint-drain (manifest never committed).  Every scenario compares
the resumed run's FP16 working copy and FP32 master state against an
uninterrupted reference with ``np.array_equal``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt import CheckpointError, CheckpointReader
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 8_000
SUBGROUP = 1_000
ITERATIONS = 4
CRASH_AFTER = 2  # iterations completed (and checkpointed) before the crash


def make_config(base, **overrides) -> MLPOffloadConfig:
    (base / "nvme").mkdir(exist_ok=True)
    (base / "pfs").mkdir(exist_ok=True)
    defaults = dict(
        subgroup_size=SUBGROUP,
        host_cache_bytes=2 * SUBGROUP * 12,  # two subgroups of dirty residue
        stripe_threshold_bytes=float(SUBGROUP * 2),  # exercise striped blobs
        checkpoint_dir=str(base / "ckpt"),
        adam=AdamConfig(lr=1e-3),
    )
    defaults.update(overrides)
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(base / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(base / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        **defaults,
    )


@pytest.fixture
def workload():
    layout = build_shard_layout(TOTAL_PARAMS, num_ranks=1, subgroup_size=SUBGROUP)
    views = flat_views(None, layout, 0)
    rng = np.random.default_rng(42)
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    grads = [
        rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1 for _ in range(ITERATIONS)
    ]
    return layout, views, initial, grads


def feed_iteration(engine, views, grad):
    for index, view in views.items():
        engine.on_backward_gradient(index, grad[view].astype(np.float16))
    engine.on_microbatch_complete()


def run_reference(tmp_path, workload, **overrides):
    """The uninterrupted trajectory (no checkpointing) in its own tier dirs."""
    layout, views, initial, grads = workload
    base = tmp_path / "reference"
    base.mkdir()
    config = make_config(base, checkpoint_dir=None, **overrides)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        for grad in grads:
            feed_iteration(engine, views, grad)
            engine.run_update(fp16)
        master = engine.fetch_master_params()
    return fp16, master


def crash_then_resume(tmp_path, workload, crash, **overrides):
    """Train ``CRASH_AFTER`` checkpointed iterations, run ``crash``, resume.

    ``crash`` receives ``(engine, fp16, views, grads)`` and performs whatever
    partial work the scenario models before the process is abandoned.
    Returns the resumed run's final FP16 and master state.
    """
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base, **overrides)
    engine = MLPOffloadEngine(config, layout, rank=0)
    engine.initialize(initial.copy())
    fp16 = initial.astype(np.float16)
    for grad in grads[:CRASH_AFTER]:
        feed_iteration(engine, views, grad)
        engine.run_update(fp16)
        engine.maybe_checkpoint(fp16)
    engine.checkpoint_wait()  # the version we restore from is committed
    crash(engine, fp16, views, grads)
    engine.close()  # stand-in for process death; tier state stays as-is

    resumed = MLPOffloadEngine(make_config(base, **overrides), layout, rank=0)
    restored = resumed.restore_checkpoint()
    assert restored.iteration == CRASH_AFTER
    fp16_resumed = restored.fp16_params
    for grad in grads[restored.iteration :]:
        feed_iteration(resumed, views, grad)
        resumed.run_update(fp16_resumed)
    master = resumed.fetch_master_params()
    resumed.close()
    return fp16_resumed, master


def assert_equivalent(reference, resumed):
    fp16_ref, master_ref = reference
    fp16_res, master_res = resumed
    assert np.array_equal(fp16_ref, fp16_res), "resumed FP16 params diverged"
    assert np.array_equal(master_ref, master_res), "resumed FP32 master state diverged"


# -- crash scenarios --------------------------------------------------------


def test_crash_at_iteration_boundary(tmp_path, workload):
    """Clean kill right after a committed checkpoint."""
    resumed = crash_then_resume(tmp_path, workload, lambda *a: None)
    assert_equivalent(run_reference(tmp_path, workload), resumed)


def test_crash_mid_backward(tmp_path, workload):
    """Kill after half the next iteration's gradients were accumulated."""

    def crash(engine, fp16, views, grads):
        for index, view in list(views.items())[: len(views) // 2]:
            engine.on_backward_gradient(index, grads[CRASH_AFTER][view].astype(np.float16))

    resumed = crash_then_resume(tmp_path, workload, crash)
    assert_equivalent(run_reference(tmp_path, workload), resumed)


@pytest.mark.parametrize("pipelined_flush", [False, True])
def test_crash_mid_backward_flush(tmp_path, workload, pipelined_flush):
    """FLUSH_FP32 baseline killed with FP32 gradients partially flushed.

    The crashed process left newer gradient blobs on the tiers than the
    checkpoint knows about; restore must discard them.
    """
    overrides = dict(
        enable_delayed_grad_conversion=False, pipeline_backward_flush=pipelined_flush
    )

    def crash(engine, fp16, views, grads):
        for index, view in list(views.items())[: len(views) // 2]:
            engine.on_backward_gradient(index, grads[CRASH_AFTER][view].astype(np.float16))

    resumed = crash_then_resume(tmp_path, workload, crash, **overrides)
    assert_equivalent(run_reference(tmp_path, workload, **overrides), resumed)


def test_crash_after_uncheckpointed_update(tmp_path, workload):
    """Kill after a full update phase that was *not* checkpointed.

    With ``checkpoint_interval=2`` iteration 3 commits no version, so the
    restart falls back to the iteration-2 checkpoint and replays.
    """

    def crash(engine, fp16, views, grads):
        feed_iteration(engine, views, grads[CRASH_AFTER])
        engine.run_update(fp16)
        assert engine.maybe_checkpoint(fp16) is None  # off the interval

    resumed = crash_then_resume(tmp_path, workload, crash, checkpoint_interval=2)
    assert_equivalent(run_reference(tmp_path, workload), resumed)


def test_crash_mid_checkpoint_drain(tmp_path, workload):
    """Kill while a newer checkpoint was draining: only a ``*.tmp`` manifest
    and orphan blobs exist for it.  Restart must ignore both and use the
    last *committed* version; the next commit's GC sweeps the orphans."""

    def crash(engine, fp16, views, grads):
        ckpt_dir = engine.config.checkpoint_dir
        from pathlib import Path

        # A partially written manifest (never renamed into place) ...
        (Path(ckpt_dir) / "ckpt-rank0-000099.json.tmp").write_text('{"version": 99')
        # ... and an orphan staged blob no manifest references.
        orphan = np.arange(16, dtype=np.float32)
        engine.checkpointer.stores["nvme"].save_from("casdeadbeef-64", orphan)

    resumed = crash_then_resume(tmp_path, workload, crash)
    assert_equivalent(run_reference(tmp_path, workload), resumed)

    base = tmp_path / "crashed"
    config = make_config(base)
    reader = CheckpointReader(config, worker="rank0")
    # The fabricated tmp manifest is not a committed version.
    assert 99 not in reader.versions()
    # The resumed run's later checkpoints... were not taken (no maybe_checkpoint
    # in crash_then_resume's resume loop), so sweep explicitly via a writer GC:
    layout, _, _, _ = workload
    engine = MLPOffloadEngine(config, layout, rank=0)
    restored = engine.restore_checkpoint()
    fp16 = restored.fp16_params
    engine.save_checkpoint(fp16, wait=True)  # commit → GC runs
    engine.close()
    assert not reader.stores["nvme"].contains("casdeadbeef-64"), "orphan blob survived GC"


def test_corrupt_blob_fails_integrity_check(tmp_path, workload):
    """A flipped byte in a referenced blob must fail the restore, loudly."""
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        feed_iteration(engine, views, grads[0])
        engine.run_update(fp16)
        engine.save_checkpoint(fp16, wait=True)

    reader = CheckpointReader(config, worker="rank0")
    manifest = reader.load_manifest()
    seg = manifest.fp16_params.segments[0]
    blob_path = reader.stores[seg.tier].path_of(seg.key)
    raw = bytearray(blob_path.read_bytes())
    raw[-1] ^= 0xFF
    blob_path.write_bytes(bytes(raw))

    fresh = MLPOffloadEngine(make_config(base), layout, rank=0)
    try:
        with pytest.raises(CheckpointError, match="integrity"):
            fresh.restore_checkpoint()
    finally:
        fresh.close()


# -- codec × restore-mode matrix --------------------------------------------


@pytest.mark.parametrize("codec", ["raw", "null", "shuffle-deflate"])
@pytest.mark.parametrize("streaming", [False, True])
def test_restart_matrix_codec_by_restore_mode(tmp_path, workload, codec, streaming):
    """Bitwise resume must hold for every codec under both restore modes
    (the compressed checkpoint × streaming/hard-link restore tentpole)."""
    overrides = dict(checkpoint_codec=codec, checkpoint_streaming_restore=streaming)

    def crash(engine, fp16, views, grads):
        # Partial next iteration, so restore also has stale tier state to beat.
        for index, view in list(views.items())[: len(views) // 2]:
            engine.on_backward_gradient(index, grads[CRASH_AFTER][view].astype(np.float16))

    resumed = crash_then_resume(tmp_path, workload, crash, **overrides)
    assert_equivalent(run_reference(tmp_path, workload), resumed)


def test_streaming_restore_links_clean_and_defers_dirty(tmp_path, workload):
    """The streaming restore must actually stream: clean subgroups come back
    as hard links (zero payload bytes read), dirty residue stays pending
    until its first fetch — and the resumed trajectory is still bitwise."""
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base)
    engine = MLPOffloadEngine(config, layout, rank=0)
    engine.initialize(initial.copy())
    fp16 = initial.astype(np.float16)
    for grad in grads[:CRASH_AFTER]:
        feed_iteration(engine, views, grad)
        engine.run_update(fp16)
        engine.maybe_checkpoint(fp16)
    engine.checkpoint_wait()
    engine.close()

    resumed = MLPOffloadEngine(make_config(base), layout, rank=0)
    restored = resumed.restore_checkpoint()
    assert restored.mode == "streaming"
    assert restored.linked_subgroups > 0, "no clean subgroup was hard-linked back"
    assert restored.lazy_subgroups > 0, "no dirty residue was deferred"
    assert len(resumed._pending_restores) == restored.lazy_subgroups
    # fetch_master_params reads pending subgroups from the checkpoint stores
    # without consuming the pending restore.
    _master_before = resumed.fetch_master_params()  # side effect only: read, don't consume
    assert len(resumed._pending_restores) == restored.lazy_subgroups
    # The first update phase drains every pending restore on first fetch.
    fp16_resumed = restored.fp16_params
    for grad in grads[restored.iteration :]:
        feed_iteration(resumed, views, grad)
        resumed.run_update(fp16_resumed)
    assert not resumed._pending_restores, "lazy restores survived a full update phase"
    master = resumed.fetch_master_params()
    resumed.close()

    fp16_ref, master_ref = run_reference(tmp_path, workload)
    assert np.array_equal(fp16_ref, fp16_resumed)
    assert np.array_equal(master_ref, master)


def test_checkpoint_while_lazy_restores_pending_carries_refs(tmp_path, workload):
    """A snapshot taken before pending subgroups were ever fetched must carry
    the previous version's refs (keeping the blobs GC-alive) and itself
    restore bitwise."""
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base, checkpoint_retention=1)
    engine = MLPOffloadEngine(config, layout, rank=0)
    engine.initialize(initial.copy())
    fp16 = initial.astype(np.float16)
    for grad in grads[:CRASH_AFTER]:
        feed_iteration(engine, views, grad)
        engine.run_update(fp16)
        engine.maybe_checkpoint(fp16)
    engine.checkpoint_wait()
    engine.close()

    resumed = MLPOffloadEngine(make_config(base, checkpoint_retention=1), layout, rank=0)
    restored = resumed.restore_checkpoint()
    assert restored.lazy_subgroups > 0
    master_expected = resumed.fetch_master_params()
    # Snapshot immediately: pending subgroups are carried, not read.  With
    # retention=1 the old version is GC'd right after — the carried refs must
    # keep the shared blobs alive.
    version = resumed.save_checkpoint(restored.fp16_params, wait=True)
    resumed.close()

    final = MLPOffloadEngine(make_config(base, checkpoint_retention=1), layout, rank=0)
    restored2 = final.restore_checkpoint(version)
    assert np.array_equal(restored2.fp16_params, restored.fp16_params)
    assert np.array_equal(final.fetch_master_params(), master_expected)
    final.close()


def test_deep_audit_catches_corrupt_linked_blob(tmp_path, workload):
    """A hard-link restore never reads linked payloads (that is the point), so
    a corrupt linked blob passes the restore itself; the deep audit
    (`CheckpointReader.verify_blobs`) must catch it — and the eager restore
    must refuse it outright."""
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        feed_iteration(engine, views, grads[0])
        engine.run_update(fp16)
        engine.save_checkpoint(fp16, wait=True)

    reader = CheckpointReader(config, worker="rank0")
    manifest = reader.load_manifest()
    linked = next(
        ref
        for fields in manifest.subgroups.values()
        for ref in fields.values()
        if ref.source == "linked"
    )
    seg = linked.segments[0]
    blob_path = reader.stores[seg.tier].path_of(seg.key)
    raw = bytearray(blob_path.read_bytes())
    raw[-1] ^= 0xFF
    blob_path.write_bytes(bytes(raw))

    with pytest.raises(CheckpointError, match="integrity"):
        reader.verify_blobs(manifest)
    eager = MLPOffloadEngine(
        make_config(base, checkpoint_streaming_restore=False), layout, rank=0
    )
    try:
        with pytest.raises(CheckpointError, match="integrity"):
            eager.restore_checkpoint()
    finally:
        eager.close()


def test_streaming_restore_rejects_swapped_linked_blob_geometry(tmp_path, workload):
    """verify=True on a streaming restore header-checks every linked blob: a
    blob swapped for one with different geometry fails loudly even though
    hard links never read the payload."""
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        feed_iteration(engine, views, grads[0])
        engine.run_update(fp16)
        engine.save_checkpoint(fp16, wait=True)

    reader = CheckpointReader(config, worker="rank0")
    manifest = reader.load_manifest()
    linked = next(
        ref
        for fields in manifest.subgroups.values()
        for ref in fields.values()
        if ref.source == "linked"
    )
    seg = linked.segments[0]
    # Swap the blob for a wrong-geometry one (fewer elements).
    store = reader.stores[seg.tier]
    store.save_from(seg.key, np.zeros(seg.count // 2, dtype=np.float32))

    fresh = MLPOffloadEngine(make_config(base), layout, rank=0)
    try:
        with pytest.raises(CheckpointError, match="integrity"):
            fresh.restore_checkpoint()
    finally:
        fresh.close()


def test_streaming_restore_follows_blob_tier_over_recorded_placement(tmp_path, workload):
    """Whole-blob linked refs adopt onto the tier the blob actually lives on;
    if the manifest's recorded placement disagrees (a single-extent striped
    layout on a stripe path, or a redirected flush), the placement map must
    follow the blobs — otherwise the first fetch after restore fails."""
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    # Large stripe threshold: every field is a whole blob (single segment).
    config = make_config(base, stripe_threshold_bytes=1e9)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        feed_iteration(engine, views, grads[0])
        engine.run_update(fp16)
        engine.save_checkpoint(fp16, wait=True)

    # Rewrite the manifest with every placement flipped to the other tier,
    # so the recorded placement disagrees with where the blobs live.
    from repro.ckpt import ManifestStore

    store = ManifestStore(config.checkpoint_dir, "rank0")
    manifest = store.load(store.committed_versions()[-1])
    flipped = {
        index: ("pfs" if tier == "nvme" else "nvme")
        for index, tier in manifest.placement.items()
    }
    from dataclasses import replace

    store.commit(replace(manifest, placement=flipped))

    resumed = MLPOffloadEngine(
        make_config(base, stripe_threshold_bytes=1e9), layout, rank=0
    )
    restored = resumed.restore_checkpoint()
    assert restored.linked_subgroups > 0
    fp16_resumed = restored.fp16_params
    for grad in grads[restored.iteration :]:
        feed_iteration(resumed, views, grad)
        resumed.run_update(fp16_resumed)  # fetches must find the adopted blobs
    master = resumed.fetch_master_params()
    resumed.close()
    fp16_ref, master_ref = run_reference(tmp_path, workload)
    assert np.array_equal(fp16_ref, fp16_resumed)
    assert np.array_equal(master_ref, master)


def test_verify_blobs_passes_on_intact_checkpoint(tmp_path, workload):
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        feed_iteration(engine, views, grads[0])
        engine.run_update(fp16)
        engine.save_checkpoint(fp16, wait=True)
    reader = CheckpointReader(config, worker="rank0")
    assert reader.verify_blobs(reader.load_manifest()) > 0


# -- retention, reuse, trainer-level resume ---------------------------------


def test_retention_keeps_window_and_sweeps_blobs(tmp_path, workload):
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base, checkpoint_retention=2)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        for grad in grads[:3]:
            feed_iteration(engine, views, grad)
            engine.run_update(fp16)
            engine.save_checkpoint(fp16, wait=True)

    reader = CheckpointReader(config, worker="rank0")
    assert reader.versions() == [2, 3]
    # Every blob on disk is referenced by a surviving manifest (no orphans,
    # no dangling references).
    referenced = set()
    for version in reader.versions():
        manifest = reader.load_manifest(version)
        reader.check_blobs(manifest)
        referenced |= {key for _, key in manifest.blob_keys()}
    on_disk = {key for store in reader.stores.values() for key in store.keys()}
    assert on_disk <= referenced


def test_back_to_back_checkpoints_reuse_content(tmp_path, workload):
    """A second snapshot with no training in between moves zero payload."""
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base, checkpoint_retention=4)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        feed_iteration(engine, views, grads[0])
        engine.run_update(fp16)
        engine.save_checkpoint(fp16, wait=True)
        writer = engine.checkpointer
        linked_before = writer.linked_blobs
        staged_before = writer.staged_blobs
        engine.save_checkpoint(fp16, wait=True)
        assert writer.linked_blobs == linked_before, "unchanged tier blobs were re-linked"
        assert writer.staged_blobs == staged_before, "unchanged staged blobs were re-written"
        assert writer.reused_blobs > 0


def test_trainer_resume_matches_uninterrupted_run(tmp_path, tiny_model):
    """End-to-end trainer: losses and state after resume match a straight run."""
    from repro.train.trainer import FunctionalTrainer, TrainerConfig

    def build(base, checkpoint_dir):
        config = make_config(
            base, subgroup_size=2_000, host_cache_bytes=2 * 2_000 * 12,
            stripe_threshold_bytes=4_000.0, checkpoint_dir=checkpoint_dir,
        )
        from repro.train.transformer import TransformerLM

        model = TransformerLM(tiny_model)
        layout = build_shard_layout(model.num_params, num_ranks=1, subgroup_size=2_000)
        engine = MLPOffloadEngine(config, layout, rank=0)
        return config, engine

    ref_base = tmp_path / "ref"
    ref_base.mkdir()
    _, ref_engine = build(ref_base, None)
    ref_trainer = FunctionalTrainer(
        tiny_model, ref_engine, trainer_config=TrainerConfig(micro_batch_size=2)
    )
    ref_losses = [r.mean_loss for r in ref_trainer.train(5)]
    ref_master = ref_trainer.master_params()
    ref_fp16 = ref_trainer.working_params().copy()
    ref_engine.close()

    crash_base = tmp_path / "crash"
    crash_base.mkdir()
    _, engine = build(crash_base, str(crash_base / "ckpt"))
    trainer = FunctionalTrainer(
        tiny_model, engine, trainer_config=TrainerConfig(micro_batch_size=2)
    )
    reports = trainer.train(3)
    assert reports[-1].checkpoint_version is not None
    engine.checkpoint_wait()
    engine.close()  # crash

    _, engine2 = build(crash_base, str(crash_base / "ckpt"))
    trainer2 = FunctionalTrainer(
        tiny_model, engine2, trainer_config=TrainerConfig(micro_batch_size=2), resume=True
    )
    resumed_losses = [r.mean_loss for r in trainer2.train(2)]
    assert np.array_equal(ref_master, trainer2.master_params())
    assert np.array_equal(ref_fp16, trainer2.working_params())
    assert resumed_losses == ref_losses[3:]
    engine2.close()
