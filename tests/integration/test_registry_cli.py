"""CLI smoke tests for ``repro-registry`` (``python -m repro.registry``)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.registry import RegistryClient

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(args, timeout=60):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.registry", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_help_smoke():
    proc = run_cli(["--help"])
    assert proc.returncode == 0, proc.stderr
    assert "serve" in proc.stdout
    assert "registry" in proc.stdout.lower()


def test_serve_help_documents_every_flag():
    proc = run_cli(["serve", "--help"])
    assert proc.returncode == 0, proc.stderr
    for flag in ("--root", "--host", "--port", "--retention", "--scrub-interval"):
        assert flag in proc.stdout


def test_missing_subcommand_is_a_usage_error():
    proc = run_cli([])
    assert proc.returncode == 2
    assert "serve" in proc.stderr


def test_serve_boots_announces_port_and_answers_healthz(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.registry",
            "serve",
            "--root",
            str(tmp_path / "srv"),
            "--port",
            "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    try:
        line = proc.stdout.readline().decode()
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1])
        with RegistryClient(f"http://127.0.0.1:{port}") as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["manifests"] == 0
    finally:
        proc.kill()
        proc.wait(timeout=30)
