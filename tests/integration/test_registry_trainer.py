"""Trainer ↔ registry integration: push per commit, cold remote restore.

The acceptance path of the registry service, end to end through the real
training stack: a :class:`FunctionalTrainer` whose engine is configured with
``checkpoint_registry_url`` pushes every committed version as a side effect
of its ordinary checkpoint hook; a second trainer booted with ``resume=True``
and an **empty** local checkpoint directory pulls the checkpoint over HTTP
and continues bitwise-identically; a second job sharing its state uploads
almost nothing thanks to cross-job dedup; and a registry outage never fails
training.
"""

from __future__ import annotations

import numpy as np

from repro.ckpt import CheckpointReader
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.registry import RegistryServerThread
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout
from repro.train.trainer import FunctionalTrainer, TrainerConfig
from repro.train.transformer import TransformerLM

SUBGROUP = 2_000


def make_config(base, url, *, tenant="default", **overrides) -> MLPOffloadConfig:
    (base / "nvme").mkdir(parents=True, exist_ok=True)
    (base / "pfs").mkdir(parents=True, exist_ok=True)
    defaults = dict(
        subgroup_size=SUBGROUP,
        host_cache_bytes=2 * SUBGROUP * 12,
        stripe_threshold_bytes=float(SUBGROUP * 2),  # striped blobs travel too
        checkpoint_dir=str(base / "ckpt"),
        checkpoint_registry_url=url,
        checkpoint_registry_tenant=tenant,
        adam=AdamConfig(lr=1e-3),
    )
    defaults.update(overrides)
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(base / "nvme")),
            TierConfig("pfs", str(base / "pfs")),
        ),
        **defaults,
    )


def build_trainer(tiny_model, config, **kwargs):
    model = TransformerLM(tiny_model)
    layout = build_shard_layout(model.num_params, num_ranks=1, subgroup_size=SUBGROUP)
    engine = MLPOffloadEngine(config, layout, rank=0)
    trainer = FunctionalTrainer(
        tiny_model, engine, trainer_config=TrainerConfig(micro_batch_size=2), **kwargs
    )
    return trainer, engine


def test_trainer_pushes_and_cold_restores_bitwise(tmp_path, tiny_model):
    with RegistryServerThread(tmp_path / "srv", scrub_interval=0.05) as srv:
        trainer, engine = build_trainer(
            tiny_model, make_config(tmp_path / "a", srv.url, tenant="job-a")
        )
        try:
            trainer.train(3)
            engine.checkpoint_wait()
            writer = engine.checkpointer
            assert writer.registry_pushes == 3
            assert writer.registry_push_failures == 0
            fp16 = trainer.working_params().copy()
            master = trainer.master_params().copy()
        finally:
            engine.close()

        # a brand-new machine: fresh tier dirs, EMPTY local checkpoint dir —
        # resume must pull the checkpoint from the registry over HTTP
        resumed, engine2 = build_trainer(
            tiny_model,
            make_config(tmp_path / "b", srv.url, tenant="job-a"),
            resume=True,
        )
        try:
            assert resumed.last_restored is not None
            assert resumed.last_restored.iteration == 3
            assert np.array_equal(resumed.working_params(), fp16)
            assert np.array_equal(resumed.master_params(), master)
        finally:
            engine2.close()


def test_remote_resume_continues_trajectory_bitwise(tmp_path, tiny_model):
    """Reference: 5 uninterrupted iterations.  Subject: 3 iterations on one
    machine, remote resume on another, 2 more — same final state."""
    with RegistryServerThread(tmp_path / "srv", scrub_interval=0) as srv:
        ref_trainer, ref_engine = build_trainer(
            tiny_model, make_config(tmp_path / "ref", None)
        )
        try:
            ref_losses = [r.mean_loss for r in ref_trainer.train(5)]
            ref_fp16 = ref_trainer.working_params().copy()
            ref_master = ref_trainer.master_params().copy()
        finally:
            ref_engine.close()

        part_trainer, part_engine = build_trainer(
            tiny_model, make_config(tmp_path / "part", srv.url, tenant="subject")
        )
        try:
            part_trainer.train(3)
            part_engine.checkpoint_wait()
        finally:
            part_engine.close()

        resumed, engine = build_trainer(
            tiny_model,
            make_config(tmp_path / "elsewhere", srv.url, tenant="subject"),
            resume=True,
        )
        try:
            resumed_losses = [r.mean_loss for r in resumed.train(2)]
            assert resumed_losses == ref_losses[3:]
            assert np.array_equal(resumed.working_params(), ref_fp16)
            assert np.array_equal(resumed.master_params(), ref_master)
        finally:
            engine.close()


def test_second_job_uploads_under_ten_percent(tmp_path, tiny_model):
    """The dedup acceptance bound: a second job whose state matches the
    first's (same seed, different tenant) uploads <10% of its blob bytes —
    the registry vouches for every blob the first job already pushed.

    Whole-blob checkpoints (no striping): stripe extents follow the
    run-dependent tier placement, so only unstriped blobs are stable
    content-addressed units across jobs."""
    with RegistryServerThread(tmp_path / "srv", scrub_interval=0) as srv:
        uploaded = {}
        for job, tenant in (("a", "job-a"), ("b", "job-b")):
            trainer, engine = build_trainer(
                tiny_model,
                make_config(
                    tmp_path / job, srv.url, tenant=tenant, stripe_threshold_bytes=1e9
                ),
            )
            try:
                trainer.train(2)
                engine.checkpoint_wait()
                writer = engine.checkpointer
                assert writer.registry_push_failures == 0
                total = writer.registry_uploaded_bytes + writer.registry_skipped_bytes
                assert total > 0
                uploaded[tenant] = (writer.registry_uploaded_bytes, total)
            finally:
                engine.close()
        first_up, first_total = uploaded["job-a"]
        assert first_up == first_total, "first job has nothing to dedup against"
        second_up, second_total = uploaded["job-b"]
        assert second_up < 0.10 * second_total, (second_up, second_total)


def test_registry_outage_does_not_fail_training(tmp_path, tiny_model):
    """A dead registry is an availability problem: pushes fail, training and
    local checkpointing proceed untouched."""
    config = make_config(tmp_path / "a", "http://127.0.0.1:9")  # discard port
    trainer, engine = build_trainer(tiny_model, config)
    try:
        reports = trainer.train(2)
        engine.checkpoint_wait()
        assert [r.checkpoint_version for r in reports] == [1, 2]
        writer = engine.checkpointer
        assert writer.registry_pushes == 0
        assert writer.registry_push_failures == 2
    finally:
        engine.close()
    # the local checkpoints stand
    reader = CheckpointReader(make_config(tmp_path / "a", None), worker="rank0")
    assert reader.versions() == [1, 2]
