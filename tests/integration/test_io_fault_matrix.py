"""Chaos matrix: end-to-end training under injected tier-I/O faults.

The contract under test (ISSUE 9): with the fault-tolerance machinery on,

* transient I/O errors are absorbed by the engine's retry policy and the
  run's results are **bitwise identical** to a fault-free run;
* a stripe path that dies permanently mid-run is quarantined, its traffic
  transparently fails over onto the survivors (still bitwise identical),
  and it carries **zero new engine bytes** until a recovery probe succeeds;
* a path that heals is re-admitted by the periodic probe and takes traffic
  again;
* ``ENOSPC`` while a checkpoint drains skips that version (counter
  incremented) instead of failing training;
* an unreadable striped field surfaces as a typed
  :class:`DegradedReadError` — with no leaked pool buffers and a tier
  engine that still drains (never a wedge, never a silent wrong answer).
"""

import numpy as np
import pytest

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.tiers.faultstore import FaultPlan, FaultRule, arm_faults, clear_faults
from repro.tiers.striped_store import DegradedReadError
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 6_000
SUBGROUP = 750
FIELD_BYTES = SUBGROUP * 4


@pytest.fixture(autouse=True)
def _disarmed():
    clear_faults()
    yield
    clear_faults()


@pytest.fixture
def layout():
    return build_shard_layout(TOTAL_PARAMS, num_ranks=1, subgroup_size=SUBGROUP)


@pytest.fixture
def training_inputs(rng):
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    grads = [rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1 for _ in range(4)]
    return initial, grads


def _make_config(root, **overrides):
    local = root / "nvme"
    remote = root / "pfs"
    local.mkdir(parents=True, exist_ok=True)
    remote.mkdir(parents=True, exist_ok=True)
    defaults = dict(
        subgroup_size=SUBGROUP,
        host_cache_bytes=0.0,
        adam=AdamConfig(lr=1e-2),
        enable_striped_reads=True,
        stripe_threshold_bytes=float(FIELD_BYTES // 2),
        adaptive_bandwidth=False,
        io_retry_attempts=3,
        io_retry_backoff_seconds=0.001,
        path_quarantine_failures=2,
        path_probe_interval=2,
    )
    defaults.update(overrides)
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(local), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(remote), read_bw=3.6e9, write_bw=3.6e9),
        ),
        **defaults,
    )


def _drive(config, layout, initial, grads, *, plan=None):
    """Run a short training loop, optionally with ``plan`` armed throughout."""
    if plan is not None:
        arm_faults(plan)
    try:
        views = flat_views(None, layout, 0)
        reports = []
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            engine.initialize(initial.copy())
            fp16 = initial.astype(np.float16)
            for grad in grads:
                for index, view in views.items():
                    engine.on_backward_gradient(index, grad[view].astype(np.float16))
                engine.on_microbatch_complete()
                reports.append(engine.run_update(fp16))
            master = engine.fetch_master_params()
            steps = dict(engine._steps)
            health = engine.tier.health_summary()
        return fp16, master, steps, reports, health
    finally:
        clear_faults()


class TestTransientFaultsAreInvisible:
    def test_bitwise_identical_through_transient_eio(self, tmp_path, layout, training_inputs):
        initial, grads = training_inputs
        baseline = _drive(_make_config(tmp_path / "clean"), layout, initial, grads)
        # Each burst is scoped to one subgroup's key stream with
        # count < attempts, so no single request can ever exhaust its retry
        # budget regardless of how concurrent requests interleave.
        plan = FaultPlan(
            [
                FaultRule(kind="eio", op="write", key="*sg00002*", count=2),
                FaultRule(kind="eio", op="read", key="*sg00004*", count=2),
                FaultRule(kind="eio", op="write", key="*sg00005*", count=1),
                FaultRule(kind="short-read", op="read", key="*sg00001*", count=1),
            ]
        )
        faulted = _drive(_make_config(tmp_path / "eio"), layout, initial, grads, plan=plan)
        assert plan.injected_total >= 5
        np.testing.assert_array_equal(baseline[0], faulted[0])  # fp16 params
        np.testing.assert_array_equal(baseline[1], faulted[1])  # fp32 master
        assert baseline[2] == faulted[2]  # step counters
        # The faults were real (counted) but terminal failures zero: no
        # quarantine, no failover, just absorbed retries.
        retries = sum(r.stats.io_retries for r in faulted[3])
        assert retries >= 1
        assert all(h["healthy"] for h in faulted[4]["paths"].values())
        assert faulted[4]["failovers"] == 0


class TestDeadPathFailover:
    def test_bitwise_identical_with_one_dead_stripe_path(self, tmp_path, layout, training_inputs):
        initial, grads = training_inputs
        baseline = _drive(_make_config(tmp_path / "clean"), layout, initial, grads)
        # pfs dies permanently at its 7th write — mid-initialize, after some
        # subgroups are already striped across both paths.
        plan = FaultPlan([FaultRule(kind="dead", op="write", tier="pfs", after=6, count=0)])
        faulted = _drive(_make_config(tmp_path / "dead"), layout, initial, grads, plan=plan)
        np.testing.assert_array_equal(baseline[0], faulted[0])
        np.testing.assert_array_equal(baseline[1], faulted[1])
        assert baseline[2] == faulted[2]
        health = faulted[4]
        assert health["paths"]["pfs"]["healthy"] is False
        assert health["paths"]["nvme"]["healthy"] is True
        assert health["failovers"] >= 1

    def test_quarantined_path_takes_no_new_bytes(self, tmp_path, layout, rng):
        initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
        grads = [rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1 for _ in range(2)]
        views = flat_views(None, layout, 0)
        arm_faults(FaultPlan([FaultRule(kind="dead", op="write", tier="pfs", count=0)]))
        try:
            config = _make_config(tmp_path / "frozen")
            with MLPOffloadEngine(config, layout, rank=0) as engine:
                engine.initialize(initial.copy())
                fp16 = initial.astype(np.float16)
                assert not engine.tier.health.is_healthy("pfs")
                frozen = engine.tier.engine.tier_stats("pfs").bytes_written
                for grad in grads:
                    for index, view in views.items():
                        engine.on_backward_gradient(index, grad[view].astype(np.float16))
                    engine.on_microbatch_complete()
                    engine.run_update(fp16)
                # Whole phases of flush traffic later, the quarantined path's
                # engine write counter has not moved a byte.
                assert engine.tier.engine.tier_stats("pfs").bytes_written == frozen
                assert engine.tier.engine.tier_stats("nvme").bytes_written > 0
        finally:
            clear_faults()

    def test_healed_path_is_probed_back_into_service(self, tmp_path, layout, training_inputs):
        initial, grads = training_inputs
        # The path faults for a fixed budget of writes, then heals.  With a
        # single attempt per request every fault is a terminal failure: the
        # first one quarantines pfs, the rest are burnt by in-flight writes
        # and failed probes, then a probe succeeds and re-admits the path.
        plan = FaultPlan([FaultRule(kind="dead", op="write", tier="pfs", after=6, count=4)])
        config = _make_config(tmp_path / "heal", io_retry_attempts=1)
        views = flat_views(None, layout, 0)
        arm_faults(plan)
        try:
            with MLPOffloadEngine(config, layout, rank=0) as engine:
                engine.initialize(initial.copy())
                fp16 = initial.astype(np.float16)
                assert not engine.tier.health.is_healthy("pfs")
                for _ in range(12):  # probes run every 2nd update phase
                    for index, view in views.items():
                        engine.on_backward_gradient(index, grads[0][view].astype(np.float16))
                    engine.on_microbatch_complete()
                    engine.run_update(fp16)
                    if engine.tier.health.is_healthy("pfs"):
                        break
                assert engine.tier.health.is_healthy("pfs")
                assert engine.tier.health.recovery_events >= 1
                readmitted = engine.tier.engine.tier_stats("pfs").bytes_written
                # Re-admitted: the next flushes stripe onto pfs again.
                for index, view in views.items():
                    engine.on_backward_gradient(index, grads[1][view].astype(np.float16))
                engine.on_microbatch_complete()
                engine.run_update(fp16)
                assert engine.tier.engine.tier_stats("pfs").bytes_written > readmitted
        finally:
            clear_faults()


class TestCheckpointEnospcSkips:
    def test_enospc_during_drain_skips_version_not_training(
        self, tmp_path, layout, training_inputs
    ):
        initial, grads = training_inputs
        # The first checkpoint blob write hits device-full (the drain skips
        # the version on its first error); the budget is then spent and the
        # next drain succeeds.
        arm_faults(FaultPlan([FaultRule(kind="enospc", op="write", key="cas*", count=1)]))
        try:
            config = _make_config(
                tmp_path / "ckpt",
                checkpoint_dir=str(tmp_path / "ckpt" / "snaps"),
                checkpoint_interval=1,
            )
            views = flat_views(None, layout, 0)
            with MLPOffloadEngine(config, layout, rank=0) as engine:
                engine.initialize(initial.copy())
                fp16 = initial.astype(np.float16)
                for index, view in views.items():
                    engine.on_backward_gradient(index, grads[0][view].astype(np.float16))
                engine.on_microbatch_complete()
                engine.run_update(fp16)
                v1 = engine.save_checkpoint(fp16, wait=True)  # must NOT raise
                assert engine.checkpointer.skipped_versions == 1
                assert not engine.checkpointer.manifests.path_for(v1).exists()
                # Training continues; the next boundary's snapshot commits.
                for index, view in views.items():
                    engine.on_backward_gradient(index, grads[1][view].astype(np.float16))
                engine.on_microbatch_complete()
                engine.run_update(fp16)
                v2 = engine.save_checkpoint(fp16, wait=True)
                assert v2 > v1
                assert engine.checkpointer.skipped_versions == 1
                assert engine.checkpointer.manifests.path_for(v2).exists()
            # The surviving snapshot restores on a fresh engine.
            with MLPOffloadEngine(config, layout, rank=0) as fresh:
                restored = fresh.restore_checkpoint()
                assert restored.version == v2
                np.testing.assert_array_equal(restored.fp16_params, fp16)
        finally:
            clear_faults()


class TestDegradedReadSurfacesTyped:
    def test_unreadable_stripe_raises_degraded_read_error_without_leaks(
        self, tmp_path, layout, training_inputs
    ):
        initial, grads = training_inputs
        # pfs accepts writes but every read fails: striped state lands on
        # both paths, then no fan-out read can complete and no whole-blob
        # fallback copy exists anywhere.
        arm_faults(FaultPlan([FaultRule(kind="dead", op="read", tier="pfs", count=0)]))
        try:
            config = _make_config(tmp_path / "unread")
            views = flat_views(None, layout, 0)
            with MLPOffloadEngine(config, layout, rank=0) as engine:
                engine.initialize(initial.copy())
                fp16 = initial.astype(np.float16)
                for index, view in views.items():
                    engine.on_backward_gradient(index, grads[0][view].astype(np.float16))
                engine.on_microbatch_complete()
                with pytest.raises(DegradedReadError) as excinfo:
                    engine.run_update(fp16)
                assert "pfs" in excinfo.value.tiers
                assert excinfo.value.key  # names the field it could not serve
                # The failed phase left nothing behind: no stranded pooled
                # buffer, no wedged I/O engine.
                assert engine.pool.outstanding_count == 0
                engine.tier.engine.drain(timeout=30.0)
                assert not engine.tier.health.is_healthy("pfs")
        finally:
            clear_faults()
