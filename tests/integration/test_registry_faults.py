"""Torn-operation tests for the registry: kill -9 at every protocol phase.

The registry extends the checkpoint subsystem's env-armed fault-point scheme
(``REPRO_CKPT_FAULT=<phase>[@<version>]``) with four phases of its own; this
suite drives real ``SIGKILL``\\ s through them:

* a **client** killed mid-push (some blobs uploaded, manifest never
  committed) must leave nothing visible to restores, and its orphaned blobs
  must be reclaimed once the push lease expires;
* a client killed **pre-commit** (every blob uploaded) is the same story —
  uploads alone never publish anything;
* a **server** killed mid-GC (manifests retired, blob sweep not yet run)
  must restart into a consistent state: refcounts are recomputed from disk,
  so the rerun converges with no orphans and no double-free;
* the **scrubber** must never run concurrently with pushes (the idle-time
  gate), must quarantine a corrupt blob and surface it in ``/healthz``, and
  a verified re-upload of the same key must clear the quarantine.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ckpt.faults import clear_faults, install_fault
from repro.ckpt.manifest import BlobRef, BlobSegment, CheckpointManifest, cas_key
from repro.registry import RegistryClient, RegistryError, RegistryServerThread
from repro.tiers.file_store import FileStore, payload_digest

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _make_manifest(store: FileStore, worker: str, version: int, seeds) -> CheckpointManifest:
    """One synthetic manifest over freshly written local blobs."""
    refs = {}
    for name, seed in seeds.items():
        array = np.random.default_rng(seed).standard_normal(1000).astype(np.float32)
        key = cas_key(payload_digest(array), array.nbytes)
        if not store.contains(key):
            store.write(key, array)
        seg = BlobSegment(
            tier="nvme",
            key=key,
            start=0,
            count=array.size,
            nbytes=array.nbytes,
            digest=payload_digest(array),
        )
        refs[name] = BlobRef(
            dtype="float32", count=array.size, source="staged", segments=(seg,)
        )
    return CheckpointManifest(
        version=version,
        worker=worker,
        iteration=version,
        layout={"num_ranks": 1},
        steps={},
        placement={},
        subgroups={0: {k: v for k, v in refs.items() if k != "fp16"}},
        fp16_params=refs["fp16"],
    )


_PUSH_SCRIPT = textwrap.dedent(
    """
    import sys
    import numpy as np
    from repro.ckpt.manifest import BlobRef, BlobSegment, CheckpointManifest, cas_key
    from repro.registry import RegistryClient
    from repro.tiers.file_store import FileStore, payload_digest

    url, scratch = sys.argv[1:3]
    store = FileStore(scratch, name="nvme")
    refs = {}
    for name, seed in (("fp16", 1), ("master", 2), ("exp_avg", 3)):
        arr = np.random.default_rng(seed).standard_normal(1000).astype(np.float32)
        key = cas_key(payload_digest(arr), arr.nbytes)
        store.write(key, arr)
        seg = BlobSegment(tier="nvme", key=key, start=0, count=arr.size,
                          nbytes=arr.nbytes, digest=payload_digest(arr))
        refs[name] = BlobRef(dtype="float32", count=arr.size, source="staged",
                             segments=(seg,))
    manifest = CheckpointManifest(
        version=1, worker="victim", iteration=1, layout={"num_ranks": 1},
        steps={}, placement={}, subgroups={0: {k: v for k, v in refs.items() if k != "fp16"}},
        fp16_params=refs["fp16"])
    client = RegistryClient(url, tenant="torn")
    client.push_manifest(manifest, {"nvme": store})
    print("push-completed")  # only reached when no fault is armed
    """
)


@pytest.mark.parametrize("phase", ["registry-mid-push", "registry-pre-commit"])
def test_client_sigkill_mid_push_publishes_nothing(tmp_path, phase):
    """A client dead mid-push leaves no visible manifest; GC reclaims orphans."""
    with RegistryServerThread(
        tmp_path / "srv", scrub_interval=0.05, lease_timeout=0.4
    ) as srv:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["REPRO_CKPT_FAULT"] = f"{phase}@1"
        proc = subprocess.run(
            [sys.executable, "-c", _PUSH_SCRIPT, srv.url, str(tmp_path / "scratch")],
            env=env,
            capture_output=True,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        assert b"push-completed" not in proc.stdout

        with RegistryClient(srv.url, tenant="torn") as client:
            # the torn push is invisible: no manifest, nothing to restore
            assert client.versions("victim") == []
            assert client.fetch_manifest("victim") is None
            # at least one orphan blob landed before the kill (mid-push) or
            # all three did (pre-commit); either way the push session dies
            # with its lease and the sweep reclaims every orphan
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and srv.server._sessions:
                time.sleep(0.05)
            assert not srv.server._sessions, "push session should expire"
            report = client.collect_garbage()
            expected = {"registry-mid-push": (1, 3), "registry-pre-commit": (3, 3)}[phase]
            assert expected[0] <= report["swept"] <= expected[1]
            health = client.healthz()
            assert health["blobs"] == 0
            assert health["status"] == "ok"
        # no partial upload temp survives either
        assert list((tmp_path / "srv" / "incoming").glob("*.tmp")) == []
        assert list((tmp_path / "srv" / "leases").glob("*.lease")) == []


def _spawn_server(root: Path, *, env_extra=None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.update(env_extra or {})
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.registry",
            "serve",
            "--root",
            str(root),
            "--port",
            "0",
            "--retention",
            "4",
            "--scrub-interval",
            "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    line = proc.stdout.readline().decode()
    assert "listening on" in line, line
    port = int(line.rsplit(":", 1)[1])
    proc.url = f"http://127.0.0.1:{port}"  # type: ignore[attr-defined]
    return proc


def test_server_sigkill_mid_gc_recovers_consistently(tmp_path):
    """A server dead between manifest retire and blob sweep restarts cleanly.

    Refcounts are never persisted — the restarted server recomputes the
    reference set from the on-disk manifests, so the interrupted GC neither
    orphans blobs permanently (the rerun sweeps them) nor double-frees
    (still-referenced blobs survive both runs).
    """
    root = tmp_path / "srv"
    store = FileStore(tmp_path / "scratch", name="nvme")
    server = _spawn_server(root, env_extra={"REPRO_CKPT_FAULT": "registry-mid-gc"})
    try:
        with RegistryClient(server.url, tenant="alpha") as client:
            for version in (1, 2, 3):
                # each version: one shared blob (seed 0) + unique ones
                client.push_manifest(
                    _make_manifest(
                        store,
                        "rank0",
                        version,
                        {"fp16": 0, "master": version * 10, "exp_avg": version * 10 + 1},
                    ),
                    {"nvme": store},
                )
            assert client.versions("rank0") == [1, 2, 3]
            client.set_retention(1)
            # the GC retires v1+v2, then the armed fault kills the server
            # before the blob sweep
            with pytest.raises(RegistryError):
                client.collect_garbage()
        server.wait(timeout=30)
        assert server.returncode == -signal.SIGKILL
    finally:
        if server.poll() is None:  # pragma: no cover - fault did not fire
            server.kill()
            server.wait()

    # restart over the same root, fault disarmed
    server = _spawn_server(root)
    try:
        with RegistryClient(server.url, tenant="alpha") as client:
            # the retire half landed; the crash lost no retained manifest
            assert client.versions("rank0") == [3]
            manifest = client.fetch_manifest("rank0")
            assert manifest is not None and manifest.version == 3
            # every blob v3 references is present and intact
            for _tier, key in sorted(manifest.blob_keys()):
                dest = FileStore(tmp_path / "restore", name="nvme")
                client.fetch_blob_into_store(key, dest)
            # rerun converges: first pass sweeps the orphans of v1/v2
            # (4 unique blobs; the shared one is still referenced by v3),
            # the second finds nothing — no orphans, no double-free
            first = client.collect_garbage()
            assert first["swept"] == 4
            second = client.collect_garbage()
            assert second == {"retired": 0, "swept": 0}
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["blobs"] == 3  # exactly v3's reference set
    finally:
        server.kill()
        server.wait()


def test_scrubber_idles_while_pushes_run_and_quarantines_corruption(tmp_path):
    """The idle-time gate, quarantine surfacing, and re-upload recovery."""
    scrub_armed_during_push: list = []

    holder = {}

    def record_scrub(**context) -> None:
        # runs on the server loop, right before a scrub pass: a live push
        # session at this point means the idle-time gate failed
        server = holder.get("server")
        if server is not None and server._sessions:
            scrub_armed_during_push.append(dict(server._sessions))

    install_fault("registry-mid-scrub", record_scrub)
    try:
        with RegistryServerThread(
            tmp_path / "srv", scrub_interval=0.03, lease_timeout=5.0
        ) as srv:
            holder["server"] = srv.server
            store = FileStore(tmp_path / "scratch", name="nvme")
            with RegistryClient(srv.url, tenant="alpha") as client:
                manifest = _make_manifest(
                    store, "rank0", 1, {"fp16": 1, "master": 2, "exp_avg": 3}
                )
                # a deliberately slow push: session open across many scrub ticks
                keys = sorted({key for _t, key in manifest.blob_keys()})
                missing, session = client.missing(keys)
                for key in missing:
                    time.sleep(0.1)  # several scrub intervals per upload
                    client.upload_blob(
                        key, store.path_of(key).read_bytes(), session=session
                    )
                client.commit_manifest(manifest, session=session)
                assert scrub_armed_during_push == []
        clear_faults()

        # second phase: real scrubbing over a silently corrupted blob
        with RegistryServerThread(tmp_path / "srv2", scrub_interval=0.03) as srv:
            store2 = FileStore(tmp_path / "scratch2", name="nvme")
            with RegistryClient(srv.url, tenant="alpha") as client:
                manifest = _make_manifest(
                    store2, "rank0", 1, {"fp16": 1, "master": 2, "exp_avg": 3}
                )
                client.push_manifest(manifest, {"nvme": store2})
                victim = manifest.fp16_params.segments[0].key
                path = srv.server.vault.path_of(victim)
                data = bytearray(path.read_bytes())
                data[-1] ^= 0xFF  # silent bit rot in the payload tail
                path.write_bytes(bytes(data))

                deadline = time.monotonic() + 20
                while time.monotonic() < deadline and not srv.server.quarantined:
                    time.sleep(0.05)
                health = client.healthz()
                assert health["status"] == "degraded"
                assert victim in health["quarantined"]
                assert not srv.server.vault.contains(victim)
                # the quarantined bytes are kept aside for forensics
                assert (tmp_path / "srv2" / "quarantine" / f"{victim}.bin").exists()
                # a fetch of the quarantined key reports it as such
                with pytest.raises(RegistryError):
                    client.fetch_blob(victim, tmp_path / "refetch.bin")

                # dedup must NOT vouch for the corrupt key: a re-push sees it
                # as missing, re-uploads clean bytes, and health recovers
                missing, session = client.missing([victim])
                assert victim in missing
                client.upload_blob(
                    victim, store2.path_of(victim).read_bytes(), session=session
                )
                client.commit_manifest(manifest, session=session)
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline and srv.server.quarantined:
                    time.sleep(0.05)
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["quarantined"] == []
                dest = FileStore(tmp_path / "refetched", name="nvme")
                client.fetch_blob_into_store(victim, dest)
    finally:
        clear_faults()
