"""Crash matrix for multi-rank checkpoint coordination.

The job-level contract: with two in-process data-parallel workers sharing
one checkpoint directory, killing any subset of ranks at any point of the
commit protocol and restarting resumes *every* rank bitwise-identically
from the newest **global** version — never a mixed cut.  Three torn-commit
shapes are exercised:

* a rank dies **before publishing** its prepared manifest — the incomplete
  version can never be promoted and restart rolls back;
* every rank publishes, but the promoter dies **before the global commit** —
  restart *rolls the fully-prepared version forward* instead of discarding it;
* the promoter dies **between promote and GC**, leaving a stale election
  lock behind.

Each scenario's resumed two-rank trajectory is compared ``np.array_equal``
against an uninterrupted reference run.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.aio.locks import TierLockManager
from repro.ckpt import CheckpointCoordinator, CheckpointError
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 8_000
SUBGROUP = 1_000
RANKS = 2
ITERATIONS = 4
CRASH_AFTER = 2  # iterations completed (and globally committed) before the crash
#: A pid that cannot exist on Linux (beyond the default pid_max of 2**22).
DEAD_PID = 2**22 + 54321


def make_config(base, **overrides) -> MLPOffloadConfig:
    (base / "nvme").mkdir(exist_ok=True)
    (base / "pfs").mkdir(exist_ok=True)
    defaults = dict(
        subgroup_size=SUBGROUP,
        host_cache_bytes=2 * SUBGROUP * 12,
        stripe_threshold_bytes=float(SUBGROUP * 2),
        checkpoint_dir=str(base / "ckpt"),
        checkpoint_coordination=True,
        adam=AdamConfig(lr=1e-3),
    )
    defaults.update(overrides)
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(base / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(base / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        **defaults,
    )


@pytest.fixture
def workload():
    layout = build_shard_layout(TOTAL_PARAMS, num_ranks=RANKS, subgroup_size=SUBGROUP)
    views = [flat_views(None, layout, rank) for rank in range(RANKS)]
    rng = np.random.default_rng(7)
    initial = [
        rng.standard_normal(layout.rank_params(rank)).astype(np.float32)
        for rank in range(RANKS)
    ]
    grads = [
        [
            rng.standard_normal(layout.rank_params(rank)).astype(np.float32) * 0.1
            for rank in range(RANKS)
        ]
        for _ in range(ITERATIONS)
    ]
    return layout, views, initial, grads


def build_engines(config, layout, *, coordinator=None):
    manager = TierLockManager()
    return [
        MLPOffloadEngine(
            config, layout, rank=rank, lock_manager=manager,
            checkpoint_coordinator=coordinator,
        )
        for rank in range(RANKS)
    ]


def feed_iteration(engines, views, grads_of_iter, fp16s):
    for rank, engine in enumerate(engines):
        for index, view in views[rank].items():
            engine.on_backward_gradient(
                index, grads_of_iter[rank][view].astype(np.float16)
            )
        engine.on_microbatch_complete()
        engine.run_update(fp16s[rank])


def final_state(engines, fp16s):
    return [
        (fp16s[rank].copy(), engine.fetch_master_params())
        for rank, engine in enumerate(engines)
    ]


def run_reference(tmp_path, workload):
    """The uninterrupted two-rank trajectory (no checkpointing)."""
    layout, views, initial, grads = workload
    base = tmp_path / "reference"
    base.mkdir()
    config = make_config(base, checkpoint_dir=None, checkpoint_coordination=False)
    engines = build_engines(config, layout)
    try:
        fp16s = [arr.astype(np.float16) for arr in initial]
        for rank, engine in enumerate(engines):
            engine.initialize(initial[rank].copy())
        for grads_of_iter in grads:
            feed_iteration(engines, views, grads_of_iter, fp16s)
        return final_state(engines, fp16s)
    finally:
        for engine in engines:
            engine.close()


def crash_then_resume(tmp_path, workload, crash, *, expect_version=CRASH_AFTER, **overrides):
    """Train ``CRASH_AFTER`` globally-committed iterations, ``crash``, resume.

    ``crash`` receives ``(engines, coordinator, fp16s, views, grads)`` and
    models whatever partial work the scenario performs before the job dies.
    Every rank of the resumed job must restart from the same global version
    ``expect_version`` (``CRASH_AFTER``, or one more when the scenario left
    a fully-prepared version for restart to roll forward); the remaining
    iterations are replayed and the final two-rank state returned.
    """
    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base, **overrides)
    coordinator = CheckpointCoordinator(
        config, workers=config.checkpoint_workers(layout.num_ranks)
    )
    engines = build_engines(config, layout, coordinator=coordinator)
    fp16s = [arr.astype(np.float16) for arr in initial]
    for rank, engine in enumerate(engines):
        engine.initialize(initial[rank].copy())
    for grads_of_iter in grads[:CRASH_AFTER]:
        feed_iteration(engines, views, grads_of_iter, fp16s)
        for rank, engine in enumerate(engines):
            engine.save_checkpoint(fp16s[rank])
    for engine in engines:
        engine.checkpoint_wait()
    assert coordinator.global_versions()[-1] == CRASH_AFTER
    crash(engines, coordinator, fp16s, views, grads)
    for engine in engines:
        engine.close()  # stand-in for process death; directory state stays

    resumed_coord = CheckpointCoordinator(
        make_config(base, **overrides),
        workers=config.checkpoint_workers(layout.num_ranks),
    )
    resumed = build_engines(make_config(base, **overrides), layout, coordinator=resumed_coord)
    fp16s_resumed = []
    for rank, engine in enumerate(resumed):
        restored = engine.restore_checkpoint()
        # Never a mixed cut: every rank resolves the same global version.
        assert restored.version == expect_version
        assert restored.global_version == expect_version
        assert restored.iteration == expect_version
        fp16s_resumed.append(restored.fp16_params)
    for grads_of_iter in grads[expect_version:]:
        feed_iteration(resumed, views, grads_of_iter, fp16s_resumed)
    state = final_state(resumed, fp16s_resumed)
    for engine in resumed:
        engine.close()
    return state


def assert_equivalent(reference, resumed):
    for rank, ((fp16_ref, master_ref), (fp16_res, master_res)) in enumerate(
        zip(reference, resumed)
    ):
        assert np.array_equal(fp16_ref, fp16_res), f"rank {rank} FP16 params diverged"
        assert np.array_equal(master_ref, master_res), f"rank {rank} master state diverged"


def test_rank_dies_before_publishing_prepared(tmp_path, workload):
    """One more iteration runs everywhere, but only rank0's drain publishes:
    the incomplete version must never become a global cut."""

    def crash(engines, coordinator, fp16s, views, grads):
        feed_iteration(engines, views, grads[CRASH_AFTER], fp16s)
        engines[0].save_checkpoint(fp16s[0], wait=True)  # rank1 died mid-drain
        assert coordinator.global_versions()[-1] == CRASH_AFTER, (
            "a version without every rank's manifest must not be promoted"
        )

    resumed = crash_then_resume(tmp_path, workload, crash)
    assert_equivalent(run_reference(tmp_path, workload), resumed)


def test_every_rank_prepares_but_global_commit_never_lands(tmp_path, workload):
    """Both ranks publish prepared manifests but the promoter dies first:
    restart *rolls the fully-prepared version forward* — every rank's work
    landed, so discarding it would throw away a complete iteration."""

    def crash(engines, coordinator, fp16s, views, grads):
        coordinator.try_promote = lambda: None  # the elected promoter dies
        feed_iteration(engines, views, grads[CRASH_AFTER], fp16s)
        for rank, engine in enumerate(engines):
            engine.save_checkpoint(fp16s[rank], wait=True)
        snapshot_dir = sorted(p.name for p in coordinator.directory.iterdir())
        assert any(name.endswith(".prepared.json") for name in snapshot_dir)
        assert coordinator.global_versions()[-1] == CRASH_AFTER

    resumed = crash_then_resume(
        tmp_path, workload, crash, expect_version=CRASH_AFTER + 1
    )
    assert_equivalent(run_reference(tmp_path, workload), resumed)


def test_coordinator_dies_between_promote_and_gc(tmp_path, workload):
    """GLOBAL-<v> lands but the promoter dies before GC and lock release:
    restart must resolve the *new* global version and break the stale lock."""

    def crash(engines, coordinator, fp16s, views, grads):
        coordinator._collect_garbage = lambda: None  # dies right after promote
        for rank, engine in enumerate(engines):
            engine.save_checkpoint(fp16s[rank], wait=True)
        assert coordinator.global_versions()[-1] == CRASH_AFTER + 1
        # The dead promoter's election lock is still on disk.
        coordinator.lock.path.write_text(
            json.dumps({"pid": DEAD_PID, "created_unix": time.time()})
        )

    layout, views, initial, grads = workload
    base = tmp_path / "crashed"
    base.mkdir()
    config = make_config(base)
    coordinator = CheckpointCoordinator(
        config, workers=config.checkpoint_workers(layout.num_ranks)
    )
    engines = build_engines(config, layout, coordinator=coordinator)
    fp16s = [arr.astype(np.float16) for arr in initial]
    for rank, engine in enumerate(engines):
        engine.initialize(initial[rank].copy())
    for grads_of_iter in grads[: CRASH_AFTER + 1]:
        feed_iteration(engines, views, grads_of_iter, fp16s)
        if grads_of_iter is not grads[CRASH_AFTER]:
            for rank, engine in enumerate(engines):
                engine.save_checkpoint(fp16s[rank])
    for engine in engines:
        engine.checkpoint_wait()
    crash(engines, coordinator, fp16s, views, grads)
    expected_boundary = final_state(engines, fp16s)
    for engine in engines:
        engine.close()

    resumed_coord = CheckpointCoordinator(
        make_config(base), workers=config.checkpoint_workers(layout.num_ranks)
    )
    resumed = build_engines(make_config(base), layout, coordinator=resumed_coord)
    fp16s_resumed = []
    for rank, engine in enumerate(resumed):
        restored = engine.restore_checkpoint()
        assert restored.global_version == CRASH_AFTER + 1, (
            "a fully-promoted version must be restartable even if GC never ran"
        )
        fp16s_resumed.append(restored.fp16_params)
    assert not resumed_coord.lock.path.exists(), "stale election lock not broken"
    assert_equivalent(expected_boundary, final_state(resumed, fp16s_resumed))
    # ... and training continues to the reference endpoint.
    for grads_of_iter in grads[CRASH_AFTER + 1 :]:
        feed_iteration(resumed, views, grads_of_iter, fp16s_resumed)
    state = final_state(resumed, fp16s_resumed)
    for engine in resumed:
        engine.close()
    assert_equivalent(run_reference(tmp_path, workload), state)


def test_restore_of_an_explicit_older_global_version(tmp_path, workload):
    """Requesting a retained non-newest global version must work — and must
    not discard the newer global commit."""
    layout, views, initial, grads = workload
    base = tmp_path / "older"
    base.mkdir()
    config = make_config(base, checkpoint_retention=ITERATIONS)
    coordinator = CheckpointCoordinator(
        config, workers=config.checkpoint_workers(layout.num_ranks)
    )
    engines = build_engines(config, layout, coordinator=coordinator)
    fp16s = [arr.astype(np.float16) for arr in initial]
    for rank, engine in enumerate(engines):
        engine.initialize(initial[rank].copy())
    states = {}
    for index, grads_of_iter in enumerate(grads[:2]):
        feed_iteration(engines, views, grads_of_iter, fp16s)
        for rank, engine in enumerate(engines):
            engine.save_checkpoint(fp16s[rank])
        for engine in engines:
            engine.checkpoint_wait()
        states[index + 1] = [
            (fp16s[rank].copy(), engine.fetch_master_params())
            for rank, engine in enumerate(engines)
        ]
    assert coordinator.global_versions() == [1, 2]
    for engine in engines:
        engine.close()

    fresh = build_engines(
        make_config(base, checkpoint_retention=ITERATIONS), layout,
        coordinator=CheckpointCoordinator(
            config, workers=config.checkpoint_workers(layout.num_ranks)
        ),
    )
    try:
        for rank, engine in enumerate(fresh):
            restored = engine.restore_checkpoint(1)
            assert restored.global_version == 1
            fp16_expected, master_expected = states[1][rank]
            assert np.array_equal(restored.fp16_params, fp16_expected)
            assert np.array_equal(engine.fetch_master_params(), master_expected)
        # The newer global commit survives an older-version restore.
        assert fresh[0].ckpt_coordinator.global_versions() == [1, 2]
    finally:
        for engine in fresh:
            engine.close()


def test_restore_without_any_global_version_raises(tmp_path, workload):
    layout, _views, _initial, _grads = workload
    base = tmp_path / "empty"
    base.mkdir()
    config = make_config(base)
    engines = build_engines(config, layout)
    try:
        with pytest.raises(CheckpointError, match="no globally committed"):
            engines[0].restore_checkpoint()
    finally:
        for engine in engines:
            engine.close()


def test_trainer_resume_resolves_the_global_version(tmp_path, tiny_model):
    """`FunctionalTrainer(resume=True)` under coordination restarts from the
    newest *global* cut and surfaces it on ``last_restored``."""
    from repro.train.trainer import FunctionalTrainer, TrainerConfig

    from repro.train.transformer import TransformerLM

    num_params = TransformerLM(tiny_model).num_params

    def build(base, checkpoint_dir):
        (base / "nvme").mkdir(exist_ok=True)
        (base / "pfs").mkdir(exist_ok=True)
        config = MLPOffloadConfig(
            tiers=(
                TierConfig("nvme", str(base / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
                TierConfig("pfs", str(base / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
            ),
            subgroup_size=2_000,
            host_cache_bytes=2 * 2_000 * 12,
            checkpoint_dir=checkpoint_dir,
            checkpoint_coordination=True,
            adam=AdamConfig(lr=1e-3),
        )
        layout = build_shard_layout(num_params, num_ranks=1, subgroup_size=2_000)
        return MLPOffloadEngine(config, layout, rank=0)

    base = tmp_path / "coord-trainer"
    base.mkdir()
    engine = build(base, str(base / "ckpt"))
    trainer = FunctionalTrainer(
        tiny_model, engine, trainer_config=TrainerConfig(seed=3)
    )
    reports = trainer.train(2)
    committed = [r.checkpoint_version for r in reports if r.checkpoint_version]
    engine.checkpoint_wait()
    assert engine.ckpt_coordinator is not None
    assert engine.ckpt_coordinator.global_versions()[-1] == committed[-1]
    engine.close()

    resumed_engine = build(base, str(base / "ckpt"))
    resumed = FunctionalTrainer(
        tiny_model, resumed_engine, trainer_config=TrainerConfig(seed=3), resume=True
    )
    assert resumed.last_restored is not None
    assert resumed.last_restored.global_version == committed[-1]
    resumed_engine.close()
