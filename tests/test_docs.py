"""Documentation sanity checks (no markers, always run with tier-1).

The repo promises a real user-facing README and an architecture guide; this
test keeps them from silently rotting: both files must exist, be non-trivial,
and the README must reference every example script so new examples cannot be
added without documenting them.
"""

from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_readme_exists_and_is_substantial():
    readme = REPO_ROOT / "README.md"
    assert readme.is_file(), "top-level README.md is missing"
    text = readme.read_text(encoding="utf-8")
    assert len(text) > 1000, "README.md looks like a stub"
    assert "quickstart" in text.lower()
    assert "pytest" in text, "README must say how to run the tests"
    assert "perf_smoke" in text, "README must mention the perf-smoke benchmarks"
    assert "BENCH_" in text, "README must point at the BENCH_*.json artifacts"


def test_architecture_guide_exists():
    guide = REPO_ROOT / "docs" / "architecture.md"
    assert guide.is_file(), "docs/architecture.md is missing"
    text = guide.read_text(encoding="utf-8")
    assert len(text) > 1000, "architecture guide looks like a stub"
    for anchor in ("FileStore", "VirtualTier", "load_into", "save_from", "StripedStore"):
        assert anchor in text, f"architecture guide does not mention {anchor}"


def test_architecture_guide_documents_checkpointing():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    for anchor in (
        "repro.ckpt",
        "restore_checkpoint",
        "Commit protocol",
        "Restart sequence",
        "checkpoint_dir",
        "checkpoint_retention",
    ):
        assert anchor in text, f"checkpoint data-flow section does not mention {anchor}"


def test_architecture_guide_documents_global_commit():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    for anchor in (
        "repro.ckpt.coordinator",
        "two-phase",
        "prepared.json",
        "GLOBAL-<v>.json",
        "GLOBAL.lock",
        "Torn-commit recovery",
        "checkpoint_coordination",
        "checkpoint_world_size",
    ):
        assert anchor in text, f"global-commit section does not mention {anchor}"


def test_readme_documents_multirank_coordination_and_ci_gate():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "checkpoint_coordination" in text
    assert "examples/multirank_checkpoint.py" in text
    assert "BENCH_multirank_ckpt.json" in text
    assert "check_trajectory.py" in text, "README lacks the perf-regression gate"


def test_readme_documents_checkpointing():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "checkpoint/restart" in text.lower(), "README lacks the checkpoint feature bullet"
    assert "examples/checkpoint_restart.py" in text
    assert "BENCH_checkpoint.json" in text


def test_every_example_is_referenced_from_readme():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    examples = sorted((REPO_ROOT / "examples").glob("*.py"))
    assert examples, "examples/ directory is empty?"
    missing = [e.name for e in examples if f"examples/{e.name}" not in text]
    assert not missing, f"README.md does not reference: {missing}"


def test_readme_documents_registry_service():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for anchor in (
        "checkpoint_registry_url",
        "examples/registry_fleet.py",
        "BENCH_registry.json",
        "repro-registry",
        "registry-smoke",
    ):
        assert anchor in text, f"README registry section does not mention {anchor}"


def test_architecture_guide_documents_registry_service():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    for anchor in (
        "repro.registry",
        "Push protocol",
        "/v1/<tenant>/missing",
        "pull_checkpoint",
        "registry-mid-gc",
        "quarantine",
        "/healthz",
        "verify_blob_file",
    ):
        assert anchor in text, f"registry section does not mention {anchor}"


def test_readme_documents_fault_tolerance():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for anchor in (
        "REPRO_IO_FAULT",
        "examples/degraded_path.py",
        "BENCH_io_faults.json",
        "DegradedReadError",
        "fault-smoke",
    ):
        assert anchor in text, f"README fault-tolerance section does not mention {anchor}"


def test_architecture_guide_documents_fault_tolerance():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    for anchor in (
        "repro.tiers.faultstore",
        "FaultPlan",
        "IORetryPolicy",
        "PathHealth",
        "degraded_weights",
        "DegradedReadError",
        "path_quarantine_failures",
        "skipped_versions",
        "TruncatedBlobError",
    ):
        assert anchor in text, f"fault-tolerance section does not mention {anchor}"


def test_readme_documents_io_backends():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for anchor in (
        "repro.aio.backends",
        "O_DIRECT",
        "io_uring",
        "REPRO_IO_BACKEND",
        "BlobStore",
        "BENCH_io_backend.json",
        "io-backend-smoke",
        ".[codecs]",
    ):
        assert anchor in text, f"README I/O-backend section does not mention {anchor}"


def test_architecture_guide_documents_io_backends():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    for anchor in (
        "repro.aio.backends",
        "O_DIRECT",
        "io_uring",
        "AUTO_ORDER",
        "REPRO_IO_BACKEND",
        "IOBackendConfig",
        "StripeConfig",
        "alloc_aligned",
        "bounce buffer",
        "BlobStore",
        "runtime_checkable",
        "CodecError",
    ):
        assert anchor in text, f"I/O-backend section does not mention {anchor}"


def test_readme_documents_sweep_cli():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for anchor in (
        "python -m repro.sweep",
        "examples/sweep_matrix.py",
        "SWEEP_weak_scaling.json",
        "SWEEP_engine_smoke.json",
        "--campaign",
        "sweep-smoke",
        "--update-golden",
        "pytest-randomly",
    ):
        assert anchor in text, f"README sweep section does not mention {anchor}"


def test_architecture_guide_documents_sweep_harness():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    for anchor in (
        "repro.sweep",
        "ScenarioMatrix",
        "SweepRunner",
        "content-addressed",
        "cell_key",
        "REPRO_SWEEP_FAULT",
        "five_number_summary",
        "sweep_golden.json",
        "figure_result",
    ):
        assert anchor in text, f"sweep-harness section does not mention {anchor}"
