"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ordering import OrderingPolicy, expected_cache_hits, update_order
from repro.core.performance_model import allocate_subgroups
from repro.core.placement import PlacementMap
from repro.sim.resources import FluidResource, FluidSimulation, Transfer
from repro.tiers.host_cache import HostSubgroupCache
from repro.train.adam import AdamConfig, AdamState, adam_update
from repro.train.sharding import build_shard_layout
from repro.util.bytesize import format_bytes, parse_bytes

# ---------------------------------------------------------------------------
# Equation 1 allocation invariants
# ---------------------------------------------------------------------------

bandwidth_maps = st.dictionaries(
    keys=st.sampled_from(["nvme", "pfs", "daos", "burst", "obj"]),
    values=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=5,
)


@given(num_subgroups=st.integers(min_value=0, max_value=2000), bandwidths=bandwidth_maps)
@settings(max_examples=200, deadline=None)
def test_allocation_sums_and_bounds(num_subgroups, bandwidths):
    allocation = allocate_subgroups(num_subgroups, bandwidths)
    assert sum(allocation.values()) == num_subgroups
    assert set(allocation) == set(bandwidths)
    assert all(count >= 0 for count in allocation.values())


@given(num_subgroups=st.integers(min_value=10, max_value=2000), bandwidths=bandwidth_maps)
@settings(max_examples=200, deadline=None)
def test_allocation_is_monotone_in_bandwidth(num_subgroups, bandwidths):
    allocation = allocate_subgroups(num_subgroups, bandwidths)
    ordered = sorted(bandwidths, key=lambda name: bandwidths[name])
    for slower, faster in zip(ordered, ordered[1:]):
        if bandwidths[faster] > bandwidths[slower]:
            assert allocation[faster] >= allocation[slower]


@given(
    num_subgroups=st.integers(min_value=2, max_value=500),
    fast=st.floats(min_value=1.0, max_value=50.0),
    slow=st.floats(min_value=0.1, max_value=50.0),
)
@settings(max_examples=200, deadline=None)
def test_allocation_share_tracks_bandwidth_share(num_subgroups, fast, slow):
    allocation = allocate_subgroups(num_subgroups, {"fast": fast, "slow": slow})
    expected_fast = num_subgroups * fast / (fast + slow)
    assert abs(allocation["fast"] - expected_fast) <= 1.0 + 1e-6


# ---------------------------------------------------------------------------
# Ordering invariants
# ---------------------------------------------------------------------------

@given(
    n=st.integers(min_value=0, max_value=500),
    iteration=st.integers(min_value=0, max_value=20),
    policy=st.sampled_from(list(OrderingPolicy)),
)
@settings(max_examples=200, deadline=None)
def test_update_order_is_always_a_permutation(n, iteration, policy):
    order = update_order(n, iteration, policy, cached_ids=range(0, n, 3))
    assert sorted(order) == list(range(n))


@given(n=st.integers(min_value=1, max_value=300), iteration=st.integers(min_value=0, max_value=10))
@settings(max_examples=100, deadline=None)
def test_alternating_order_reverses_between_consecutive_iterations(n, iteration):
    first = update_order(n, iteration, OrderingPolicy.ALTERNATING)
    second = update_order(n, iteration + 1, OrderingPolicy.ALTERNATING)
    assert first == second[::-1]


@given(
    n=st.integers(min_value=1, max_value=200),
    cache=st.integers(min_value=0, max_value=220),
    iteration=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=150, deadline=None)
def test_alternating_never_hits_less_than_sequential(n, cache, iteration):
    prev_alt = update_order(n, iteration - 1, OrderingPolicy.ALTERNATING)
    cur_alt = update_order(n, iteration, OrderingPolicy.ALTERNATING)
    seq = update_order(n, 0, OrderingPolicy.SEQUENTIAL)
    alt_hits = expected_cache_hits(cur_alt, prev_alt, cache)
    seq_hits = expected_cache_hits(seq, seq, cache)
    assert alt_hits >= seq_hits
    assert alt_hits <= min(n, cache) if cache else alt_hits == 0


# ---------------------------------------------------------------------------
# Placement invariants
# ---------------------------------------------------------------------------

@given(
    counts=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=4),
)
@settings(max_examples=150, deadline=None)
def test_placement_counts_match_allocation(counts):
    allocation = {f"tier{i}": c for i, c in enumerate(counts)}
    total = sum(counts)
    placement = PlacementMap.from_allocation(list(range(total)), allocation)
    assert placement.counts() == allocation
    # Every subgroup has exactly one tier.
    assert len(placement) == total


# ---------------------------------------------------------------------------
# Sharding invariants
# ---------------------------------------------------------------------------

@given(
    total=st.integers(min_value=1, max_value=100_000),
    ranks=st.integers(min_value=1, max_value=16),
    subgroup=st.integers(min_value=1, max_value=10_000),
)
@settings(max_examples=200, deadline=None)
def test_shard_layout_partitions_parameters_exactly(total, ranks, subgroup):
    layout = build_shard_layout(total, num_ranks=ranks, subgroup_size=subgroup)
    layout.validate()
    assert sum(sg.num_params for sg in layout.subgroups) == total
    assert all(0 < sg.num_params <= subgroup for sg in layout.subgroups)
    sizes = [layout.rank_params(r) for r in range(ranks)]
    assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# Adam invariants
# ---------------------------------------------------------------------------

@given(
    data=st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False, width=32), min_size=4, max_size=64
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=100, deadline=None)
def test_adam_subgroup_permutation_invariance(data, seed):
    """Splitting a parameter vector into subgroups and updating them in any order
    gives exactly the same result — the property MLP-Offload's reordering relies on."""
    rng = np.random.default_rng(seed)
    params = np.array(data, dtype=np.float32)
    grads = rng.standard_normal(params.size).astype(np.float32)
    config = AdamConfig(lr=1e-2)
    split = max(1, params.size // 3)
    slices = [slice(i, min(i + split, params.size)) for i in range(0, params.size, split)]

    def run(order):
        states = {i: AdamState.zeros(s.stop - s.start, init=params[s]) for i, s in enumerate(slices)}
        for i in order:
            adam_update(states[i], grads[slices[i]], config)
        return np.concatenate([states[i].params for i in range(len(slices))])

    forward = run(list(range(len(slices))))
    backward = run(list(reversed(range(len(slices)))))
    np.testing.assert_array_equal(forward, backward)


@given(steps=st.integers(min_value=1, max_value=20), seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=50, deadline=None)
def test_adam_params_stay_finite(steps, seed):
    rng = np.random.default_rng(seed)
    state = AdamState.zeros(32, init=rng.standard_normal(32).astype(np.float32))
    for _ in range(steps):
        adam_update(state, rng.standard_normal(32).astype(np.float32), AdamConfig(lr=0.01))
    assert np.isfinite(state.params).all()
    assert np.isfinite(state.exp_avg).all()
    assert (state.exp_avg_sq >= 0).all()


# ---------------------------------------------------------------------------
# Host cache invariants
# ---------------------------------------------------------------------------

@given(
    capacity=st.integers(min_value=0, max_value=4000),
    sizes=st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=50),
)
@settings(max_examples=150, deadline=None)
def test_cache_never_exceeds_capacity(capacity, sizes):
    cache = HostSubgroupCache(capacity_bytes=capacity, writeback=lambda *a: None)
    for i, size in enumerate(sizes):
        cache.put(i, {"params": np.zeros(size, dtype=np.uint8)}, dirty=True)
        assert cache.used_bytes <= capacity
    # Resident entries are always a subset of what was inserted.
    assert set(cache.cached_ids()).issubset(set(range(len(sizes))))


# ---------------------------------------------------------------------------
# Fluid simulation conservation laws
# ---------------------------------------------------------------------------

@given(
    units=st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=1, max_size=10),
    capacity=st.floats(min_value=0.5, max_value=50.0),
    penalty=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_fluid_simulation_is_work_conserving(units, capacity, penalty):
    """Total completion time is bounded below by work/capacity and above by the
    fully-serialized, fully-penalized time."""
    sim = FluidSimulation()
    resource = FluidResource("r", capacity=capacity, contention_penalty=penalty)
    transfers = [
        sim.submit(Transfer(resource, units=u, owner=f"w{i}")) for i, u in enumerate(units)
    ]
    wall = sim.run()
    total_units = sum(units)
    assert wall >= total_units / capacity - 1e-6
    worst_capacity = capacity / (1.0 + penalty * (len(units) - 1))
    assert wall <= total_units / worst_capacity + 1e-6
    assert all(t.done for t in transfers)


# ---------------------------------------------------------------------------
# Byte-size parsing round trip
# ---------------------------------------------------------------------------

@given(value=st.integers(min_value=0, max_value=10**15))
@settings(max_examples=200, deadline=None)
def test_parse_bytes_accepts_what_it_formats(value):
    formatted = format_bytes(value, precision=6)
    parsed = parse_bytes(formatted)
    if value >= 1024:
        assert parsed == pytest.approx(value, rel=1e-4)
    else:
        assert parsed == value
