"""Property tests for the O_DIRECT alignment math (hypothesis).

Two families of invariants back the raw-I/O backends:

* :class:`~repro.tiers.array_pool.ArrayPool` with an alignment hands out
  buffers whose base address is an exact multiple of that alignment, with
  no overlap between live buffers — the precondition for issuing O_DIRECT
  transfers straight into pooled scratch arrays.
* :func:`~repro.tiers.spec.plan_stripes` with ``align_bytes`` places every
  stripe start on an aligned byte boundary (only the field tail may have an
  unaligned *length*) while preserving exact coverage, never assigning
  elements to zero-weight paths, and never reducing path fan-out relative
  to the unaligned plan; ``align_bytes=1`` reproduces the legacy plans
  bit for bit.
"""

import numpy as np
import pytest

from repro.tiers.array_pool import ArrayPool
from repro.tiers.spec import plan_stripes

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev extras
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")

if HAVE_HYPOTHESIS:
    alignments = st.sampled_from([512, 4096, 8192])
    itemsizes = st.sampled_from([1, 2, 4, 8])

    # -- pooled allocation --------------------------------------------------

    @given(
        alignment=alignments,
        sizes=st.lists(st.integers(min_value=1, max_value=200_000), min_size=1, max_size=6),
        dtype=st.sampled_from(["float32", "float16", "uint8", "float64"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_pool_buffers_are_aligned_and_disjoint(alignment, sizes, dtype):
        pool = ArrayPool(alignment=alignment)
        live = [pool.acquire(n, dtype) for n in sizes]
        spans = []
        for array, n in zip(live, sizes):
            assert array.size == n
            assert array.ctypes.data % alignment == 0
            spans.append((array.ctypes.data, array.ctypes.data + array.nbytes))
        spans.sort()
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop <= start, "live pool buffers overlap"
        for array in live:
            pool.release(array)

    @given(alignment=alignments, n=st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_pool_recycled_buffers_stay_aligned(alignment, n):
        pool = ArrayPool(alignment=alignment)
        first = pool.acquire(n)
        pool.release(first)
        again = pool.acquire(n)
        assert again.ctypes.data % alignment == 0

    @given(n=st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_pool_without_alignment_is_the_legacy_pool(n):
        pool = ArrayPool()
        assert pool.alignment == 1
        assert pool.acquire(n).size == n

    # -- stripe planning ----------------------------------------------------

    plan_inputs = st.fixed_dictionaries(
        {
            "num_elements": st.integers(min_value=1, max_value=3_000_000),
            "itemsize": itemsizes,
            "num_paths": st.integers(min_value=1, max_value=4),
            "align_bytes": alignments,
        }
    )

    def _assert_covers(plan, num_elements):
        assert plan, "plan must never be empty for a non-empty field"
        pos = 0
        for extent in plan:
            assert extent.start == pos
            assert extent.count > 0
            pos += extent.count
        assert pos == num_elements

    @given(args=plan_inputs)
    @settings(max_examples=200, deadline=None)
    def test_aligned_plan_covers_and_aligns_starts(args):
        align = args.pop("align_bytes")
        plan = plan_stripes(**args, align_bytes=align)
        legacy = plan_stripes(**args)
        _assert_covers(plan, args["num_elements"])
        starts_aligned = all(e.start * args["itemsize"] % align == 0 for e in plan)
        # Either every start is block-addressable, or the field was too
        # small to align without idling a path and the legacy plan is kept.
        assert starts_aligned or plan == legacy
        assert len(plan) >= min(len(legacy), args["num_paths"])

    @given(args=plan_inputs)
    @settings(max_examples=100, deadline=None)
    def test_align_one_is_bitwise_legacy(args):
        args.pop("align_bytes")
        assert plan_stripes(**args, align_bytes=1) == plan_stripes(**args)

    @given(
        args=plan_inputs,
        weights=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=4
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_weighted_aligned_plans_respect_dead_paths(args, weights):
        align = args.pop("align_bytes")
        args["num_paths"] = len(weights)
        if sum(weights) <= 0:
            weights[0] = 1.0
        plan = plan_stripes(**args, align_bytes=align, weights=weights)
        _assert_covers(plan, args["num_elements"])
        for extent in plan:
            assert weights[extent.path] > 0, "zero-weight path received elements"

    @given(args=plan_inputs)
    @settings(max_examples=100, deadline=None)
    def test_aligned_extents_roundtrip_through_concatenation(args):
        """Slicing a payload by the plan and re-concatenating is the identity."""
        align = args.pop("align_bytes")
        num = min(args["num_elements"], 200_000)  # keep the payload cheap
        args["num_elements"] = num
        plan = plan_stripes(**args, align_bytes=align)
        payload = np.arange(num, dtype=np.int64)
        parts = [payload[e.start : e.stop] for e in plan]
        np.testing.assert_array_equal(np.concatenate(parts), payload)
