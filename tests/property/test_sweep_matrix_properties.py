"""Property tests for the scenario-matrix expander and cell addressing.

Randomized matrices pin the algebra :mod:`repro.sweep.matrix` promises:

* the unfiltered cell list is exactly the argument product — its length is
  the product of the axis lengths and every cell is distinct (distinct
  content addresses);
* include/exclude filtering selects a *subset* of the full product — it
  never invents a cell outside the parameter space, never duplicates one,
  and keeps matrix order;
* :func:`~repro.sweep.matrix.cell_key` is a pure content address — stable
  across dict insertion order, collision-free across the cells of a matrix.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep.matrix import Axis, ScenarioMatrix, cell_key

#: JSON scalars, unique per axis by their string form (the filter currency).
_axis_values = st.lists(
    st.one_of(
        st.integers(min_value=-999, max_value=999),
        st.text(alphabet="wxyz", min_size=1, max_size=5),
        st.booleans(),
    ),
    min_size=1,
    max_size=4,
    unique_by=str,
).map(tuple)


@st.composite
def matrices(draw) -> ScenarioMatrix:
    names = draw(
        st.lists(
            st.text(alphabet="abcdef", min_size=1, max_size=5),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    axes = tuple(Axis(name, draw(_axis_values)) for name in names)
    return ScenarioMatrix(name="prop", kind="sim", axes=axes)


@st.composite
def matrices_with_filters(draw):
    matrix = draw(matrices())
    include = {}
    exclude = {}
    for axis in matrix.axes:
        choices = [str(value) for value in axis.values]
        if draw(st.booleans()):
            include[axis.name] = draw(
                st.sets(st.sampled_from(choices), min_size=1)
            )
        if draw(st.booleans()):
            exclude[axis.name] = draw(st.sets(st.sampled_from(choices)))
    return matrix, include, exclude


@settings(max_examples=60)
@given(matrices())
def test_cell_count_is_product_of_axis_lengths(matrix):
    cells = matrix.cells()
    expected = math.prod(len(axis.values) for axis in matrix.axes)
    assert len(cells) == expected == matrix.cell_count()


@settings(max_examples=60)
@given(matrices())
def test_full_product_has_distinct_content_addresses(matrix):
    keys = [cell_key(cell) for cell in matrix.cells()]
    assert len(set(keys)) == len(keys)


@settings(max_examples=60)
@given(matrices_with_filters())
def test_filters_select_a_subset_in_matrix_order(matrix_and_filters):
    matrix, include, exclude = matrix_and_filters
    full = matrix.cells()
    filtered = matrix.cells(include=include, exclude=exclude)

    def selected(cell):
        if any(str(cell[a]) not in vals for a, vals in include.items()):
            return False
        return not any(str(cell[a]) in vals for a, vals in exclude.items())

    # Exactly the predicate-matching slice of the full product, in order:
    # no duplicates, no out-of-space cells, no reordering.
    assert filtered == [cell for cell in full if selected(cell)]
    filtered_keys = [cell_key(cell) for cell in filtered]
    assert len(set(filtered_keys)) == len(filtered_keys)
    assert set(filtered_keys) <= {cell_key(cell) for cell in full}


@settings(max_examples=60)
@given(matrices(), st.randoms(use_true_random=False))
def test_cell_key_ignores_dict_insertion_order(matrix, rnd):
    for cell in matrix.cells()[:4]:
        items = list(cell.items())
        rnd.shuffle(items)
        assert cell_key(dict(items)) == cell_key(cell)
        assert cell_key(dict(reversed(list(cell.items())))) == cell_key(cell)


def test_cell_key_is_pinned_across_releases():
    # Resume-by-skip depends on old record files staying addressable: the
    # digest of a given parameter dict must never change between versions.
    params = {"engine": "MLP-Offload", "config": "40B@1", "testbed": "testbed-2"}
    assert cell_key(params) == cell_key(dict(reversed(list(params.items()))))
    assert cell_key(params) == "54564caf0d9b02dfac8261deabf6c3bd"
