"""Unit tests for the checkpoint manifest model and the manifest store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.manifest import (
    BlobRef,
    BlobSegment,
    CheckpointError,
    CheckpointManifest,
    ManifestStore,
    cas_key,
    payload_digest,
)


def seg(tier="nvme", key="cas00000001-12", start=0, count=3, nbytes=12, digest=1):
    return BlobSegment(tier=tier, key=key, start=start, count=count, nbytes=nbytes, digest=digest)


def ref(count=3, source="staged", segments=None):
    return BlobRef(
        dtype="float32",
        count=count,
        source=source,
        segments=tuple(segments if segments is not None else [seg(count=count)]),
    )


def manifest(version=1, worker="rank0"):
    return CheckpointManifest(
        version=version,
        worker=worker,
        iteration=7,
        layout={"total_params": 6, "num_ranks": 1, "subgroup_size": 3, "rank": 0, "num_subgroups": 2},
        steps={0: 7, 1: 7},
        placement={0: "nvme", 1: "pfs"},
        subgroups={
            0: {"params": ref(), "exp_avg": ref(), "exp_avg_sq": ref()},
            1: {
                "params": ref(
                    count=3,
                    source="linked",
                    segments=[seg(count=2, nbytes=8), seg(tier="pfs", start=2, count=1, nbytes=4)],
                ),
                "exp_avg": ref(),
                "exp_avg_sq": ref(),
            },
        },
        fp16_params=BlobRef(dtype="float16", count=6, source="staged", segments=(seg(count=6),)),
        user_data={"trainer_step": 14},
    )


def test_cas_key_and_payload_digest_are_stable():
    array = np.arange(5, dtype=np.float32)
    digest = payload_digest(array)
    assert digest == payload_digest(array.copy())
    assert cas_key(digest, array.nbytes) == f"cas{digest:016x}-20"
    assert cas_key(digest, array.nbytes) != cas_key(digest, 24)


def test_manifest_json_round_trip():
    original = manifest()
    restored = CheckpointManifest.from_json(original.to_json())
    assert restored == original
    # int keys survive the str round-trip
    assert 0 in restored.subgroups and 1 in restored.steps
    assert restored.user_data["trainer_step"] == 14


def test_blob_keys_cover_every_segment():
    keys = manifest().blob_keys()
    assert ("nvme", "cas00000001-12") in keys
    assert ("pfs", "cas00000001-12") in keys


@pytest.mark.parametrize(
    "mutate",
    [
        lambda text: text.replace('"format": 1', '"format": 99'),
        lambda text: text[: len(text) // 2],
        lambda text: text.replace('"segments"', '"segmentz"'),
        lambda text: "[]",
    ],
)
def test_malformed_manifests_raise_checkpoint_error(mutate):
    with pytest.raises(CheckpointError):
        CheckpointManifest.from_json(mutate(manifest().to_json()))


def test_blob_ref_validates_coverage_and_source():
    with pytest.raises(CheckpointError):
        BlobRef(dtype="float32", count=5, source="staged", segments=(seg(count=3),))
    with pytest.raises(CheckpointError):
        BlobRef(dtype="float32", count=3, source="teleported", segments=(seg(count=3),))


def test_manifest_store_commit_load_latest(tmp_path):
    store = ManifestStore(tmp_path, "rank0")
    assert store.committed_versions() == []
    assert store.latest() is None
    store.commit(manifest(version=1))
    store.commit(manifest(version=2))
    assert store.committed_versions() == [1, 2]
    assert store.latest().version == 2
    assert store.load(1).version == 1
    with pytest.raises(CheckpointError):
        store.load(3)


def test_manifest_store_ignores_tmp_and_foreign_workers(tmp_path):
    store = ManifestStore(tmp_path, "rank0")
    store.commit(manifest(version=1))
    (tmp_path / "ckpt-rank0-000002.json.tmp").write_text('{"version": 2')
    ManifestStore(tmp_path, "rank1").commit(manifest(version=5, worker="rank1"))
    assert store.committed_versions() == [1]
    # GC reference set spans every worker's manifests.
    assert store.all_referenced_blobs() == manifest().blob_keys()


def test_manifest_store_rejects_lying_files(tmp_path):
    store = ManifestStore(tmp_path, "rank0")
    path = store.path_for(3)
    path.write_text(manifest(version=4).to_json())
    with pytest.raises(CheckpointError, match="claims"):
        store.load(3)
