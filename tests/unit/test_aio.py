"""Unit tests for the asynchronous I/O engine, locks, throttling and microbenchmarks."""

import threading
import time

import numpy as np
import pytest

from repro.aio.engine import AsyncIOEngine, IOKind, IORequest
from repro.aio.locks import TierLockManager
from repro.aio.microbench import measure_store_bandwidth, probe_tiers
from repro.aio.throttle import BandwidthThrottle
from repro.tiers.file_store import FileStore


class TestBandwidthThrottle:
    def test_transfer_time_model(self):
        throttle = BandwidthThrottle(100.0, latency=0.5)
        assert throttle.transfer_time(100) == pytest.approx(1.5)
        assert throttle.transfer_time(0) == pytest.approx(0.5)

    def test_simulated_consume_does_not_sleep(self):
        throttle = BandwidthThrottle(10.0, simulate=True)
        start = time.perf_counter()
        charged = throttle.consume(100)  # would take 10 s for real
        assert time.perf_counter() - start < 1.0
        assert charged == pytest.approx(10.0)
        assert throttle.consumed_bytes == 100
        assert throttle.charged_seconds == pytest.approx(10.0)

    def test_real_consume_sleeps(self):
        throttle = BandwidthThrottle(1e6, simulate=False)
        start = time.perf_counter()
        throttle.consume(50_000)  # 50 ms
        assert time.perf_counter() - start >= 0.04

    def test_concurrent_consumers_share_bandwidth(self):
        """Parallel transfers serialize on the device timeline (no N-fold bandwidth)."""
        import threading

        throttle = BandwidthThrottle(1e6, simulate=False)
        start = time.perf_counter()
        threads = [
            threading.Thread(target=throttle.consume, args=(25_000,)) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 4 x 25 ms must take ~100 ms in aggregate, not ~25 ms.
        assert time.perf_counter() - start >= 0.08

    def test_duplex_reads_and_writes_overlap(self):
        """Duplex mode serializes per direction: a read and a write run concurrently."""
        import threading

        throttle = BandwidthThrottle(1e6, simulate=False, duplex=True)
        start = time.perf_counter()
        threads = [
            threading.Thread(target=throttle.consume, args=(150_000,), kwargs={"direction": d})
            for d in ("read", "write")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        # Two 150 ms transfers on independent channels: ~150 ms, well under
        # the ~300 ms a shared timeline would take (generous slack for CI).
        assert elapsed < 0.25

    def test_reset_and_validation(self):
        throttle = BandwidthThrottle(10.0)
        throttle.consume(10)
        throttle.reset()
        assert throttle.consumed_bytes == 0
        with pytest.raises(ValueError):
            BandwidthThrottle(0)
        with pytest.raises(ValueError):
            BandwidthThrottle(1, latency=-1)
        with pytest.raises(ValueError):
            throttle.consume(-1)


class TestTierLockManager:
    def test_exclusive_across_workers(self):
        manager = TierLockManager()
        lease = manager.acquire("nvme", "rank0")
        assert manager.owner_of("nvme") == "rank0"
        assert manager.acquire("nvme", "rank1", blocking=False) is None
        lease.release()
        assert manager.owner_of("nvme") is None
        assert manager.acquire("nvme", "rank1", blocking=False) is not None

    def test_reentrant_for_same_worker(self):
        manager = TierLockManager()
        first = manager.acquire("nvme", "rank0")
        second = manager.acquire("nvme", "rank0")
        assert first is second
        assert first.shares == 2
        first.release()
        assert manager.owner_of("nvme") == "rank0"  # one share still held
        first.release()
        assert manager.owner_of("nvme") is None

    def test_independent_tiers(self):
        manager = TierLockManager()
        manager.acquire("nvme", "rank0")
        assert manager.acquire("pfs", "rank1", blocking=False) is not None
        assert manager.held_tiers() == {"nvme": "rank0", "pfs": "rank1"}

    def test_blocking_acquire_waits_for_release(self):
        manager = TierLockManager()
        lease = manager.acquire("nvme", "rank0")
        got = []

        def contender():
            acquired = manager.acquire("nvme", "rank1", timeout=2.0)
            got.append(acquired)
            if acquired:
                acquired.release()

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.05)
        lease.release()
        thread.join(timeout=2.0)
        assert got and got[0] is not None
        assert manager.stats("nvme").contended_acquisitions >= 1

    def test_release_without_ownership_raises(self):
        manager = TierLockManager()
        with pytest.raises(RuntimeError):
            manager.release("nvme", "rank0")

    def test_try_acquire_any_prefers_free_tier(self):
        manager = TierLockManager()
        manager.acquire("nvme", "rank0")
        lease = manager.try_acquire_any(["nvme", "pfs"], "rank1")
        assert lease is not None and lease.tier == "pfs"
        assert manager.try_acquire_any(["nvme"], "rank2") is None

    def test_context_manager_releases(self):
        manager = TierLockManager()
        with manager.acquire("pfs", "rank0"):
            assert manager.owner_of("pfs") == "rank0"
        assert manager.owner_of("pfs") is None


class TestAsyncIOEngine:
    @pytest.fixture
    def stores(self, tier_dirs):
        return {name: FileStore(path, name=name) for name, path in tier_dirs.items()}

    def test_async_write_then_read(self, stores, rng):
        with AsyncIOEngine(stores, num_threads=2) as engine:
            payload = rng.standard_normal(512).astype(np.float32)
            write = engine.write("nvme", "sg0.params", payload).result()
            assert write.ok and write.nbytes == payload.nbytes
            read = engine.read("nvme", "sg0.params").result()
            assert read.ok
            np.testing.assert_array_equal(read.array, payload)

    def test_errors_are_reported_in_results_not_raised(self, stores):
        with AsyncIOEngine(stores) as engine:
            result = engine.read("pfs", "does-not-exist").result()
            assert not result.ok
            assert result.error is not None

    def test_unknown_tier_and_bad_requests_raise_at_submission(self, stores):
        with AsyncIOEngine(stores) as engine:
            with pytest.raises(KeyError):
                engine.read("tape", "x")
            with pytest.raises(ValueError):
                engine.submit(IORequest(kind=IOKind.WRITE, tier="nvme", key="x"))

    def test_per_tier_stats(self, stores, rng):
        with AsyncIOEngine(stores) as engine:
            payload = rng.standard_normal(128).astype(np.float32)
            engine.write("nvme", "a", payload).result()
            engine.write("pfs", "b", payload).result()
            engine.read("nvme", "a").result()
            nvme = engine.tier_stats("nvme")
            pfs = engine.tier_stats("pfs")
            assert nvme.write_ops == 1 and nvme.read_ops == 1
            assert pfs.write_ops == 1 and pfs.read_ops == 0
            assert nvme.bytes_read == nvme.bytes_written

    def test_many_concurrent_requests_complete(self, stores, rng):
        with AsyncIOEngine(stores, num_threads=4, queue_depth=8) as engine:
            payload = rng.standard_normal(64).astype(np.float32)
            futures = [engine.write("nvme", f"k{i}", payload) for i in range(32)]
            results = [f.result() for f in futures]
            assert all(r.ok for r in results)
            engine.drain(timeout=5.0)
            assert engine.inflight == 0

    def test_lock_manager_serializes_tier_access(self, stores, rng):
        manager = TierLockManager()
        with AsyncIOEngine(stores, num_threads=4, lock_manager=manager) as engine:
            payload = rng.standard_normal(64).astype(np.float32)
            futures = [
                engine.write("nvme", f"k{i}", payload, worker=f"rank{i % 2}") for i in range(8)
            ]
            assert all(f.result().ok for f in futures)
            assert manager.stats("nvme").acquisitions == 8

    def test_write_multi_fans_out_and_aggregates(self, stores, rng):
        with AsyncIOEngine(stores, num_threads=4) as engine:
            payload = rng.standard_normal(256).astype(np.float32)
            parts = [
                ("nvme", "k.stripe0", payload[:100]),
                ("pfs", "k.stripe1", payload[100:]),
            ]
            result = engine.write_multi(parts, key="k").result()
            assert result.ok
            assert result.nbytes == payload.nbytes
            assert engine.tier_stats("nvme").write_ops == 1
            assert engine.tier_stats("pfs").write_ops == 1
            np.testing.assert_array_equal(stores["nvme"].read("k.stripe0"), payload[:100])
            np.testing.assert_array_equal(stores["pfs"].read("k.stripe1"), payload[100:])

    def test_write_multi_reports_first_part_error(self, stores, rng, tier_dirs):
        capped = FileStore(tier_dirs["nvme"] / "capped", name="capped", capacity=8)
        with AsyncIOEngine({**stores, "capped": capped}, num_threads=2) as engine:
            payload = rng.standard_normal(64).astype(np.float32)
            result = engine.write_multi(
                [("nvme", "ok", payload), ("capped", "too-big", payload)], key="k"
            ).result()
            assert not result.ok
            assert "capacity" in str(result.error)
            with pytest.raises(ValueError):
                engine.write_multi([])

    def test_submit_after_close_raises(self, stores):
        engine = AsyncIOEngine(stores)
        engine.close()
        with pytest.raises(RuntimeError):
            engine.read("nvme", "x")

    def test_constructor_validation(self, stores):
        with pytest.raises(ValueError):
            AsyncIOEngine({}, num_threads=1)
        with pytest.raises(ValueError):
            AsyncIOEngine(stores, num_threads=0)
        with pytest.raises(ValueError):
            AsyncIOEngine(stores, queue_depth=0)


class TestMicrobench:
    def test_measure_store_bandwidth_respects_throttle(self, tmp_path):
        store = FileStore(tmp_path / "t", throttle=BandwidthThrottle(10e6, simulate=True))
        result = measure_store_bandwidth(store, block_bytes=1 << 20, iterations=2)
        # Throttle dominates the real disk: measured bandwidth ~ configured 10 MB/s.
        assert result.read_bw == pytest.approx(10e6, rel=0.3)
        assert result.write_bw == pytest.approx(10e6, rel=0.3)
        assert result.effective_bw <= result.read_bw
        assert list(store.keys()) == []  # cleaned up

    def test_probe_tiers_returns_all_names(self, tier_dirs):
        stores = {
            "nvme": FileStore(tier_dirs["nvme"], throttle=BandwidthThrottle(20e6)),
            "pfs": FileStore(tier_dirs["pfs"], throttle=BandwidthThrottle(10e6)),
        }
        bandwidths = probe_tiers(stores, block_bytes=1 << 18, iterations=1)
        assert set(bandwidths) == {"nvme", "pfs"}
        assert bandwidths["nvme"] > bandwidths["pfs"]

    def test_parameter_validation(self, tmp_path):
        store = FileStore(tmp_path / "t")
        with pytest.raises(ValueError):
            measure_store_bandwidth(store, block_bytes=0)
        with pytest.raises(ValueError):
            measure_store_bandwidth(store, iterations=0)
