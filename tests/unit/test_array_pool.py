"""Unit tests for the size-classed scratch-array pool behind zero-copy I/O."""

import threading

import numpy as np
import pytest

from repro.tiers.array_pool import ArrayPool, _size_class


class TestSizeClasses:
    def test_rounds_up_to_alignment_and_powers_of_two(self):
        assert _size_class(1) == 4096
        assert _size_class(4096) == 4096
        assert _size_class(4097) == 8192
        assert _size_class(100_000) == 131072

    def test_nearby_sizes_share_storage(self):
        pool = ArrayPool()
        a = pool.acquire(1000, np.float32)
        pool.release(a)
        # 1001 floats still fit the same 4 KiB class: the storage is reused.
        _b = pool.acquire(1001, np.float32)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1


class TestAcquireRelease:
    def test_acquire_returns_writable_flat_array(self):
        pool = ArrayPool()
        array = pool.acquire(257, np.float32)
        assert array.shape == (257,)
        assert array.dtype == np.float32
        assert array.flags.c_contiguous and array.flags.writeable
        array[:] = 1.5  # must not raise

    def test_release_and_reuse(self):
        pool = ArrayPool()
        first = pool.acquire(100, np.float32)
        assert pool.outstanding_count == 1
        assert pool.release(first)
        assert pool.outstanding_count == 0 and pool.free_count == 1
        second = pool.acquire(100, np.float32)
        assert pool.stats.hits == 1
        assert pool.free_count == 0
        assert second.size == 100

    def test_release_foreign_array_is_noop(self):
        pool = ArrayPool()
        assert not pool.release(np.zeros(4, dtype=np.float32))
        assert pool.stats.foreign_releases == 1

    def test_double_release_is_noop(self):
        pool = ArrayPool()
        array = pool.acquire(10)
        assert pool.release(array)
        assert not pool.release(array)
        assert pool.free_count == 1

    def test_owns_tracks_live_handouts(self):
        pool = ArrayPool()
        array = pool.acquire(10)
        assert pool.owns(array)
        pool.release(array)
        assert not pool.owns(array)

    def test_release_all_counts_pooled_only(self):
        pool = ArrayPool()
        mine = pool.acquire(10)
        foreign = np.zeros(10, dtype=np.float32)
        assert pool.release_all([mine, foreign]) == 1

    def test_dtypes_respected(self):
        pool = ArrayPool()
        for dtype in ("float16", "float32", "float64", "int64", "uint8"):
            array = pool.acquire(33, dtype)
            assert array.dtype == np.dtype(dtype)
            pool.release(array)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ArrayPool().acquire(-1)

    def test_free_list_bounded(self):
        pool = ArrayPool(max_free_per_class=2)
        arrays = [pool.acquire(10) for _ in range(4)]
        for a in arrays:
            pool.release(a)
        assert pool.free_count == 2


class TestStats:
    def test_hit_rate(self):
        pool = ArrayPool()
        a = pool.acquire(10)
        pool.release(a)
        pool.acquire(10)
        assert pool.stats.hits == 1 and pool.stats.misses == 1
        assert pool.stats.hit_rate == pytest.approx(0.5)
        assert pool.stats.allocations == 1

    def test_steady_state_allocates_nothing(self):
        pool = ArrayPool()
        for _ in range(3):
            leased = [pool.acquire(100) for _ in range(4)]
            for a in leased:
                pool.release(a)
        assert pool.stats.misses == 4  # only the first round allocated
        assert pool.stats.hits == 8


class TestThreadSafety:
    def test_concurrent_acquire_release(self):
        pool = ArrayPool()
        errors = []

        def worker():
            try:
                for _ in range(200):
                    a = pool.acquire(64)
                    a[0] = 1.0
                    pool.release(a)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert pool.outstanding_count == 0
