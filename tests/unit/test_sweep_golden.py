"""Golden-file regression test for the sweep result tables.

A fixed-seed mini sweep (two weak-scaling configs, two repeats) must produce
``tests/data/sweep_golden.json`` byte-for-byte: the sim executor is pure
float arithmetic and the payload builder sorts its keys, so any drift —
metric renames, row reordering, statistics changes, serialization changes —
shows up as a diff against the committed file.  Refresh deliberately with::

    pytest tests/unit/test_sweep_golden.py --update-golden

(the test then *skips*, so a refresh is always visible in the run output and
the new golden still has to pass on the next plain run).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sweep.matrix import matrix_by_name
from repro.sweep.results import build_payload
from repro.sweep.runner import SweepRunner

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "sweep_golden.json"


def golden_payload(tmp_path) -> bytes:
    matrix = matrix_by_name("weak_scaling")
    runner = SweepRunner(
        matrix,
        repeats=2,
        sweep_dir=tmp_path / "cells",
        include={"config": ["40B@1", "70B@2"]},
    )
    report = runner.run()
    payload = build_payload(matrix, report.records, repeats=2, include_timing=False)
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


def test_mini_sweep_matches_committed_golden(tmp_path, request):
    produced = golden_payload(tmp_path)
    if request.config.getoption("--update-golden"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_bytes(produced)
        pytest.skip(f"rewrote {GOLDEN_PATH.name}; rerun without --update-golden")
    assert GOLDEN_PATH.is_file(), (
        f"missing {GOLDEN_PATH}; generate it with pytest --update-golden"
    )
    assert produced == GOLDEN_PATH.read_bytes(), (
        "sweep payload drifted from tests/data/sweep_golden.json; if the "
        "change is intentional, refresh with pytest --update-golden"
    )


def test_golden_file_is_gate_compatible():
    payload = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert payload["experiment"] == "sweep-weak_scaling"
    assert payload["median_speedup"] > 1.0
    assert "runner_elapsed_s" not in payload
