"""Unit tests for repro.util (byte sizes, timers, logging)."""

import time

import pytest

from repro.util import GiB, KiB, MiB, PhaseTimer, Stopwatch, format_bytes, parse_bytes
from repro.util.bytesize import GB, format_bandwidth
from repro.util.logging import get_logger, kv


class TestParseBytes:
    def test_plain_numbers_pass_through(self):
        assert parse_bytes(1024) == 1024
        assert parse_bytes(1.5) == 1

    def test_binary_units(self):
        assert parse_bytes("1KiB") == KiB
        assert parse_bytes("2 MiB") == 2 * MiB
        assert parse_bytes("3GiB") == 3 * GiB

    def test_decimal_units(self):
        assert parse_bytes("1GB") == 10**9
        assert parse_bytes("1.6 TB") == int(1.6e12)

    def test_unitless_string_is_bytes(self):
        assert parse_bytes("512") == 512

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            parse_bytes("abc")
        with pytest.raises(ValueError):
            parse_bytes("12 parsecs")
        with pytest.raises(ValueError):
            parse_bytes(-5)


class TestFormatBytes:
    def test_small_values_are_bytes(self):
        assert format_bytes(0) == "0B"
        assert format_bytes(512) == "512B"

    def test_binary_scaling(self):
        assert format_bytes(1536) == "1.5KiB"
        assert format_bytes(3 * GiB, precision=0) == "3GiB"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_bandwidth_formatting(self):
        assert format_bandwidth(5.3 * GB) == "5.30GB/s"
        with pytest.raises(ValueError):
            format_bandwidth(-1.0)


class TestStopwatch:
    def test_accumulates_across_runs(self):
        sw = Stopwatch()
        with sw.measure():
            time.sleep(0.01)
        first = sw.elapsed
        with sw.measure():
            time.sleep(0.01)
        assert sw.elapsed > first >= 0.01

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()
        with pytest.raises(RuntimeError):
            sw.stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw.measure():
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running


class TestPhaseTimer:
    def test_phase_accumulation_and_counts(self):
        timer = PhaseTimer()
        with timer.phase("update"):
            time.sleep(0.005)
        with timer.phase("update"):
            time.sleep(0.005)
        assert timer.count("update") == 2
        assert timer.total("update") >= 0.01
        assert timer.mean("update") == pytest.approx(timer.total("update") / 2)

    def test_manual_add_and_reset(self):
        timer = PhaseTimer()
        timer.add("forward", 1.5)
        timer.add("forward", 0.5)
        assert timer.total("forward") == pytest.approx(2.0)
        assert timer.totals() == {"forward": pytest.approx(2.0)}
        timer.reset()
        assert timer.total("forward") == 0.0

    def test_negative_add_rejected(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            timer.add("x", -1.0)

    def test_unknown_phase_is_zero(self):
        timer = PhaseTimer()
        assert timer.total("nope") == 0.0
        assert timer.mean("nope") == 0.0


class TestLogging:
    def test_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("core.engine").name == "repro.core.engine"
        assert get_logger("repro.sim").name == "repro.sim"

    def test_kv_is_sorted_and_stable(self):
        assert kv(b=2, a=1) == "a=1 b=2"
