"""Shared conformance suite for every :class:`~repro.tiers.spec.BlobStore`.

Each store implementation — plain, mmap-served, striped, fault-injecting
proxy, and the checkpoint blob store factory — must present the same formal
surface with the same semantics.  The suite is parametrized over factories
so a new store implementation buys its contract coverage by adding one
line.  ``FaultInjectingStore`` deliberately does *not* subclass the
protocol (its ``__getattr__`` delegation would be shadowed by inherited
placeholder bodies); it must still conform structurally, which is exactly
what ``isinstance`` against a ``runtime_checkable`` protocol verifies.
"""

import hashlib

import numpy as np
import pytest

from repro.ckpt.store import build_blob_stores
from repro.core.config import MLPOffloadConfig
from repro.tiers.faultstore import FaultInjectingStore, FaultPlan
from repro.tiers.file_store import FileStore, StoreError
from repro.tiers.mmap_store import MmapFileStore
from repro.tiers.spec import BlobStore
from repro.tiers.striped_store import StripedStore


def _file_store(root):
    return FileStore(root / "file", name="file")


def _mmap_store(root):
    return MmapFileStore(root / "mmap", name="mmap")


def _striped_store(root):
    return StripedStore(
        [
            FileStore(root / "nvme", name="nvme"),
            FileStore(root / "pfs", name="pfs"),
        ],
        threshold_bytes=1 << 16,  # conformance keys stay unstriped
    )


def _fault_store(root):
    return FaultInjectingStore(FileStore(root / "inner", name="inner"), FaultPlan())


def _ckpt_store(root):
    config = MLPOffloadConfig.single_tier(root / "tier", checkpoint_dir=str(root / "manifests"))
    return build_blob_stores(config)["nvme"]


FACTORIES = {
    "file": _file_store,
    "mmap": _mmap_store,
    "striped": _striped_store,
    "fault-proxy": _fault_store,
    "ckpt-cas": _ckpt_store,
}


@pytest.fixture(params=sorted(FACTORIES), ids=sorted(FACTORIES))
def store(request, tmp_path):
    return FACTORIES[request.param](tmp_path)


@pytest.fixture
def payload(rng):
    return rng.standard_normal(777).astype(np.float32)


class TestBlobStoreConformance:
    def test_satisfies_protocol(self, store):
        assert isinstance(store, BlobStore)
        assert isinstance(store.name, str) and store.name

    def test_every_member_is_present(self, store):
        for member in (
            "save_from",
            "load_into",
            "load_into_chunks",
            "adopt",
            "meta_of",
            "path_of",
            "delete",
            "contains",
            "keys",
            "used_bytes",
        ):
            assert hasattr(store, member), member

    def test_save_load_roundtrip(self, store, payload):
        written = store.save_from("k", payload)
        assert written >= payload.nbytes
        out = np.empty_like(payload)
        result = store.load_into("k", out)
        np.testing.assert_array_equal(result, payload)

    def test_chunked_read_streams_payload_in_order(self, store, payload):
        store.save_from("k", payload)
        hasher = hashlib.blake2b(digest_size=8)
        out = np.empty_like(payload)
        store.load_into_chunks("k", out, chunk_bytes=512, hasher=hasher)
        np.testing.assert_array_equal(out, payload)
        assert hasher.digest() == hashlib.blake2b(payload.tobytes(), digest_size=8).digest()

    def test_meta_of(self, store, payload):
        store.save_from("k", payload)
        dtype, shape = store.meta_of("k")
        assert dtype == payload.dtype
        assert tuple(shape) == payload.shape

    def test_path_of_points_at_the_blob(self, store, payload):
        store.save_from("k", payload)
        assert store.path_of("k").exists()

    def test_contains_keys_delete(self, store, payload):
        assert not store.contains("k")
        store.save_from("k", payload)
        assert store.contains("k")
        assert "k" in set(store.keys())
        store.delete("k")
        assert not store.contains("k")
        assert "k" not in set(store.keys())

    def test_used_bytes_tracks_payloads(self, store, payload):
        before = store.used_bytes
        store.save_from("k", payload)
        assert store.used_bytes >= before + payload.nbytes
        store.delete("k")
        assert store.used_bytes <= before + payload.nbytes

    def test_adopt_links_an_existing_blob(self, store, payload, tmp_path):
        source = FileStore(tmp_path / "adopt-src", name="src")
        source.save_from("origin", payload)
        store.adopt("k", source.path_of("origin"))
        out = np.empty_like(payload)
        store.load_into("k", out)
        np.testing.assert_array_equal(out, payload)

    def test_missing_key_raises_store_error(self, store):
        with pytest.raises(StoreError):
            store.load_into("absent", np.empty(4, dtype=np.float32))


class TestStripedSpecifics:
    """Protocol methods whose striped behaviour the shared suite cannot see."""

    @pytest.fixture
    def striped(self, tmp_path):
        return StripedStore(
            [
                FileStore(tmp_path / "nvme", name="nvme"),
                FileStore(tmp_path / "pfs", name="pfs"),
            ],
            threshold_bytes=256,
        )

    @pytest.fixture
    def big(self, rng):
        return rng.standard_normal(5_000).astype(np.float32)

    def test_chunked_read_of_striped_key_matches_digest(self, striped, big):
        striped.save_from("k", big)
        assert striped.is_striped("k")
        hasher = hashlib.blake2b(digest_size=8)
        out = np.empty_like(big)
        striped.load_into_chunks("k", out, chunk_bytes=1024, hasher=hasher)
        np.testing.assert_array_equal(out, big)
        # Extent order == payload order: the digest must be representation-
        # independent, i.e. identical to an unstriped read of the same bytes.
        assert hasher.digest() == hashlib.blake2b(big.tobytes(), digest_size=8).digest()

    def test_path_of_striped_key_refuses(self, striped, big):
        striped.save_from("k", big)
        with pytest.raises(StoreError, match="no single path"):
            striped.path_of("k")

    def test_adopt_replaces_striped_key_with_whole_blob(self, striped, big, tmp_path):
        striped.save_from("k", big)
        source = FileStore(tmp_path / "src", name="src")
        source.save_from("origin", big * 2.0)
        striped.adopt("k", source.path_of("origin"))
        assert not striped.is_striped("k")
        out = np.empty_like(big)
        striped.load_into("k", out)
        np.testing.assert_array_equal(out, big * 2.0)
