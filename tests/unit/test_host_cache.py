"""Unit tests for the host subgroup cache."""

import numpy as np
import pytest

from repro.tiers.host_cache import HostSubgroupCache


def _arrays(num_floats: int) -> dict:
    return {"params": np.zeros(num_floats, dtype=np.float32)}


class TestBasicOperation:
    def test_put_get_hit_and_miss_counters(self):
        cache = HostSubgroupCache(capacity_bytes=10_000)
        assert cache.get(0) is None
        assert cache.put(0, _arrays(10))
        assert cache.get(0) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert 0 in cache and 1 not in cache

    def test_peek_does_not_touch_counters(self):
        cache = HostSubgroupCache(capacity_bytes=10_000)
        cache.put(3, _arrays(10))
        assert cache.peek(3) is not None
        assert cache.peek(4) is None
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_capacity_is_never_exceeded(self):
        cache = HostSubgroupCache(capacity_bytes=1000)
        for i in range(10):
            cache.put(i, _arrays(50))  # 200 bytes each
        assert cache.used_bytes <= 1000
        assert len(cache) <= 5

    def test_oldest_entries_evicted_first(self):
        cache = HostSubgroupCache(capacity_bytes=600)
        cache.put(0, _arrays(50))
        cache.put(1, _arrays(50))
        cache.put(2, _arrays(50))
        cache.put(3, _arrays(50))  # evicts subgroup 0
        assert 0 not in cache
        assert cache.cached_ids() == [1, 2, 3]
        assert cache.stats.evictions == 1

    def test_oversized_entry_rejected(self):
        cache = HostSubgroupCache(capacity_bytes=100)
        assert not cache.put(0, _arrays(1000))
        assert cache.stats.rejected == 1
        assert len(cache) == 0

    def test_zero_capacity_caches_nothing(self):
        cache = HostSubgroupCache(capacity_bytes=0)
        assert not cache.put(0, _arrays(1))
        assert cache.get(0) is None


class TestDirtyTracking:
    def test_dirty_eviction_invokes_writeback(self):
        written = {}
        cache = HostSubgroupCache(
            capacity_bytes=500, writeback=lambda sg, arrays: written.setdefault(sg, arrays)
        )
        cache.put(0, _arrays(50), dirty=True)
        cache.put(1, _arrays(50), dirty=True)
        cache.put(2, _arrays(50), dirty=True)  # evicts 0
        assert 0 in written
        assert cache.stats.dirty_evictions == 1

    def test_dirty_eviction_without_writeback_raises(self):
        cache = HostSubgroupCache(capacity_bytes=250)
        cache.put(0, _arrays(50), dirty=True)
        with pytest.raises(RuntimeError):
            cache.put(1, _arrays(50), dirty=True)

    def test_clean_eviction_skips_writeback(self):
        calls = []
        cache = HostSubgroupCache(capacity_bytes=250, writeback=lambda *a: calls.append(a))
        cache.put(0, _arrays(50), dirty=False)
        cache.put(1, _arrays(50), dirty=False)
        assert calls == []

    def test_flush_dirty_keeps_entries_resident(self):
        written = []
        cache = HostSubgroupCache(capacity_bytes=10_000, writeback=lambda sg, a: written.append(sg))
        cache.put(0, _arrays(10), dirty=True)
        cache.put(1, _arrays(10), dirty=False)
        assert cache.flush_dirty() == 1
        assert written == [0]
        assert 0 in cache and 1 in cache
        assert cache.flush_dirty() == 0  # now clean

    def test_mark_dirty_and_clean(self):
        cache = HostSubgroupCache(capacity_bytes=10_000, writeback=lambda *a: None)
        cache.put(0, _arrays(10))
        cache.mark_dirty(0)
        assert cache.entry(0).dirty
        cache.mark_clean(0)
        assert not cache.entry(0).dirty
        with pytest.raises(KeyError):
            cache.mark_dirty(99)

    def test_refresh_preserves_dirty_flag(self):
        cache = HostSubgroupCache(capacity_bytes=10_000, writeback=lambda *a: None)
        cache.put(0, _arrays(10), dirty=True)
        cache.put(0, _arrays(10), dirty=False)  # refresh must not lose the pending write
        assert cache.entry(0).dirty

    def test_explicit_evict_and_clear(self):
        written = []
        cache = HostSubgroupCache(capacity_bytes=10_000, writeback=lambda sg, a: written.append(sg))
        cache.put(0, _arrays(10), dirty=True)
        cache.put(1, _arrays(10))
        assert cache.evict(0)
        assert not cache.evict(0)
        assert written == [0]
        cache.clear()
        assert len(cache) == 0
