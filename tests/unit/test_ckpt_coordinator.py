"""Unit tests for the two-phase global checkpoint commit protocol.

Exercises the :class:`~repro.ckpt.coordinator.CheckpointCoordinator` against
hand-built prepared manifests: promotion only once every registered rank
landed, the any-rank lock-file election (single winner, dead-owner
stale-breaking), torn-commit discard, and retention GC keyed on *global*
versions — a blob survives while any rank of any surviving manifest
references it, and the sweep stands down while a drain is in flight.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.ckpt import (
    BlobRef,
    BlobSegment,
    CheckpointCoordinator,
    CheckpointError,
    GlobalCommitRecord,
    ManifestStore,
    scan_manifest_dir,
)
from repro.ckpt.coordinator import LOCK_NAME
from repro.ckpt.manifest import CheckpointManifest
from repro.core.config import MLPOffloadConfig, TierConfig

WORKERS = ("rank0", "rank1")
#: A pid that cannot exist on Linux (beyond the default pid_max of 2**22).
DEAD_PID = 2**22 + 12345


@pytest.fixture
def env(tmp_path):
    (tmp_path / "nvme").mkdir()
    (tmp_path / "pfs").mkdir()
    config = MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(tmp_path / "nvme")),
            TierConfig("pfs", str(tmp_path / "pfs")),
        ),
        subgroup_size=100,
        checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_coordination=True,
        checkpoint_world_size=2,
        checkpoint_retention=2,
    )
    coordinator = CheckpointCoordinator(config, workers=WORKERS)
    return config, coordinator


def put_blob(coordinator, tier: str, payload: np.ndarray) -> tuple:
    """Store one content-addressed payload; return its manifest segment."""
    from repro.ckpt.manifest import cas_key, payload_digest

    digest = payload_digest(payload)
    key = cas_key(digest, payload.nbytes)
    coordinator.stores[tier].save_from(key, payload)
    return BlobSegment(
        tier=tier, key=key, start=0, count=int(payload.size),
        nbytes=int(payload.nbytes), digest=digest,
    )


def prepare(config, coordinator, worker: str, version: int, *, iteration=None, seed=0):
    """Publish one prepared manifest whose fp16 blob really exists."""
    payload = np.full(64, float(seed + version), dtype=np.float16)
    seg = put_blob(coordinator, "nvme", payload)
    manifest = CheckpointManifest(
        version=version,
        worker=worker,
        iteration=version if iteration is None else iteration,
        layout={"total_params": 64, "num_ranks": 2, "subgroup_size": 100,
                "rank": int(worker[-1]), "num_subgroups": 1},
        steps={0: version},
        placement={0: "nvme"},
        subgroups={},
        fp16_params=BlobRef(dtype="float16", count=64, source="staged", segments=(seg,)),
    )
    ManifestStore(config.checkpoint_dir, worker).commit(manifest, prepared=True)
    return seg


def test_promotion_waits_for_every_registered_rank(env):
    config, coord = env
    prepare(config, coord, "rank0", 1)
    assert coord.try_promote() is None, "promoted with a rank still missing"
    assert coord.global_versions() == []
    prepare(config, coord, "rank1", 1)
    assert coord.try_promote() == 1
    snapshot = scan_manifest_dir(coord.directory)
    assert sorted(snapshot.global_versions) == [1]
    assert snapshot.prepared == {}, "prepared manifests must be renamed at promotion"
    assert set(snapshot.committed) == {"rank0", "rank1"}
    record = coord.load_global(1)
    assert record == GlobalCommitRecord(
        version=1, iteration=1, workers=WORKERS, created_unix=record.created_unix
    )


def test_promotion_catches_up_across_versions(env):
    config, coord = env
    for version in (1, 2):
        for worker in WORKERS:
            prepare(config, coord, worker, version)
    assert coord.try_promote() == 2, "one election must promote every complete version"
    assert coord.global_versions() == [1, 2]


def test_promotion_skips_mismatched_iterations_without_wedging(env):
    """An inconsistent version is refused and *skipped*: it must neither
    become a global cut nor fail every later (healthy) checkpoint."""
    config, coord = env
    prepare(config, coord, "rank0", 1, iteration=1)
    prepare(config, coord, "rank1", 1, iteration=2)
    assert coord.try_promote() is None
    assert coord.global_versions() == []
    assert coord.promotion_errors and "inconsistent across ranks" in coord.promotion_errors[0]
    # The next consistent version still promotes past the poisoned one ...
    for worker in WORKERS:
        prepare(config, coord, worker, 2)
    assert coord.try_promote() == 2
    # ... and the poisoned version's manifests are swept as orphans.
    snapshot = scan_manifest_dir(coord.directory)
    assert sorted(snapshot.global_versions) == [2]
    assert all(1 not in snapshot.committed.get(w, {}) for w in WORKERS)
    assert all(1 not in snapshot.prepared.get(w, {}) for w in WORKERS)


def test_election_has_a_single_winner(env):
    config, coord = env
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    # Distinct coordinator instances model distinct ranks racing to promote.
    racers = [coord] + [
        CheckpointCoordinator(config, workers=WORKERS) for _ in range(3)
    ]
    results = [None] * len(racers)
    barrier = threading.Barrier(len(racers))

    def race(slot):
        barrier.wait()
        results[slot] = racers[slot].try_promote()

    threads = [threading.Thread(target=race, args=(i,)) for i in range(len(racers))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert coord.global_versions() == [1]
    assert [r for r in results if r is not None] == [1], results
    assert not (coord.directory / LOCK_NAME).exists(), "election lock leaked"


def test_stale_lock_of_dead_owner_is_broken(env):
    config, coord = env
    (coord.directory / LOCK_NAME).write_text(
        json.dumps({"pid": DEAD_PID, "created_unix": time.time()})
    )
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    assert coord.try_promote() == 1, "dead owner's lock must be broken"
    assert not (coord.directory / LOCK_NAME).exists()


def test_aged_lock_of_live_owner_is_not_stolen(env):
    """A live owner's lock is never broken by age: a slow GC under the lock
    must not admit a second concurrent promoter."""
    config, coord = env
    (coord.directory / LOCK_NAME).write_text(
        json.dumps({"pid": os.getpid(), "created_unix": time.time() - 3600.0})
    )
    other = CheckpointCoordinator(config, workers=WORKERS)
    for worker in WORKERS:
        prepare(config, other, worker, 1)
    assert other.try_promote() is None
    assert other.global_versions() == []
    (coord.directory / LOCK_NAME).unlink()
    assert other.try_promote() == 1


def test_unreadable_lock_ages_out(env):
    config, coord = env
    lock_path = coord.directory / LOCK_NAME
    lock_path.write_text("{torn")  # no pid to probe
    old = time.time() - 2 * config.checkpoint_lock_stale_seconds
    os.utime(lock_path, (old, old))
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    assert coord.try_promote() == 1


def test_promotion_retries_through_a_transient_election_loss(env):
    """A contended election must not strand a complete version: the retry
    window picks it up as soon as the holder releases."""
    config, coord = env
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    holder = CheckpointCoordinator(config, workers=WORKERS)
    assert holder.lock.acquire()

    def release_soon():
        time.sleep(3 * coord._PROMOTE_RETRY_SECONDS)
        holder.lock.release()

    thread = threading.Thread(target=release_soon)
    thread.start()
    try:
        assert coord.try_promote() == 1, "retry window missed the released lock"
    finally:
        thread.join()


def test_engines_without_explicit_coordinator_share_one_instance(env, tmp_path):
    """Default construction must converge on one coordinator per checkpoint
    directory — drain tracking only protects ranks sharing the instance."""
    from repro.core.engine import MLPOffloadEngine
    from repro.aio.locks import TierLockManager
    from repro.train.sharding import build_shard_layout

    config, _coord = env
    layout = build_shard_layout(8_000, num_ranks=2, subgroup_size=100)
    manager = TierLockManager()
    engines = [
        MLPOffloadEngine(config, layout, rank=rank, lock_manager=manager)
        for rank in range(2)
    ]
    try:
        assert engines[0].ckpt_coordinator is engines[1].ckpt_coordinator
    finally:
        for engine in engines:
            engine.close()


def test_break_stale_claims_atomically_and_restores_live_locks(env):
    """Breaking is rename-claim + re-verify, not a blind unlink: a breaker
    that (by race) claims a freshly re-created *live* lock must restore it
    instead of destroying it."""
    config, coord = env
    lock = coord.lock
    # A genuinely stale lock is broken and its path freed.
    lock.path.write_text(json.dumps({"pid": DEAD_PID, "created_unix": time.time()}))
    assert lock._break_stale()
    assert not lock.path.exists()
    assert not list(coord.directory.glob("GLOBAL.lock.break.*")), "tombstone leaked"
    # A live lock (here: this process's own pid, as after a racing fresh
    # re-create) is claimed, recognized as live, and put back intact.
    content = json.dumps({"pid": os.getpid(), "created_unix": time.time()})
    lock.path.write_text(content)
    assert not lock._break_stale()
    assert lock.path.read_text() == content, "live lock was not restored"
    assert not list(coord.directory.glob("GLOBAL.lock.break.*"))


def test_promote_pending_blocks_through_contention_and_skips_refused(env):
    config, coord = env
    # A refused (iteration-mismatched) version must not make promote_pending
    # spin to its timeout: refused versions leave the completeness set.
    prepare(config, coord, "rank0", 1, iteration=1)
    prepare(config, coord, "rank1", 1, iteration=2)
    start = time.monotonic()
    assert coord.promote_pending(timeout=30.0) is None
    assert time.monotonic() - start < 5.0, "promote_pending spun on a refused version"
    # ... and a complete version appearing while another rank holds the lock
    # is promoted as soon as the holder releases.
    for worker in WORKERS:
        prepare(config, coord, worker, 2)
    holder = CheckpointCoordinator(config, workers=WORKERS)
    assert holder.lock.acquire()
    thread = threading.Thread(target=lambda: (time.sleep(0.1), holder.lock.release()))
    thread.start()
    try:
        assert coord.promote_pending(timeout=10.0) == 2
    finally:
        thread.join()


def test_stale_lock_of_reused_pid_is_broken(env):
    """A lock recording a live pid with a *different* process start tick is
    a dead run's leftover (pid reuse) and must not wedge promotion."""
    from repro.ckpt.coordinator import _proc_start_time

    config, coord = env
    ours = _proc_start_time(os.getpid())
    if ours is None:  # pragma: no cover - non-Linux fallback
        pytest.skip("/proc start-time probing unavailable")
    (coord.directory / LOCK_NAME).write_text(
        json.dumps(
            {"pid": os.getpid(), "starttime": ours + 1, "created_unix": time.time()}
        )
    )
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    assert coord.try_promote() == 1, "reused-pid lock wedged the election"


def test_drain_begin_blocks_while_the_sweep_runs(env):
    """The drain check is atomic with the blob sweep: a drain cannot begin
    (and dedup-reuse a blob) while the sweep is mid-delete."""
    config, coord = env
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    sweep_started = threading.Event()
    release_sweep = threading.Event()
    real_keys = coord.stores["nvme"].keys

    def slow_keys():
        sweep_started.set()
        release_sweep.wait(5)
        return real_keys()

    coord.stores["nvme"].keys = slow_keys
    promoter = threading.Thread(target=coord.try_promote)
    promoter.start()
    try:
        assert sweep_started.wait(5), "sweep never reached the patched store"
        drain = threading.Thread(
            target=lambda: (coord.drain_begin("rank1"), coord.drain_end("rank1"))
        )
        drain.start()
        drain.join(0.2)
        assert drain.is_alive(), "drain_begin did not block during the sweep"
    finally:
        release_sweep.set()
        promoter.join(5)
        drain.join(5)
    assert not drain.is_alive()
    assert coord.global_versions() == [1]


def test_drain_survives_a_failing_promotion_attempt(env, rng):
    """A promotion error after the prepared manifest landed must not mark
    the local checkpoint as failed — the local commit is durable and the
    election is retried later."""
    from repro.ckpt.writer import CheckpointWriter, SubgroupSource
    from repro.core.virtual_tier import VirtualTier
    from repro.tiers.array_pool import ArrayPool

    config, coord = env

    def explode():
        raise OSError("transient PFS hiccup")

    coord.try_promote = explode
    tier = VirtualTier(config, worker="rank0")
    tier.build_placement([0])
    pool = ArrayPool()
    writer = CheckpointWriter(
        config, worker="rank0", pool=pool, tier=tier, coordinator=coord
    )
    try:
        staged = {}
        for name in ("params", "exp_avg", "exp_avg_sq"):
            buf = pool.acquire(100, np.float32)
            buf[:] = rng.standard_normal(100).astype(np.float32)
            staged[name] = buf
        fp16 = pool.acquire(100, np.float16)
        fp16[:] = rng.standard_normal(100).astype(np.float16)
        pending = writer.snapshot(
            iteration=1,
            layout={"total_params": 100, "num_ranks": 2, "subgroup_size": 100,
                    "rank": 0, "num_subgroups": 1},
            steps={0: 1},
            placement={0: "nvme"},
            subgroups=[SubgroupSource(index=0, staged=staged)],
            fp16_params=fp16,
        )
        assert pending.wait() == 1, "a retriable promotion error failed the checkpoint"
        assert writer.manifests.prepared_path_for(1).exists()
    finally:
        writer.close()
        tier.close()


def test_gc_sweeps_crashed_promoter_debris(env):
    config, coord = env
    stranded_tmp = coord.directory / "GLOBAL-000042.json.tmp"
    stranded_tmp.write_text("{torn")
    old_tombstone = coord.directory / f"{LOCK_NAME}.break.{DEAD_PID}"
    old_tombstone.write_text("{}")
    horizon = time.time() - 2 * config.checkpoint_lock_stale_seconds
    os.utime(old_tombstone, (horizon, horizon))
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    assert coord.try_promote() == 1
    assert not stranded_tmp.exists(), "crashed promoter's GLOBAL tmp not swept"
    assert not old_tombstone.exists(), "aged breaker tombstone not swept"


def test_live_lock_defers_promotion(env):
    config, coord = env
    # A *live* holder (this process, fresh lock) must not be broken; the
    # election is simply lost and retried at the next drain.
    other = CheckpointCoordinator(config, workers=WORKERS)
    assert other.lock.acquire()
    try:
        for worker in WORKERS:
            prepare(config, coord, worker, 1)
        assert coord.try_promote() is None
        assert coord.global_versions() == []
    finally:
        other.lock.release()
    assert coord.try_promote() == 1


def test_retention_gc_operates_on_global_versions(env):
    config, coord = env
    segments = {}
    for version in (1, 2, 3):
        for worker in WORKERS:
            segments[(worker, version)] = prepare(
                config, coord, worker, version, seed=10 * int(worker[-1])
            )
        assert coord.try_promote() == version
    # retention=2: global v1 retired, its per-rank manifests deleted, and the
    # blobs only v1 referenced swept; v2/v3 remain fully restorable.
    snapshot = scan_manifest_dir(coord.directory)
    assert sorted(snapshot.global_versions) == [2, 3]
    for worker in WORKERS:
        assert sorted(snapshot.committed[worker]) == [2, 3]
        seg = segments[(worker, 1)]
        assert not coord.stores[seg.tier].contains(seg.key), "retired blob survived"
        for version in (2, 3):
            seg = segments[(worker, version)]
            assert coord.stores[seg.tier].contains(seg.key), "live blob swept"


def test_gc_protects_blobs_of_prepared_manifests(env):
    config, coord = env
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    # rank0 has already prepared v2; rank1 has not landed yet.  Promoting v1
    # must neither promote v2 nor sweep the blob only rank0's *prepared*
    # manifest references.
    ahead = prepare(config, coord, "rank0", 2, seed=77)
    assert coord.try_promote() == 1
    assert coord.global_versions() == [1]
    snapshot = scan_manifest_dir(coord.directory)
    assert sorted(snapshot.prepared.get("rank0", {})) == [2]
    assert coord.stores[ahead.tier].contains(ahead.key)


def test_gc_stands_down_while_a_drain_is_in_flight(env):
    config, coord = env
    orphan = np.full(32, 9.0, dtype=np.float16)
    seg = put_blob(coord, "nvme", orphan)  # referenced by no manifest
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    coord.drain_begin("rank1")
    try:
        assert coord.try_promote() == 1
        assert coord.stores[seg.tier].contains(seg.key), (
            "blob swept while a drain (which may have dedup-reused it) was in flight"
        )
    finally:
        coord.drain_end("rank1")
    for worker in WORKERS:
        prepare(config, coord, worker, 2)
    assert coord.try_promote() == 2
    assert not coord.stores[seg.tier].contains(seg.key), "orphan blob never swept"


def test_roll_forward_promotes_a_fully_prepared_version(env):
    """Every rank published v2 but the job died before any election: restart
    must promote v2 rather than roll back to v1."""
    config, coord = env
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    assert coord.try_promote() == 1
    for worker in WORKERS:
        prepare(config, coord, worker, 2)
    assert coord.roll_forward() == 2
    assert coord.global_versions() == [1, 2]
    assert coord.load_global(2).workers == WORKERS


def test_roll_forward_leaves_incomplete_versions_for_discard(env):
    config, coord = env
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    assert coord.try_promote() == 1
    prepare(config, coord, "rank0", 2)  # rank1 died before publishing
    assert coord.roll_forward() is None
    assert coord.global_versions() == [1]


def test_roll_forward_promotes_renamed_but_recordless_versions(env):
    """A promoter that died mid-promote leaves committed-*named* manifests
    and no ``GLOBAL-<v>.json``; the version is still complete and consistent,
    so restart rolls it forward."""
    config, coord = env
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
        (coord.directory / f"ckpt-{worker}-000001.prepared.json").rename(
            coord.directory / f"ckpt-{worker}-000001.json"
        )
    assert coord.roll_forward() == 1
    assert coord.global_versions() == [1]


def test_roll_forward_judges_completeness_by_the_cut_own_world_size(env):
    """A 3-rank job's fully-prepared version rolls forward even though the
    restarting coordinator is registered for 2 ranks (elastic restart):
    completeness comes from the manifests' layout echo, not the registry."""
    config, coord = env
    for rank in range(3):
        worker = f"rank{rank}"
        payload = np.full(64, 5.0, dtype=np.float16)
        seg = put_blob(coord, "nvme", payload)
        manifest = CheckpointManifest(
            version=1,
            worker=worker,
            iteration=1,
            layout={"total_params": 64, "num_ranks": 3, "subgroup_size": 100,
                    "rank": rank, "num_subgroups": 1},
            steps={0: 1},
            placement={0: "nvme"},
            subgroups={},
            fp16_params=BlobRef(
                dtype="float16", count=64, source="staged", segments=(seg,)
            ),
        )
        ManifestStore(config.checkpoint_dir, worker).commit(manifest, prepared=True)
    assert coord.roll_forward() == 1
    assert coord.load_global(1).workers == ("rank0", "rank1", "rank2")


def test_discard_torn_removes_manifests_beyond_the_global_cut(env):
    config, coord = env
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    assert coord.try_promote() == 1
    # A torn commit: a dying promoter renamed rank0's v2 manifest to its
    # committed name, rank1's is still prepared, and GLOBAL-2 never landed.
    prepare(config, coord, "rank0", 2)
    store0 = ManifestStore(config.checkpoint_dir, "rank0")
    (coord.directory / "ckpt-rank0-000002.prepared.json").rename(store0.path_for(2))
    prepare(config, coord, "rank1", 2)
    assert coord.discard_torn(1) == 2
    snapshot = scan_manifest_dir(coord.directory)
    assert sorted(snapshot.global_versions) == [1]
    assert all(sorted(snapshot.committed[w]) == [1] for w in WORKERS)
    assert snapshot.prepared == {}
    with pytest.raises(CheckpointError, match="newer global commit exists"):
        coord.discard_torn(0)
