"""Adaptive prefetch-depth derivation: policy behaviour and equivalence."""

import numpy as np
import pytest

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.core.stats import UpdatePhaseStats
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 6_000
SUBGROUP = 750


def make_engine(root, **overrides):
    (root / "nvme").mkdir(parents=True, exist_ok=True)
    (root / "pfs").mkdir(parents=True, exist_ok=True)
    config = MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(root / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(root / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=SUBGROUP,
        adam=AdamConfig(lr=1e-3),
        **overrides,
    )
    layout = build_shard_layout(TOTAL_PARAMS, num_ranks=1, subgroup_size=SUBGROUP)
    return MLPOffloadEngine(config, layout, rank=0), layout


def synthetic_stats(compute_seconds, subgroups=8):
    stats = UpdatePhaseStats()
    stats.subgroups_processed = subgroups
    stats.compute_seconds = compute_seconds
    return stats


def test_static_policy_uses_configured_depth(tmp_path):
    engine, _ = make_engine(tmp_path, prefetch_depth=3)
    with engine:
        assert engine._choose_prefetch_depth(["params"]) == 3


def test_first_adaptive_iteration_falls_back_to_static(tmp_path):
    engine, _ = make_engine(tmp_path, adaptive_prefetch_depth=True, prefetch_depth=3)
    with engine:
        assert engine._last_stats is None
        assert engine._choose_prefetch_depth(["params"]) == 3


def test_adaptive_depth_tracks_fetch_to_compute_ratio(tmp_path):
    engine, _ = make_engine(
        tmp_path, adaptive_prefetch_depth=True, prefetch_depth=2, max_prefetch_depth=8
    )
    with engine:
        fields = ["params", "exp_avg", "exp_avg_sq"]
        # Slow compute => shallow window: fetches hide behind one subgroup.
        engine._last_stats = synthetic_stats(compute_seconds=80.0)
        slow_compute = engine._choose_prefetch_depth(fields)
        # Fast compute => deep window: many fetches must be in flight.
        engine._last_stats = synthetic_stats(compute_seconds=1e-7)
        fast_compute = engine._choose_prefetch_depth(fields)
        assert slow_compute == 1
        assert fast_compute == 8  # clamped at max_prefetch_depth
        assert slow_compute <= fast_compute
        # Zero compute time degenerates to the ceiling, never a crash.
        engine._last_stats = synthetic_stats(compute_seconds=0.0)
        assert engine._choose_prefetch_depth(fields) == 8


def run_training(root, **overrides):
    engine, layout = make_engine(root, **overrides)
    views = flat_views(None, layout, 0)
    rng = np.random.default_rng(5)
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    depths = []
    with engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        for _ in range(3):
            grad = rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1
            for index, view in views.items():
                engine.on_backward_gradient(index, grad[view].astype(np.float16))
            engine.on_microbatch_complete()
            report = engine.run_update(fp16)
            depths.append(report.stats.prefetch_depth)
        master = engine.fetch_master_params()
    return fp16, master, depths


def test_adaptive_and_static_results_are_bitwise_identical(tmp_path):
    fp16_static, master_static, depths_static = run_training(
        tmp_path / "static", adaptive_prefetch_depth=False
    )
    fp16_adaptive, master_adaptive, depths_adaptive = run_training(
        tmp_path / "adaptive", adaptive_prefetch_depth=True
    )
    assert np.array_equal(fp16_static, fp16_adaptive)
    assert np.array_equal(master_static, master_adaptive)
    # Both report the window they actually ran with.
    assert all(d >= 1 for d in depths_static + depths_adaptive)
    assert depths_static == [2, 2, 2]


def test_adaptive_depth_validation():
    with pytest.raises(ValueError):
        MLPOffloadConfig(
            tiers=(TierConfig("nvme", "/tmp/x"),), max_prefetch_depth=0
        )
