"""Unit tests for the vectorized CPU Adam optimizer."""

import numpy as np
import pytest

from repro.train.adam import AdamConfig, AdamState, adam_reference, adam_update


class TestAdamState:
    def test_zeros_and_seeding(self, rng):
        init = rng.standard_normal(100).astype(np.float32)
        state = AdamState.zeros(100, init=init)
        np.testing.assert_array_equal(state.params, init)
        assert state.exp_avg.sum() == 0.0
        assert state.step == 0
        assert state.num_params == 100
        assert state.nbytes == 3 * 100 * 4

    def test_copy_is_independent(self):
        state = AdamState.zeros(10)
        clone = state.copy()
        clone.params += 1.0
        assert state.params.sum() == 0.0

    def test_validation(self):
        with pytest.raises(TypeError):
            AdamState(
                params=np.zeros(4, dtype=np.float64),
                exp_avg=np.zeros(4, dtype=np.float32),
                exp_avg_sq=np.zeros(4, dtype=np.float32),
            )
        with pytest.raises(ValueError):
            AdamState(
                params=np.zeros(4, dtype=np.float32),
                exp_avg=np.zeros(5, dtype=np.float32),
                exp_avg_sq=np.zeros(4, dtype=np.float32),
            )
        with pytest.raises(ValueError):
            AdamState.zeros(-1)


class TestAdamConfig:
    def test_defaults_valid(self):
        config = AdamConfig()
        assert config.beta1 == 0.9 and config.beta2 == 0.999

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lr": -1.0},
            {"beta1": 1.0},
            {"beta2": -0.1},
            {"eps": 0.0},
            {"weight_decay": -0.1},
        ],
    )
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            AdamConfig(**kwargs)


class TestAdamUpdate:
    def test_matches_scalar_reference(self, rng):
        config = AdamConfig(lr=1e-2, weight_decay=0.01)
        init = rng.standard_normal(50).astype(np.float32)
        grad = rng.standard_normal(50).astype(np.float32)
        state = AdamState.zeros(50, init=init)
        for _ in range(5):
            adam_update(state, grad, config)
        expected = adam_reference(init, grad, config, num_steps=5)
        np.testing.assert_allclose(state.params, expected, rtol=1e-5, atol=1e-6)

    def test_step_counter_and_inplace_semantics(self, rng):
        state = AdamState.zeros(10, init=rng.standard_normal(10).astype(np.float32))
        params_buffer = state.params
        adam_update(state, np.ones(10, dtype=np.float32), AdamConfig())
        assert state.step == 1
        assert state.params is params_buffer  # updated in place, no reallocation

    def test_descends_a_simple_quadratic(self):
        config = AdamConfig(lr=0.1)
        state = AdamState.zeros(1, init=np.array([5.0], dtype=np.float32))
        for _ in range(200):
            grad = 2.0 * state.params.copy()  # d/dx of x^2
            adam_update(state, grad.astype(np.float32), config)
        assert abs(float(state.params[0])) < 0.5

    def test_out_fp16_receives_downcast_params(self, rng):
        state = AdamState.zeros(20, init=rng.standard_normal(20).astype(np.float32))
        out = np.zeros(20, dtype=np.float16)
        adam_update(state, rng.standard_normal(20).astype(np.float32), AdamConfig(), out_fp16=out)
        np.testing.assert_array_equal(out, state.params.astype(np.float16))

    def test_shape_mismatch_raises(self):
        state = AdamState.zeros(10)
        with pytest.raises(ValueError):
            adam_update(state, np.zeros(11, dtype=np.float32), AdamConfig())
        with pytest.raises(ValueError):
            adam_update(
                state,
                np.zeros(10, dtype=np.float32),
                AdamConfig(),
                out_fp16=np.zeros(9, dtype=np.float16),
            )

    def test_zero_gradient_keeps_params_nearly_constant(self):
        state = AdamState.zeros(10, init=np.ones(10, dtype=np.float32))
        adam_update(state, np.zeros(10, dtype=np.float32), AdamConfig())
        np.testing.assert_allclose(state.params, np.ones(10), atol=1e-6)

    def test_subgroup_update_is_order_independent(self, rng):
        """Updating disjoint subgroups in any order yields the same result (§3.2)."""
        config = AdamConfig(lr=1e-3)
        full = rng.standard_normal(100).astype(np.float32)
        grad = rng.standard_normal(100).astype(np.float32)
        slices = [slice(0, 30), slice(30, 70), slice(70, 100)]

        def run(order):
            states = {i: AdamState.zeros(s.stop - s.start, init=full[s]) for i, s in enumerate(slices)}
            for i in order:
                adam_update(states[i], grad[slices[i]], config)
            out = np.empty_like(full)
            for i, s in enumerate(slices):
                out[s] = states[i].params
            return out

        np.testing.assert_array_equal(run([0, 1, 2]), run([2, 1, 0]))
