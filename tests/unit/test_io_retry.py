"""Unit tests for the async engine's retry policy and failure surfacing."""

import errno
import threading

import numpy as np
import pytest

from repro.aio.engine import (
    NO_RETRY,
    TRANSIENT_ERRNOS,
    AsyncIOEngine,
    IORetryPolicy,
    os_error_in_chain,
)
from repro.tiers.faultstore import FaultInjectingStore, FaultPlan, FaultRule
from repro.tiers.file_store import FileStore, StoreError, TruncatedBlobError


@pytest.fixture
def store(tmp_path):
    return FileStore(tmp_path / "tier", name="nvme")


def _engine(store, *rules, policy=None, **kwargs):
    wrapped = FaultInjectingStore(store, FaultPlan(rules))
    return AsyncIOEngine({store.name: wrapped}, retry_policy=policy, **kwargs)


class TestIORetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            IORetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            IORetryPolicy(backoff_seconds=-1)
        with pytest.raises(ValueError):
            IORetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            IORetryPolicy(deadline_seconds=-1)

    def test_transient_classification(self):
        policy = IORetryPolicy()
        for code in TRANSIENT_ERRNOS:
            assert policy.is_transient(OSError(code, "x"))
        assert not policy.is_transient(OSError(errno.ENOSPC, "full"))
        assert not policy.is_transient(ValueError("not I/O"))
        assert not policy.is_transient(StoreError("no blob for key"))
        # Truncation means a torn/concurrent write raced the read: retryable.
        assert policy.is_transient(TruncatedBlobError("short"))
        # Wrapped OSErrors found through the cause chain still classify.
        wrapped = StoreError("outer")
        wrapped.__cause__ = OSError(errno.EIO, "inner")
        assert policy.is_transient(wrapped)

    def test_backoff_progression_is_capped(self):
        policy = IORetryPolicy(backoff_seconds=0.01, backoff_factor=2.0, max_backoff_seconds=0.03)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.02)
        assert policy.backoff(3) == pytest.approx(0.03)
        assert policy.backoff(10) == pytest.approx(0.03)

    def test_os_error_in_chain_walks_causes_only(self):
        inner = OSError(errno.EIO, "device")
        mid = StoreError("mid")
        mid.__cause__ = inner
        outer = RuntimeError("outer")
        outer.__cause__ = mid
        assert os_error_in_chain(outer) is inner
        context_only = StoreError("ctx")
        context_only.__context__ = inner  # suppressed context must not count
        assert os_error_in_chain(context_only) is None


class TestEngineRetries:
    def test_transient_eio_is_absorbed(self, store):
        payload = np.arange(32, dtype=np.float32)
        store.save_from("k", payload)
        policy = IORetryPolicy(attempts=3, backoff_seconds=0.001)
        with _engine(store, FaultRule(kind="eio", op="read", count=2), policy=policy) as engine:
            result = engine.read("nvme", "k").result()
            assert result.ok
            assert result.attempts == 3
            np.testing.assert_array_equal(result.array, payload)
            stats = engine.tier_stats("nvme")
            assert stats.retries == 2
            assert stats.failures == 0
            assert engine.retry_totals() == (2, 0, 0)

    def test_exhausted_attempts_surface_with_tier_tag(self, store):
        policy = IORetryPolicy(attempts=2, backoff_seconds=0.001)
        with _engine(store, FaultRule(kind="dead", op="write", count=0), policy=policy) as engine:
            result = engine.write("nvme", "k", np.zeros(8, dtype=np.float32)).result()
            assert not result.ok
            assert result.attempts == 2
            assert isinstance(result.error, OSError)
            assert getattr(result.error, "repro_tier") == "nvme"
            stats = engine.tier_stats("nvme")
            assert stats.retries == 1  # one wasted retry before giving up
            assert stats.failures == 1

    def test_enospc_is_never_retried(self, store):
        policy = IORetryPolicy(attempts=5, backoff_seconds=0.001)
        with _engine(store, FaultRule(kind="enospc", op="write", count=0), policy=policy) as engine:
            result = engine.write("nvme", "k", np.zeros(8, dtype=np.float32)).result()
            assert not result.ok
            assert result.attempts == 1  # capacity handling owns ENOSPC
            assert engine.retry_totals() == (0, 1, 0)

    def test_deadline_stops_retrying(self, store):
        policy = IORetryPolicy(attempts=10, backoff_seconds=10.0, deadline_seconds=0.05)
        with _engine(store, FaultRule(kind="dead", op="read", count=0), policy=policy) as engine:
            result = engine.read("nvme", "k").result()
            assert not result.ok
            assert result.timed_out
            assert result.attempts == 1  # the 10 s backoff would blow the deadline
            assert engine.retry_totals() == (0, 1, 1)

    def test_default_policy_is_no_retry(self, store):
        with _engine(store, FaultRule(kind="eio", op="read", count=1)) as engine:
            assert engine.retry_policy is NO_RETRY
            store.save_from("k", np.arange(4, dtype=np.float32))
            result = engine.read("nvme", "k").result()
            assert not result.ok and result.attempts == 1

    def test_truncated_blob_read_retries(self, store):
        payload = np.arange(16, dtype=np.float32)
        store.save_from("k", payload)
        policy = IORetryPolicy(attempts=2, backoff_seconds=0.001)
        with _engine(
            store, FaultRule(kind="short-read", op="read", count=1), policy=policy
        ) as engine:
            result = engine.read("nvme", "k").result()
            assert result.ok and result.attempts == 2


class TestObserver:
    class Recorder:
        def __init__(self):
            self.events = []
            self.lock = threading.Lock()

        def on_success(self, tier):
            with self.lock:
                self.events.append(("ok", tier))

        def on_failure(self, tier, error):
            with self.lock:
                self.events.append(("fail", tier, type(error).__name__))

    def test_observer_sees_terminal_outcomes_only(self, store):
        recorder = self.Recorder()
        payload = np.arange(8, dtype=np.float32)
        store.save_from("k", payload)
        policy = IORetryPolicy(attempts=3, backoff_seconds=0.001)
        with _engine(
            store,
            FaultRule(kind="eio", op="read", count=2),
            FaultRule(kind="dead", op="write", count=0),
            policy=policy,
        ) as engine:
            engine.observer = recorder
            assert engine.read("nvme", "k").result().ok
            assert not engine.write("nvme", "w", payload).result().ok
        assert ("ok", "nvme") in recorder.events
        assert ("fail", "nvme", "OSError") in recorder.events
        # Two absorbed retries, one terminal success, one terminal failure:
        # the observer must see exactly the two terminal outcomes.
        assert len(recorder.events) == 2

    def test_misbehaving_observer_is_contained(self, store):
        class Bomb:
            def on_success(self, tier):
                raise RuntimeError("observer bug")

            def on_failure(self, tier, error):
                raise RuntimeError("observer bug")

        store.save_from("k", np.arange(4, dtype=np.float32))
        with AsyncIOEngine({store.name: store}) as engine:
            engine.observer = Bomb()
            result = engine.read("nvme", "k").result()
            assert result.ok  # the observer's exception never leaks


class TestInterruptSafety:
    """Regression: KeyboardInterrupt/SystemExit must escape, not become IOResults."""

    class InterruptingStore:
        name = "nvme"

        def __init__(self, inner):
            self.inner = inner
            self.interrupts_left = 1

        def __getattr__(self, attr):
            return getattr(self.inner, attr)

        def read(self, key):
            if self.interrupts_left > 0:
                self.interrupts_left -= 1
                raise KeyboardInterrupt
            return self.inner.read(key)

    def test_keyboard_interrupt_propagates_and_engine_survives(self, store):
        payload = np.arange(8, dtype=np.float32)
        store.save_from("k", payload)
        interrupting = self.InterruptingStore(store)
        policy = IORetryPolicy(attempts=3, backoff_seconds=0.001)
        with AsyncIOEngine({"nvme": interrupting}, retry_policy=policy) as engine:
            with pytest.raises(KeyboardInterrupt):
                engine.read("nvme", "k").result()
            # No retry may have swallowed the interrupt as a "transient".
            assert engine.retry_totals() == (0, 0, 0)
            # Slots and inflight accounting were still released: the engine
            # keeps serving and drains clean.
            result = engine.read("nvme", "k").result()
            assert result.ok
            np.testing.assert_array_equal(result.array, payload)
            engine.drain(timeout=5.0)
