"""Unit tests for ZeRO-3 sharding and subgroup partitioning."""

import numpy as np
import pytest

from repro.train.model_zoo import OPTIMIZER_STATE_BYTES, model_by_name
from repro.train.sharding import (
    PAPER_SUBGROUP_SIZE,
    Subgroup,
    build_shard_layout,
    flat_views,
)


class TestBuildShardLayout:
    def test_single_rank_single_subgroup(self):
        layout = build_shard_layout(100, num_ranks=1, subgroup_size=1000)
        assert layout.num_subgroups == 1
        assert layout.subgroups[0].num_params == 100
        layout.validate()

    def test_even_split_across_ranks(self):
        layout = build_shard_layout(1000, num_ranks=4, subgroup_size=100)
        assert all(layout.rank_params(r) == 250 for r in range(4))
        assert layout.num_subgroups == 12  # ceil(250/100) = 3 per rank
        assert layout.max_subgroups_per_rank() == 3

    def test_uneven_split_distributes_remainder(self):
        layout = build_shard_layout(10, num_ranks=3, subgroup_size=100)
        assert [layout.rank_params(r) for r in range(3)] == [4, 3, 3]
        assert sum(sg.num_params for sg in layout.subgroups) == 10

    def test_subgroups_tile_rank_intervals(self):
        layout = build_shard_layout(1003, num_ranks=2, subgroup_size=100)
        layout.validate()
        for rank in range(2):
            subgroups = layout.subgroups_for_rank(rank)
            start, stop = layout.rank_intervals[rank]
            assert subgroups[0].global_start == start
            assert subgroups[-1].global_stop == stop
            assert [sg.index for sg in subgroups] == list(range(len(subgroups)))

    def test_paper_subgroup_size_on_40b(self):
        model = model_by_name("40B")
        layout = build_shard_layout(model.total_params, num_ranks=4, subgroup_size=PAPER_SUBGROUP_SIZE)
        # ~40B params / 4 ranks / 100M per subgroup ≈ 100 subgroups per rank.
        assert 90 <= layout.max_subgroups_per_rank() <= 110
        # Subgroup optimizer state is ~1.2 GB (100M params × 12 B).
        assert layout.subgroups[0].optimizer_state_bytes == pytest.approx(1.2e9, rel=0.05)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_shard_layout(0, 1, 10)
        with pytest.raises(ValueError):
            build_shard_layout(10, 0, 10)
        with pytest.raises(ValueError):
            build_shard_layout(10, 1, 0)


class TestSubgroup:
    def test_key_is_stable_and_unique(self):
        layout = build_shard_layout(1000, num_ranks=2, subgroup_size=100)
        keys = [sg.key for sg in layout.subgroups]
        assert len(set(keys)) == len(keys)
        assert keys[0] == "rank0-sg00000"

    def test_byte_accounting(self):
        sg = Subgroup(rank=0, index=0, global_start=0, global_stop=1000)
        assert sg.optimizer_state_bytes == 1000 * OPTIMIZER_STATE_BYTES
        assert sg.fp16_gradient_bytes == 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            Subgroup(rank=0, index=0, global_start=10, global_stop=10)
        with pytest.raises(ValueError):
            Subgroup(rank=-1, index=0, global_start=0, global_stop=1)


class TestFlatViews:
    def test_views_cover_rank_array_exactly(self):
        layout = build_shard_layout(1050, num_ranks=2, subgroup_size=100)
        for rank in range(2):
            views = flat_views(None, layout, rank)
            rank_size = layout.rank_params(rank)
            covered = np.zeros(rank_size, dtype=bool)
            for view in views.values():
                assert not covered[view].any()  # no overlap
                covered[view] = True
            assert covered.all()

    def test_views_address_correct_data(self, rng):
        layout = build_shard_layout(300, num_ranks=1, subgroup_size=100)
        flat = rng.standard_normal(300).astype(np.float32)
        views = flat_views(flat, layout, 0)
        np.testing.assert_array_equal(flat[views[1]], flat[100:200])
