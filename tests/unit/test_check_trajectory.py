"""Unit tests for the perf-smoke trajectory regression comparator.

``benchmarks/check_trajectory.py`` is the CI gate that fails the scheduled
perf job on a >25% median regression of any headline metric; these tests pin
its metric extraction across both trajectory payload shapes, the
direction-aware comparison, the noise floor, and the directory-level CLI
behaviour (missing candidate file = failure, clean run = exit 0).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_MODULE_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "check_trajectory.py"
_spec = importlib.util.spec_from_file_location("check_trajectory", _MODULE_PATH)
check_trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_trajectory)


def payload_with_series(step_times_by_mode, **extra):
    rows = [
        {"mode": mode, "iteration": i, "step_s": value}
        for mode, values in step_times_by_mode.items()
        for i, value in enumerate(values)
    ]
    return {"experiment": "x", "series": {"trajectory": rows}, **extra}


def test_extracts_medians_per_mode_and_scalars():
    metrics = check_trajectory.extract_metrics(
        payload_with_series(
            {"async": [1.0, 3.0, 2.0], "none": [0.5, 0.5, 0.5]},
            compression_ratio=2.5,
            restore_latency_s={"v1": 0.2, "v2": 0.4, "v3": 0.3},
        )
    )
    assert metrics["median_step_s:async"] == (2.0, "lower")
    assert metrics["median_step_s:none"] == (0.5, "lower")
    assert metrics["compression_ratio"] == (2.5, "higher")
    assert metrics["restore_latency_s:median"] == (0.3, "lower")


def test_extracts_old_payload_shape():
    """Pre-PR-4 payloads: top-level trajectory list + mean_update_s mapping."""
    metrics = check_trajectory.extract_metrics(
        {
            "trajectory": [
                {"engine": "striped", "update_s": 0.1},
                {"engine": "striped", "update_s": 0.3},
                {"engine": "single", "update_s": 0.4},
            ],
            "mean_update_s": {"striped": 0.2, "single": 0.4},
            "speedup": 1.6,
        }
    )
    assert metrics["median_step_s:striped"] == (0.2, "lower")
    assert metrics["mean_update_s:single"] == (0.4, "lower")
    assert metrics["speedup"] == (1.6, "higher")


def test_extracts_overhead_percentages():
    metrics = check_trajectory.extract_metrics(
        {"overhead_pct": {"coordinated": 1.5, "async": 4.2}}
    )
    assert metrics["overhead_pct:coordinated"] == (1.5, "lower-pct")
    assert metrics["overhead_pct:async"] == (4.2, "lower-pct")


def test_extracts_every_ratio_speedup_and_pct_variant():
    """The compression benchmark's restore_speedup / overhead_vs_raw_pct
    keys must be gated too — extraction matches by suffix, not a fixed
    key list."""
    metrics = check_trajectory.extract_metrics(
        {
            "restore_speedup": 8.2,
            "overhead_vs_raw_pct": {"shuffle-deflate": -4.7, "null": 1.2},
            "some_flag": True,  # bools are not metrics
        }
    )
    assert metrics["restore_speedup"] == (8.2, "higher")
    assert metrics["overhead_vs_raw_pct:shuffle-deflate"] == (-4.7, "lower-pct")
    assert metrics["overhead_vs_raw_pct:null"] == (1.2, "lower-pct")
    assert "some_flag" not in metrics


def test_percentage_metrics_compare_in_absolute_points():
    baseline = {"overhead_pct:coordinated": (1.0, "lower-pct")}
    # 1% -> 20%: a 20x relative blow-up but under the 25-point budget.
    ok = {"overhead_pct:coordinated": (20.0, "lower-pct")}
    bad = {"overhead_pct:coordinated": (27.0, "lower-pct")}
    assert check_trajectory.compare_metrics(baseline, ok) == []
    problems = check_trajectory.compare_metrics(baseline, bad)
    assert len(problems) == 1 and "points" in problems[0]


def test_baseline_declared_noise_widens_the_pct_budget():
    baseline = {"overhead_pct:real_process": (-2.9, "lower-pct")}
    # +26 points over baseline: outside the default 25-point budget, inside
    # the widened one when the baseline declares ±20 points of noise.
    candidate = {"overhead_pct:real_process": (23.5, "lower-pct")}
    assert check_trajectory.compare_metrics(baseline, candidate)
    assert (
        check_trajectory.compare_metrics(
            baseline, candidate,
            baseline_noise_points={"overhead_pct:real_process": 20.0},
        )
        == []
    )
    # A genuine regression still fails the widened budget.
    worse = {"overhead_pct:real_process": (50.0, "lower-pct")}
    problems = check_trajectory.compare_metrics(
        baseline, worse, baseline_noise_points={"overhead_pct:real_process": 20.0}
    )
    assert len(problems) == 1 and "budget +45 points" in problems[0]


def test_noise_points_extraction_ignores_junk():
    assert check_trajectory.extract_noise_points({}) == {}
    assert check_trajectory.extract_noise_points({"noise_points": "nope"}) == {}
    assert check_trajectory.extract_noise_points(
        {"noise_points": {"overhead_pct:x": 20.0, "bad": True, "also_bad": "y"}}
    ) == {"overhead_pct:x": 20.0}


def test_directory_comparison_honours_baseline_noise(tmp_path):
    base_dir = tmp_path / "base"
    cand_dir = tmp_path / "cand"
    base_dir.mkdir()
    cand_dir.mkdir()
    payload = {
        "experiment": "x",
        "overhead_pct": {"real_process": -2.9},
        "noise_points": {"overhead_pct:real_process": 20.0},
    }
    (base_dir / "BENCH_x.json").write_text(json.dumps(payload))
    # The candidate's own (absent) declaration is irrelevant: only the
    # committed baseline's noise band counts.
    (cand_dir / "BENCH_x.json").write_text(
        json.dumps({"experiment": "x", "overhead_pct": {"real_process": 23.5}})
    )
    problems, checked = check_trajectory.compare_directories(base_dir, cand_dir)
    assert problems == [] and checked == ["BENCH_x.json"]
    # A candidate cannot vote itself a wider budget: declaration on the
    # candidate side only is ignored.
    (base_dir / "BENCH_x.json").write_text(
        json.dumps({"experiment": "x", "overhead_pct": {"real_process": -2.9}})
    )
    (cand_dir / "BENCH_x.json").write_text(
        json.dumps(
            {
                "experiment": "x",
                "overhead_pct": {"real_process": 23.5},
                "noise_points": {"overhead_pct:real_process": 50.0},
            }
        )
    )
    problems, _ = check_trajectory.compare_directories(base_dir, cand_dir)
    assert len(problems) == 1


def test_ratios_only_drops_raw_durations_but_keeps_ratios():
    baseline = {
        "median_step_s:async": (0.1, "lower"),
        "compression_ratio": (2.5, "higher"),
        "overhead_pct:async": (2.0, "lower-pct"),
    }
    candidate = {
        "median_step_s:async": (9.9, "lower"),  # wildly slower machine
        "compression_ratio": (2.5, "higher"),
        "overhead_pct:async": (3.0, "lower-pct"),
    }
    assert check_trajectory.compare_metrics(baseline, candidate, ratios_only=True) == []
    assert check_trajectory.compare_metrics(baseline, candidate), (
        "full mode must still flag the duration regression"
    )
    # A regressed ratio is caught even in ratios-only mode.
    candidate["compression_ratio"] = (1.0, "higher")
    assert check_trajectory.compare_metrics(baseline, candidate, ratios_only=True)


def test_lower_is_better_regression_detected_beyond_threshold():
    baseline = {"median_step_s:async": (0.100, "lower")}
    ok = {"median_step_s:async": (0.124, "lower")}
    bad = {"median_step_s:async": (0.126, "lower")}
    assert check_trajectory.compare_metrics(baseline, ok) == []
    problems = check_trajectory.compare_metrics(baseline, bad)
    assert len(problems) == 1 and "median_step_s:async" in problems[0]


def test_higher_is_better_regression_detected():
    baseline = {"compression_ratio": (2.5, "higher")}
    ok = {"compression_ratio": (2.1, "higher")}
    bad = {"compression_ratio": (1.9, "higher")}
    assert check_trajectory.compare_metrics(baseline, ok) == []
    assert len(check_trajectory.compare_metrics(baseline, bad)) == 1


def test_improvements_and_new_metrics_pass():
    baseline = {"median_step_s:async": (0.1, "lower")}
    candidate = {
        "median_step_s:async": (0.01, "lower"),  # 10x faster
        "median_step_s:extra-mode": (9.9, "lower"),  # new, no baseline
    }
    assert check_trajectory.compare_metrics(baseline, candidate) == []


def test_metric_missing_from_candidate_is_a_regression():
    baseline = {"median_step_s:async": (0.1, "lower")}
    problems = check_trajectory.compare_metrics(baseline, {})
    assert problems and "missing from candidate" in problems[0]


def test_noise_floor_suppresses_tiny_time_regressions():
    baseline = {"median_step_s:async": (0.002, "lower")}
    candidate = {"median_step_s:async": (0.004, "lower")}  # 2x, but 2ms -> 4ms
    assert check_trajectory.compare_metrics(baseline, candidate) == []
    assert check_trajectory.compare_metrics(
        baseline, candidate, floor_seconds=0.0
    ), "with the floor disabled the 2x regression must be flagged"


def write_bench(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


def test_directory_comparison_and_cli_exit_codes(tmp_path, capsys):
    baseline_dir = tmp_path / "baseline"
    candidate_dir = tmp_path / "candidate"
    good = payload_with_series({"async": [0.1, 0.1, 0.1]}, compression_ratio=2.5)
    write_bench(baseline_dir, "BENCH_a.json", good)
    write_bench(candidate_dir, "BENCH_a.json", good)
    assert check_trajectory.main(
        ["--baseline", str(baseline_dir), "--candidate", str(candidate_dir)]
    ) == 0

    # A regressed candidate fails ...
    slow = payload_with_series({"async": [0.2, 0.2, 0.2]}, compression_ratio=2.5)
    write_bench(candidate_dir, "BENCH_a.json", slow)
    assert check_trajectory.main(
        ["--baseline", str(baseline_dir), "--candidate", str(candidate_dir)]
    ) == 1
    assert "REGRESSION" in capsys.readouterr().err

    # ... and so does a benchmark that silently stopped producing its file.
    (candidate_dir / "BENCH_a.json").unlink()
    assert check_trajectory.main(
        ["--baseline", str(baseline_dir), "--candidate", str(candidate_dir)]
    ) == 1


def test_empty_baseline_directory_fails(tmp_path):
    (tmp_path / "baseline").mkdir()
    (tmp_path / "candidate").mkdir()
    assert check_trajectory.main(
        ["--baseline", str(tmp_path / "baseline"), "--candidate", str(tmp_path / "candidate")]
    ) == 1


def test_committed_trajectories_pass_against_themselves():
    """The repo-committed baselines must gate cleanly against themselves —
    otherwise the scheduled job would fail on day one."""
    repo_root = Path(__file__).resolve().parents[2]
    problems, checked = check_trajectory.compare_directories(repo_root, repo_root)
    assert problems == []
    assert "BENCH_multirank_ckpt.json" in checked
    assert "SWEEP_weak_scaling.json" in checked
    assert "SWEEP_engine_smoke.json" in checked
    assert len(checked) >= 7


def test_sweep_payloads_are_gated_alongside_bench(tmp_path, capsys):
    """SWEEP_*.json result tables ride the same directory gate as BENCH_*.json."""
    baseline_dir = tmp_path / "baseline"
    candidate_dir = tmp_path / "candidate"
    bench = payload_with_series({"async": [0.1, 0.1, 0.1]}, compression_ratio=2.5)
    sweep = {
        "experiment": "sweep-weak_scaling",
        "median_speedup": 2.9,
        "series": {
            "trajectory": [
                {"engine": "MLP-Offload", "repeat": 0, "update_s": 30.0},
                {"engine": "DeepSpeed ZeRO-3", "repeat": 0, "update_s": 90.0},
            ]
        },
    }
    for directory in (baseline_dir, candidate_dir):
        write_bench(directory, "BENCH_a.json", bench)
        write_bench(directory, "SWEEP_weak_scaling.json", sweep)
    assert check_trajectory.main(
        ["--baseline", str(baseline_dir), "--candidate", str(candidate_dir)]
    ) == 0
    out = capsys.readouterr().out
    assert "checked BENCH_a.json" in out
    assert "checked SWEEP_weak_scaling.json" in out

    # A collapsed sweep speedup fails the gate even cross-machine.
    degraded = dict(sweep, median_speedup=1.1)
    write_bench(candidate_dir, "SWEEP_weak_scaling.json", degraded)
    assert check_trajectory.main(
        [
            "--baseline", str(baseline_dir),
            "--candidate", str(candidate_dir),
            "--ratios-only",
        ]
    ) == 1
    assert "SWEEP_weak_scaling.json: median_speedup" in capsys.readouterr().err

    # A sweep that silently stopped producing its table is a failure too.
    (candidate_dir / "SWEEP_weak_scaling.json").unlink()
    assert check_trajectory.main(
        ["--baseline", str(baseline_dir), "--candidate", str(candidate_dir)]
    ) == 1
