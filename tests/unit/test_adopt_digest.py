"""Digest agreement between ``FileStore.adopt`` and the registry push path.

The bug this pins down: a blob adopted while ``track_checksums`` was off has
no entry in the write-time checksum registry, and ``compute_checksum`` on an
*encoded* blob digests the stored frame bytes — not the uncompressed payload
the content-addressed key names.  Any consumer that equates "the blob's
digest" with "the digest its CAS key promises" (the registry's dedup
negotiation does exactly that) would disagree with itself depending on
whether tracking happened to be on when the blob landed.  ``digest_of``
closes the gap by deriving the digest lazily from the key itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.manifest import cas_key, parse_cas_key
from repro.codec import get_codec
from repro.codec.framing import encoded_frame
from repro.tiers.file_store import FileStore, payload_digest


@pytest.fixture
def payload():
    return np.arange(1024, dtype=np.float32)


def test_digest_of_cas_key_needs_no_read(tmp_path, payload):
    """CAS keys carry their digest; deriving it must not touch the file."""
    store = FileStore(tmp_path / "s", name="s", track_checksums=False)
    digest = payload_digest(payload)
    key = cas_key(digest, payload.nbytes)
    store.write(key, payload)
    store.path_of(key).unlink()  # prove no read happens: the file is gone
    assert store.digest_of(key) == digest


def test_adopt_then_push_agreement_with_tracking_off(tmp_path, payload):
    """The adopt-then-push path: digest_of == the digest the CAS key names.

    ``adopt`` with ``track_checksums`` off records nothing in the checksum
    registry; the encoded blob's *stored* bytes digest differently than the
    payload.  ``digest_of`` must still answer with the key's content digest
    for both the raw and the encoded blob.
    """
    source = FileStore(tmp_path / "src", name="src", track_checksums=False)
    dest = FileStore(tmp_path / "dst", name="dst", track_checksums=False)
    digest = payload_digest(payload)

    raw_key = cas_key(digest, payload.nbytes)
    source.write(raw_key, payload)
    dest.adopt(raw_key, source.path_of(raw_key))

    frame = encoded_frame(payload, get_codec("shuffle-deflate"))
    coded_key = cas_key(digest, payload.nbytes, codec="shuffle-deflate")
    source.write(coded_key, frame)
    dest.adopt(coded_key, source.path_of(coded_key))

    assert dest.checksum_of(raw_key) is None  # nothing was recorded...
    assert dest.checksum_of(coded_key) is None
    assert dest.digest_of(raw_key) == digest  # ...yet the digest is known
    assert dest.digest_of(coded_key) == digest
    # compute_checksum on the encoded blob digests the FRAME bytes — the
    # disagreement digest_of exists to close.
    assert dest.compute_checksum(coded_key) != digest


def test_adopt_masks_foreign_wide_checksums(tmp_path, payload):
    """A full-width digest handed to adopt is narrowed to the key's 64 bits."""
    source = FileStore(tmp_path / "src", name="src")
    dest = FileStore(tmp_path / "dst", name="dst")
    digest = payload_digest(payload)
    key = cas_key(digest, payload.nbytes)
    source.write(key, payload)
    wide = digest + (1 << 64)  # e.g. an unmasked foreign BLAKE2b value
    dest.adopt(key, source.path_of(key), checksum=wide)
    assert dest.checksum_of(key) == digest
    assert dest.checksum_of(key) == parse_cas_key(key)[0]


def test_digest_of_plain_key_falls_back_to_read(tmp_path, payload):
    """Non-CAS keys have no embedded digest: one maintenance read answers."""
    store = FileStore(tmp_path / "s", name="s", track_checksums=False)
    store.write("plain-key", payload)
    assert store.digest_of("plain-key") == payload_digest(payload)
    # and the answer is memoized in the checksum registry
    assert store.checksum_of("plain-key") == payload_digest(payload)
