"""Unit tests for GPU/host memory accounting."""

import pytest

from repro.tiers.device import DeviceMemory, MemoryAccountant, OutOfMemoryError


class TestDeviceMemory:
    def test_reserve_and_release(self):
        dev = DeviceMemory("gpu0", capacity=100)
        dev.reserve("params", 60)
        assert dev.used == 60
        assert dev.free == 40
        assert dev.utilization == pytest.approx(0.6)
        assert dev.release("params") == 60
        assert dev.used == 0

    def test_oom_raises(self):
        dev = DeviceMemory("gpu0", capacity=100)
        dev.reserve("a", 80)
        with pytest.raises(OutOfMemoryError):
            dev.reserve("b", 30)

    def test_duplicate_label_rejected(self):
        dev = DeviceMemory("gpu0", capacity=100)
        dev.reserve("a", 10)
        with pytest.raises(ValueError):
            dev.reserve("a", 10)

    def test_resize(self):
        dev = DeviceMemory("host", capacity=100)
        dev.reserve("buffers", 40)
        dev.resize("buffers", 90)
        assert dev.reservation("buffers") == 90
        with pytest.raises(OutOfMemoryError):
            dev.resize("buffers", 101)
        with pytest.raises(KeyError):
            dev.resize("missing", 1)

    def test_release_unknown_raises(self):
        dev = DeviceMemory("gpu0", capacity=10)
        with pytest.raises(KeyError):
            dev.release("missing")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DeviceMemory("bad", capacity=0)


class TestMemoryAccountant:
    def test_per_gpu_and_host_budgets(self):
        acct = MemoryAccountant(gpu_memory=80, num_gpus=4, host_memory=512)
        assert acct.num_gpus == 4
        assert acct.aggregate_gpu_capacity == 320
        acct.gpu(0).reserve("fp16", 40)
        assert acct.aggregate_gpu_used == 40
        assert acct.check_gpu_fits(40)
        assert not acct.check_gpu_fits(41)  # gpu0 only has 40 left
        assert acct.check_host_fits(512)
        acct.host.reserve("buffers", 500)
        assert not acct.check_host_fits(20)

    def test_rank_bounds(self):
        acct = MemoryAccountant(gpu_memory=10, num_gpus=2, host_memory=10)
        with pytest.raises(IndexError):
            acct.gpu(2)
        with pytest.raises(ValueError):
            MemoryAccountant(gpu_memory=10, num_gpus=0, host_memory=10)
