"""Unit tests of the registry wire format and content verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.manifest import cas_key, parse_cas_key
from repro.codec import get_codec
from repro.codec.framing import encoded_frame
from repro.registry.protocol import (
    NAME_RE,
    ProtocolError,
    Request,
    body_length,
    format_request,
    format_response,
    parse_head,
    parse_range,
    split_head,
    verify_blob_file,
)
from repro.tiers.file_store import FileStore, payload_digest


# -- head parsing -----------------------------------------------------------


def test_request_roundtrip_through_parse():
    raw = format_request("PUT", "/v1/blobs/k", b"abc", headers={"x-session": "p7"})
    head, rest = split_head(raw)
    method, target, headers = parse_head(head)
    assert (method, target) == ("PUT", "/v1/blobs/k")
    assert headers["x-session"] == "p7"
    assert int(headers["content-length"]) == 3
    assert rest == b"abc"


def test_response_roundtrip_through_parse():
    raw = format_response(206, b"xy", headers={"content-range": "bytes 0-1/10"})
    head, rest = split_head(raw)
    status, reason, headers = parse_head(head, response=True)
    assert (status, reason) == ("206", "Partial Content")
    assert headers["content-range"] == "bytes 0-1/10"
    assert rest == b"xy"


def test_header_names_lowercased_last_duplicate_wins():
    head = b"GET /x HTTP/1.1\r\nX-Thing: a\r\nx-thing: b"
    _, _, headers = parse_head(head)
    assert headers == {"x-thing": "b"}


@pytest.mark.parametrize(
    "line",
    [b"", b"GET /x", b"get /x HTTP/1.1", b"GET /x HTTP/2.0", b"GET /x HTTP/1.1\r\nbroken"],
)
def test_malformed_heads_raise(line):
    with pytest.raises(ProtocolError):
        parse_head(line)


def test_split_head_incomplete_returns_none():
    assert split_head(b"GET / HTTP/1.1\r\n") is None


def test_split_head_oversized_raises():
    with pytest.raises(ProtocolError):
        split_head(b"x" * (70 * 1024))


def test_connection_close_disables_keep_alive():
    assert Request("GET", "/").keep_alive
    assert not Request("GET", "/", headers={"connection": "close"}).keep_alive
    raw = format_response(200, b"", keep_alive=False)
    head, _ = split_head(raw)
    _, _, headers = parse_head(head, response=True)
    assert headers["connection"] == "close"


def test_body_length_bounds():
    assert body_length({}) == 0
    assert body_length({"content-length": "17"}) == 17
    with pytest.raises(ProtocolError):
        body_length({"content-length": "-1"})
    with pytest.raises(ProtocolError):
        body_length({"content-length": "zebra"})
    with pytest.raises(ProtocolError):
        body_length({"content-length": str(1 << 40)})


# -- Range ------------------------------------------------------------------


def test_parse_range_forms():
    assert parse_range(None, 100) is None
    assert parse_range("bytes=0-9", 100) == (0, 10)
    assert parse_range("bytes=90-", 100) == (90, 100)
    # a stop past the end is clamped, HTTP-style (the last chunk over-asks)
    assert parse_range("bytes=96-199", 100) == (96, 100)


@pytest.mark.parametrize("value", ["bytes=100-", "bytes=-5", "bytes=9-3", "elephants=0-9"])
def test_parse_range_rejects(value):
    with pytest.raises(ProtocolError):
        parse_range(value, 100)


def test_name_re_rejects_path_tricks():
    assert NAME_RE.match("job-a.finetune_2")
    for bad in ("", "../etc", "a/b", ".hidden", "x" * 65):
        assert not NAME_RE.match(bad), bad


# -- content verification ---------------------------------------------------


def test_verify_blob_file_raw_roundtrip(tmp_path):
    store = FileStore(tmp_path / "s", name="s")
    payload = np.arange(512, dtype=np.float32)
    key = cas_key(payload_digest(payload), payload.nbytes)
    store.write(key, payload)
    assert verify_blob_file(store.path_of(key), key) == payload.nbytes


def test_verify_blob_file_rejects_wrong_content(tmp_path):
    store = FileStore(tmp_path / "s", name="s")
    payload = np.arange(512, dtype=np.float32)
    key = cas_key(payload_digest(payload), payload.nbytes)
    store.write(key, payload + 1.0)  # mislabelled upload
    with pytest.raises(ProtocolError, match="integrity"):
        verify_blob_file(store.path_of(key), key)


def test_verify_blob_file_rejects_wrong_size(tmp_path):
    store = FileStore(tmp_path / "s", name="s")
    payload = np.arange(512, dtype=np.float32)
    key = cas_key(payload_digest(payload), payload.nbytes + 4)
    store.write(key, payload)
    with pytest.raises(ProtocolError, match="payload bytes"):
        verify_blob_file(store.path_of(key), key)


def test_verify_blob_file_decodes_framed_payloads(tmp_path):
    store = FileStore(tmp_path / "s", name="s")
    payload = np.arange(2048, dtype=np.float32)
    frame = encoded_frame(payload, get_codec("shuffle-deflate"))
    key = cas_key(payload_digest(payload), payload.nbytes, codec="shuffle-deflate")
    store.write(key, frame)
    assert verify_blob_file(store.path_of(key), key) == payload.nbytes


def test_verify_blob_file_rejects_corrupt_frames(tmp_path):
    store = FileStore(tmp_path / "s", name="s")
    payload = np.arange(2048, dtype=np.float32)
    frame = encoded_frame(payload, get_codec("shuffle-deflate")).copy()
    frame[len(frame) // 2] ^= 0xFF  # bit rot mid-stream
    key = cas_key(payload_digest(payload), payload.nbytes, codec="shuffle-deflate")
    store.write(key, frame)
    with pytest.raises(ProtocolError):
        verify_blob_file(store.path_of(key), key)


def test_verify_blob_file_requires_cas_key(tmp_path):
    store = FileStore(tmp_path / "s", name="s")
    store.write("plain-key", np.arange(8, dtype=np.float32))
    with pytest.raises(ProtocolError, match="content-addressed"):
        verify_blob_file(store.path_of("plain-key"), "plain-key")


def test_parse_cas_key_roundtrip():
    key = cas_key(0xDEADBEEF, 4096)
    assert parse_cas_key(key) == (0xDEADBEEF, 4096, "raw")
    coded = cas_key(0xDEADBEEF, 4096, codec="shuffle-deflate")
    assert parse_cas_key(coded) == (0xDEADBEEF, 4096, "shuffle-deflate")
    for bad in ("plain", "cas123-4", "caszz" + "0" * 12 + "-4", ""):
        assert parse_cas_key(bad) is None
