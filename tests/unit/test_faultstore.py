"""Unit tests for the deterministic tier-I/O fault-injection layer."""

import errno
import os
import time

import numpy as np
import pytest

from repro.tiers import faultstore
from repro.tiers.faultstore import (
    FAULT_ENV,
    FaultInjectingStore,
    FaultPlan,
    FaultRule,
    arm_faults,
    clear_faults,
    maybe_wrap,
)
from repro.tiers.file_store import FileStore, TruncatedBlobError


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    """Every test starts and ends with nothing armed, in-process or via env."""
    monkeypatch.delenv(FAULT_ENV, raising=False)
    clear_faults()
    yield
    clear_faults()


@pytest.fixture
def store(tmp_path):
    return FileStore(tmp_path / "tier", name="nvme")


def _wrapped(store, *rules):
    return FaultInjectingStore(store, FaultPlan(rules))


class TestFaultRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule(kind="meteor-strike")
        with pytest.raises(ValueError):
            FaultRule(kind="eio", op="append")
        with pytest.raises(ValueError):
            FaultRule(kind="eio", count=-1)
        with pytest.raises(ValueError):
            FaultRule(kind="eio", after=-1)
        with pytest.raises(ValueError):
            FaultRule(kind="stall", seconds=-0.1)

    def test_matching_globs(self):
        rule = FaultRule(kind="eio", op="read", tier="pfs*", key="sg3.*")
        assert rule.matches("read", "pfs", "sg3.params")
        assert rule.matches("read", "pfs0", "sg3.exp_avg")
        assert not rule.matches("write", "pfs", "sg3.params")
        assert not rule.matches("read", "nvme", "sg3.params")
        assert not rule.matches("read", "pfs", "sg4.params")
        assert FaultRule(kind="eio").matches("write", "anything", "any.key")

    def test_spec_round_trip(self):
        plan = FaultPlan(
            [
                FaultRule(kind="eio", op="read", tier="nvme", count=2),
                FaultRule(kind="dead", op="write", tier="pfs", count=0, after=8),
                FaultRule(kind="stall", seconds=0.25, key="sg*.params"),
            ]
        )
        parsed = FaultPlan.from_spec(plan.to_spec())
        assert parsed.rules == plan.rules

    def test_from_spec_rejects_malformed(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("eio,count")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("eio,phase=read")


class TestFaultSchedule:
    def test_count_and_after_window(self, store):
        payload = np.arange(8, dtype=np.float32)
        store.save_from("k", payload)
        wrapped = _wrapped(store, FaultRule(kind="eio", op="read", after=1, count=2))
        out = np.empty_like(payload)
        wrapped.load_into("k", out)  # op 0: before the window
        for _ in range(2):  # ops 1, 2: inside
            with pytest.raises(OSError):
                wrapped.load_into("k", out)
        wrapped.load_into("k", out)  # op 3: healed
        np.testing.assert_array_equal(out, payload)
        assert wrapped.plan.injected == {"eio": 2}

    def test_count_zero_never_heals(self, store):
        wrapped = _wrapped(store, FaultRule(kind="dead", op="write", count=0))
        for _ in range(5):
            with pytest.raises(OSError):
                wrapped.save_from("k", np.zeros(4, dtype=np.float32))
        assert wrapped.plan.injected == {"dead": 5}

    def test_first_firing_rule_wins_but_all_counters_advance(self, store):
        plan = FaultPlan(
            [
                FaultRule(kind="eio", op="write", count=1),
                FaultRule(kind="enospc", op="write", after=1, count=1),
            ]
        )
        wrapped = FaultInjectingStore(store, plan)
        with pytest.raises(OSError) as first:
            wrapped.save_from("k", np.zeros(4, dtype=np.float32))
        assert first.value.errno == errno.EIO
        # The second rule's counter advanced during op 0, so it fires now.
        with pytest.raises(OSError) as second:
            wrapped.save_from("k", np.zeros(4, dtype=np.float32))
        assert second.value.errno == errno.ENOSPC

    def test_counters_shared_across_stores(self, tmp_path):
        plan = FaultPlan([FaultRule(kind="eio", op="write", after=1, count=1)])
        stores = {
            "a": FileStore(tmp_path / "a", name="a"),
            "b": FileStore(tmp_path / "b", name="b"),
        }
        wrapped = maybe_wrap(stores, plan=plan)
        wrapped["a"].save_from("k", np.zeros(4, dtype=np.float32))  # op 0
        with pytest.raises(OSError):  # op 1, on the *other* store
            wrapped["b"].save_from("k", np.zeros(4, dtype=np.float32))

    def test_reset_rewinds_the_schedule(self, store):
        wrapped = _wrapped(store, FaultRule(kind="eio", op="write", count=1))
        with pytest.raises(OSError):
            wrapped.save_from("k", np.zeros(4, dtype=np.float32))
        wrapped.save_from("k", np.zeros(4, dtype=np.float32))
        wrapped.plan.reset()
        with pytest.raises(OSError):
            wrapped.save_from("k", np.zeros(4, dtype=np.float32))


class TestInjectionKinds:
    def test_enospc(self, store):
        wrapped = _wrapped(store, FaultRule(kind="enospc", op="write"))
        with pytest.raises(OSError) as excinfo:
            wrapped.save_from("k", np.zeros(4, dtype=np.float32))
        assert excinfo.value.errno == errno.ENOSPC

    def test_short_read_is_the_stores_truncation_error(self, store):
        payload = np.arange(8, dtype=np.float32)
        store.save_from("k", payload)
        wrapped = _wrapped(store, FaultRule(kind="short-read", op="read"))
        with pytest.raises(TruncatedBlobError):
            wrapped.load_into("k", np.empty_like(payload))

    def test_stall_delays_then_succeeds(self, store):
        payload = np.arange(8, dtype=np.float32)
        store.save_from("k", payload)
        wrapped = _wrapped(store, FaultRule(kind="stall", op="read", seconds=0.05))
        out = np.empty_like(payload)
        start = time.perf_counter()
        wrapped.load_into("k", out)
        assert time.perf_counter() - start >= 0.04
        np.testing.assert_array_equal(out, payload)

    def test_torn_write_leaves_truncated_blob_under_final_key(self, store):
        payload = np.arange(64, dtype=np.float32)
        wrapped = _wrapped(store, FaultRule(kind="torn-write", op="write"))
        with pytest.raises(OSError):
            wrapped.save_from("k", payload)
        # The crashed-legacy-writer state: the final key exists but holds a
        # truncated payload; the reader-side validation must reject it.
        assert store.contains("k")
        with pytest.raises(TruncatedBlobError):
            store.load_into("k", np.empty_like(payload))

    def test_torn_write_rule_on_read_degrades_to_eio(self, store):
        payload = np.arange(8, dtype=np.float32)
        store.save_from("k", payload)
        wrapped = _wrapped(store, FaultRule(kind="torn-write", op="any"))
        with pytest.raises(OSError) as excinfo:
            wrapped.read("k")
        assert excinfo.value.errno == errno.EIO


class TestWrapperTransparency:
    def test_control_plane_passes_through(self, store):
        wrapped = _wrapped(store, FaultRule(kind="eio", op="read", after=100))
        payload = np.arange(8, dtype=np.float32)
        wrapped.save_from("k", payload)
        assert wrapped.name == "nvme"
        assert wrapped.root == store.root
        assert wrapped.contains("k")
        dtype, shape = wrapped.meta_of("k")
        assert dtype == np.float32 and shape == (8,)
        wrapped.delete("k")
        assert not store.contains("k")


class TestArming:
    def test_maybe_wrap_is_a_no_op_when_disarmed(self, store):
        stores = maybe_wrap({"nvme": store})
        assert stores["nvme"] is store

    def test_in_process_arming_wraps_and_shares_one_plan(self, tmp_path):
        plan = arm_faults(FaultPlan([FaultRule(kind="eio", op="write", count=1)]))
        try:
            stores = maybe_wrap(
                {
                    "a": FileStore(tmp_path / "a", name="a"),
                    "b": FileStore(tmp_path / "b", name="b"),
                }
            )
            assert all(isinstance(s, FaultInjectingStore) for s in stores.values())
            assert stores["a"].plan is plan and stores["b"].plan is plan
        finally:
            clear_faults()
        assert faultstore.active_plan() is None

    def test_env_arming_yields_fresh_counters_per_wrap(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "eio,op=write,count=1")
        for attempt in range(2):
            stores = maybe_wrap({"a": FileStore(tmp_path / f"a{attempt}", name="a")})
            with pytest.raises(OSError):  # each wrap replays from op 0
                stores["a"].save_from("k", np.zeros(4, dtype=np.float32))
            stores["a"].save_from("k", np.zeros(4, dtype=np.float32))

    def test_in_process_plan_takes_precedence_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "enospc,op=write")
        plan = arm_faults(FaultPlan([FaultRule(kind="eio", op="read")]))
        try:
            assert faultstore.active_plan() is plan
        finally:
            clear_faults()
        env_plan = faultstore.active_plan()
        assert env_plan is not None
        assert env_plan.rules[0].kind == "enospc"

    def test_virtual_tier_smoke_under_env_arming(self, tmp_path, monkeypatch):
        """A VirtualTier built under REPRO_IO_FAULT routes through injection."""
        from repro.core.config import MLPOffloadConfig, TierConfig
        from repro.core.virtual_tier import VirtualTier

        monkeypatch.setenv(FAULT_ENV, "eio,op=read,count=1,key=sg0.params")
        (tmp_path / "t0").mkdir()
        config = MLPOffloadConfig(
            tiers=(TierConfig("t0", str(tmp_path / "t0"), read_bw=1e9, write_bw=1e9),),
            subgroup_size=8,
            enable_multipath=False,
            io_retry_attempts=1,  # surface the injected fault, do not absorb it
        )
        with VirtualTier(config) as tier:
            tier.build_placement([0])
            tier.flush_subgroup("sg0", 0, {"params": np.arange(8, dtype=np.float32)})
            with pytest.raises(OSError):
                tier.fetch_subgroup("sg0", 0, ["params"])
            # The schedule heals after one hit; the retry-free refetch works.
            arrays = tier.fetch_subgroup("sg0", 0, ["params"])
            np.testing.assert_array_equal(arrays["params"], np.arange(8, dtype=np.float32))

    def test_env_round_trip_through_os_environ(self, store):
        plan = FaultPlan([FaultRule(kind="dead", op="write", tier="pfs", count=0)])
        os.environ[FAULT_ENV] = plan.to_spec()
        try:
            active = faultstore.active_plan()
        finally:
            del os.environ[FAULT_ENV]
        assert active is not None and active.rules == plan.rules
