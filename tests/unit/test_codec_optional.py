"""The import-gated lz4/zstd codecs (:mod:`repro.codec.codecs`).

The container running the seed test suite has neither ``lz4`` nor
``zstandard`` installed, so these tests drive both registration arms with a
fake ``import_module``: a stub backend standing in for the real package
(the codec's shuffle + compress + frame plumbing is identical either way —
only the compressor call changes), and forced ImportErrors for the absent
arm.  CI's ``io-backend-smoke`` job installs the real packages, where the
same codecs register against the genuine modules.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.codec import codecs as C
from repro.codec.framing import decode_frame_into, encoded_frame


class FakeLz4Block:
    """Stub of ``lz4.block``'s one-shot API (length-prefixed deflate)."""

    @staticmethod
    def compress(data, store_size=True):
        assert store_size, "the codec must embed the raw size"
        raw = bytes(data)
        return struct.pack("<I", len(raw)) + zlib.compress(raw, 1)

    @staticmethod
    def decompress(payload):
        (size,) = struct.unpack_from("<I", payload)
        raw = zlib.decompress(payload[4:])
        assert len(raw) == size
        return raw


class FakeZstd:
    """Stub of the simple ``zstd`` module's one-shot API."""

    @staticmethod
    def compress(data, level):
        return zlib.compress(bytes(data), 1)

    @staticmethod
    def decompress(payload):
        return zlib.decompress(bytes(payload))


class FakeZstandard:
    """Stub of the full ``zstandard`` binding's compressor objects."""

    class ZstdCompressor:
        def __init__(self, level=3):
            self.level = level

        def compress(self, data):
            return zlib.compress(bytes(data), 1)

    class ZstdDecompressor:
        def decompress(self, payload, max_output_size=0):
            raw = zlib.decompress(bytes(payload))
            assert max_output_size == 0 or len(raw) <= max_output_size
            return raw


def _importer(available):
    def import_module(name):
        if name in available:
            return available[name]
        raise ImportError(f"No module named {name!r}")

    return import_module


@pytest.fixture
def registry():
    """Snapshot and restore the codec registry around each test."""
    codecs_before = dict(C._CODECS)
    unavailable_before = dict(C._UNAVAILABLE)
    yield
    C._CODECS.clear()
    C._CODECS.update(codecs_before)
    C._UNAVAILABLE.clear()
    C._UNAVAILABLE.update(unavailable_before)


@pytest.fixture
def payload(rng):
    return rng.standard_normal(4_096).astype(np.float32)


class TestRegistrationArms:
    def test_absent_packages_record_reasons(self, registry):
        C._CODECS.pop("lz4", None)
        C._CODECS.pop("zstd", None)
        C._UNAVAILABLE.clear()
        C._register_optional_codecs(import_module=_importer({}))
        assert "lz4" not in C._CODECS and "zstd" not in C._CODECS
        assert "lz4" in C._UNAVAILABLE and "zstd" in C._UNAVAILABLE
        with pytest.raises(C.CodecError, match="installed"):
            C.get_codec("lz4")

    def test_lz4_registers_when_importable(self, registry):
        C._register_optional_codecs(import_module=_importer({"lz4.block": FakeLz4Block}))
        assert isinstance(C.get_codec("lz4"), C.Lz4Codec)
        assert "lz4" in C.codec_names()
        assert "lz4" not in C._UNAVAILABLE

    def test_zstandard_preferred_over_simple_zstd(self, registry):
        C._register_optional_codecs(
            import_module=_importer({"zstandard": FakeZstandard, "zstd": FakeZstd})
        )
        codec = C.get_codec("zstd")
        assert isinstance(codec, C.ZstdCodec)
        assert codec._module is FakeZstandard

    def test_simple_zstd_is_the_fallback(self, registry):
        C._register_optional_codecs(import_module=_importer({"zstd": FakeZstd}))
        assert C.get_codec("zstd")._module is FakeZstd

    def test_raw_name_is_reserved(self, registry):
        class RawImpostor(C.Codec):
            name = C.RAW_CODEC

        with pytest.raises(C.CodecError, match="reserved"):
            C.register_codec(RawImpostor())


class TestGatedCodecRoundTrips:
    @pytest.fixture(params=["lz4", "zstd-full", "zstd-simple"])
    def codec(self, request, registry):
        if request.param == "lz4":
            return C.Lz4Codec(FakeLz4Block)
        if request.param == "zstd-full":
            return C.ZstdCodec(FakeZstandard, simple_api=False)
        return C.ZstdCodec(FakeZstd, simple_api=True)

    def test_chunk_roundtrip(self, codec, payload):
        chunk = payload.view(np.uint8)
        scratch = np.empty(chunk.size, dtype=np.uint8)
        encoded = codec.encode_chunk(chunk, payload.itemsize, scratch)
        out = np.empty(chunk.size, dtype=np.uint8)
        codec.decode_chunk(encoded, out, payload.itemsize)
        np.testing.assert_array_equal(out, chunk)

    def test_frame_roundtrip_records_codec_name(self, codec, payload, registry):
        C.register_codec(codec)
        frame = encoded_frame(payload, codec, chunk_bytes=1024)
        assert codec.name.encode("ascii") in bytes(frame[:64])
        out = np.empty_like(payload)
        decode_frame_into(frame, out)
        np.testing.assert_array_equal(out, payload)

    def test_corrupt_chunk_raises_codec_error(self, codec, payload):
        with pytest.raises(C.CodecError, match="corrupt"):
            codec.decode_chunk(b"\x00garbage", np.empty(16, dtype=np.uint8), 4)

    def test_shuffle_makes_float_payloads_compress(self, codec, rng):
        # The honest-compression headline: shuffled float32 noise with a
        # quantized mantissa compresses, unshuffled it barely does.
        data = (rng.standard_normal(16_384).astype(np.float16)).astype(np.float32)
        chunk = data.view(np.uint8)
        scratch = np.empty(chunk.size, dtype=np.uint8)
        encoded = codec.encode_chunk(chunk, 4, scratch)
        assert len(encoded) < chunk.size
