"""Property-style tests: the zero-copy store paths match the legacy format.

``save_from``/``load_into`` must be bitwise-compatible with the historical
``_encode``/``_decode`` blob format — same on-disk bytes, same throttle and
stats accounting — and the fallback ``read`` must return a writable array
from a single allocation.
"""

import numpy as np
import pytest

from repro.aio.throttle import BandwidthThrottle
from repro.tiers.file_store import FileStore, StoreError, blob_nbytes

ALL_DTYPES = ["float16", "float32", "float64", "int32", "int64", "uint8"]


def _random_array(rng, dtype, shape):
    return (rng.standard_normal(shape) * 100).astype(dtype)


class TestOnDiskCompatibility:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("shape", [(1,), (257,), (3, 5, 7)])
    def test_save_from_writes_legacy_blob_bytes(self, tmp_path, rng, dtype, shape):
        store = FileStore(tmp_path / "tier")
        array = _random_array(rng, dtype, shape)
        store.save_from("k", array)
        on_disk = (tmp_path / "tier" / "k.bin").read_bytes()
        assert on_disk == FileStore._encode(array)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_load_into_reads_legacy_blobs(self, tmp_path, rng, dtype):
        store = FileStore(tmp_path / "tier")
        array = _random_array(rng, dtype, (129,))
        # Write through the legacy encoder directly, bypassing save_from.
        (tmp_path / "tier" / "legacy.bin").write_bytes(FileStore._encode(array))
        out = np.empty(129, dtype=dtype)
        restored = store.load_into("legacy", out)
        assert restored is out
        np.testing.assert_array_equal(out, array)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_round_trip_matches_legacy_decode_bitwise(self, tmp_path, rng, dtype):
        store = FileStore(tmp_path / "tier")
        array = _random_array(rng, dtype, (513,))
        store.save_from("k", array)
        blob = (tmp_path / "tier" / "k.bin").read_bytes()
        legacy = FileStore._decode(blob, "k")
        out = np.empty_like(array)
        store.load_into("k", out)
        assert out.tobytes() == legacy.tobytes() == array.tobytes()

    def test_noncontiguous_source_serialized_correctly(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        base = _random_array(rng, "float32", (64,))
        strided = base[::2]
        store.save_from("s", strided)
        np.testing.assert_array_equal(store.read("s"), strided)

    def test_blob_nbytes_matches_on_disk_size(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        array = _random_array(rng, "float32", (100,))
        written = store.save_from("k", array)
        assert written == blob_nbytes(array) == store.size_of("k")


class TestByteAccounting:
    def test_write_and_save_from_account_identically(self, tmp_path, rng):
        array = _random_array(rng, "float32", (1000,))
        a = FileStore(tmp_path / "a")
        b = FileStore(tmp_path / "b")
        assert a.write("k", array) == b.save_from("k", array)
        assert a.stats().bytes_written == b.stats().bytes_written
        assert a.used_bytes == b.used_bytes

    def test_read_and_load_into_account_identically(self, tmp_path, rng):
        array = _random_array(rng, "float32", (1000,))
        store = FileStore(tmp_path / "tier")
        store.save_from("k", array)
        store.read("k")
        value_bytes = store.stats().bytes_read
        store.load_into("k", np.empty_like(array))
        assert store.stats().bytes_read == 2 * value_bytes
        assert store.stats().read_ops == 2

    def test_throttle_charges_full_blob_both_paths(self, tmp_path, rng):
        array = _random_array(rng, "float32", (1000,))
        throttle_a = BandwidthThrottle(1e9, simulate=True)
        throttle_b = BandwidthThrottle(1e9, simulate=True)
        a = FileStore(tmp_path / "a", throttle=throttle_a)
        b = FileStore(tmp_path / "b", throttle=throttle_b)
        a.write("k", array)
        a.read("k")
        b.save_from("k", array)
        b.load_into("k", np.empty_like(array))
        assert throttle_a.consumed_bytes == throttle_b.consumed_bytes
        assert throttle_a.consumed_bytes == 2 * blob_nbytes(array)

    def test_capacity_enforced_on_save_from(self, tmp_path):
        store = FileStore(tmp_path / "tier", capacity=200)
        store.save_from("a", np.zeros(16, dtype=np.float32))
        with pytest.raises(StoreError):
            store.save_from("b", np.zeros(64, dtype=np.float32))


class TestSingleAllocationRead:
    def test_read_returns_writable_owned_array(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        array = _random_array(rng, "float32", (100,))
        store.write("k", array)
        restored = store.read("k")
        assert restored.flags.writeable
        restored[:] = 0.0  # a frombuffer(...) result would raise here
        np.testing.assert_array_equal(store.read("k"), array)

    def test_multidimensional_read_shape(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        array = _random_array(rng, "float32", (3, 5, 7))
        store.write("nd", array)
        restored = store.read("nd")
        assert restored.shape == (3, 5, 7)
        np.testing.assert_array_equal(restored, array)


class TestLoadIntoValidation:
    def test_missing_key(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        with pytest.raises(StoreError):
            store.load_into("missing", np.empty(4, dtype=np.float32))

    def test_dtype_mismatch(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        store.write("k", _random_array(rng, "float32", (16,)))
        with pytest.raises(StoreError, match="dtype mismatch"):
            store.load_into("k", np.empty(16, dtype=np.float64))

    def test_size_mismatch(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        store.write("k", _random_array(rng, "float32", (16,)))
        with pytest.raises(StoreError, match="size mismatch"):
            store.load_into("k", np.empty(17, dtype=np.float32))

    def test_flat_destination_accepts_nd_blob(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        array = _random_array(rng, "float32", (4, 8))
        store.write("k", array)
        out = np.empty(32, dtype=np.float32)
        store.load_into("k", out)
        np.testing.assert_array_equal(out, array.reshape(-1))

    def test_noncontiguous_destination_rejected(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        store.write("k", _random_array(rng, "float32", (16,)))
        out = np.empty(32, dtype=np.float32)[::2]
        with pytest.raises(StoreError, match="contiguous"):
            store.load_into("k", out)

    def test_truncated_blob_detected(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        store.write("k", _random_array(rng, "float32", (16,)))
        path = tmp_path / "tier" / "k.bin"
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(StoreError):
            store.load_into("k", np.empty(16, dtype=np.float32))

    def test_meta_of_reads_header_only(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        array = _random_array(rng, "float16", (3, 4))
        store.write("k", array)
        dtype, shape = store.meta_of("k")
        assert dtype == np.float16
        assert shape == (3, 4)
