"""Unit tests for gradient-conversion policies, concurrency control and engine stats."""

import numpy as np
import pytest

from repro.aio.locks import TierLockManager
from repro.core.concurrency import NodeConcurrencyController
from repro.core.gradient_policy import (
    GradientConversionPolicy,
    backward_flush_payload,
    gradient_traffic,
    update_time_gradient,
)
from repro.core.stats import IterationStats, UpdatePhaseStats, aggregate_tier_distribution
from repro.train.gradients import GradientAccumulator


@pytest.fixture
def accumulator(small_layout):
    acc = GradientAccumulator(small_layout, rank=0)
    rng = np.random.default_rng(0)
    for index in acc.subgroup_indices:
        acc.accumulate(index, rng.standard_normal(1000).astype(np.float16))
    acc.mark_microbatch_done()
    return acc


class TestGradientTraffic:
    def test_delayed_policy_moves_no_gradient_bytes_through_storage(self):
        traffic = gradient_traffic(GradientConversionPolicy.DELAYED_FP16, 1000)
        assert traffic.storage_bytes == 0
        assert traffic.conversion_bytes == 2000

    def test_baseline_policy_moves_fp32_both_ways(self):
        traffic = gradient_traffic(GradientConversionPolicy.FLUSH_FP32, 1000)
        assert traffic.backward_flush_bytes == 4000
        assert traffic.update_fetch_bytes == 4000
        assert traffic.storage_bytes == 8000

    def test_validation(self):
        with pytest.raises(ValueError):
            gradient_traffic(GradientConversionPolicy.FLUSH_FP32, -1)


class TestUpdateTimeGradient:
    def test_delayed_policy_reads_the_host_accumulator(self, accumulator):
        grad = update_time_gradient(GradientConversionPolicy.DELAYED_FP16, accumulator, 0)
        np.testing.assert_allclose(grad, accumulator.gradient_fp32(0))
        assert grad.dtype == np.float32

    def test_baseline_policy_prefers_the_stored_copy(self, accumulator, rng):
        stored = rng.standard_normal(1000).astype(np.float32)
        grad = update_time_gradient(
            GradientConversionPolicy.FLUSH_FP32, accumulator, 0, stored_fp32=stored
        )
        np.testing.assert_allclose(grad, stored)

    def test_baseline_policy_falls_back_to_accumulator(self, accumulator):
        grad = update_time_gradient(GradientConversionPolicy.FLUSH_FP32, accumulator, 0)
        np.testing.assert_allclose(grad, accumulator.gradient_fp32(0))

    def test_backward_flush_payload(self, accumulator):
        assert backward_flush_payload(GradientConversionPolicy.DELAYED_FP16, accumulator, 0) is None
        payload = backward_flush_payload(GradientConversionPolicy.FLUSH_FP32, accumulator, 0)
        assert payload is not None and payload.dtype == np.float32
        np.testing.assert_allclose(
            payload, accumulator.gradient_fp16(0).astype(np.float32)
        )


class TestNodeConcurrencyController:
    def test_exclusive_context_blocks_other_workers(self):
        controller = NodeConcurrencyController()
        with controller.exclusive("nvme", "rank0"):
            assert controller.try_exclusive("nvme", "rank1") is None
            assert controller.try_exclusive("pfs", "rank1") is not None
        assert controller.try_exclusive("nvme", "rank1") is not None

    def test_disabled_controller_never_blocks(self):
        controller = NodeConcurrencyController(enabled=False)
        with controller.exclusive("nvme", "rank0"):
            lease = controller.try_exclusive("nvme", "rank1")
            assert lease is not None
            lease.release()  # no-op, must not raise
        summary = controller.contention_summary(["nvme"])
        assert "_bypassed" in summary

    def test_preferred_tier_prefers_held_then_free(self):
        manager = TierLockManager()
        controller = NodeConcurrencyController(manager)
        lease = manager.acquire("nvme", "rank0")
        # rank0 already holds nvme -> keep using it.
        assert controller.preferred_tier(["pfs", "nvme"], "rank0") == "nvme"
        # rank1 should avoid the held tier.
        assert controller.preferred_tier(["nvme", "pfs"], "rank1") == "pfs"
        lease.release()
        with pytest.raises(ValueError):
            controller.preferred_tier([], "rank0")

    def test_contention_summary_counts(self):
        controller = NodeConcurrencyController()
        with controller.exclusive("nvme", "rank0"):
            pass
        summary = controller.contention_summary(["nvme"])
        assert summary["nvme"]["acquisitions"] == 1

    def test_timeout_raises(self):
        controller = NodeConcurrencyController()
        lease = controller.lock_manager.acquire("nvme", "rank0")
        with pytest.raises(TimeoutError):
            with controller.exclusive("nvme", "rank1", timeout=0.05):
                pass
        lease.release()


class TestStats:
    def test_update_phase_derived_metrics(self):
        stats = UpdatePhaseStats(
            subgroups_processed=10,
            params_updated=1000,
            cache_hits=4,
            cache_misses=6,
            fetch_bytes=600,
            fetch_seconds=2.0,
            flush_bytes=400,
            flush_seconds=2.0,
            compute_seconds=1.0,
            wall_seconds=5.0,
        )
        assert stats.cache_hit_rate == pytest.approx(0.4)
        assert stats.update_throughput == pytest.approx(200.0)
        assert stats.io_seconds == pytest.approx(4.0)
        assert stats.effective_io_throughput == pytest.approx(250.0)
        assert stats.io_fraction == pytest.approx(0.8)

    def test_zero_division_guards(self):
        stats = UpdatePhaseStats()
        assert stats.cache_hit_rate == 0.0
        assert stats.update_throughput == 0.0
        assert stats.effective_io_throughput == 0.0
        assert stats.io_fraction == 0.0

    def test_merge_adds_counters_and_keeps_max_wall(self):
        a = UpdatePhaseStats(params_updated=10, wall_seconds=2.0, cache_hits=1)
        b = UpdatePhaseStats(params_updated=20, wall_seconds=3.0, cache_misses=2)
        merged = a.merge(b)
        assert merged.params_updated == 30
        assert merged.wall_seconds == 3.0
        assert merged.cache_hits == 1 and merged.cache_misses == 2

    def test_iteration_stats_breakdown(self):
        it = IterationStats(iteration=0, forward_seconds=1.0, backward_seconds=2.0)
        it.update.wall_seconds = 3.0
        assert it.total_seconds == pytest.approx(6.0)
        assert it.breakdown() == {"forward": 1.0, "backward": 2.0, "update": 3.0}

    def test_aggregate_tier_distribution(self):
        total = aggregate_tier_distribution(
            {"rank0": {"nvme": 10.0, "host": 5.0}, "rank1": {"nvme": 20.0, "pfs": 1.0}}
        )
        assert total == {"nvme": 30.0, "host": 5.0, "pfs": 1.0}
