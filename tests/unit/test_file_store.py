"""Unit tests for the file-backed tier store."""

import numpy as np
import pytest

from repro.aio.throttle import BandwidthThrottle
from repro.tiers.file_store import FileStore, StoreError


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", ["float16", "float32", "float64", "int32", "int64", "uint8"])
    def test_write_read_preserves_bits(self, tmp_path, rng, dtype):
        store = FileStore(tmp_path / "tier")
        array = (rng.standard_normal(257) * 100).astype(dtype)
        store.write("blob", array)
        restored = store.read("blob")
        assert restored.dtype == array.dtype
        assert restored.shape == array.shape
        np.testing.assert_array_equal(restored, array)

    def test_multidimensional_shapes_preserved(self, tmp_path, rng):
        store = FileStore(tmp_path / "tier")
        array = rng.standard_normal((3, 5, 7)).astype(np.float32)
        store.write("nd", array)
        np.testing.assert_array_equal(store.read("nd"), array)

    def test_overwrite_replaces_content(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        store.write("k", np.arange(10, dtype=np.float32))
        store.write("k", np.arange(5, dtype=np.float32))
        assert store.read("k").size == 5

    def test_keys_and_contains_and_delete(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        store.write("b", np.zeros(1, dtype=np.float32))
        store.write("a", np.zeros(1, dtype=np.float32))
        assert list(store.keys()) == ["a", "b"]
        assert store.contains("a")
        store.delete("a")
        assert not store.contains("a")
        with pytest.raises(StoreError):
            store.delete("a")

    def test_rediscovers_existing_blobs(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        store.write("persisted", np.ones(8, dtype=np.float32))
        reopened = FileStore(tmp_path / "tier")
        assert reopened.used_bytes > 0
        np.testing.assert_array_equal(reopened.read("persisted"), np.ones(8, dtype=np.float32))


class TestFailureModes:
    def test_missing_key_raises(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        with pytest.raises(StoreError):
            store.read("missing")
        with pytest.raises(StoreError):
            store.size_of("missing")

    def test_invalid_keys_rejected(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(StoreError):
                store.write(bad, np.zeros(1, dtype=np.float32))

    def test_corrupted_blob_detected(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        store.write("k", np.arange(16, dtype=np.float32))
        path = tmp_path / "tier" / "k.bin"
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # truncate the payload
        with pytest.raises(StoreError):
            store.read("k")

    def test_foreign_file_rejected(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        (tmp_path / "tier" / "alien.bin").write_bytes(b"not a subgroup blob at all")
        with pytest.raises(StoreError):
            store.read("alien")

    def test_capacity_limit_enforced(self, tmp_path):
        store = FileStore(tmp_path / "tier", capacity=200)
        store.write("a", np.zeros(16, dtype=np.float32))
        with pytest.raises(StoreError):
            store.write("b", np.zeros(64, dtype=np.float32))

    def test_unsupported_dtype_rejected(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        with pytest.raises(StoreError):
            store.write("c", np.zeros(4, dtype=np.complex64))


class TestAccounting:
    def test_stats_track_bytes_and_ops(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        store.write("a", np.zeros(100, dtype=np.float32))
        store.read("a")
        stats = store.stats()
        assert stats.write_ops == 1 and stats.read_ops == 1
        assert stats.bytes_written > 400
        assert stats.bytes_read == stats.bytes_written
        store.reset_stats()
        assert store.stats().read_ops == 0

    def test_throttle_charges_modelled_time(self, tmp_path):
        throttle = BandwidthThrottle(1e6, simulate=True)
        store = FileStore(tmp_path / "tier", throttle=throttle)
        payload = np.zeros(250_000, dtype=np.float32)  # 1 MB
        store.write("a", payload)
        store.read("a")
        stats = store.stats()
        # Modelled transfer time at 1 MB/s is about a second in each direction.
        assert stats.write_seconds >= 0.9
        assert stats.read_seconds >= 0.9
        assert stats.read_bandwidth == pytest.approx(1e6, rel=0.2)

    def test_clear_removes_everything(self, tmp_path):
        store = FileStore(tmp_path / "tier")
        for i in range(3):
            store.write(f"k{i}", np.zeros(4, dtype=np.float32))
        store.clear()
        assert list(store.keys()) == []
        assert store.used_bytes == 0
