"""Unit tests for tier and testbed specifications (Table 1)."""

import pytest

from repro.tiers.spec import TESTBED_1, TESTBED_2, StorageTierSpec, TierKind
from repro.tiers.spec import testbed_by_name as lookup_testbed
from repro.util.bytesize import GB


class TestStorageTierSpec:
    def test_effective_bw_is_min_of_read_write(self):
        tier = TESTBED_1.tier("nvme")
        assert tier.effective_bw == pytest.approx(5.3 * GB)
        pfs = TESTBED_1.tier("pfs")
        assert pfs.effective_bw == pytest.approx(3.6 * GB)

    def test_round_trip_bw_is_harmonic_mean(self):
        tier = StorageTierSpec("x", TierKind.NVME, read_bw=4.0, write_bw=4.0, capacity=10)
        assert tier.round_trip_bw == pytest.approx(4.0)
        asym = StorageTierSpec("y", TierKind.NVME, read_bw=6.0, write_bw=3.0, capacity=10)
        assert asym.round_trip_bw == pytest.approx(4.0)

    def test_scaled_preserves_everything_else(self):
        tier = TESTBED_1.tier("pfs").scaled(0.5)
        assert tier.read_bw == pytest.approx(1.8 * GB)
        assert tier.write_bw == pytest.approx(1.8 * GB)
        assert tier.name == "pfs"
        assert tier.shared_across_nodes

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            StorageTierSpec("bad", TierKind.NVME, read_bw=0, write_bw=1, capacity=1)
        with pytest.raises(ValueError):
            StorageTierSpec("bad", TierKind.NVME, read_bw=1, write_bw=1, capacity=0)
        with pytest.raises(ValueError):
            TESTBED_1.tier("pfs").scaled(0)

    def test_tier_kind_classification(self):
        assert TierKind.NVME.is_third_level and TierKind.NVME.is_node_local
        assert TierKind.PFS.is_third_level and not TierKind.PFS.is_node_local
        assert not TierKind.HOST.is_third_level and TierKind.HOST.is_node_local


class TestTestbeds:
    def test_table1_testbed1_values(self):
        node = TESTBED_1
        assert node.gpus_per_node == 4
        assert node.cpu_cores == 96
        assert node.tier("nvme").read_bw == pytest.approx(6.9 * GB)
        assert node.tier("pfs").write_bw == pytest.approx(3.6 * GB)
        assert node.d2h_bw == pytest.approx(55 * GB)

    def test_table1_testbed2_values(self):
        node = TESTBED_2
        assert node.cpu_cores == 32
        assert node.tier("nvme").read_bw == pytest.approx(13.5 * GB)
        assert node.tier("pfs").write_bw == pytest.approx(13.7 * GB)

    def test_host_to_gpu_memory_ratios_match_paper(self):
        # 1.6:1 on Testbed-1 and 3.2:1 on Testbed-2 (§4.1).
        assert TESTBED_1.host_to_gpu_memory_ratio == pytest.approx(1.6, rel=0.05)
        assert TESTBED_2.host_to_gpu_memory_ratio == pytest.approx(3.2, rel=0.05)

    def test_local_and_shared_tier_partition(self):
        local = [t.name for t in TESTBED_1.local_tiers()]
        shared = [t.name for t in TESTBED_1.shared_tiers()]
        assert local == ["nvme"]
        assert shared == ["pfs"]

    def test_lookup_helpers(self):
        assert lookup_testbed("Testbed-1") is TESTBED_1
        assert lookup_testbed("testbed-2") is TESTBED_2
        with pytest.raises(KeyError):
            lookup_testbed("testbed-3")
        with pytest.raises(KeyError):
            TESTBED_1.tier("tape")

    def test_with_storage_replaces_tiers(self):
        only_nvme = TESTBED_1.with_storage(TESTBED_1.tier("nvme"))
        assert list(only_nvme.storage) == ["nvme"]
        assert TESTBED_1.storage.keys() == {"nvme", "pfs"}
