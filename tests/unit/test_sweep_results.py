"""Unit tests for SWEEP_*.json payloads and their trajectory-gate compatibility."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.sweep.matrix import matrix_by_name
from repro.sweep.results import (
    build_experiment_result,
    build_payload,
    figure_result,
    payload_path,
    write_payload,
)
from repro.sweep.runner import CellRecord, SweepError, SweepRunner

_MODULE_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "check_trajectory.py"
_spec = importlib.util.spec_from_file_location("check_trajectory", _MODULE_PATH)
check_trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_trajectory)


@pytest.fixture(scope="module")
def mini_sweep(tmp_path_factory):
    matrix = matrix_by_name("weak_scaling")
    runner = SweepRunner(
        matrix,
        repeats=2,
        sweep_dir=tmp_path_factory.mktemp("cells"),
        include={"config": ["40B@1", "70B@2"]},
    )
    return matrix, runner.run().records


def test_payload_shape(mini_sweep):
    matrix, records = mini_sweep
    payload = build_payload(matrix, records, repeats=2)
    assert payload["experiment"] == "sweep-weak_scaling"
    assert payload["matrix"] == "weak_scaling"
    assert payload["kind"] == "sim"
    assert payload["repeats"] == 2
    assert payload["cell_count"] == 4
    assert payload["cell_keys"] == [record.key for record in records]
    assert payload["runner_elapsed_s"] > 0

    cells = payload["series"]["cells"]
    assert len(cells) == 4
    for row in cells:
        assert row["repeats"] == 2
        assert row["update_s_median"] > 0
        assert row["update_s_iqr"] == 0.0  # sim repeats are bit-identical

    trajectory = payload["series"]["trajectory"]
    assert len(trajectory) == 8  # (cell, repeat) pairs
    assert {row["engine"] for row in trajectory} == {"DeepSpeed ZeRO-3", "MLP-Offload"}
    assert all(row["update_s"] > 0 for row in trajectory)

    # Boxplot block: five-number summary per metric per cell label.
    update_box = payload["boxplot"]["update_s"]
    assert len(update_box) == 4
    for summary in update_box.values():
        assert {"q1", "median", "q3", "iqr", "whisker_lo", "whisker_hi"} <= set(summary)

    # Engine pairs exist for both configs -> a headline median speedup.
    assert payload["median_speedup"] > 1.0


def test_payload_without_timing_is_deterministic(mini_sweep):
    matrix, records = mini_sweep
    one = build_payload(matrix, records, repeats=2, include_timing=False)
    two = build_payload(matrix, records, repeats=2, include_timing=False)
    assert "runner_elapsed_s" not in one
    assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)


def test_payload_requires_records(mini_sweep):
    matrix, _ = mini_sweep
    with pytest.raises(SweepError, match="zero cell records"):
        build_payload(matrix, [], repeats=2)


def test_gate_extracts_sweep_headline_metrics(mini_sweep):
    matrix, records = mini_sweep
    metrics = check_trajectory.extract_metrics(build_payload(matrix, records, repeats=2))
    value, direction = metrics["median_speedup"]
    assert value > 1.0 and direction == "higher"
    assert metrics["median_step_s:MLP-Offload"][1] == "lower"
    assert metrics["median_step_s:DeepSpeed ZeRO-3"][0] > metrics["median_step_s:MLP-Offload"][0]


def test_gate_flags_speedup_regression(mini_sweep):
    matrix, records = mini_sweep
    payload = build_payload(matrix, records, repeats=2)
    baseline = check_trajectory.extract_metrics(payload)
    degraded = dict(payload)
    degraded["median_speedup"] = payload["median_speedup"] / 2.0
    candidate = check_trajectory.extract_metrics(degraded)
    assert check_trajectory.compare_metrics(baseline, baseline) == []
    problems = check_trajectory.compare_metrics(baseline, candidate)
    assert any("median_speedup" in problem for problem in problems)
    # The regression survives the cross-machine gate: speedups are ratios.
    assert check_trajectory.compare_metrics(baseline, candidate, ratios_only=True)


def test_engine_check_ratios():
    matrix = matrix_by_name("engine_smoke")
    params = matrix.cells()[:2]
    records = [
        CellRecord(
            matrix=matrix.name,
            key=f"k{i}",
            params=dict(cell),
            repeats=[
                {
                    "mean_step_s": 0.01,
                    "matches_reference": i == 0,
                    "restore_ok": True,
                }
            ],
            elapsed_s=[0.01],
        )
        for i, cell in enumerate(params)
    ]
    payload = build_payload(matrix, records, repeats=1)
    assert payload["reference_match_ratio"] == 0.5
    assert payload["restore_ok_ratio"] == 1.0
    # Multi-knob engine cells each get their own gated trajectory group.
    trajectory = payload["series"]["trajectory"]
    assert all("codec" in row for row in trajectory)
    assert all(row["step_s"] == 0.01 for row in trajectory)


def test_ablation_ladder_speedup():
    matrix = matrix_by_name("ablation_nvme")
    rungs = matrix.cells(include={"model": ["40B"]})
    records = [
        CellRecord(
            matrix=matrix.name,
            key=f"k{i}",
            params=dict(cell),
            repeats=[{"iteration_s": value, "update_s": value}],
        )
        for i, (cell, value) in enumerate(zip(rungs, (10.0, 8.0, 6.0, 4.0)))
    ]
    payload = build_payload(matrix, records, repeats=1)
    # First rung over last rung: 10.0 / 4.0.
    assert payload["median_speedup"] == pytest.approx(2.5)
    # No engine axis -> the whole cell label becomes the trajectory mode.
    modes = {row["mode"] for row in payload["series"]["trajectory"]}
    assert "model=40B,variant=DeepSpeed ZeRO-3" in modes


def test_experiment_result_series(mini_sweep):
    matrix, records = mini_sweep
    result = build_experiment_result(matrix, records)
    cells = [row for row in result.rows if row["series"] == "cells"]
    trajectory = [row for row in result.rows if row["series"] == "trajectory"]
    assert len(cells) == 4 and len(trajectory) == 8


def test_figure_result_guards():
    with pytest.raises(SweepError, match="sim matrices only"):
        figure_result(matrix_by_name("engine_smoke"), [])
    matrix = matrix_by_name("weak_scaling")
    empty = CellRecord(matrix=matrix.name, key="k", params=dict(matrix.cells()[0]))
    with pytest.raises(SweepError, match="no repeats"):
        figure_result(matrix, [empty])


def test_payload_path_and_write(tmp_path):
    path = payload_path(tmp_path, "weak_scaling")
    assert path.name == "SWEEP_weak_scaling.json"
    assert payload_path(tmp_path, "weak_scaling", tag="smoke").name == "SWEEP_smoke.json"
    written = write_payload(tmp_path / "sub" / "SWEEP_x.json", {"experiment": "x"})
    text = written.read_text(encoding="utf-8")
    assert text.endswith("\n")
    assert json.loads(text) == {"experiment": "x"}
