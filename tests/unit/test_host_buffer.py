"""Unit tests for the pinned host buffer pool."""

import threading

import numpy as np
import pytest

from repro.tiers.host_buffer import BufferPool, BufferPoolExhausted


class TestBufferPool:
    def test_basic_acquire_release_cycle(self):
        pool = BufferPool(buffer_bytes=1024, num_buffers=3)
        assert pool.free_count == 3
        buf = pool.acquire()
        assert pool.free_count == 2
        assert buf.in_use
        buf.release()
        assert pool.free_count == 3
        assert not buf.in_use

    def test_total_bytes(self):
        pool = BufferPool(buffer_bytes=1 << 20, num_buffers=3)
        assert pool.total_bytes == 3 << 20

    def test_exhaustion_without_blocking(self):
        pool = BufferPool(buffer_bytes=64, num_buffers=1)
        pool.acquire()
        with pytest.raises(BufferPoolExhausted):
            pool.acquire(blocking=False)

    def test_timeout_raises(self):
        pool = BufferPool(buffer_bytes=64, num_buffers=1)
        pool.acquire()
        with pytest.raises(BufferPoolExhausted):
            pool.acquire(timeout=0.05)

    def test_blocking_acquire_waits_for_release(self):
        pool = BufferPool(buffer_bytes=64, num_buffers=1)
        held = pool.acquire()
        acquired = []

        def worker():
            buf = pool.acquire(timeout=2.0)
            acquired.append(buf)
            buf.release()

        thread = threading.Thread(target=worker)
        thread.start()
        held.release()
        thread.join(timeout=2.0)
        assert len(acquired) == 1

    def test_double_release_rejected(self):
        pool = BufferPool(buffer_bytes=64, num_buffers=2)
        buf = pool.acquire()
        buf.release()
        with pytest.raises(ValueError):
            buf.release()

    def test_foreign_buffer_rejected(self):
        pool_a = BufferPool(buffer_bytes=64, num_buffers=1)
        pool_b = BufferPool(buffer_bytes=64, num_buffers=1)
        buf = pool_a.acquire()
        with pytest.raises(ValueError):
            pool_b.release(buf)

    def test_context_manager_releases(self):
        pool = BufferPool(buffer_bytes=64, num_buffers=1)
        with pool.acquire() as buf:
            assert buf.in_use
        assert pool.free_count == 1

    def test_stats(self):
        pool = BufferPool(buffer_bytes=64, num_buffers=2)
        with pool.acquire():
            stats = pool.stats()
            assert stats["in_use"] == 1
            assert stats["acquired_total"] == 1


class TestPinnedBuffer:
    def test_typed_views_share_storage(self):
        pool = BufferPool(buffer_bytes=1024, num_buffers=1)
        buf = pool.acquire()
        view_a = buf.view(np.float32, 16)
        view_a[:] = 7.0
        view_b = buf.view(np.float32, 16)
        np.testing.assert_array_equal(view_b, np.full(16, 7.0, dtype=np.float32))

    def test_view_capacity_enforced(self):
        pool = BufferPool(buffer_bytes=64, num_buffers=1)
        buf = pool.acquire()
        with pytest.raises(ValueError):
            buf.view(np.float64, 9)  # 72 bytes > 64

    def test_fill_from_copies_data(self, rng):
        pool = BufferPool(buffer_bytes=4096, num_buffers=1)
        buf = pool.acquire()
        payload = rng.standard_normal(100).astype(np.float32)
        view = buf.fill_from(payload)
        np.testing.assert_array_equal(view, payload)

    def test_invalid_pool_parameters(self):
        with pytest.raises(ValueError):
            BufferPool(buffer_bytes=0, num_buffers=1)
        with pytest.raises(ValueError):
            BufferPool(buffer_bytes=1, num_buffers=0)
