"""The ``io``/``stripe`` config namespacing and its flat-kwarg shim.

The flat knobs of earlier releases (``mmap_tier_reads``, ``io_retry_*``,
``enable_striped_reads``, ``stripe_*``, ``crash_safe_striped_flush``) moved
into :class:`~repro.core.config.IOBackendConfig` and
:class:`~repro.core.config.StripeConfig`.  Constructing with the old names
must keep working — warning once per name — and both the nested and the
legacy-flat JSON shapes must parse.
"""

import dataclasses
import json
import warnings

import pytest

from repro.core.config import IOBackendConfig, MLPOffloadConfig, StripeConfig


def _cfg(**overrides):
    return MLPOffloadConfig.single_tier("/tmp/ns-test", **overrides)


class TestSubConfigs:
    def test_defaults(self):
        config = _cfg()
        assert config.io == IOBackendConfig()
        assert config.stripe == StripeConfig()
        assert config.io.backend == "auto"
        assert config.io.alignment_bytes == 4096

    def test_backend_name_validated(self):
        with pytest.raises(ValueError, match="unknown io backend"):
            IOBackendConfig(backend="bogus")

    def test_alignment_validated(self):
        with pytest.raises(ValueError, match="power of two"):
            IOBackendConfig(alignment_bytes=1000)

    def test_retry_validation_lives_on_the_sub_config(self):
        with pytest.raises(ValueError, match="retry_attempts"):
            IOBackendConfig(retry_attempts=0)
        with pytest.raises(ValueError, match="threshold_bytes"):
            StripeConfig(threshold_bytes=-1)


class TestFlatKwargShim:
    def test_flat_kwargs_construct_and_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = _cfg(mmap_tier_reads=True, stripe_paths=2, io_retry_attempts=5)
        assert config.io.mmap_tier_reads is True
        assert config.stripe.paths == 2
        assert config.io.retry_attempts == 5
        flat_warnings = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert all("deprecated" in str(w.message) for w in flat_warnings)

    def test_warning_fires_at_most_once_per_name(self):
        _cfg(io_deadline_seconds=1.0)  # ensure the first use is consumed
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _cfg(io_deadline_seconds=2.0)
            _cfg(io_deadline_seconds=3.0)
        assert len([w for w in caught if issubclass(w.category, DeprecationWarning)]) == 0

    def test_flat_kwargs_merge_into_explicit_sub_config(self):
        config = _cfg(io=IOBackendConfig(alignment_bytes=512), mmap_tier_reads=True)
        assert config.io.alignment_bytes == 512
        assert config.io.mmap_tier_reads is True

    def test_dataclasses_replace_accepts_flat_names(self):
        config = _cfg()
        replaced = dataclasses.replace(config, stripe_threshold_bytes=123.0)
        assert replaced.stripe.threshold_bytes == 123.0
        assert replaced.io == config.io

    def test_flat_read_properties(self):
        config = _cfg(
            io=IOBackendConfig(mmap_tier_reads=True, retry_attempts=7, deadline_seconds=2.5),
            stripe=StripeConfig(enabled=False, threshold_bytes=64.0, paths=3),
        )
        assert config.mmap_tier_reads is True
        assert config.io_retry_attempts == 7
        assert config.io_deadline_seconds == 2.5
        assert config.enable_striped_reads is False
        assert config.stripe_threshold_bytes == 64.0
        assert config.stripe_paths == 3
        assert config.crash_safe_striped_flush is True

    def test_stripe_fanout_follows_nested_fields(self):
        config = MLPOffloadConfig.local_and_remote(
            "/tmp/a", "/tmp/b", stripe=StripeConfig(paths=1)
        )
        assert config.stripe_fanout() == 1


class TestSerialization:
    def test_round_trip_preserves_sub_configs(self):
        config = _cfg(
            io=IOBackendConfig(backend="thread", alignment_bytes=512, retry_attempts=4),
            stripe=StripeConfig(threshold_bytes=2048.0, paths=2, crash_safe_flush=False),
        )
        assert MLPOffloadConfig.from_json(config.to_json()) == config

    def test_json_contains_nested_blocks_not_flat_keys(self):
        block = json.loads(_cfg().to_json())["mlp_offload"]
        assert "io" in block and "stripe" in block
        for flat in ("mmap_tier_reads", "stripe_paths", "io_retry_attempts"):
            assert flat not in block

    def test_legacy_flat_json_still_parses(self):
        block = json.loads(_cfg().to_json())["mlp_offload"]
        del block["io"], block["stripe"]
        block.update(
            mmap_tier_reads=True,
            striped_reads=False,
            stripe_threshold_bytes="2MiB",
            stripe_paths=3,
            crash_safe_striped_flush=False,
            io_retry_attempts=9,
            io_retry_backoff_seconds=0.5,
            io_deadline_seconds=4.0,
        )
        config = MLPOffloadConfig.from_json(json.dumps({"mlp_offload": block}))
        assert config.io.mmap_tier_reads is True
        assert config.stripe.enabled is False
        assert config.stripe.threshold_bytes == float(2 << 20)
        assert config.stripe.paths == 3
        assert config.stripe.crash_safe_flush is False
        assert config.io.retry_attempts == 9
        assert config.io.retry_backoff_seconds == 0.5
        assert config.io.deadline_seconds == 4.0

    def test_nested_json_wins_over_stray_flat_keys(self):
        block = json.loads(_cfg().to_json())["mlp_offload"]
        block["io"]["retry_attempts"] = 2
        block["io_retry_attempts"] = 99
        config = MLPOffloadConfig.from_json(json.dumps({"mlp_offload": block}))
        assert config.io.retry_attempts == 2
