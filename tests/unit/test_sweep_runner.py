"""Unit tests for the sweep runner: records, resume-by-skip, top-up, campaigns."""

from __future__ import annotations

import json

import pytest

from repro.sweep.matrix import matrix_by_name
from repro.sweep.runner import (
    FAULT_ENV,
    CellRecord,
    SweepError,
    SweepRunner,
    _fault_after_cells,
    run_sim_cell,
)

INCLUDE_TWO = {"config": ["40B@1", "70B@2"]}


def make_runner(tmp_path, **kwargs):
    defaults = dict(repeats=2, sweep_dir=tmp_path / "cells", include=INCLUDE_TWO)
    defaults.update(kwargs)
    return SweepRunner(matrix_by_name("weak_scaling"), **defaults)


def read_record(runner, params):
    return json.loads(runner.record_path(params).read_text(encoding="utf-8"))


def test_run_writes_one_record_per_cell(tmp_path):
    runner = make_runner(tmp_path)
    report = runner.run()
    assert report.executed_cells == 4
    assert report.skipped_cells == 0
    assert len(report.records) == 4
    for record in report.records:
        assert runner.record_path(record.params).is_file()
        payload = read_record(runner, record.params)
        assert payload["completed"] is True
        assert payload["nonce"] == runner.nonce
        assert len(payload["repeats"]) == 2
        # Sim cells are deterministic: every repeat is bit-identical.
        assert payload["repeats"][0] == payload["repeats"][1]


def test_resume_skips_completed_cells_without_rewriting(tmp_path):
    first = make_runner(tmp_path)
    first.run()
    second = make_runner(tmp_path)
    report = second.run()
    assert report.executed_cells == 0
    assert report.skipped_cells == 4
    for record in report.records:
        # The on-disk nonce still belongs to the first invocation — the
        # record file was read, not rewritten.
        assert read_record(second, record.params)["nonce"] == first.nonce
        assert record.nonce == first.nonce
        assert second.nonce != first.nonce


def test_resume_tops_up_missing_repeats_keeping_existing_ones(tmp_path):
    runner = make_runner(tmp_path, repeats=1)
    runner.run()
    # Tag the single existing repeat of one cell; a top-up must append new
    # repeats after it, never recompute it.
    params = runner.cells[0]
    payload = read_record(runner, params)
    payload["repeats"][0]["sentinel"] = 123.0
    runner.record_path(params).write_text(
        json.dumps(payload) + "\n", encoding="utf-8"
    )

    topped = make_runner(tmp_path, repeats=3)
    report = topped.run()
    assert report.executed_cells == 4
    tagged = read_record(topped, params)
    assert len(tagged["repeats"]) == 3
    assert tagged["repeats"][0]["sentinel"] == 123.0
    assert "sentinel" not in tagged["repeats"][1]
    assert tagged["nonce"] == topped.nonce


def test_no_resume_reruns_every_cell(tmp_path):
    make_runner(tmp_path).run()
    rerun = make_runner(tmp_path, resume=False)
    report = rerun.run()
    assert report.executed_cells == 4
    assert report.skipped_cells == 0
    for record in report.records:
        assert read_record(rerun, record.params)["nonce"] == rerun.nonce


def test_torn_record_is_redone(tmp_path):
    runner = make_runner(tmp_path)
    runner.run()
    params = runner.cells[0]
    payload = read_record(runner, params)
    del payload["completed"]  # a crashed run's half-state
    runner.record_path(params).write_text(json.dumps(payload), encoding="utf-8")
    report = make_runner(tmp_path).run()
    assert report.executed_cells == 1
    assert report.skipped_cells == 3


def test_record_with_foreign_params_is_rejected(tmp_path):
    runner = make_runner(tmp_path)
    params = runner.cells[0]
    foreign = CellRecord(matrix="weak_scaling", key="k", params={"config": "tampered"})
    runner.cells_dir.mkdir(parents=True)
    runner.record_path(params).write_text(
        json.dumps(foreign.to_json()), encoding="utf-8"
    )
    with pytest.raises(SweepError, match="different parameters"):
        runner.run()


def test_unreadable_record_raises(tmp_path):
    runner = make_runner(tmp_path)
    runner.cells_dir.mkdir(parents=True)
    runner.record_path(runner.cells[0]).write_text("{not json", encoding="utf-8")
    with pytest.raises(SweepError, match="unreadable cell record"):
        runner.run()


def test_runner_validates_inputs(tmp_path):
    with pytest.raises(SweepError, match="repeats"):
        make_runner(tmp_path, repeats=0)
    with pytest.raises(SweepError, match="selected no cells"):
        make_runner(tmp_path, include={"config": ["40B@1"]}, exclude={"config": ["40B@1"]})


def test_campaign_selection_is_seed_deterministic(tmp_path):
    a = SweepRunner(
        matrix_by_name("engine_smoke"),
        repeats=1,
        sweep_dir=tmp_path / "a",
        campaign=3,
        seed=11,
    )
    b = SweepRunner(
        matrix_by_name("engine_smoke"),
        repeats=1,
        sweep_dir=tmp_path / "b",
        campaign=3,
        seed=11,
    )
    assert a.cells == b.cells
    assert len(a.cells) == 3


def test_fault_env_parsing(monkeypatch):
    monkeypatch.delenv(FAULT_ENV, raising=False)
    assert _fault_after_cells() is None
    monkeypatch.setenv(FAULT_ENV, "after-cells:2")
    assert _fault_after_cells() == 2
    monkeypatch.setenv(FAULT_ENV, "after-cells:nope")
    assert _fault_after_cells() is None
    monkeypatch.setenv(FAULT_ENV, "before-lunch:1")
    assert _fault_after_cells() is None


def test_sim_cell_rejects_bad_configs():
    with pytest.raises(SweepError, match="expected <model>@<nodes>"):
        run_sim_cell({"testbed": "testbed-2", "config": "40B", "engine": "MLP-Offload"})
    with pytest.raises(SweepError, match="not a multiple"):
        run_sim_cell(
            {
                "testbed": "testbed-1",
                "model": "40B",
                "batch_size": 33,
                "micro_batch_size": 8,
                "engine": "MLP-Offload",
            }
        )
    with pytest.raises(SweepError, match="no engine or ablation variant"):
        run_sim_cell({"testbed": "testbed-1", "model": "40B"})
    with pytest.raises(SweepError, match="unknown ablation variant"):
        run_sim_cell(
            {"testbed": "testbed-1", "model": "40B", "ladder": "nvme", "variant": "Warp Drive"}
        )


def test_progress_messages_mention_skip_and_run(tmp_path):
    messages = []
    make_runner(tmp_path, progress=messages.append).run()
    assert sum("run " in m for m in messages) == 4
    messages.clear()
    make_runner(tmp_path, progress=messages.append).run()
    assert sum("skip " in m for m in messages) == 4
