"""Unit tests for the functional NumPy transformer (forward + manual backward)."""

import numpy as np
import pytest

from repro.train.data import SyntheticTokenDataset
from repro.train.model_zoo import tiny_test_model
from repro.train.transformer import TransformerLM


@pytest.fixture
def model_and_batch():
    config = tiny_test_model(num_layers=2, hidden_dim=32, num_heads=4, vocab_size=64, sequence_length=12)
    model = TransformerLM(config)
    data = SyntheticTokenDataset(vocab_size=64, sequence_length=12, seed=3)
    batch = data.batch(0, micro_batch_size=2)
    return model, batch


class TestLayoutAndInit:
    def test_parameter_count_matches_model_zoo_formula(self):
        config = tiny_test_model(num_layers=3, hidden_dim=48, num_heads=4, vocab_size=96, sequence_length=20)
        model = TransformerLM(config)
        assert model.num_params == config.total_params

    def test_views_are_aliases_into_the_flat_vector(self):
        config = tiny_test_model()
        model = TransformerLM(config)
        flat = model.init_params(seed=0)
        view = model.view(flat, "tok_emb")
        view[0, 0] = 123.0
        assert flat[model.spec("tok_emb").offset] == 123.0

    def test_init_is_deterministic_per_seed(self):
        config = tiny_test_model()
        model = TransformerLM(config)
        np.testing.assert_array_equal(model.init_params(seed=5), model.init_params(seed=5))
        assert not np.array_equal(model.init_params(seed=5), model.init_params(seed=6))

    def test_layernorm_gains_start_at_one(self):
        config = tiny_test_model()
        model = TransformerLM(config)
        flat = model.init_params(seed=0)
        np.testing.assert_array_equal(model.view(flat, "lnf_g"), np.ones(config.hidden_dim, dtype=np.float32))


class TestForward:
    def test_loss_is_finite_and_near_uniform_at_init(self, model_and_batch):
        model, batch = model_and_batch
        params = model.init_params(seed=0)
        loss, _ = model.forward(params, batch.tokens, batch.targets)
        assert np.isfinite(loss)
        # Random init ⇒ roughly uniform predictions ⇒ loss ≈ ln(vocab).
        assert loss == pytest.approx(np.log(model.config.vocab_size), rel=0.25)

    def test_fp16_params_accepted(self, model_and_batch):
        model, batch = model_and_batch
        params = model.init_params(seed=0)
        loss32, _ = model.forward(params, batch.tokens, batch.targets)
        loss16, _ = model.forward(params.astype(np.float16), batch.tokens, batch.targets)
        assert loss16 == pytest.approx(loss32, rel=1e-2)

    def test_input_validation(self, model_and_batch):
        model, batch = model_and_batch
        params = model.init_params(seed=0)
        with pytest.raises(ValueError):
            model.forward(params, batch.tokens[0], batch.targets[0])
        with pytest.raises(ValueError):
            model.forward(params, batch.tokens, batch.targets[:, :-1])
        too_long = np.zeros((1, model.config.sequence_length + 1), dtype=np.int64)
        with pytest.raises(ValueError):
            model.forward(params, too_long, too_long)

    def test_causality(self):
        """Changing a future token must not change earlier-position logits' loss contribution."""
        config = tiny_test_model(num_layers=1, hidden_dim=16, num_heads=2, vocab_size=32, sequence_length=8)
        model = TransformerLM(config)
        params = model.init_params(seed=0)
        tokens = np.arange(8, dtype=np.int64)[None, :] % 32
        targets = np.roll(tokens, -1, axis=1)
        _, cache_a = model.forward(params, tokens, targets)
        tokens_b = tokens.copy()
        tokens_b[0, -1] = (tokens_b[0, -1] + 5) % 32
        _, cache_b = model.forward(params, tokens_b, targets)
        # Probabilities at positions before the change are identical.
        np.testing.assert_allclose(cache_a["probs"][0, :-1], cache_b["probs"][0, :-1], atol=1e-6)


class TestBackward:
    def test_gradient_matches_finite_differences(self):
        config = tiny_test_model(num_layers=1, hidden_dim=16, num_heads=2, vocab_size=24, sequence_length=6)
        model = TransformerLM(config)
        params = model.init_params(seed=1).astype(np.float64).astype(np.float32)
        data = SyntheticTokenDataset(vocab_size=24, sequence_length=6, seed=11)
        batch = data.batch(0, 1)
        loss, grads = model.loss_and_grad(params, batch.tokens, batch.targets)
        rng = np.random.default_rng(0)
        # Spot-check a sample of coordinates across all parameter tensors.
        indices = rng.choice(model.num_params, size=25, replace=False)
        eps = 1e-3
        for idx in indices:
            perturbed = params.copy()
            perturbed[idx] += eps
            loss_plus = model.loss(perturbed, batch.tokens, batch.targets)
            perturbed[idx] -= 2 * eps
            loss_minus = model.loss(perturbed, batch.tokens, batch.targets)
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert grads[idx] == pytest.approx(numeric, rel=0.08, abs=2e-3)

    def test_gradients_cover_every_parameter_tensor(self, model_and_batch):
        model, batch = model_and_batch
        params = model.init_params(seed=0)
        _, grads = model.loss_and_grad(params, batch.tokens, batch.targets)
        assert grads.shape == params.shape
        for spec in model.parameter_specs:
            tensor_grad = grads[spec.offset : spec.stop]
            assert np.isfinite(tensor_grad).all(), spec.name

    def test_training_reduces_loss(self, model_and_batch):
        model, batch = model_and_batch
        params = model.init_params(seed=0)
        first_loss, grads = model.loss_and_grad(params, batch.tokens, batch.targets)
        for _ in range(10):
            loss, grads = model.loss_and_grad(params, batch.tokens, batch.targets)
            params = params - 0.5 * grads
        final_loss = model.loss(params, batch.tokens, batch.targets)
        assert final_loss < first_loss
