"""Unit tests for the virtual multi-path tier."""

import numpy as np
import pytest

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.virtual_tier import STATE_FIELDS, VirtualTier


@pytest.fixture
def virtual_tier(two_tier_config):
    tier = VirtualTier(two_tier_config, worker="rank0", io_threads=2)
    yield tier
    tier.close()


def _subgroup_arrays(rng, n=100):
    return {
        "params": rng.standard_normal(n).astype(np.float32),
        "exp_avg": rng.standard_normal(n).astype(np.float32),
        "exp_avg_sq": np.abs(rng.standard_normal(n)).astype(np.float32),
    }


class TestPlacementConstruction:
    def test_initial_allocation_uses_bandwidth_hints(self, virtual_tier):
        allocation = virtual_tier.initial_allocation(90)
        assert sum(allocation.values()) == 90
        assert allocation["nvme"] > allocation["pfs"]

    def test_explicit_ratio_override(self, tier_dirs):
        config = MLPOffloadConfig.local_and_remote(
            tier_dirs["nvme"], tier_dirs["pfs"], ratio=(3.0, 1.0), subgroup_size=100
        )
        tier = VirtualTier(config)
        try:
            allocation = tier.initial_allocation(40)
            assert allocation == {"nvme": 30, "pfs": 10}
        finally:
            tier.close()

    def test_single_path_when_multipath_disabled(self, tier_dirs):
        config = MLPOffloadConfig(
            tiers=(
                TierConfig("nvme", str(tier_dirs["nvme"]), read_bw=5e9, write_bw=5e9),
                TierConfig("pfs", str(tier_dirs["pfs"]), read_bw=3e9, write_bw=3e9),
            ),
            enable_multipath=False,
        )
        tier = VirtualTier(config)
        try:
            assert tier.tier_names == ["nvme"]
            assert tier.initial_allocation(10) == {"nvme": 10}
        finally:
            tier.close()

    def test_missing_bandwidth_hints_trigger_probing(self, tier_dirs):
        config = MLPOffloadConfig(
            tiers=(
                TierConfig("nvme", str(tier_dirs["nvme"])),
                TierConfig("pfs", str(tier_dirs["pfs"])),
            )
        )
        tier = VirtualTier(config)
        try:
            bandwidths = tier.estimator.bandwidths
            assert set(bandwidths) == {"nvme", "pfs"}
            assert all(bw > 0 for bw in bandwidths.values())
        finally:
            tier.close()

    def test_build_placement_remembers_assignments(self, virtual_tier):
        placement = virtual_tier.build_placement(range(10))
        assert len(placement) == 10
        assert virtual_tier.placement is placement


class TestSubgroupIO:
    def test_flush_then_fetch_round_trip(self, virtual_tier, rng):
        virtual_tier.build_placement(range(4))
        arrays = _subgroup_arrays(rng)
        virtual_tier.flush_subgroup("rank0-sg00001", 1, arrays)
        restored = virtual_tier.fetch_subgroup("rank0-sg00001", 1, STATE_FIELDS)
        for field in STATE_FIELDS:
            np.testing.assert_array_equal(restored[field], arrays[field])

    def test_flush_override_tier_updates_placement(self, virtual_tier, rng):
        placement = virtual_tier.build_placement(range(4))
        original = placement.tier_of(0)
        other = "pfs" if original == "nvme" else "nvme"
        virtual_tier.flush_subgroup("rank0-sg00000", 0, _subgroup_arrays(rng), tier=other)
        assert placement.tier_of(0) == other

    def test_prefetch_and_wait(self, virtual_tier, rng):
        virtual_tier.build_placement(range(2))
        arrays = _subgroup_arrays(rng)
        virtual_tier.flush_subgroup("rank0-sg00000", 0, arrays)
        futures = virtual_tier.prefetch_subgroup("rank0-sg00000", 0, ["params"])
        result = VirtualTier.wait_fetch(futures)
        np.testing.assert_array_equal(result["params"], arrays["params"])

    def test_fetch_missing_subgroup_raises(self, virtual_tier):
        virtual_tier.build_placement(range(2))
        with pytest.raises(Exception):
            virtual_tier.fetch_subgroup("rank0-sg00001", 1, ["params"])

    def test_operations_require_placement(self, virtual_tier, rng):
        with pytest.raises(RuntimeError):
            virtual_tier.flush_subgroup("k", 0, _subgroup_arrays(rng))
        with pytest.raises(RuntimeError):
            virtual_tier.prefetch_subgroup("k", 0, ["params"])

    def test_delete_subgroup_field(self, virtual_tier, rng):
        virtual_tier.build_placement(range(1))
        virtual_tier.flush_subgroup("rank0-sg00000", 0, _subgroup_arrays(rng))
        virtual_tier.delete_subgroup_field("rank0-sg00000", 0, "params")
        # Deleting a missing field is a no-op.
        virtual_tier.delete_subgroup_field("rank0-sg00000", 0, "params")


class TestFeedback:
    def test_io_summary_accumulates(self, virtual_tier, rng):
        virtual_tier.build_placement(range(2))
        virtual_tier.flush_subgroup("rank0-sg00000", 0, _subgroup_arrays(rng))
        summary = virtual_tier.io_summary()
        total_written = sum(t["bytes_written"] for t in summary.values())
        assert total_written >= 3 * 100 * 4

    def test_observe_iteration_updates_estimates(self, virtual_tier, rng):
        virtual_tier.build_placement(range(2))
        before = dict(virtual_tier.estimator.bandwidths)
        virtual_tier.flush_subgroup("rank0-sg00000", 0, _subgroup_arrays(rng))
        virtual_tier.fetch_subgroup("rank0-sg00000", 0, STATE_FIELDS)
        after = virtual_tier.observe_iteration()
        assert set(after) == set(before)
        # Real local-disk transfers are much faster than the configured hints,
        # so at least the touched tier's estimate must have moved.
        touched = virtual_tier.placement.tier_of(0)
        assert after[touched] != before[touched]
