"""Unit tests for N-repeat sweep statistics and the five-number summary."""

from __future__ import annotations

import pytest

from repro.bench.harness import five_number_summary
from repro.sweep.stats import (
    cell_checks,
    check_metric_names,
    numeric_metric_names,
    summarize_cell,
    table_row,
)


def test_five_number_summary_odd_run():
    summary = five_number_summary([1.0, 2.0, 3.0, 4.0, 5.0])
    assert summary["n"] == 5
    assert summary["min"] == 1.0 and summary["max"] == 5.0
    assert summary["q1"] == 2.0
    assert summary["median"] == 3.0
    assert summary["q3"] == 4.0
    assert summary["iqr"] == 2.0
    assert summary["mean"] == 3.0
    # No outliers: the whiskers reach the extremes.
    assert summary["whisker_lo"] == 1.0
    assert summary["whisker_hi"] == 5.0


def test_five_number_summary_clamps_whiskers_to_tukey_fences():
    summary = five_number_summary([1.0, 2.0, 3.0, 4.0, 100.0])
    # q3 + 1.5*IQR fences out the 100.0 outlier; the whisker stops at the
    # largest in-fence sample, exactly how a boxplot draws it.
    assert summary["q3"] == 4.0
    assert summary["whisker_hi"] == 4.0
    assert summary["max"] == 100.0


def test_five_number_summary_single_sample():
    summary = five_number_summary([7.5])
    assert summary["n"] == 1
    assert summary["median"] == 7.5
    assert summary["q1"] == summary["q3"] == 7.5
    assert summary["iqr"] == 0.0
    assert summary["whisker_lo"] == summary["whisker_hi"] == 7.5


def test_five_number_summary_rejects_empty():
    with pytest.raises(ValueError):
        five_number_summary([])


def test_numeric_metric_names_skips_bools_and_partials():
    repeats = [
        {"update_s": 1.0, "ok": True, "label": "x", "io_gbps": 2},
        {"update_s": 1.5, "ok": False, "label": "y"},
    ]
    # Booleans and strings are never distributions; a metric missing from one
    # repeat is dropped rather than summarized over a ragged sample.
    assert numeric_metric_names(repeats) == ["update_s"]


def test_summarize_cell_and_table_row():
    params = {"config": "40B@1", "engine": "MLP-Offload"}
    repeats = [
        {"update_s": 2.0, "restore_ok": True},
        {"update_s": 4.0, "restore_ok": True},
        {"update_s": 3.0, "restore_ok": False},
    ]
    summaries = summarize_cell(repeats)
    assert set(summaries) == {"update_s"}
    assert summaries["update_s"]["median"] == 3.0

    row = table_row(params, repeats)
    assert row["config"] == "40B@1"
    assert row["update_s_median"] == 3.0
    assert row["update_s_iqr"] == summaries["update_s"]["iqr"]
    # One failed repeat taints the whole cell's check column.
    assert row["restore_ok"] is False
    assert row["repeats"] == 3


def test_summarize_cell_requires_repeats():
    with pytest.raises(ValueError, match="no completed repeats"):
        summarize_cell([])


def test_check_metrics_require_bool_in_every_repeat():
    repeats = [
        {"matches_reference": True, "restore_ok": True},
        {"matches_reference": True, "restore_ok": 1},
    ]
    assert check_metric_names(repeats) == ["matches_reference"]
    assert cell_checks(repeats) == {"matches_reference": True}
    assert cell_checks([]) == {}
