"""Torn-write safety: failed writes leave no partial state, readers reject stubs.

The store's discipline is temp+``os.replace``: a crash or error anywhere
before the rename can never corrupt the published key.  These tests pin the
two halves of that contract — (1) a failed ``save_from`` cleans its temp
file up and leaves any previous value of the key intact, and (2) a
truncated blob that somehow *does* land under a final key (the fault
injector's ``torn-write``, modelling a legacy writer crashing mid-stream,
or a kill-during-rename on a non-atomic filesystem) is rejected by every
read path with :class:`TruncatedBlobError`, never silently short-read.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.tiers.faultstore import FaultInjectingStore, FaultPlan, FaultRule
from repro.tiers.file_store import FileStore, StoreError, TruncatedBlobError


@pytest.fixture
def store(tmp_path):
    return FileStore(tmp_path / "tier", name="nvme")


def _tmp_files(store):
    return [p for p in store.root.iterdir() if p.suffix == ".tmp"]


class TestFailedWriteHygiene:
    def test_failed_replace_removes_temp_and_keeps_old_value(self, store, monkeypatch):
        old = np.arange(8, dtype=np.float32)
        store.save_from("k", old)

        def boom(src, dst):
            raise OSError("injected rename failure")

        monkeypatch.setattr("repro.tiers.file_store.os.replace", boom)
        with pytest.raises(OSError, match="injected rename"):
            store.save_from("k", np.zeros(8, dtype=np.float32))
        monkeypatch.undo()
        assert _tmp_files(store) == []
        out = np.empty_like(old)
        store.load_into("k", out)
        np.testing.assert_array_equal(out, old)

    def test_failed_payload_write_removes_temp(self, tmp_path, monkeypatch):
        # Pin a ThreadBackend *instance* (exempt from any REPRO_IO_BACKEND
        # override): the failure is injected through ``builtins.open``, which
        # only the buffered write path goes through.
        from repro.aio.backends import ThreadBackend

        store = FileStore(tmp_path / "thread-tier", name="nvme", backend=ThreadBackend())
        real_open = open
        calls = {"n": 0}

        class FailingHandle:
            def __init__(self, handle):
                self._handle = handle
                self._writes = 0

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return self._handle.__exit__(*exc)

            def write(self, data):
                self._writes += 1
                if self._writes == 2:  # the payload write, after the header
                    raise OSError("injected mid-stream failure")
                return self._handle.__enter__().write(data)

        def patched_open(path, mode="r", *args, **kwargs):
            if mode == "wb" and str(path).endswith(".tmp"):
                calls["n"] += 1
                return FailingHandle(real_open(path, mode, *args, **kwargs))
            return real_open(path, mode, *args, **kwargs)

        monkeypatch.setattr("builtins.open", patched_open)
        with pytest.raises(OSError, match="mid-stream"):
            store.save_from("k", np.arange(64, dtype=np.float32))
        monkeypatch.undo()
        assert calls["n"] == 1
        assert _tmp_files(store) == []
        assert not store.contains("k")

    def test_sigkill_during_write_leaves_temp_not_key(self, tmp_path):
        """A SIGKILLed writer can leave a temp file, never a torn final key —
        and the next store construction sweeps the orphan."""
        root = tmp_path / "tier"
        script = (
            "import os, threading, numpy as np\n"
            "from repro.tiers.file_store import FileStore\n"
            f"store = FileStore({str(root)!r}, name='nvme')\n"
            "real_replace = os.replace\n"
            "def die(src, dst):\n"
            "    os.kill(os.getpid(), 9)\n"
            "import repro.tiers.file_store as fs\n"
            "fs.os.replace = die\n"
            "store.save_from('k', np.arange(1024, dtype=np.float32))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", script], env=env, cwd=os.getcwd(), timeout=60)
        assert proc.returncode == -9
        leftovers = list(root.iterdir())
        assert all(p.suffix == ".tmp" for p in leftovers)
        survivor = FileStore(root, name="nvme")
        assert not survivor.contains("k")
        assert _tmp_files(survivor) == []  # constructor swept the orphan


class TestTruncatedBlobRejection:
    def test_torn_final_key_raises_typed_error_on_every_read_path(self, store):
        payload = np.arange(256, dtype=np.float32)
        injector = FaultInjectingStore(
            store, FaultPlan([FaultRule(kind="torn-write", op="write", count=1)])
        )
        with pytest.raises(OSError):
            injector.save_from("k", payload)
        assert store.contains("k")  # the torn stub IS visible...
        with pytest.raises(TruncatedBlobError):  # ...but no read accepts it
            store.read("k")
        with pytest.raises(TruncatedBlobError):
            store.load_into("k", np.empty_like(payload))
        with pytest.raises(TruncatedBlobError):
            store.load_into_chunks("k", np.empty_like(payload))

    def test_truncated_header_raises_typed_error(self, store):
        store.save_from("k", np.arange(8, dtype=np.float32))
        path = store.path_of("k")
        path.write_bytes(path.read_bytes()[:3])  # not even a full header
        with pytest.raises(TruncatedBlobError):
            store.read("k")

    def test_truncation_error_is_a_store_error(self):
        assert issubclass(TruncatedBlobError, StoreError)

    def test_overlong_blob_is_not_classified_as_truncation(self, store):
        """Extra trailing bytes are corruption, not a retryable short read."""
        store.save_from("k", np.arange(8, dtype=np.float32))
        path = store.path_of("k")
        path.write_bytes(path.read_bytes() + b"\x00\x00")
        with pytest.raises(StoreError) as excinfo:
            store.read("k")
        assert not isinstance(excinfo.value, TruncatedBlobError)
