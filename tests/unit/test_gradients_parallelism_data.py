"""Unit tests for gradient accumulation, parallel topology, synthetic data and memory estimation."""

import numpy as np
import pytest

from repro.train.data import SyntheticTokenDataset, TrainingBatch
from repro.train.gradients import GradientAccumulator
from repro.train.memory_estimator import estimate_memory, runtime_buffer_bytes
from repro.train.model_zoo import model_by_name, tiny_test_model
from repro.train.parallelism import ParallelTopology
from repro.util.bytesize import GiB


class TestGradientAccumulator:
    @pytest.fixture
    def accumulator(self, small_layout):
        return GradientAccumulator(small_layout, rank=0)

    def test_accumulates_across_microbatches(self, accumulator, rng):
        grad = rng.standard_normal(1000).astype(np.float16)
        accumulator.accumulate(0, grad)
        accumulator.mark_microbatch_done()
        accumulator.accumulate(0, grad)
        accumulator.mark_microbatch_done()
        summed = accumulator.gradient_fp32(0, average=False)
        np.testing.assert_allclose(summed, 2.0 * grad.astype(np.float32), rtol=1e-3)
        averaged = accumulator.gradient_fp32(0, average=True)
        np.testing.assert_allclose(averaged, grad.astype(np.float32), rtol=1e-3)
        assert accumulator.accumulated_steps == 2

    def test_fp16_export_and_byte_accounting(self, accumulator, rng):
        grad = rng.standard_normal(1000).astype(np.float16)
        accumulator.accumulate(3, grad)
        assert accumulator.gradient_fp16(3).dtype == np.float16
        assert accumulator.nbytes_fp16 == 10_000 * 2

    def test_reset_all_and_partial(self, accumulator, rng):
        grad = rng.standard_normal(1000).astype(np.float16)
        accumulator.accumulate(0, grad)
        accumulator.accumulate(1, grad)
        accumulator.mark_microbatch_done()
        accumulator.reset([0])
        assert accumulator.gradient_fp32(0).sum() == 0.0
        assert accumulator.gradient_fp32(1).sum() != 0.0
        assert accumulator.accumulated_steps == 1  # partial reset keeps the counter
        accumulator.reset()
        assert accumulator.accumulated_steps == 0

    def test_wrong_subgroup_or_size_rejected(self, accumulator):
        with pytest.raises(KeyError):
            accumulator.accumulate(42, np.zeros(1000, dtype=np.float16))
        with pytest.raises(ValueError):
            accumulator.accumulate(0, np.zeros(17, dtype=np.float16))


class TestParallelTopology:
    def test_single_node_defaults(self):
        topo = ParallelTopology.single_node(4)
        assert topo.world_size == 4
        assert topo.num_nodes == 1
        assert topo.workers_per_node == 4

    def test_weak_scaling_topology(self):
        topo = ParallelTopology.weak_scaling(num_nodes=8, gpus_per_node=4)
        assert topo.world_size == 32
        assert topo.num_nodes == 8
        assert topo.tensor_parallel == 4

    def test_zero3_gather_volume(self):
        model = model_by_name("40B")
        alone = ParallelTopology(data_parallel=1)
        quad = ParallelTopology(data_parallel=4)
        assert alone.zero3_gather_bytes_per_pass(model) == 0
        gathered = quad.zero3_gather_bytes_per_pass(model)
        assert gathered == pytest.approx(model.total_params * 2 * 3 / 4, rel=0.01)
        assert quad.gradient_reduce_bytes(model) == gathered

    def test_tensor_parallel_bytes(self):
        model = model_by_name("40B")
        tp1 = ParallelTopology(data_parallel=1, tensor_parallel=1)
        tp4 = ParallelTopology(data_parallel=1, tensor_parallel=4)
        assert tp1.tensor_parallel_bytes_per_layer(model) == 0
        assert tp4.tensor_parallel_bytes_per_layer(model) > 0

    def test_params_per_rank_rounds_up(self):
        model = model_by_name("40B")
        topo = ParallelTopology(data_parallel=3)
        assert topo.params_per_rank(model) * 3 >= model.total_params

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelTopology(data_parallel=0)
        with pytest.raises(ValueError):
            ParallelTopology.weak_scaling(0)


class TestSyntheticTokenDataset:
    def test_batches_are_deterministic(self):
        a = SyntheticTokenDataset(vocab_size=100, sequence_length=16, seed=7)
        b = SyntheticTokenDataset(vocab_size=100, sequence_length=16, seed=7)
        batch_a = a.batch(3, micro_batch_size=2)
        batch_b = b.batch(3, micro_batch_size=2)
        np.testing.assert_array_equal(batch_a.tokens, batch_b.tokens)
        np.testing.assert_array_equal(batch_a.targets, batch_b.targets)

    def test_different_seeds_differ(self):
        a = SyntheticTokenDataset(vocab_size=100, sequence_length=16, seed=1)
        b = SyntheticTokenDataset(vocab_size=100, sequence_length=16, seed=2)
        assert not np.array_equal(a.batch(0, 1).tokens, b.batch(0, 1).tokens)

    def test_targets_are_shifted_tokens(self):
        data = SyntheticTokenDataset(vocab_size=50, sequence_length=8, seed=0)
        batch = data.batch(0, 1)
        assert batch.sequence_length == 8
        assert batch.tokens.max() < 50
        assert batch.tokens.min() >= 0
        assert batch.micro_batch_size == 1

    def test_batch_geometry_validation(self):
        data = SyntheticTokenDataset(vocab_size=50, sequence_length=8)
        with pytest.raises(ValueError):
            data.batch(0, 0)
        with pytest.raises(ValueError):
            SyntheticTokenDataset(vocab_size=1, sequence_length=8)
        with pytest.raises(ValueError):
            TrainingBatch(tokens=np.zeros((2, 4), dtype=np.int64), targets=np.zeros((2, 5), dtype=np.int64))

    def test_finite_iterator(self):
        data = SyntheticTokenDataset(vocab_size=50, sequence_length=8)
        batches = list(data.batches(3, micro_batch_size=2))
        assert len(batches) == 3


class TestMemoryEstimator:
    def test_runtime_buffers_match_paper_range(self):
        # 250–350 GB proportional to model size (§4.3).
        assert runtime_buffer_bytes(model_by_name("40B")) == pytest.approx(250 * GiB, rel=0.05)
        assert runtime_buffer_bytes(model_by_name("120B")) == pytest.approx(350 * GiB, rel=0.1)

    def test_40b_on_testbed1_leaves_host_cache(self):
        from repro.tiers.spec import TESTBED_1

        breakdown = estimate_memory(
            model_by_name("40B"),
            ParallelTopology.single_node(4),
            gpu_memory=TESTBED_1.gpu_memory,
            host_memory=TESTBED_1.host_memory,
            subgroup_size=100_000_000,
        )
        assert breakdown.fits_host
        # Figure 10 reports ~145 GB of the 40B optimizer state cached in host memory.
        assert 80e9 < breakdown.host_cache_available < 220e9
        assert breakdown.offloaded_optimizer_bytes == pytest.approx(
            model_by_name("40B").optimizer_state_bytes, rel=0.01
        )

    def test_baseline_fp32_grads_increase_footprints(self):
        from repro.tiers.spec import TESTBED_1

        kwargs = dict(
            gpu_memory=TESTBED_1.gpu_memory,
            host_memory=TESTBED_1.host_memory,
            subgroup_size=100_000_000,
        )
        ours = estimate_memory(model_by_name("70B"), ParallelTopology.single_node(4), **kwargs)
        baseline = estimate_memory(
            model_by_name("70B"),
            ParallelTopology.single_node(4),
            baseline_fp32_grads=True,
            **kwargs,
        )
        assert baseline.offloaded_optimizer_bytes > ours.offloaded_optimizer_bytes
        assert baseline.host_pinned_buffers > ours.host_pinned_buffers

    def test_tiny_model_fits_everywhere(self):
        tiny = tiny_test_model()
        breakdown = estimate_memory(
            tiny,
            ParallelTopology(data_parallel=1),
            gpu_memory=8 * GiB,
            host_memory=700 * GiB,
            subgroup_size=1000,
        )
        assert breakdown.fits_gpu

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            estimate_memory(
                tiny_test_model(),
                ParallelTopology(data_parallel=1),
                gpu_memory=1,
                host_memory=1,
                subgroup_size=0,
            )
