"""Unit tests for the Equation 1 performance model and bandwidth estimator."""

import pytest

from repro.core.performance_model import (
    BandwidthEstimator,
    allocate_subgroups,
    allocation_from_ratios,
    expected_round_trip_seconds,
)


class TestAllocateSubgroups:
    def test_counts_sum_to_total(self):
        allocation = allocate_subgroups(100, {"nvme": 5.3e9, "pfs": 3.6e9})
        assert sum(allocation.values()) == 100

    def test_proportional_to_bandwidth(self):
        allocation = allocate_subgroups(90, {"fast": 6.0, "slow": 3.0})
        assert allocation["fast"] == pytest.approx(60, abs=2)
        assert allocation["slow"] == pytest.approx(30, abs=2)

    def test_paper_2_to_1_split(self):
        """Testbed-1's NVMe:PFS bandwidths yield roughly the 2:1 split of Figure 10."""
        allocation = allocate_subgroups(99, {"nvme": 5.3e9, "pfs": 3.6e9})
        ratio = allocation["nvme"] / allocation["pfs"]
        assert 1.2 <= ratio <= 2.2

    def test_single_tier_gets_everything(self):
        assert allocate_subgroups(42, {"nvme": 1.0}) == {"nvme": 42}

    def test_equal_bandwidths_split_evenly(self):
        allocation = allocate_subgroups(10, {"a": 1.0, "b": 1.0})
        assert sorted(allocation.values()) == [5, 5]

    def test_zero_subgroups(self):
        assert allocate_subgroups(0, {"a": 1.0, "b": 2.0}) == {"a": 0, "b": 0}

    def test_faster_tier_never_gets_fewer(self):
        allocation = allocate_subgroups(7, {"slow": 1.0, "fast": 10.0, "mid": 3.0})
        assert allocation["fast"] >= allocation["mid"] >= allocation["slow"]

    def test_every_nonzero_tier_used_when_enough_subgroups(self):
        allocation = allocate_subgroups(5, {"a": 100.0, "b": 1.0})
        assert allocation["b"] >= 1

    def test_zero_bandwidth_tier_gets_nothing(self):
        allocation = allocate_subgroups(10, {"a": 1.0, "dead": 0.0})
        assert allocation["dead"] == 0
        assert allocation["a"] == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_subgroups(-1, {"a": 1.0})
        with pytest.raises(ValueError):
            allocate_subgroups(1, {})
        with pytest.raises(ValueError):
            allocate_subgroups(1, {"a": -1.0})
        with pytest.raises(ValueError):
            allocate_subgroups(1, {"a": 0.0})

    def test_ratio_based_allocation(self):
        allocation = allocation_from_ratios(30, {"local": 2.0, "remote": 1.0})
        assert allocation == {"local": 20, "remote": 10}


class TestExpectedRoundTrip:
    def test_balanced_allocation_minimizes_straggling(self):
        bandwidths = {"nvme": 5.0, "pfs": 3.0}
        balanced = allocate_subgroups(80, bandwidths)
        skewed = {"nvme": 10, "pfs": 70}
        assert expected_round_trip_seconds(1.0, balanced, bandwidths) < expected_round_trip_seconds(
            1.0, skewed, bandwidths
        )

    def test_single_tier_time(self):
        assert expected_round_trip_seconds(2.0, {"nvme": 10}, {"nvme": 4.0}) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_round_trip_seconds(-1.0, {"a": 1}, {"a": 1.0})
        with pytest.raises(ValueError):
            expected_round_trip_seconds(1.0, {"a": 1}, {"a": 0.0})


class TestBandwidthEstimator:
    def test_observation_moves_estimate_towards_measurement(self):
        estimator = BandwidthEstimator(initial={"nvme": 10.0}, smoothing=0.5)
        estimator.observe("nvme", nbytes=100.0, seconds=50.0)  # observed 2.0
        assert estimator.bandwidths["nvme"] == pytest.approx(6.0)
        assert estimator.observation_count("nvme") == 1

    def test_zero_observations_are_ignored(self):
        estimator = BandwidthEstimator(initial={"nvme": 10.0})
        assert estimator.observe("nvme", 0.0, 0.0) == 10.0
        assert estimator.observation_count("nvme") == 0

    def test_allocation_adapts_to_shifting_bandwidth(self):
        estimator = BandwidthEstimator(initial={"nvme": 5.0, "pfs": 5.0}, smoothing=1.0)
        before = estimator.allocate(100)
        assert before["nvme"] == before["pfs"]
        # The PFS comes under external pressure and slows to one fifth.
        estimator.observe("pfs", nbytes=10.0, seconds=10.0)
        after = estimator.allocate(100)
        assert after["nvme"] > after["pfs"]
        assert sum(after.values()) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthEstimator(initial={})
        with pytest.raises(ValueError):
            BandwidthEstimator(initial={"a": 0.0})
        with pytest.raises(ValueError):
            BandwidthEstimator(initial={"a": 1.0}, smoothing=0.0)
        estimator = BandwidthEstimator(initial={"a": 1.0})
        with pytest.raises(KeyError):
            estimator.observe("b", 1.0, 1.0)
        with pytest.raises(ValueError):
            estimator.observe("a", -1.0, 1.0)
