"""Unit tests for the MLP-Offload configuration surface."""

import pytest

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.train.adam import AdamConfig


class TestTierConfig:
    def test_effective_bw_requires_both_directions(self):
        assert TierConfig(name="nvme", path="/x", read_bw=6.0, write_bw=4.0).effective_bw == 4.0
        assert TierConfig(name="nvme", path="/x", read_bw=6.0).effective_bw is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TierConfig(name="", path="/x")
        with pytest.raises(ValueError):
            TierConfig(name="nvme", path="/x", read_bw=0)
        with pytest.raises(ValueError):
            TierConfig(name="nvme", path="/x", ratio=0)


class TestMLPOffloadConfig:
    def test_defaults_enable_every_design_principle(self, two_tier_config):
        cfg = two_tier_config
        assert cfg.enable_multipath and cfg.enable_tier_locks
        assert cfg.enable_cache_reorder and cfg.enable_delayed_grad_conversion
        assert cfg.tier_names == ["nvme", "pfs"]
        assert cfg.primary_tier.name == "nvme"
        assert cfg.tier("pfs").name == "pfs"
        with pytest.raises(KeyError):
            cfg.tier("tape")

    def test_validation(self, tier_dirs):
        with pytest.raises(ValueError):
            MLPOffloadConfig(tiers=())
        dup = (TierConfig("a", str(tier_dirs["nvme"])), TierConfig("a", str(tier_dirs["pfs"])))
        with pytest.raises(ValueError):
            MLPOffloadConfig(tiers=dup)
        single = (TierConfig("nvme", str(tier_dirs["nvme"])),)
        with pytest.raises(ValueError):
            MLPOffloadConfig(tiers=single, subgroup_size=0)
        with pytest.raises(ValueError):
            MLPOffloadConfig(tiers=single, pinned_buffers=0)
        with pytest.raises(ValueError):
            MLPOffloadConfig(tiers=single, host_cache_bytes=-1)
        with pytest.raises(ValueError):
            MLPOffloadConfig(tiers=single, bandwidth_smoothing=0.0)

    def test_explicit_ratios_need_every_tier(self, tier_dirs):
        partial = MLPOffloadConfig(
            tiers=(
                TierConfig("nvme", str(tier_dirs["nvme"]), ratio=2.0),
                TierConfig("pfs", str(tier_dirs["pfs"])),
            )
        )
        assert partial.explicit_ratios() is None
        full = MLPOffloadConfig.local_and_remote(
            tier_dirs["nvme"], tier_dirs["pfs"], ratio=(2.0, 1.0)
        )
        assert full.explicit_ratios() == {"nvme": 2.0, "pfs": 1.0}

    def test_bandwidth_hints(self, two_tier_config):
        hints = two_tier_config.bandwidth_hints()
        assert hints["nvme"] == pytest.approx(5.3e9)
        assert hints["pfs"] == pytest.approx(3.6e9)

    def test_json_round_trip(self, two_tier_config):
        text = two_tier_config.to_json()
        restored = MLPOffloadConfig.from_json(text)
        assert restored.tier_names == two_tier_config.tier_names
        assert restored.subgroup_size == two_tier_config.subgroup_size
        assert restored.adam == two_tier_config.adam
        assert restored.enable_multipath == two_tier_config.enable_multipath
        assert restored.host_cache_bytes == two_tier_config.host_cache_bytes

    def test_from_json_requires_top_level_key(self):
        with pytest.raises(ValueError):
            MLPOffloadConfig.from_json("{}")

    def test_baseline_variant_disables_everything(self, two_tier_config):
        base = two_tier_config.baseline_variant()
        assert base.tier_names == ["nvme"]
        assert not base.enable_multipath
        assert not base.enable_tier_locks
        assert not base.enable_cache_reorder
        assert not base.enable_delayed_grad_conversion
        # Shared knobs are preserved so comparisons are apples to apples.
        assert base.subgroup_size == two_tier_config.subgroup_size
        assert base.adam == two_tier_config.adam

    def test_factory_helpers(self, tier_dirs):
        single = MLPOffloadConfig.single_tier(tier_dirs["nvme"], subgroup_size=10)
        assert single.tier_names == ["nvme"]
        both = MLPOffloadConfig.local_and_remote(tier_dirs["nvme"], tier_dirs["pfs"])
        assert both.tier_names == ["nvme", "pfs"]
        assert isinstance(both.adam, AdamConfig)
