"""Unit tests for the cache-friendly ordering policy and the placement map."""

import pytest

from repro.core.ordering import OrderingPolicy, expected_cache_hits, update_order
from repro.core.placement import PlacementMap


class TestUpdateOrder:
    def test_sequential_is_always_ascending(self):
        for iteration in range(4):
            assert update_order(5, iteration, OrderingPolicy.SEQUENTIAL) == [0, 1, 2, 3, 4]

    def test_alternating_flips_every_iteration(self):
        assert update_order(4, 0, OrderingPolicy.ALTERNATING) == [0, 1, 2, 3]
        assert update_order(4, 1, OrderingPolicy.ALTERNATING) == [3, 2, 1, 0]
        assert update_order(4, 2, OrderingPolicy.ALTERNATING) == [0, 1, 2, 3]

    def test_every_policy_returns_a_permutation(self):
        for policy in OrderingPolicy:
            order = update_order(7, 1, policy, cached_ids=[5, 6, 2])
            assert sorted(order) == list(range(7))

    def test_cached_first_puts_resident_subgroups_up_front(self):
        order = update_order(6, 0, OrderingPolicy.CACHED_FIRST, cached_ids=[4, 2])
        assert order[:2] == [4, 2]
        assert sorted(order[2:]) == [0, 1, 3, 5]

    def test_cached_first_ignores_out_of_range_and_duplicate_ids(self):
        order = update_order(4, 0, OrderingPolicy.CACHED_FIRST, cached_ids=[9, 2, 2, -1])
        assert order == [2, 0, 1, 3]

    def test_edge_cases_and_validation(self):
        assert update_order(0, 0) == []
        with pytest.raises(ValueError):
            update_order(-1, 0)
        with pytest.raises(ValueError):
            update_order(1, -1)


class TestExpectedCacheHits:
    def test_alternating_converts_thrashing_into_hits(self):
        n, cache = 10, 4
        ascending = update_order(n, 0, OrderingPolicy.ALTERNATING)
        descending = update_order(n, 1, OrderingPolicy.ALTERNATING)
        # Baseline: ascending after ascending -> no reuse.
        assert expected_cache_hits(ascending, ascending, cache) == 0
        # MLP-Offload: descending after ascending -> the whole cache is reused.
        assert expected_cache_hits(descending, ascending, cache) == cache

    def test_full_cache_hits_everything(self):
        order = list(range(5))
        assert expected_cache_hits(order, order, 5) == 5

    def test_zero_capacity_or_empty_history(self):
        assert expected_cache_hits([0, 1], [], 4) == 0
        assert expected_cache_hits([0, 1], [0, 1], 0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_cache_hits([0], [0], -1)


class TestPlacementMap:
    def test_from_allocation_counts_match(self):
        placement = PlacementMap.from_allocation(list(range(9)), {"nvme": 6, "pfs": 3})
        assert placement.counts() == {"nvme": 6, "pfs": 3}
        assert len(placement) == 9

    def test_interleaving_spreads_consecutive_subgroups(self):
        placement = PlacementMap.from_allocation(list(range(6)), {"nvme": 3, "pfs": 3})
        tiers = [placement.tier_of(i) for i in range(6)]
        # With equal shares consecutive subgroups alternate tiers.
        assert tiers[0] != tiers[1]

    def test_block_placement(self):
        placement = PlacementMap.from_allocation(
            list(range(6)), {"nvme": 4, "pfs": 2}, interleave=False
        )
        assert [placement.tier_of(i) for i in range(6)] == ["nvme"] * 4 + ["pfs"] * 2

    def test_allocation_must_cover_all_subgroups(self):
        with pytest.raises(ValueError):
            PlacementMap.from_allocation(list(range(5)), {"nvme": 3})

    def test_assign_and_queries(self):
        placement = PlacementMap.from_allocation(list(range(4)), {"nvme": 4, "pfs": 0})
        placement.assign(2, "pfs")
        assert placement.tier_of(2) == "pfs"
        assert placement.subgroups_on("pfs") == [2]
        assert 2 in placement and 9 not in placement
        with pytest.raises(KeyError):
            placement.assign(0, "tape")
        with pytest.raises(KeyError):
            placement.tier_of(99)

    def test_host_sentinel_allowed(self):
        placement = PlacementMap.from_allocation(list(range(2)), {"nvme": 2})
        placement.assign(0, PlacementMap.HOST)
        assert placement.tier_of(0) == "host"

    def test_distribution_bytes(self):
        placement = PlacementMap.from_allocation(list(range(4)), {"nvme": 2, "pfs": 2})
        sizes = {i: 100.0 for i in range(4)}
        distribution = placement.distribution_bytes(sizes)
        assert distribution["nvme"] == 200.0
        assert distribution["pfs"] == 200.0

    def test_rebalance_moves_minimum_subgroups(self):
        placement = PlacementMap.from_allocation(
            list(range(10)), {"nvme": 10, "pfs": 0}, interleave=False
        )
        moves = placement.rebalance({"nvme": 6, "pfs": 4})
        assert len(moves) == 4
        assert placement.counts() == {"nvme": 6, "pfs": 4}
        # A second rebalance to the same target moves nothing.
        assert placement.rebalance({"nvme": 6, "pfs": 4}) == {}

    def test_rebalance_requires_matching_total(self):
        placement = PlacementMap.from_allocation(list(range(4)), {"nvme": 4})
        with pytest.raises(ValueError):
            placement.rebalance({"nvme": 3})

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PlacementMap([])
        with pytest.raises(ValueError):
            PlacementMap(["a", "a"])
