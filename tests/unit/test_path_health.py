"""Unit tests for path-health quarantine, degraded weights and recovery probes."""

import errno

import numpy as np
import pytest

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.virtual_tier import PathHealth, VirtualTier
from repro.tiers.faultstore import FaultPlan, FaultRule, arm_faults, clear_faults
from repro.tiers.file_store import StoreError
from repro.tiers.spec import degraded_weights
from repro.train.adam import AdamConfig


def _fatal():
    err = StoreError("write failed")
    err.__cause__ = OSError(errno.EIO, "device error")
    return err


class TestDegradedWeights:
    def test_masks_unhealthy_paths_to_zero(self):
        assert degraded_weights([3.0, 1.0], [True, False]) == (3.0, 0.0)
        assert degraded_weights([3.0, 1.0], [False, True]) == (0.0, 1.0)

    def test_all_healthy_passes_through(self):
        assert degraded_weights([3.0, 1.0], [True, True]) == (3.0, 1.0)

    def test_equal_split_when_survivors_have_zero_weight(self):
        assert degraded_weights([0.0, 5.0, 0.0], [True, False, True]) == (
            1.0,
            0.0,
            1.0,
        )

    def test_no_healthy_path_passes_through_unmasked(self):
        # The caller surfaces the typed error; the weights must stay usable.
        assert degraded_weights([3.0, 1.0], [False, False]) == (3.0, 1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            degraded_weights([1.0], [True, False])


class TestPathHealth:
    def test_quarantines_after_k_consecutive_fatal_failures(self):
        health = PathHealth(["a", "b"], quarantine_after=3)
        for _ in range(2):
            health.on_failure("a", _fatal())
        assert health.is_healthy("a")
        health.on_failure("a", _fatal())
        assert not health.is_healthy("a")
        assert health.is_healthy("b")
        assert health.quarantine_events == 1
        assert health.healthy_mask(["a", "b"]) == [False, True]

    def test_success_resets_the_streak(self):
        health = PathHealth(["a"], quarantine_after=2)
        health.on_failure("a", _fatal())
        health.on_success("a")
        health.on_failure("a", _fatal())
        assert health.is_healthy("a")

    def test_application_errors_never_count(self):
        health = PathHealth(["a"], quarantine_after=1)
        health.on_failure("a", StoreError("no blob for key 'missing'"))
        health.on_failure("a", StoreError("dtype mismatch"))
        assert health.is_healthy("a")
        assert not PathHealth.is_path_fatal(StoreError("no blob"))
        assert PathHealth.is_path_fatal(_fatal())
        assert PathHealth.is_path_fatal(OSError(errno.ENOSPC, "full"))

    def test_force_quarantine_and_admit(self):
        health = PathHealth(["a"], quarantine_after=3)
        health.force_quarantine("a")
        assert not health.is_healthy("a")
        # Further failures on a quarantined path are no-ops, not double counts.
        health.on_failure("a", _fatal())
        assert health.quarantine_events == 1
        health.admit("a")
        assert health.is_healthy("a")
        assert health.recovery_events == 1
        # Re-admission cleared the streak: one new failure does not re-trip.
        health.on_failure("a", _fatal())
        assert health.is_healthy("a")

    def test_tick_schedules_probes_on_the_interval(self):
        health = PathHealth(["a", "b"], quarantine_after=1, probe_interval=3)
        assert health.tick() == []  # nothing quarantined, nothing due
        health.force_quarantine("a")
        due = [health.tick() for _ in range(7)]
        assert due == [[], [], ["a"], [], [], ["a"], []]

    def test_unknown_tiers_are_ignored(self):
        health = PathHealth(["a"], quarantine_after=1)
        health.on_failure("ghost", _fatal())
        health.on_success("ghost")
        health.force_quarantine("ghost")
        health.admit("ghost")
        assert "ghost" not in health.snapshot()

    def test_validation(self):
        with pytest.raises(ValueError):
            PathHealth(["a"], quarantine_after=0)
        with pytest.raises(ValueError):
            PathHealth(["a"], probe_interval=0)

    def test_snapshot_reports_state(self):
        health = PathHealth(["a", "b"], quarantine_after=2, probe_interval=4)
        health.on_failure("a", _fatal())
        health.force_quarantine("b")
        health.tick()
        snap = health.snapshot()
        assert snap["a"] == {
            "healthy": True,
            "consecutive_fatal": 1,
            "ticks_quarantined": 0,
        }
        assert snap["b"]["healthy"] is False
        assert snap["b"]["ticks_quarantined"] == 1


def _two_path_config(tmp_path, **overrides):
    for name in ("nvme", "pfs"):
        (tmp_path / name).mkdir(exist_ok=True)
    defaults = dict(
        subgroup_size=256,
        adam=AdamConfig(lr=1e-3),
        enable_striped_reads=True,
        stripe_threshold_bytes=512.0,
        adaptive_bandwidth=False,
        io_retry_attempts=1,
        path_quarantine_failures=2,
        path_probe_interval=2,
    )
    defaults.update(overrides)
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(tmp_path / "nvme"), read_bw=6e9, write_bw=5e9),
            TierConfig("pfs", str(tmp_path / "pfs"), read_bw=3e9, write_bw=3e9),
        ),
        **defaults,
    )


class TestVirtualTierHealthIntegration:
    @pytest.fixture(autouse=True)
    def _disarmed(self):
        clear_faults()
        yield
        clear_faults()

    def test_engine_failures_feed_the_observer(self, tmp_path):
        arm_faults(FaultPlan([FaultRule(kind="dead", op="write", tier="pfs", count=0)]))
        config = _two_path_config(tmp_path, enable_striped_reads=False)
        with VirtualTier(config) as tier:
            assert tier.health is not None
            assert tier.engine.observer is tier.health
            tier.build_placement([0, 1])
            # Force two whole-blob writes at pfs; both die; path quarantines
            # at K=2 — but the failover machinery rewrites them onto nvme, so
            # the caller still sees success.
            tier.flush_subgroup("sg0", 0, {"params": np.arange(4, dtype=np.float32)}, tier="pfs")
            tier.flush_subgroup("sg1", 1, {"params": np.arange(4, dtype=np.float32)}, tier="pfs")
            assert not tier.health.is_healthy("pfs")
            assert tier.failovers >= 1
            assert tier.placement.tier_of(0) == "nvme"
            summary = tier.health_summary()
            assert summary["paths"]["pfs"]["healthy"] is False

    def test_stripe_weights_mask_quarantined_paths(self, tmp_path):
        config = _two_path_config(tmp_path)
        with VirtualTier(config) as tier:
            assert tier._stripe_weights() == [6e9, 3e9]
            tier.health.force_quarantine("pfs")
            assert tier._stripe_weights() == [6e9, 0.0]
            assert not tier._can_stripe()  # one survivor: striping is overhead
            assert tier._healthy_target("pfs") == "nvme"
            tier.health.admit("pfs")
            assert tier._can_stripe()
            assert tier._healthy_target("pfs") == "pfs"

    def test_quarantined_primary_blocks_new_striped_writes(self, tmp_path):
        config = _two_path_config(tmp_path)
        with VirtualTier(config) as tier:
            tier.health.force_quarantine("nvme")  # the stripe primary
            assert not tier._can_stripe()

    def test_probe_readmits_after_the_path_heals(self, tmp_path):
        # The path dies for exactly 2 writes.  Write 0 is the flush (which
        # fails over and quarantines pfs immediately — subsequent flushes
        # re-route, consuming no pfs faults); write 1 is the first probe.
        arm_faults(FaultPlan([FaultRule(kind="dead", op="write", tier="pfs", count=2)]))
        config = _two_path_config(tmp_path, enable_striped_reads=False)
        with VirtualTier(config) as tier:
            tier.build_placement([0])
            payload = np.arange(4, dtype=np.float32)
            tier.flush_subgroup("sg0", 0, {"params": payload}, tier="pfs")
            assert not tier.health.is_healthy("pfs")
            # A quarantined path takes no flush traffic while down.
            tier.flush_subgroup("sg0", 0, {"params": payload}, tier="pfs")
            assert tier.placement.tier_of(0) == "nvme"
            tier.observe_iteration()  # tick 1: not due yet (interval 2)
            assert not tier.health.is_healthy("pfs")
            tier.observe_iteration()  # tick 2: probe runs — burns the last fault
            assert not tier.health.is_healthy("pfs")
            tier.observe_iteration()  # tick 3: not due
            tier.observe_iteration()  # tick 4: probe succeeds
            assert tier.health.is_healthy("pfs")
            assert tier.health.recovery_events == 1
            # No probe residue may pollute the store.
            assert not any(k.startswith("ioprobe") for k in tier.stores["pfs"].keys())

    def test_health_disabled_when_configured_off(self, tmp_path):
        config = _two_path_config(tmp_path, path_quarantine_failures=0)
        with VirtualTier(config) as tier:
            assert tier.health is None
            assert tier.engine.observer is None
            assert tier._can_stripe()
            assert tier._healthy_target("pfs") == "pfs"
            assert tier.health_summary() == {"failovers": 0, "degraded_reads": 0}
