"""Unit tests for mixed-precision helpers."""

import numpy as np
import pytest

from repro.train.mixed_precision import (
    GradScaler,
    MixedPrecisionState,
    conversion_seconds,
    fp16_to_fp32,
    fp32_to_fp16,
)


class TestConversions:
    def test_round_trip_within_fp16_precision(self, rng):
        values = rng.standard_normal(100).astype(np.float32)
        half = fp32_to_fp16(values)
        back = fp16_to_fp32(half)
        np.testing.assert_allclose(back, values, rtol=1e-3, atol=1e-3)
        assert half.dtype == np.float16 and back.dtype == np.float32

    def test_preallocated_outputs(self, rng):
        values = rng.standard_normal(10).astype(np.float32)
        out16 = np.zeros(10, dtype=np.float16)
        out32 = np.zeros(10, dtype=np.float32)
        fp32_to_fp16(values, out=out16)
        fp16_to_fp32(out16, out=out32)
        np.testing.assert_allclose(out32, values, rtol=1e-3, atol=1e-3)
        with pytest.raises(ValueError):
            fp32_to_fp16(values, out=np.zeros(5, dtype=np.float16))

    def test_conversion_seconds_model(self):
        assert conversion_seconds(65e9, 65e9) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            conversion_seconds(-1, 1)
        with pytest.raises(ValueError):
            conversion_seconds(1, 0)


class TestMixedPrecisionState:
    def test_from_fp32_and_sync(self, rng):
        master = rng.standard_normal(64).astype(np.float32)
        state = MixedPrecisionState.from_fp32(master)
        assert state.max_divergence() < 1e-2
        state.master += 0.25
        assert state.max_divergence() >= 0.2
        state.sync_working()
        assert state.max_divergence() < 1e-2

    def test_type_validation(self):
        with pytest.raises(TypeError):
            MixedPrecisionState(
                master=np.zeros(4, dtype=np.float16), working=np.zeros(4, dtype=np.float16)
            )
        with pytest.raises(TypeError):
            MixedPrecisionState(
                master=np.zeros(4, dtype=np.float32), working=np.zeros(4, dtype=np.float32)
            )
        with pytest.raises(ValueError):
            MixedPrecisionState(
                master=np.zeros(4, dtype=np.float32), working=np.zeros(5, dtype=np.float16)
            )


class TestGradScaler:
    def test_scale_and_unscale_round_trip(self, rng):
        scaler = GradScaler(init_scale=1024.0)
        grads = rng.standard_normal(32).astype(np.float32)
        scaled = grads * scaler.scale
        np.testing.assert_allclose(scaler.unscale(scaled), grads, rtol=1e-6)
        assert scaler.scale_loss(2.0) == pytest.approx(2048.0)

    def test_overflow_detection(self):
        good = np.ones(4, dtype=np.float32)
        bad = np.array([1.0, np.inf, 1.0, np.nan], dtype=np.float32)
        assert not GradScaler.has_overflow(good)
        assert GradScaler.has_overflow(bad)

    def test_backoff_and_growth(self):
        scaler = GradScaler(init_scale=1024.0, growth_interval=2)
        scaler.update(found_overflow=True)
        assert scaler.scale == pytest.approx(512.0)
        assert scaler.overflow_count == 1
        scaler.update(False)
        scaler.update(False)
        assert scaler.scale == pytest.approx(1024.0)

    def test_scale_bounds_respected(self):
        scaler = GradScaler(init_scale=2.0, min_scale=1.0, max_scale=4.0, growth_interval=1)
        for _ in range(10):
            scaler.update(found_overflow=True)
        assert scaler.scale == 1.0
        for _ in range(10):
            scaler.update(found_overflow=False)
        assert scaler.scale == 4.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GradScaler(init_scale=0)
        with pytest.raises(ValueError):
            GradScaler(growth_factor=1.0)
        with pytest.raises(ValueError):
            GradScaler(backoff_factor=1.5)
        with pytest.raises(ValueError):
            GradScaler(growth_interval=0)
