"""Unit tests for the baseline/ablation variants and the benchmark harness."""

import pytest

from repro.bench.harness import ExperimentResult, format_table, paper_vs_measured
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.zero.variants import (
    ABLATION_LADDER_MULTIPATH,
    ABLATION_LADDER_NVME,
    variant_config,
)
from repro.zero.zero3_engine import zero3_config


@pytest.fixture
def full_config(tier_dirs):
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(tier_dirs["nvme"]), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(tier_dirs["pfs"]), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=100,
    )


class TestZero3Config:
    def test_baseline_disables_all_principles_but_keeps_shared_knobs(self, full_config):
        base = zero3_config(full_config)
        assert base.tier_names == ["nvme"]
        assert not (
            base.enable_multipath
            or base.enable_tier_locks
            or base.enable_cache_reorder
            or base.enable_delayed_grad_conversion
        )
        assert base.subgroup_size == full_config.subgroup_size


class TestAblationLadders:
    def test_nvme_ladder_is_progressive(self):
        ladder = ABLATION_LADDER_NVME
        assert [v.name for v in ladder] == ["zero3", "caching", "skip_gradients", "atomic_rw"]
        enabled_counts = [
            sum([v.multipath, v.cache_reorder, v.delayed_grads, v.tier_locks]) for v in ladder
        ]
        assert enabled_counts == sorted(enabled_counts)
        assert not any(v.multipath for v in ladder)

    def test_multipath_ladder_ends_with_full_mlp_offload(self):
        final = ABLATION_LADDER_MULTIPATH[-1]
        assert final.multipath and final.cache_reorder and final.delayed_grads and final.tier_locks
        assert all(v.multipath for v in ABLATION_LADDER_MULTIPATH)

    def test_variant_config_applies_switches(self, full_config):
        caching = variant_config("caching", full_config)
        assert caching.enable_cache_reorder
        assert not caching.enable_delayed_grad_conversion
        assert caching.tier_names == ["nvme"]
        ours = variant_config("mlp_offload", full_config)
        assert ours.tier_names == ["nvme", "pfs"]
        with pytest.raises(KeyError):
            variant_config("nonsense", full_config)


class TestHarness:
    def test_experiment_result_rows_and_lookup(self):
        result = ExperimentResult("figX", "demo")
        result.add_row(model="40B", engine="DS", value=1.0)
        result.add_row(model="40B", engine="MLP", value=2.0)
        assert result.column("value") == [1.0, 2.0]
        assert result.row_for(engine="MLP")["value"] == 2.0
        with pytest.raises(KeyError):
            result.row_for(engine="missing")
        result.add_note("a note")
        assert "figX" in str(result)

    def test_format_table_handles_mixed_columns(self):
        text = format_table([{"a": 1.0, "b": "x"}, {"a": 20000.0, "c": 3}], title="T")
        assert "T" in text and "a" in text and "c" in text
        assert format_table([], title="empty").startswith("empty")

    def test_paper_vs_measured_row(self):
        row = paper_vs_measured("speedup", 2.5, 3.0, unit="x")
        assert row["measured/paper"] == pytest.approx(1.2)
        assert row["unit"] == "x"
