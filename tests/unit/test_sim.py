"""Unit tests for the discrete-event simulator (resources, workload, pipeline, iteration)."""

import pytest

from repro.sim.iteration import IterationModel, simulate_iteration
from repro.sim.metrics import IterationResult, UpdatePhaseResult, speedup
from repro.sim.pipeline import simulate_update_phase
from repro.sim.resources import FluidResource, FluidSimulation, Transfer
from repro.sim.workload import EngineKnobs, build_workload
from repro.tiers.spec import TESTBED_1, TESTBED_2
from repro.train.model_zoo import model_by_name
from repro.train.parallelism import ParallelTopology


class TestFluidSimulation:
    def test_single_transfer_takes_units_over_capacity(self):
        sim = FluidSimulation()
        resource = FluidResource("disk", capacity=10.0)
        done = []
        sim.submit(Transfer(resource, units=50.0, owner="a", on_complete=lambda t, now: done.append(now)))
        assert sim.run() == pytest.approx(5.0)
        assert done == [pytest.approx(5.0)]

    def test_processor_sharing_halves_the_rate(self):
        sim = FluidSimulation()
        resource = FluidResource("disk", capacity=10.0)
        t1 = sim.submit(Transfer(resource, units=50.0, owner="a"))
        t2 = sim.submit(Transfer(resource, units=50.0, owner="b"))
        sim.run()
        assert t1.completed_at == pytest.approx(10.0)
        assert t2.completed_at == pytest.approx(10.0)

    def test_contention_penalty_reduces_aggregate(self):
        sim = FluidSimulation()
        resource = FluidResource("disk", capacity=10.0, contention_penalty=1.0)
        sim.submit(Transfer(resource, units=50.0, owner="a"))
        sim.submit(Transfer(resource, units=50.0, owner="b"))
        # Two owners -> aggregate capacity 10/(1+1) = 5 -> 100 units take 20 s.
        assert sim.run() == pytest.approx(20.0)

    def test_same_owner_does_not_trigger_contention(self):
        sim = FluidSimulation()
        resource = FluidResource("disk", capacity=10.0, contention_penalty=1.0)
        sim.submit(Transfer(resource, units=50.0, owner="a"))
        sim.submit(Transfer(resource, units=50.0, owner="a"))
        assert sim.run() == pytest.approx(10.0)

    def test_exclusive_resource_serializes_owners(self):
        sim = FluidSimulation()
        resource = FluidResource("tier", capacity=10.0, exclusive=True)
        t1 = sim.submit(Transfer(resource, units=50.0, owner="a"))
        t2 = sim.submit(Transfer(resource, units=50.0, owner="b"))
        sim.run()
        assert t1.completed_at == pytest.approx(5.0)
        assert t2.completed_at == pytest.approx(10.0)
        assert t2.started_at >= t1.completed_at - 1e-9

    def test_callbacks_can_chain_new_transfers(self):
        sim = FluidSimulation()
        resource = FluidResource("disk", capacity=1.0)
        completions = []

        def chain(transfer, now):
            completions.append(now)
            if len(completions) < 3:
                sim.submit(Transfer(resource, units=1.0, owner="a", on_complete=chain))

        sim.submit(Transfer(resource, units=1.0, owner="a", on_complete=chain))
        assert sim.run() == pytest.approx(3.0)
        assert completions == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_zero_unit_transfer_completes_immediately(self):
        sim = FluidSimulation()
        resource = FluidResource("disk", capacity=1.0)
        t = sim.submit(Transfer(resource, units=0.0, owner="a"))
        assert t.done and t.duration == 0.0
        assert sim.run() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FluidResource("bad", capacity=0.0)
        with pytest.raises(ValueError):
            FluidResource("bad", capacity=1.0, contention_penalty=-1.0)
        with pytest.raises(ValueError):
            Transfer(FluidResource("ok", capacity=1.0), units=-1.0, owner="a")


class TestWorkload:
    def test_baseline_moves_more_bytes_than_mlp_offload(self):
        model = model_by_name("40B")
        ours = build_workload(model, TESTBED_1, EngineKnobs.mlp_offload())
        baseline = build_workload(model, TESTBED_1, EngineKnobs.zero3_baseline())
        assert baseline.fetch_bytes_per_subgroup > ours.fetch_bytes_per_subgroup
        assert baseline.backward_grad_flush_bytes_per_worker > 0
        assert ours.backward_grad_flush_bytes_per_worker == 0

    def test_multipath_uses_both_tiers_and_respects_eq1(self):
        workload = build_workload(model_by_name("70B"), TESTBED_1, EngineKnobs.mlp_offload())
        assert set(workload.tier_allocation) == {"nvme", "pfs"}
        assert workload.tier_allocation["nvme"] > workload.tier_allocation["pfs"]
        assert sum(workload.tier_allocation.values()) == workload.subgroups_per_worker

    def test_single_path_puts_everything_on_nvme(self):
        workload = build_workload(model_by_name("70B"), TESTBED_1, EngineKnobs.zero3_baseline())
        assert list(workload.tier_allocation) == ["nvme"]

    def test_cache_hits_only_with_reordering(self):
        model = model_by_name("40B")
        ours = build_workload(model, TESTBED_1, EngineKnobs.mlp_offload())
        baseline = build_workload(model, TESTBED_1, EngineKnobs.zero3_baseline())
        assert ours.cache_hit_count() > 0
        assert baseline.cache_hit_count() == 0
        assert ours.skipped_flush_count() > 0
        assert baseline.skipped_flush_count() == 0

    def test_larger_models_cache_smaller_fractions(self):
        small = build_workload(model_by_name("40B"), TESTBED_1, EngineKnobs.mlp_offload())
        large = build_workload(model_by_name("120B"), TESTBED_1, EngineKnobs.mlp_offload())
        frac_small = small.cache_hit_count() / small.subgroups_per_worker
        frac_large = large.cache_hit_count() / large.subgroups_per_worker
        assert frac_large < frac_small

    def test_tier_distribution_covers_whole_state(self):
        workload = build_workload(model_by_name("40B"), TESTBED_1, EngineKnobs.mlp_offload())
        distribution = workload.tier_distribution_bytes()
        total = sum(distribution.values())
        assert total == pytest.approx(
            workload.workers * workload.optimizer_state_bytes_per_worker, rel=0.02
        )

    def test_pfs_bandwidth_scaled_across_nodes(self):
        model = model_by_name("280B")
        topo = ParallelTopology.weak_scaling(8, 4)
        workload = build_workload(model, TESTBED_2, EngineKnobs.mlp_offload(), topology=topo)
        assert workload.tiers["pfs"].read_bw == pytest.approx(TESTBED_2.tier("pfs").read_bw / 8)
        assert workload.tiers["nvme"].read_bw == pytest.approx(TESTBED_2.tier("nvme").read_bw)


class TestUpdatePipeline:
    def test_counters_are_consistent(self):
        workload = build_workload(model_by_name("40B"), TESTBED_1, EngineKnobs.mlp_offload())
        result = simulate_update_phase(workload)
        total = workload.workers * workload.subgroups_per_worker
        assert result.cache_hits + result.cache_misses == total
        assert result.cache_hits == workload.workers * workload.cache_hit_count()
        assert result.skipped_flushes == workload.workers * workload.skipped_flush_count()
        assert result.fetch_bytes == pytest.approx(
            result.cache_misses * workload.fetch_bytes_per_subgroup
        )
        assert result.wall_seconds > 0

    def test_mlp_offload_update_is_faster_than_baseline(self):
        model = model_by_name("40B")
        ours = simulate_update_phase(build_workload(model, TESTBED_1, EngineKnobs.mlp_offload()))
        baseline = simulate_update_phase(
            build_workload(model, TESTBED_1, EngineKnobs.zero3_baseline())
        )
        assert baseline.wall_seconds / ours.wall_seconds > 1.5

    def test_update_phase_is_io_dominated_when_offloaded(self):
        workload = build_workload(model_by_name("70B"), TESTBED_1, EngineKnobs.zero3_baseline())
        result = simulate_update_phase(workload)
        assert result.io_fraction > 0.9

    def test_tier_traffic_split_roughly_follows_allocation(self):
        workload = build_workload(model_by_name("70B"), TESTBED_1, EngineKnobs.mlp_offload())
        result = simulate_update_phase(workload)
        assert result.tier_read_bytes["nvme"] > result.tier_read_bytes["pfs"] > 0

    def test_prefetch_validation(self):
        workload = build_workload(model_by_name("40B"), TESTBED_1, EngineKnobs.mlp_offload())
        with pytest.raises(ValueError):
            simulate_update_phase(workload, prefetch_ahead=0)


class TestIterationSimulation:
    def test_mlp_offload_wins_end_to_end(self):
        model = model_by_name("40B")
        baseline = simulate_iteration(
            IterationModel(model=model, node=TESTBED_1, knobs=EngineKnobs.zero3_baseline(), label="DS")
        )
        ours = simulate_iteration(
            IterationModel(model=model, node=TESTBED_1, knobs=EngineKnobs.mlp_offload(), label="ours")
        )
        gain = speedup(baseline, ours)
        assert 1.5 < gain < 8.0
        # Backward acceleration: the paper reports ~13.5x; require a large factor.
        assert baseline.backward_seconds / ours.backward_seconds > 5.0
        # Forward is tiny compared to the update phase for both engines.
        assert baseline.forward_seconds < 0.05 * baseline.iteration_seconds

    def test_update_dominates_the_baseline_iteration(self):
        result = simulate_iteration(
            IterationModel(
                model=model_by_name("40B"),
                node=TESTBED_1,
                knobs=EngineKnobs.zero3_baseline(),
                label="DS",
            )
        )
        assert result.update_seconds / result.iteration_seconds > 0.7

    def test_gradient_accumulation_scales_fwd_bwd_not_update(self):
        base = IterationModel(
            model=model_by_name("40B"), node=TESTBED_1, knobs=EngineKnobs.mlp_offload()
        )
        one = simulate_iteration(base)
        four = simulate_iteration(
            IterationModel(
                model=model_by_name("40B"),
                node=TESTBED_1,
                knobs=EngineKnobs.mlp_offload(),
                gradient_accumulation_steps=4,
            )
        )
        assert four.forward_seconds == pytest.approx(4 * one.forward_seconds, rel=0.01)
        assert four.update_seconds == pytest.approx(one.update_seconds, rel=0.05)

    def test_metrics_record(self):
        result = simulate_iteration(
            IterationModel(model=model_by_name("40B"), node=TESTBED_1, knobs=EngineKnobs.mlp_offload())
        )
        assert isinstance(result, IterationResult)
        assert isinstance(result.update, UpdatePhaseResult)
        assert result.update_throughput_mparams > 0
        assert result.effective_io_throughput_gbps > 0
        assert set(result.breakdown()) == {"forward", "backward", "update"}
        zero_update = UpdatePhaseResult(
            wall_seconds=0.0,
            fetch_bytes=0.0,
            flush_bytes=0.0,
            fetch_seconds=0.0,
            flush_seconds=0.0,
            compute_seconds=0.0,
            cache_hits=0,
            cache_misses=0,
            params_updated=0.0,
            skipped_flushes=0,
        )
        with pytest.raises(ValueError):
            speedup(result, IterationResult("x", "40B", 0.0, 0.0, zero_update, 4))
