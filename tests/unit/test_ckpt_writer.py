"""Unit tests for checksum tracking, blob adoption and the checkpoint writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt import CheckpointError, CheckpointReader, cas_key
from repro.ckpt.writer import SubgroupSource
from repro.tiers.file_store import FileStore, payload_digest


# -- FileStore content-addressing primitives --------------------------------


def test_track_checksums_records_payload_digest(tmp_path, rng):
    store = FileStore(tmp_path, name="t", track_checksums=True)
    array = rng.standard_normal(100).astype(np.float32)
    store.save_from("k", array)
    assert store.checksum_of("k") == payload_digest(memoryview(array))
    store.delete("k")
    assert store.checksum_of("k") is None


def test_checksum_not_tracked_by_default_and_computed_on_demand(tmp_path, rng):
    store = FileStore(tmp_path, name="t")
    array = rng.standard_normal(100).astype(np.float32)
    store.save_from("k", array)
    assert store.checksum_of("k") is None
    assert store.compute_checksum("k") == payload_digest(memoryview(array))
    # ... and the fallback caches its result.
    assert store.checksum_of("k") == payload_digest(memoryview(array))


def test_adopt_hard_links_without_charging_io(tmp_path, rng):
    source = FileStore(tmp_path / "src", name="src", track_checksums=True)
    sink = FileStore(tmp_path / "dst", name="dst")
    array = rng.standard_normal(64).astype(np.float32)
    source.save_from("orig", array)
    checksum = source.checksum_of("orig")
    sink.adopt("adopted", source.path_of("orig"), checksum=checksum)
    assert np.array_equal(sink.read("adopted"), array)
    assert sink.checksum_of("adopted") == checksum
    assert sink.stats().bytes_written == 0, "a hard link moved no payload bytes"
    # The link pins the inode: overwriting the source key must not change
    # the adopted blob (the property checkpoint references rely on).
    source.save_from("orig", rng.standard_normal(64).astype(np.float32))
    assert np.array_equal(sink.read("adopted"), array)


def test_adopt_missing_source_raises(tmp_path):
    sink = FileStore(tmp_path / "dst", name="dst")
    with pytest.raises(Exception, match="does not exist"):
        sink.adopt("k", tmp_path / "nope.bin")


# -- CheckpointWriter ---------------------------------------------------------


@pytest.fixture
def ckpt_env(tmp_path):
    """A small VirtualTier + CheckpointWriter over two real tier dirs."""
    from repro.ckpt.writer import CheckpointWriter
    from repro.core.config import MLPOffloadConfig, TierConfig
    from repro.core.virtual_tier import VirtualTier
    from repro.tiers.array_pool import ArrayPool

    (tmp_path / "nvme").mkdir()
    (tmp_path / "pfs").mkdir()
    config = MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(tmp_path / "nvme"), read_bw=2.0, write_bw=2.0),
            TierConfig("pfs", str(tmp_path / "pfs"), read_bw=1.0, write_bw=1.0),
        ),
        subgroup_size=100,
        checkpoint_dir=str(tmp_path / "ckpt"),
        stripe_threshold_bytes=256.0,
    )
    tier = VirtualTier(config, worker="rank0")
    tier.build_placement([0, 1])
    pool = ArrayPool()
    writer = CheckpointWriter(config, worker="rank0", pool=pool, tier=tier)
    yield config, tier, pool, writer
    writer.close()
    tier.close()


def layout_echo(num_subgroups=2):
    return {
        "total_params": 100 * num_subgroups,
        "num_ranks": 1,
        "subgroup_size": 100,
        "rank": 0,
        "num_subgroups": num_subgroups,
    }


def test_snapshot_links_and_stages_then_restores(ckpt_env, rng):
    config, tier, pool, writer = ckpt_env
    linked_state = {f: rng.standard_normal(100).astype(np.float32) for f in ("params", "exp_avg", "exp_avg_sq")}
    tier.flush_subgroup("sg000", 0, linked_state, wait=True)
    staged_state = {}
    for f in ("params", "exp_avg", "exp_avg_sq"):
        buf = pool.acquire(100, np.float32)
        buf[:] = rng.standard_normal(100).astype(np.float32)
        staged_state[f] = buf
    staged_copy = {f: a.copy() for f, a in staged_state.items()}
    fp16 = pool.acquire(200, np.float16)
    fp16[:] = rng.standard_normal(200).astype(np.float16)
    fp16_copy = fp16.copy()

    refs = {
        f: tier.export_field_blobs("sg000", 0, f, dtype=np.float32)
        for f in ("params", "exp_avg", "exp_avg_sq")
    }
    pending = writer.snapshot(
        iteration=3,
        layout=layout_echo(),
        steps={0: 3, 1: 3},
        placement={0: "nvme", 1: "pfs"},
        subgroups=[
            SubgroupSource(index=0, linked=refs),
            SubgroupSource(index=1, staged=staged_state),
        ],
        fp16_params=fp16,
        user_data={"k": "v"},
    )
    assert pending.wait() == 1
    assert writer.linked_blobs > 0 and writer.staged_blobs > 0
    # Pooled buffers came back after the drain.
    assert pool.outstanding_count == 0

    reader = CheckpointReader(config, worker="rank0")
    manifest = reader.load_manifest()
    assert manifest.iteration == 3 and manifest.user_data == {"k": "v"}
    for f, expected in linked_state.items():
        assert manifest.subgroups[0][f].source == "linked"
        out = np.empty(100, dtype=np.float32)
        assert np.array_equal(reader.read_blob(manifest.subgroups[0][f], out), expected)
    for f, expected in staged_copy.items():
        assert manifest.subgroups[1][f].source == "staged"
        out = np.empty(100, dtype=np.float32)
        assert np.array_equal(reader.read_blob(manifest.subgroups[1][f], out), expected)
    out16 = np.empty(200, dtype=np.float16)
    assert np.array_equal(reader.read_blob(manifest.fp16_params, out16), fp16_copy)
    # Large staged fields striped across both checkpoint stores.
    fp16_tiers = {seg.tier for seg in manifest.fp16_params.segments}
    assert fp16_tiers == {"nvme", "pfs"}


def test_snapshot_source_validation():
    with pytest.raises(CheckpointError):
        SubgroupSource(index=0)
    with pytest.raises(CheckpointError):
        SubgroupSource(index=0, staged={}, linked={})


def test_staged_striping_honours_stripe_paths_below_tier_count(tmp_path, rng):
    """`stripe_paths` smaller than the tier count must trim stores *and*
    weights consistently (regression: the drain crashed with a
    weights/num_paths mismatch when a third tier was configured)."""
    from repro.ckpt.writer import CheckpointWriter
    from repro.core.config import MLPOffloadConfig, TierConfig
    from repro.core.virtual_tier import VirtualTier
    from repro.tiers.array_pool import ArrayPool

    for name in ("a", "b", "c"):
        (tmp_path / name).mkdir()
    config = MLPOffloadConfig(
        tiers=tuple(
            TierConfig(name, str(tmp_path / name), read_bw=2.0, write_bw=2.0)
            for name in ("a", "b", "c")
        ),
        subgroup_size=100,
        checkpoint_dir=str(tmp_path / "ckpt"),
        stripe_threshold_bytes=64.0,
        stripe_paths=2,
    )
    tier = VirtualTier(config, worker="rank0")
    tier.build_placement([0])
    pool = ArrayPool()
    writer = CheckpointWriter(config, worker="rank0", pool=pool, tier=tier)
    try:
        staged = {}
        for f in ("params", "exp_avg", "exp_avg_sq"):
            buf = pool.acquire(100, np.float32)
            buf[:] = rng.standard_normal(100).astype(np.float32)
            staged[f] = buf
        expected = {f: a.copy() for f, a in staged.items()}
        fp16 = pool.acquire(100, np.float16)
        fp16[:] = rng.standard_normal(100).astype(np.float16)
        pending = writer.snapshot(
            iteration=1,
            layout={"total_params": 100, "num_ranks": 1, "subgroup_size": 100, "rank": 0, "num_subgroups": 1},
            steps={0: 1},
            placement={0: "a"},
            subgroups=[SubgroupSource(index=0, staged=staged)],
            fp16_params=fp16,
        )
        assert pending.wait() == 1
        reader = CheckpointReader(config, worker="rank0")
        manifest = reader.load_manifest()
        used_tiers = {
            seg.tier for ref in manifest.subgroups[0].values() for seg in ref.segments
        }
        assert used_tiers <= {"a", "b"}, "stripes escaped the stripe_paths window"
        for f, want in expected.items():
            out = np.empty(100, dtype=np.float32)
            assert np.array_equal(reader.read_blob(manifest.subgroups[0][f], out), want)
    finally:
        writer.close()
        tier.close()


def test_identical_content_is_stored_once(ckpt_env):
    config, tier, pool, writer = ckpt_env

    def zero_fields():
        fields = {}
        for f in ("params", "exp_avg", "exp_avg_sq"):
            buf = pool.acquire(100, np.float32)
            buf.fill(0.0)
            fields[f] = buf
        return fields

    zeros = zero_fields()
    zeros2 = zero_fields()
    fp16 = pool.acquire(200, np.float16)
    fp16.fill(0.0)
    pending = writer.snapshot(
        iteration=1,
        layout=layout_echo(),
        steps={0: 1, 1: 1},
        placement={0: "nvme", 1: "pfs"},
        subgroups=[
            SubgroupSource(index=0, staged=zeros),
            SubgroupSource(index=1, staged=zeros2),
        ],
        fp16_params=fp16,
        user_data={},
    )
    pending.wait()
    reader = CheckpointReader(config, worker="rank0")
    manifest = reader.load_manifest()
    # All six all-zero FP32 fields share content-addressed blobs.
    keys = {
        (seg.tier, seg.key)
        for fields in manifest.subgroups.values()
        for ref in fields.values()
        for seg in ref.segments
    }
    blobs_on_disk = sum(
        1 for store in reader.stores.values() for key in store.keys() if key.startswith("cas")
    )
    assert len(keys) < 6 * 2  # deduplicated below one-blob-per-field-per-stripe
    assert blobs_on_disk == len(keys | {(s.tier, s.key) for s in manifest.fp16_params.segments})


# -- retention GC vs concurrently-landing manifests ---------------------------


def snapshot_staged(writer, pool, *, seed: float) -> int:
    """Drive one staged-only snapshot through ``writer``; return its version."""
    staged = {}
    for f in ("params", "exp_avg", "exp_avg_sq"):
        buf = pool.acquire(100, np.float32)
        buf.fill(seed)
        staged[f] = buf
    fp16 = pool.acquire(200, np.float16)
    fp16.fill(seed)
    return writer.snapshot(
        iteration=int(seed),
        layout=layout_echo(),
        steps={0: 1, 1: 1},
        placement={0: "nvme", 1: "pfs"},
        subgroups=[SubgroupSource(index=0, staged=staged)],
        fp16_params=fp16,
    ).wait()


def test_retention_gc_spares_a_concurrently_landing_prepared_manifest(ckpt_env, rng):
    """Regression: the GC used several directory listings, and a manifest
    landing between the workers-present check and the reference scan — a
    ``.prepared.json`` phase-one manifest in particular, which the old
    committed-only glob never matched — had its blobs swept out from under
    its commit.  The single-listing scan counts prepared manifests both as
    worker presence and as blob references."""
    from repro.ckpt.manifest import (
        BlobRef,
        BlobSegment,
        CheckpointManifest,
        ManifestStore,
        cas_key,
    )
    from repro.tiers.file_store import payload_digest as digest_of

    config, tier, pool, writer = ckpt_env
    snapshot_staged(writer, pool, seed=1.0)

    # Another rank's drain lands its prepared manifest (blobs first, then the
    # phase-one commit) while this writer is between snapshots.
    payload = rng.standard_normal(64).astype(np.float32)
    digest = digest_of(memoryview(payload))
    key = cas_key(digest, payload.nbytes)
    writer.stores["nvme"].save_from(key, payload)
    other = ManifestStore(config.checkpoint_dir, "rank9")
    other.commit(
        CheckpointManifest(
            version=1,
            worker="rank9",
            iteration=1,
            layout=layout_echo(),
            steps={},
            placement={},
            subgroups={},
            fp16_params=BlobRef(
                dtype="float32",
                count=64,
                source="staged",
                segments=(
                    BlobSegment(
                        tier="nvme", key=key, start=0, count=64,
                        nbytes=payload.nbytes, digest=digest,
                    ),
                ),
            ),
        ),
        prepared=True,
    )
    assert "rank9" in other.workers_present(), (
        "a prepared-only worker must count as present (the old glob missed it)"
    )

    # The next snapshot's retention GC must neither sweep the landing
    # manifest's blob nor touch the manifest itself.
    snapshot_staged(writer, pool, seed=2.0)
    assert writer.stores["nvme"].contains(key), (
        "retention GC swept a blob referenced only by a concurrently-landing "
        "prepared manifest"
    )
    assert other.prepared_path_for(1).exists()


def test_retention_gc_skips_tmp_files_and_sweeps_own_stale_tmps(ckpt_env, rng):
    config, tier, pool, writer = ckpt_env
    stale_own = writer.manifests.directory / "ckpt-rank0-000099.json.tmp"
    foreign = writer.manifests.directory / "ckpt-rank7-000001.json.tmp"
    stale_own.write_text("{")
    foreign.write_text("{")
    version = snapshot_staged(writer, pool, seed=3.0)
    assert version == 1
    # The single-listing scan classified neither tmp as a manifest (no parse
    # error aborted the sweep), our own stale tmp was swept, the foreign
    # writer's was left alone.
    assert not stale_own.exists()
    assert foreign.exists()


def test_manifest_deleted_between_scan_and_read_is_skipped(tmp_path):
    """``referenced_blobs`` tolerates losing a file race: a manifest deleted
    after the listing contributes nothing instead of raising."""
    from repro.ckpt.manifest import referenced_blobs

    assert referenced_blobs([tmp_path / "ckpt-rank0-000001.json"]) == set()
