"""The pluggable raw-I/O backend layer (:mod:`repro.aio.backends`).

Covers the registry/fallback machinery (always), and the O_DIRECT backend
end to end where the filesystem supports it (skipped otherwise — CI's
``io-backend-smoke`` job runs on ext4, where it does).  The io_uring backend
degrades to odirect/thread wherever liburing-ffi is absent, which is itself
asserted here: the fallback chain is the availability contract.
"""

import hashlib

import numpy as np
import pytest

from repro.aio import backends
from repro.aio.engine import AsyncIOEngine
from repro.tiers.faultstore import FaultInjectingStore, FaultPlan
from repro.tiers.file_store import FileStore, TruncatedBlobError
from repro.tiers.mmap_store import MmapFileStore


@pytest.fixture(autouse=True)
def _fresh_probe_cache(monkeypatch):
    # These tests pick backends explicitly; a REPRO_IO_BACKEND override from
    # the environment (CI's odirect tier-1 run) must not redirect them.
    monkeypatch.delenv(backends.BACKEND_ENV_VAR, raising=False)
    backends.probe_cache_clear()
    yield
    backends.probe_cache_clear()


def _odirect_or_skip(directory) -> backends.ODirectBackend:
    backend = backends.resolve("odirect", directory)
    if backend.name != "odirect":
        pytest.skip(f"O_DIRECT unavailable on {directory}")
    return backend


class TestRegistry:
    def test_registry_names(self):
        assert backends.backend_names() == ("io_uring", "odirect", "thread")
        assert backends.backend_choices() == ("auto", "io_uring", "odirect", "thread")

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown io backend"):
            backends.resolve("bogus", tmp_path)

    def test_thread_always_resolves(self, tmp_path):
        assert backends.resolve("thread", tmp_path).name == "thread"

    def test_auto_resolves_to_something(self, tmp_path):
        assert backends.resolve("auto", tmp_path).name in backends.backend_names()

    def test_io_uring_degrades_along_the_chain(self, tmp_path):
        # Wherever liburing-ffi is missing (this container) the request may
        # not fail — it must land on odirect or thread.
        assert backends.resolve("io_uring", tmp_path).name in ("io_uring", "odirect", "thread")

    def test_env_var_overrides_by_name_selection(self, tmp_path, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV_VAR, "thread")
        assert backends.resolve("odirect", tmp_path).name == "thread"
        assert backends.resolve("auto", tmp_path).name == "thread"

    def test_env_var_does_not_override_instances(self, tmp_path, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV_VAR, "thread")
        backend = backends.ThreadBackend()
        store = FileStore(tmp_path / "t", backend=backend)
        assert store.io_backend is backend


class TestAlignedAllocation:
    @pytest.mark.parametrize("nbytes", [1, 511, 4096, 4097, 1 << 20])
    def test_alloc_aligned_address_and_size(self, nbytes):
        buf = backends.alloc_aligned(nbytes, 4096)
        assert buf.nbytes >= nbytes
        assert buf.ctypes.data % 4096 == 0
        assert buf.dtype == np.uint8

    def test_alloc_aligned_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            backends.alloc_aligned(16, 3)


class TestODirectRoundTrip:
    """Byte-level equivalence between the thread and O_DIRECT disciplines."""

    def test_blob_files_bitwise_identical(self, tmp_path, rng):
        _odirect_or_skip(tmp_path)
        data = rng.standard_normal(10_007).astype(np.float32)
        a = FileStore(tmp_path / "thread", backend="thread")
        b = FileStore(tmp_path / "odirect", backend="odirect")
        a.save_from("k", data)
        b.save_from("k", data)
        assert a.path_of("k").read_bytes() == b.path_of("k").read_bytes()

    @pytest.mark.parametrize("n", [0, 1, 3, 1023, 4096, 100_003])
    def test_roundtrip_odd_sizes(self, tmp_path, rng, n):
        _odirect_or_skip(tmp_path)
        store = FileStore(tmp_path / "t", backend="odirect")
        data = rng.integers(0, 255, size=n, dtype=np.uint8)
        store.save_from("k", data)
        out = np.empty_like(data)
        store.load_into("k", out)
        np.testing.assert_array_equal(out, data)

    def test_reads_cross_bounce_chunks(self, tmp_path, rng):
        _odirect_or_skip(tmp_path)
        backend = backends.ODirectBackend(bounce_bytes=8192)
        store = FileStore(tmp_path / "t", backend=backend)
        data = rng.standard_normal(50_001).astype(np.float32)
        store.save_from("k", data)
        out = np.empty_like(data)
        store.load_into_chunks("k", out, chunk_bytes=10_000)
        np.testing.assert_array_equal(out, data)

    def test_chunked_hasher_parity_with_thread(self, tmp_path, rng):
        _odirect_or_skip(tmp_path)
        data = rng.standard_normal(30_011).astype(np.float32)
        digests = []
        for backend in ("thread", "odirect"):
            store = FileStore(tmp_path / backend, backend=backend)
            store.save_from("k", data)
            hasher = hashlib.blake2b(digest_size=8)
            store.load_into_chunks("k", np.empty_like(data), chunk_bytes=4096, hasher=hasher)
            digests.append(hasher.hexdigest())
        assert digests[0] == digests[1]

    def test_truncated_blob_raises_retryable_error(self, tmp_path, rng):
        _odirect_or_skip(tmp_path)
        store = FileStore(tmp_path / "t", backend="odirect")
        data = rng.standard_normal(9_001).astype(np.float32)
        store.save_from("k", data)
        path = store.path_of("k")
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size // 2)
        with pytest.raises(TruncatedBlobError):
            store.load_into("k", np.empty_like(data))

    def test_mmap_store_writes_through_odirect(self, tmp_path, rng):
        _odirect_or_skip(tmp_path)
        store = MmapFileStore(tmp_path / "t", backend="odirect")
        data = rng.standard_normal(5_003).astype(np.float32)
        store.save_from("k", data)
        out = np.empty_like(data)
        store.load_into("k", out)
        np.testing.assert_array_equal(out, data)


class TestStoreSurface:
    def test_store_reports_backend_and_alignment(self, tmp_path):
        store = FileStore(tmp_path / "t", backend="thread")
        assert store.backend_name == "thread"
        assert store.io_alignment == 1

    def test_fault_wrapper_proxies_backend_surface(self, tmp_path):
        inner = FileStore(tmp_path / "t", backend="thread")
        wrapped = FaultInjectingStore(inner, FaultPlan())
        assert wrapped.backend_name == "thread"
        assert wrapped.io_alignment == 1

    def test_engine_stats_record_backend(self, tier_dirs):
        stores = {
            name: FileStore(path, name=name, backend="thread")
            for name, path in tier_dirs.items()
        }
        with AsyncIOEngine(stores, num_threads=1) as engine:
            recorded = {name: engine.tier_stats(name).backend for name in stores}
        assert set(recorded.values()) == {"thread"}

    def test_engine_stats_record_odirect(self, tmp_path, rng):
        _odirect_or_skip(tmp_path)
        store = FileStore(tmp_path / "t", name="nvme", backend="odirect")
        with AsyncIOEngine({"nvme": store}, num_threads=1) as engine:
            result = engine.write("nvme", "k", rng.standard_normal(100).astype(np.float32))
            assert result.result().ok
            assert engine.tier_stats("nvme").backend == "odirect"
