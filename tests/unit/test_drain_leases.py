"""Drain-intent leases: the cross-process GC stand-down protocol.

The retention GC's in-process drain check only sees ranks sharing the
coordinator instance; `DRAIN-<worker>.lease` sentinels extend the stand-down
to ranks in *other OS processes*.  Covered here: the publish/renew/retire
lifecycle, dead-owner leases being broken (so a crashed rank never wedges
the sweep), live leases deferring the sweep, and — the regression the
protocol exists for — a real subprocess frozen mid-drain while the last
committed reference of a blob it may have dedup-reused is retired: the blob
must survive the sweep.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ckpt import BlobRef, BlobSegment, CheckpointCoordinator, ManifestStore
from repro.ckpt.coordinator import drain_lease_name
from repro.ckpt.manifest import CheckpointManifest
from repro.core.config import MLPOffloadConfig, TierConfig

WORKERS = ("rank0", "rank1")
#: A pid that cannot exist on Linux (beyond the default pid_max of 2**22).
DEAD_PID = 2**22 + 12345


@pytest.fixture
def env(tmp_path):
    (tmp_path / "nvme").mkdir()
    (tmp_path / "pfs").mkdir()
    config = MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(tmp_path / "nvme")),
            TierConfig("pfs", str(tmp_path / "pfs")),
        ),
        subgroup_size=100,
        checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_coordination=True,
        checkpoint_world_size=2,
        checkpoint_retention=2,
    )
    return config, CheckpointCoordinator(config, workers=WORKERS)


def put_blob(coordinator, tier: str, payload: np.ndarray) -> BlobSegment:
    from repro.ckpt.manifest import cas_key, payload_digest

    digest = payload_digest(payload)
    key = cas_key(digest, payload.nbytes)
    coordinator.stores[tier].save_from(key, payload)
    return BlobSegment(
        tier=tier, key=key, start=0, count=int(payload.size),
        nbytes=int(payload.nbytes), digest=digest,
    )


def prepare(config, coordinator, worker: str, version: int, *, seed=0):
    payload = np.full(64, float(seed + version), dtype=np.float16)
    seg = put_blob(coordinator, "nvme", payload)
    manifest = CheckpointManifest(
        version=version,
        worker=worker,
        iteration=version,
        layout={"total_params": 64, "num_ranks": 2, "subgroup_size": 100,
                "rank": int(worker[-1]), "num_subgroups": 1},
        steps={0: version},
        placement={0: "nvme"},
        subgroups={},
        fp16_params=BlobRef(dtype="float16", count=64, source="staged", segments=(seg,)),
    )
    ManifestStore(config.checkpoint_dir, worker).commit(manifest, prepared=True)
    return seg


def test_drain_publishes_renews_and_retires_its_lease(env):
    _config, coord = env
    lease = coord.directory / drain_lease_name("rank0")
    coord.drain_begin("rank0")
    try:
        payload = json.loads(lease.read_text())
        assert payload["pid"] == os.getpid()
        assert payload["worker"] == "rank0"
        before = lease.stat().st_mtime
        time.sleep(0.01)
        coord.renew_drain_lease("rank0")
        assert lease.stat().st_mtime >= before
    finally:
        coord.drain_end("rank0")
    assert not lease.exists(), "lease must be retired when the drain ends"


def test_dead_owner_lease_is_broken_and_the_sweep_proceeds(env):
    config, coord = env
    lease = coord.directory / drain_lease_name("rank7")
    coord.directory.mkdir(parents=True, exist_ok=True)
    lease.write_text(json.dumps({"pid": DEAD_PID, "created_unix": time.time()}))
    orphan = put_blob(coord, "nvme", np.full(32, 3.0, dtype=np.float16))
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    assert coord.try_promote() == 1
    assert not lease.exists(), "dead rank's lease must be broken"
    assert not coord.stores[orphan.tier].contains(orphan.key), (
        "a dead lease must not defer the sweep"
    )


def test_live_foreign_lease_defers_the_blob_sweep(env):
    """A lease held by a coordinator instance this GC cannot see (here: a
    second instance in this process, standing in for a foreign rank) must
    make the sweep stand down — and only the sweep: manifests still retire."""
    config, coord = env
    foreign = CheckpointCoordinator(config, workers=WORKERS)
    orphan = put_blob(coord, "nvme", np.full(32, 9.0, dtype=np.float16))
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    foreign.drain_begin("rank1")
    try:
        assert coord.try_promote() == 1
        assert coord.stores[orphan.tier].contains(orphan.key), (
            "blob swept while a foreign-process drain held a live lease"
        )
    finally:
        foreign.drain_end("rank1")
    for worker in WORKERS:
        prepare(config, coord, worker, 2)
    assert coord.try_promote() == 2
    assert not coord.stores[orphan.tier].contains(orphan.key), (
        "orphan blob never swept after the lease was retired"
    )


def test_discard_torn_breaks_dead_leases(env):
    config, coord = env
    for worker in WORKERS:
        prepare(config, coord, worker, 1)
    assert coord.try_promote() == 1
    lease = coord.directory / drain_lease_name("rank5")
    lease.write_text(json.dumps({"pid": DEAD_PID, "created_unix": time.time()}))
    coord.discard_torn(1)
    assert not lease.exists(), "restart must break crashed ranks' leases"


def test_gc_window_closed_against_a_real_subprocess_mid_drain(env, tmp_path):
    """The regression the leases exist for: a *separate-process* rank frozen
    mid-drain has (by dedup) reused a blob whose last committed reference is
    concurrently retired — the sweep must stand down and the blob survive.
    Without the lease protocol the sweep cannot see the foreign drain and
    deletes the payload out from under the reusing rank."""
    from repro.ckpt.procrank import WorldSpec, _worker_env

    config, coord = env
    # Retention 1 so promoting v2 retires v1 — and with it the last committed
    # reference of v1's fp16 blob (seed 0 → both ranks share one payload).
    config = MLPOffloadConfig(
        tiers=config.tiers,
        subgroup_size=100,
        checkpoint_dir=config.checkpoint_dir,
        checkpoint_coordination=True,
        checkpoint_world_size=2,
        checkpoint_retention=1,
    )
    coord = CheckpointCoordinator(config, workers=WORKERS)
    shared = prepare(config, coord, "rank0", 1)
    assert prepare(config, coord, "rank1", 1).key == shared.key
    assert coord.try_promote() == 1

    spec = WorldSpec(workdir=str(tmp_path), world_size=2, checkpoint_retention=1)
    spec_path = tmp_path / "spec.json"
    spec.to_json(spec_path)
    held = tmp_path / "lease-held.flag"
    release = tmp_path / "lease-release.flag"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.ckpt.procrank", "--spec", str(spec_path),
         "--rank", "1", "--world-size", "2", "--hold-drain-lease"],
        env=_worker_env(),
    )
    try:
        deadline = time.monotonic() + 30.0
        while not held.exists():
            assert time.monotonic() < deadline, "subprocess never took its lease"
            assert proc.poll() is None, "lease-holding subprocess died"
            time.sleep(0.01)
        # v2 lands and promotes; v1 (the blob's last committed reference) is
        # retired.  The foreign live lease must keep the payload alive.
        for worker in WORKERS:
            prepare(config, coord, worker, 2, seed=50)
        assert coord.try_promote() == 2
        assert coord.stores[shared.tier].contains(shared.key), (
            "blob dedup-reusable by a foreign-process drain was swept"
        )
    finally:
        release.write_text("go")
        assert proc.wait(timeout=30) == 0
    assert not (coord.directory / drain_lease_name("rank1")).exists()
    # With the drain over, the next promotion's sweep reclaims the orphan.
    for worker in WORKERS:
        prepare(config, coord, worker, 3, seed=60)
    assert coord.try_promote() == 3
    assert not coord.stores[shared.tier].contains(shared.key)
