"""Stripe extent math and the striped multi-path store.

Covers the edge cases the striping layer must get right: fields below the
threshold stay whole, fixed-granularity plans may produce more stripes than
paths (round-robin), an evenly divisible field never yields a zero-length
tail stripe, and the single-path degenerate configuration is byte-for-byte
identical to the unstriped baseline.
"""

import numpy as np
import pytest

from repro.tiers.array_pool import ArrayPool, scatter_views
from repro.tiers.file_store import FileStore, StoreError
from repro.tiers.spec import StripeExtent, plan_stripes
from repro.tiers.striped_store import MANIFEST_SUFFIX, StripedStore


def _coverage(extents):
    """Flatten extents into the sorted list of covered element indices."""
    covered = []
    for ext in extents:
        covered.extend(range(ext.start, ext.stop))
    return sorted(covered)


class TestPlanStripes:
    def test_below_threshold_single_extent(self):
        extents = plan_stripes(100, 4, num_paths=2, threshold_bytes=1000)
        assert extents == (StripeExtent(index=0, path=0, start=0, count=100),)

    def test_at_threshold_stripes(self):
        extents = plan_stripes(250, 4, num_paths=2, threshold_bytes=1000)
        assert len(extents) == 2
        assert _coverage(extents) == list(range(250))

    def test_single_path_degenerate(self):
        extents = plan_stripes(10_000, 4, num_paths=1, threshold_bytes=0)
        assert extents == (StripeExtent(index=0, path=0, start=0, count=10_000),)

    def test_zero_elements(self):
        extents = plan_stripes(0, 4, num_paths=2, threshold_bytes=0)
        assert extents == (StripeExtent(index=0, path=0, start=0, count=0),)

    def test_default_one_stripe_per_path(self):
        extents = plan_stripes(1001, 4, num_paths=2, threshold_bytes=0)
        assert len(extents) == 2
        assert [e.path for e in extents] == [0, 1]
        assert _coverage(extents) == list(range(1001))

    def test_stripe_count_exceeds_path_count_round_robin(self):
        extents = plan_stripes(1000, 4, num_paths=2, threshold_bytes=0, stripe_bytes=400)
        # 1000 elements in 100-element chunks -> 10 stripes across 2 paths.
        assert len(extents) == 10
        assert [e.path for e in extents] == [0, 1] * 5
        assert _coverage(extents) == list(range(1000))

    def test_no_zero_length_tail_when_evenly_divisible(self):
        extents = plan_stripes(800, 4, num_paths=2, threshold_bytes=0, stripe_bytes=800)
        # 800 elements in 200-element chunks: exactly 4 stripes, no empty tail.
        assert len(extents) == 4
        assert all(e.count == 200 for e in extents)

    def test_weights_proportional(self):
        extents = plan_stripes(650, 4, num_paths=2, threshold_bytes=0, weights=[40.0, 25.0])
        assert len(extents) == 2
        assert sum(e.count for e in extents) == 650
        assert extents[0].count == 400  # 650 * 40/65
        assert extents[1].count == 250

    def test_zero_weight_path_gets_no_stripe(self):
        extents = plan_stripes(100, 4, num_paths=2, threshold_bytes=0, weights=[1.0, 0.0])
        assert len(extents) == 1
        assert extents[0].count == 100

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_stripes(-1, 4, num_paths=2)
        with pytest.raises(ValueError):
            plan_stripes(10, 4, num_paths=0)
        with pytest.raises(ValueError):
            plan_stripes(10, 4, num_paths=2, stripe_bytes=4, weights=[1, 1])
        with pytest.raises(ValueError):
            plan_stripes(10, 4, num_paths=2, weights=[1.0])
        with pytest.raises(ValueError):
            plan_stripes(10, 4, num_paths=2, weights=[0.0, 0.0])


class TestScatterViews:
    def test_views_alias_storage(self):
        array = np.zeros(10, dtype=np.float32)
        extents = plan_stripes(10, 4, num_paths=2, threshold_bytes=0)
        views = scatter_views(array, extents)
        views[0][:] = 1.0
        views[1][:] = 2.0
        assert np.all(array[: extents[0].count] == 1.0)
        assert np.all(array[extents[0].count :] == 2.0)

    def test_rejects_out_of_range_extent(self):
        array = np.zeros(10, dtype=np.float32)
        with pytest.raises(ValueError):
            scatter_views(array, [StripeExtent(index=0, path=0, start=8, count=4)])

    def test_rejects_non_1d(self):
        with pytest.raises(ValueError):
            scatter_views(np.zeros((2, 5), dtype=np.float32), [])


@pytest.fixture
def backends(tier_dirs):
    return [
        FileStore(tier_dirs["nvme"], name="nvme"),
        FileStore(tier_dirs["pfs"], name="pfs"),
    ]


@pytest.fixture
def striped(backends):
    return StripedStore(backends, threshold_bytes=256)


class TestStripedStoreRoundTrip:
    def test_large_field_stripes_across_backends(self, striped, backends, rng):
        data = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", data)
        assert striped.is_striped("k")
        # Both paths hold exactly one stripe blob; the manifest sits on the primary.
        assert any(k.startswith("k.stripe") for k in backends[0].keys())
        assert any(k.startswith("k.stripe") for k in backends[1].keys())
        assert backends[0].contains("k" + MANIFEST_SUFFIX)
        np.testing.assert_array_equal(striped.read("k"), data)

    def test_load_into_pooled_buffer(self, striped, rng):
        data = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", data)
        pool = ArrayPool()
        out = pool.acquire(1000, np.float32)
        np.testing.assert_array_equal(striped.load_into("k", out), data)
        pool.release(out)

    def test_small_field_is_byte_identical_to_plain_filestore(
        self, striped, backends, tier_dirs, tmp_path, rng
    ):
        data = rng.standard_normal(16).astype(np.float32)  # 64 B < 256 B threshold
        striped.save_from("small", data)
        assert not striped.is_striped("small")
        plain = FileStore(tmp_path / "plain")
        plain.save_from("small", data)
        striped_bytes = (tier_dirs["nvme"] / "small.bin").read_bytes()
        plain_bytes = (tmp_path / "plain" / "small.bin").read_bytes()
        assert striped_bytes == plain_bytes

    def test_weights_skew_the_split(self, striped, backends, rng):
        data = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", data, weights=[3.0, 1.0])
        nvme_stripe = backends[0].read("k.stripe0")
        pfs_stripe = backends[1].read("k.stripe1")
        assert nvme_stripe.size == 750
        assert pfs_stripe.size == 250
        np.testing.assert_array_equal(np.concatenate([nvme_stripe, pfs_stripe]), data)

    def test_manifest_survives_restart(self, striped, backends, rng):
        data = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", data)
        reopened = StripedStore(
            [FileStore(b.root, name=b.name) for b in backends], threshold_bytes=256
        )
        assert reopened.is_striped("k")
        np.testing.assert_array_equal(reopened.read("k"), data)

    def test_rewrite_below_threshold_drops_stale_stripes(self, striped, backends, rng):
        striped.save_from("k", rng.standard_normal(1000).astype(np.float32))
        small = rng.standard_normal(16).astype(np.float32)
        striped.save_from("k", small)
        assert not striped.is_striped("k")
        assert not any(k.startswith("k.stripe") for k in backends[1].keys())
        np.testing.assert_array_equal(striped.read("k"), small)

    def test_delete_removes_manifest_and_stripes(self, striped, backends, rng):
        striped.save_from("k", rng.standard_normal(1000).astype(np.float32))
        striped.delete("k")
        assert not striped.contains("k")
        assert not list(backends[0].keys()) and not list(backends[1].keys())
        with pytest.raises(StoreError):
            striped.delete("k")

    def test_plan_load_validates_destination(self, striped, rng):
        data = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", data)
        with pytest.raises(StoreError):
            striped.plan_load("k", np.empty(999, dtype=np.float32))
        with pytest.raises(StoreError):
            striped.plan_load("k", np.empty(1000, dtype=np.float64))
        with pytest.raises(StoreError):
            striped.plan_load("missing", np.empty(1000, dtype=np.float32))

    def test_keys_lists_logical_names_only(self, striped, rng):
        striped.save_from("big", rng.standard_normal(1000).astype(np.float32))
        striped.save_from("tiny", rng.standard_normal(8).astype(np.float32))
        assert list(striped.keys()) == ["big", "tiny"]

    def test_path_bytes_accounting(self, striped, rng):
        data = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", data, weights=[1.0, 1.0])
        striped.read("k")
        counts = striped.path_bytes()
        assert counts["nvme"]["written"] == counts["pfs"]["written"] == 2000
        assert counts["nvme"]["read"] == counts["pfs"]["read"] == 2000

    def test_replan_within_tolerance_reuses_manifest(self, striped, backends, rng):
        data = rng.standard_normal(10_000).astype(np.float32)
        striped.save_from("k", data, weights=[40.0, 25.0])
        ops_after_first = backends[0].stats().write_ops  # manifest + stripe0
        # Slightly drifted weights: layout reused, manifest rewrite skipped,
        # so the primary sees only the stripe write.
        striped.save_from("k", data, weights=[40.5, 24.7])
        assert backends[0].stats().write_ops == ops_after_first + 1
        # A large shift re-plans: manifest rewritten alongside the stripe.
        striped.save_from("k", data, weights=[10.0, 90.0])
        assert backends[0].stats().write_ops == ops_after_first + 3
        np.testing.assert_array_equal(striped.read("k"), data)

    def test_negative_manifest_lookup_is_cached(self, striped, backends, rng, monkeypatch):
        data = rng.standard_normal(16).astype(np.float32)
        striped.save_from("small", data)  # below threshold: caches the None manifest
        calls = []
        original = backends[0].contains

        def counting_contains(key):
            calls.append(key)
            return original(key)

        monkeypatch.setattr(backends[0], "contains", counting_contains)
        for _ in range(5):
            assert not striped.is_striped("small")
        assert calls == []  # hot-path lookups never re-stat the manifest file

    def test_single_backend_never_stripes(self, tmp_path, rng):
        store = StripedStore([FileStore(tmp_path / "only", name="only")], threshold_bytes=0)
        data = rng.standard_normal(1000).astype(np.float32)
        store.save_from("k", data)
        assert not store.is_striped("k")
        np.testing.assert_array_equal(store.read("k"), data)
