"""Unit tests for the gated, selective rebaseline helper.

``benchmarks/rebaseline.py`` is the only sanctioned way to refresh the
committed ``BENCH_*.json`` baselines: it gates a fresh run against the
committed trajectories with the CI comparator and restores the committed
files whenever the gate fails, so a noisy re-run can never ratchet the
regression budget.  These tests pin the keep/restore decisions: gate-pass
keeps only the requested files, gate-fail restores everything, bystanders
are always restored, and brand-new baselines pass without a gate.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_MODULE_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "rebaseline.py"
_spec = importlib.util.spec_from_file_location("rebaseline", _MODULE_PATH)
rebaseline_mod = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(rebaseline_mod)


def _payload(speedup: float) -> str:
    return json.dumps({"experiment": "x", "speedup": speedup}) + "\n"


def _setup(tmp_path, *, committed: dict, fresh: dict):
    repo = tmp_path / "repo"
    snapshot = tmp_path / "committed"
    repo.mkdir()
    snapshot.mkdir()
    for name, speedup in committed.items():
        (snapshot / name).write_text(_payload(speedup))
    for name, speedup in fresh.items():
        (repo / name).write_text(_payload(speedup))
    return repo, snapshot


def test_gate_pass_keeps_requested_fresh_trajectory(tmp_path):
    repo, snapshot = _setup(
        tmp_path,
        committed={"BENCH_a.json": 1.6},
        fresh={"BENCH_a.json": 1.55},
    )
    code = rebaseline_mod.rebaseline(
        repo, snapshot, ["BENCH_a.json"], ["BENCH_a.json"], [], echo=lambda _: None
    )
    assert code == 0
    assert json.loads((repo / "BENCH_a.json").read_text())["speedup"] == 1.55


def test_gate_failure_restores_committed_baseline(tmp_path):
    repo, snapshot = _setup(
        tmp_path,
        committed={"BENCH_a.json": 1.6},
        fresh={"BENCH_a.json": 1.0},  # -37%: outside the 25% budget
    )
    messages = []
    code = rebaseline_mod.rebaseline(
        repo, snapshot, ["BENCH_a.json"], ["BENCH_a.json"], [], echo=messages.append
    )
    assert code == 1
    assert json.loads((repo / "BENCH_a.json").read_text())["speedup"] == 1.6
    assert any("REGRESSION" in message for message in messages)


def test_unrequested_bystanders_are_restored_even_on_gate_pass(tmp_path):
    repo, snapshot = _setup(
        tmp_path,
        committed={"BENCH_a.json": 1.6, "BENCH_b.json": 2.0},
        fresh={"BENCH_a.json": 1.55, "BENCH_b.json": 2.4},
    )
    code = rebaseline_mod.rebaseline(
        repo, snapshot, ["BENCH_a.json"], ["BENCH_a.json", "BENCH_b.json"], [],
        echo=lambda _: None,
    )
    assert code == 0
    assert json.loads((repo / "BENCH_a.json").read_text())["speedup"] == 1.55
    # b regenerated too (pytest markers are coarse) but was not requested:
    # its committed baseline must come back untouched.
    assert json.loads((repo / "BENCH_b.json").read_text())["speedup"] == 2.0


def test_one_regression_restores_every_requested_trajectory(tmp_path):
    repo, snapshot = _setup(
        tmp_path,
        committed={"BENCH_a.json": 1.6, "BENCH_b.json": 2.0},
        fresh={"BENCH_a.json": 1.55, "BENCH_b.json": 1.0},
    )
    code = rebaseline_mod.rebaseline(
        repo, snapshot, ["BENCH_a.json", "BENCH_b.json"],
        ["BENCH_a.json", "BENCH_b.json"], [], echo=lambda _: None,
    )
    assert code == 1
    # Partial rebaselines are refused: a passes but is restored alongside b.
    assert json.loads((repo / "BENCH_a.json").read_text())["speedup"] == 1.6
    assert json.loads((repo / "BENCH_b.json").read_text())["speedup"] == 2.0


def test_new_trajectory_without_committed_baseline_is_kept(tmp_path):
    repo, snapshot = _setup(
        tmp_path, committed={}, fresh={"BENCH_new.json": 1.2}
    )
    messages = []
    code = rebaseline_mod.rebaseline(
        repo, snapshot, ["BENCH_new.json"], [], ["BENCH_new.json"],
        echo=messages.append,
    )
    assert code == 0
    assert (repo / "BENCH_new.json").is_file()
    assert any("no committed baseline" in message for message in messages)


def test_missing_regenerated_trajectory_fails_the_gate(tmp_path):
    repo, snapshot = _setup(tmp_path, committed={"BENCH_a.json": 1.6}, fresh={})
    code = rebaseline_mod.rebaseline(
        repo, snapshot, ["BENCH_a.json"], ["BENCH_a.json"], [], echo=lambda _: None
    )
    assert code == 1
    # The restore puts the committed content back even though the fresh run
    # never produced the file.
    assert json.loads((repo / "BENCH_a.json").read_text())["speedup"] == 1.6


def test_snapshot_committed_splits_tracked_from_new(tmp_path):
    # Run against the real repository: every committed BENCH_*.json is
    # tracked, and an invented name lands in the "new" bucket.
    repo_root = Path(_MODULE_PATH).resolve().parents[1]
    names = sorted(path.name for path in repo_root.glob("BENCH_*.json"))
    assert names, "repository should carry committed BENCH baselines"
    dest = tmp_path / "snap"
    dest.mkdir()
    tracked, new = rebaseline_mod.snapshot_committed(
        names + ["BENCH_does_not_exist.json"], repo_root, dest
    )
    assert set(tracked) == set(names)
    assert new == ["BENCH_does_not_exist.json"]
    for name in tracked:
        assert (dest / name).is_file()
