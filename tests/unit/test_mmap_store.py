"""Round-trip and invalidation tests for :class:`MmapFileStore`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tiers.file_store import FileStore, StoreError
from repro.tiers.mmap_store import MmapFileStore


@pytest.fixture
def stores(tmp_path):
    plain = FileStore(tmp_path / "plain", name="plain")
    mapped = MmapFileStore(tmp_path / "mapped", name="mapped")
    yield plain, mapped
    mapped.close()


def test_round_trip_matches_file_store(stores, rng):
    plain, mapped = stores
    for dtype in (np.float32, np.float16, np.int64):
        array = rng.standard_normal(257).astype(dtype)
        plain.save_from("blob", array)
        mapped.save_from("blob", array)
        assert np.array_equal(plain.read("blob"), mapped.read("blob"))
        out_plain = np.empty(257, dtype=dtype)
        out_mapped = np.empty(257, dtype=dtype)
        plain.load_into("blob", out_plain)
        mapped.load_into("blob", out_mapped)
        assert np.array_equal(out_plain, out_mapped)


def test_byte_accounting_matches_file_store(stores, rng):
    plain, mapped = stores
    array = rng.standard_normal(1000).astype(np.float32)
    out = np.empty(1000, dtype=np.float32)
    plain.save_from("k", array)
    mapped.save_from("k", array)
    for _ in range(3):
        plain.load_into("k", out)
        mapped.load_into("k", out)
    sp, sm = plain.stats(), mapped.stats()
    assert sp.bytes_read == sm.bytes_read  # header included, identical charges
    assert sp.bytes_written == sm.bytes_written
    assert sp.read_ops == sm.read_ops


def test_hot_read_reuses_mapping_and_overwrite_remaps(tmp_path, rng):
    store = MmapFileStore(tmp_path, name="m")
    first = rng.standard_normal(64).astype(np.float32)
    second = rng.standard_normal(64).astype(np.float32)
    out = np.empty(64, dtype=np.float32)
    store.save_from("k", first)
    store.load_into("k", out)
    assert len(store._maps) == 1
    mapping = store._maps["k"].mapping
    store.load_into("k", out)
    assert store._maps["k"].mapping is mapping, "hot read re-mapped needlessly"
    # Overwrite replaces the inode; the stat signature must trigger a remap.
    store.save_from("k", second)
    store.load_into("k", out)
    assert np.array_equal(out, second)
    store.close()


def test_mapping_cache_is_bounded(tmp_path, rng):
    store = MmapFileStore(tmp_path, name="m", max_mapped=2)
    out = np.empty(8, dtype=np.float32)
    for i in range(5):
        store.save_from(f"k{i}", rng.standard_normal(8).astype(np.float32))
        store.load_into(f"k{i}", out)
    assert len(store._maps) == 2
    store.close()


def test_concurrent_reads_with_eviction_are_safe(tmp_path, rng):
    """Readers racing the LRU eviction must never lose a mapping mid-copy.

    Regression test: the engine's I/O thread pool serves several reads of
    one store at once, so eviction must only drop cache references (the
    mapping is finalized when the last in-flight reader lets go), never
    close a buffer another thread is copying from.
    """
    import threading

    store = MmapFileStore(tmp_path, name="m", max_mapped=2)
    arrays = {f"k{i}": rng.standard_normal(512).astype(np.float32) for i in range(6)}
    for key, array in arrays.items():
        store.save_from(key, array)

    errors = []

    def reader(seed):
        out = np.empty(512, dtype=np.float32)
        local = np.random.default_rng(seed)
        try:
            for _ in range(200):
                key = f"k{int(local.integers(6))}"
                store.load_into(key, out)
                assert np.array_equal(out, arrays[key])
        except BaseException as exc:  # noqa: BLE001 - surfaced via the main thread
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    store.close()


def test_validation_errors_match_file_store(tmp_path, rng):
    store = MmapFileStore(tmp_path, name="m")
    store.save_from("k", rng.standard_normal(16).astype(np.float32))
    with pytest.raises(StoreError, match="dtype mismatch"):
        store.load_into("k", np.empty(16, dtype=np.float64))
    with pytest.raises(StoreError, match="size mismatch"):
        store.load_into("k", np.empty(8, dtype=np.float32))
    with pytest.raises(StoreError, match="no key"):
        store.load_into("missing", np.empty(16, dtype=np.float32))
    store.delete("k")
    with pytest.raises(StoreError, match="no key"):
        store.read("k")
    store.close()


def test_engine_results_identical_with_mmap_reads(tmp_path, rng):
    """The mmap store is a behavioural drop-in for the offload engine."""
    from repro.core.config import MLPOffloadConfig, TierConfig
    from repro.core.engine import MLPOffloadEngine
    from repro.tiers.mmap_store import MmapFileStore as Mmap
    from repro.train.adam import AdamConfig
    from repro.train.sharding import build_shard_layout, flat_views

    layout = build_shard_layout(4000, num_ranks=1, subgroup_size=1000)
    views = flat_views(None, layout, 0)
    initial = rng.standard_normal(4000).astype(np.float32)
    grads = [rng.standard_normal(4000).astype(np.float32) * 0.1 for _ in range(2)]

    results = {}
    for label, use_mmap in (("plain", False), ("mmap", True)):
        base = tmp_path / label
        (base / "nvme").mkdir(parents=True)
        (base / "pfs").mkdir(parents=True)
        config = MLPOffloadConfig(
            tiers=(
                TierConfig("nvme", str(base / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
                TierConfig("pfs", str(base / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
            ),
            subgroup_size=1000,
            stripe_threshold_bytes=2000.0,
            mmap_tier_reads=use_mmap,
            adam=AdamConfig(lr=1e-3),
        )
        with MLPOffloadEngine(config, layout, rank=0) as engine:
            if use_mmap:
                assert all(isinstance(s, Mmap) for s in engine.tier.stores.values())
            engine.initialize(initial.copy())
            fp16 = initial.astype(np.float16)
            for grad in grads:
                for index, view in views.items():
                    engine.on_backward_gradient(index, grad[view].astype(np.float16))
                engine.on_microbatch_complete()
                engine.run_update(fp16)
            results[label] = (fp16, engine.fetch_master_params())

    assert np.array_equal(results["plain"][0], results["mmap"][0])
    assert np.array_equal(results["plain"][1], results["mmap"][1])
