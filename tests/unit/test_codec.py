"""The checkpoint payload codec pipeline: framing, codecs, integrity.

The contract: for every codec, ``decode(encode(x))`` is bitwise ``x`` across
dtypes, shapes and chunk boundaries; the null codec stores the raw bytes
verbatim inside the frames (so the ablation isolates framing cost); and any
truncation or corruption of an encoded stream fails loudly with
:class:`CodecError` — never silently decodes to wrong bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec import (
    CodecError,
    DEFAULT_CHUNK_BYTES,
    codec_names,
    decode_frame_into,
    encoded_frame,
    get_codec,
)
from repro.codec.framing import _chunk_size
from repro.tiers.array_pool import ArrayPool
from repro.tiers.file_store import payload_digest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a tier-1 dependency
    HAVE_HYPOTHESIS = False

CODECS = ("null", "shuffle-deflate")
DTYPES = (np.float16, np.float32, np.float64, np.int32, np.int64, np.uint8)
CHUNK = 1 << 12  # small chunk so modest arrays span several chunks


def _sample(rng, dtype, n):
    if np.issubdtype(dtype, np.floating):
        return (rng.standard_normal(n) * 3).astype(dtype)
    return rng.integers(-100, 100, size=n).astype(dtype)


def _raw_bytes(array):
    return np.ascontiguousarray(array).reshape(-1).view(np.uint8).tobytes()


class TestRoundTrip:
    @pytest.mark.parametrize("codec_name", CODECS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_round_trip_across_dtypes(self, codec_name, dtype, rng):
        codec = get_codec(codec_name)
        a = _sample(rng, dtype, 1000)
        out = np.empty_like(a)
        digest = decode_frame_into(encoded_frame(a, codec, chunk_bytes=CHUNK), out)
        assert np.array_equal(a, out)
        assert digest == payload_digest(memoryview(np.ascontiguousarray(a).reshape(-1)))

    @pytest.mark.parametrize("codec_name", CODECS)
    @pytest.mark.parametrize(
        "num_elements",
        [0, 1, 7, CHUNK // 4 - 1, CHUNK // 4, CHUNK // 4 + 1, 3 * (CHUNK // 4) + 5],
    )
    def test_round_trip_at_chunk_boundaries(self, codec_name, num_elements, rng):
        """Sizes straddling every chunk boundary, fp32 (4 B/elem, CHUNK/4 per chunk)."""
        codec = get_codec(codec_name)
        a = _sample(rng, np.float32, num_elements)
        out = np.empty_like(a)
        decode_frame_into(encoded_frame(a, codec, chunk_bytes=CHUNK), out)
        assert np.array_equal(a, out)

    @pytest.mark.parametrize("codec_name", CODECS)
    def test_round_trip_2d_shape(self, codec_name, rng):
        codec = get_codec(codec_name)
        a = _sample(rng, np.float32, 600).reshape(20, 30)
        out = np.empty_like(a)
        decode_frame_into(encoded_frame(a, codec, chunk_bytes=CHUNK), out)
        assert np.array_equal(a, out)

    @pytest.mark.parametrize("codec_name", CODECS)
    def test_pooled_buffers_are_recycled(self, codec_name, rng):
        codec = get_codec(codec_name)
        pool = ArrayPool()
        a = _sample(rng, np.float32, 10_000)
        frame = encoded_frame(a, codec, pool=pool, chunk_bytes=CHUNK)
        out = np.empty_like(a)
        decode_frame_into(frame, out)
        pool.release(frame)
        assert np.array_equal(a, out)
        assert pool.outstanding_count == 0, "encode/decode stranded pooled scratch"

    def test_encode_is_deterministic(self, rng):
        """Identical raw bytes → identical streams (content-addressing relies on it)."""
        a = _sample(rng, np.float32, 5000)
        codec = get_codec("shuffle-deflate")
        first = encoded_frame(a, codec, chunk_bytes=CHUNK)
        second = encoded_frame(a.copy(), codec, chunk_bytes=CHUNK)
        assert np.array_equal(first, second)


class TestNullCodecAblation:
    def test_null_codec_stores_raw_bytes_verbatim(self, rng):
        """Frames only — the stored chunk payloads are bitwise the raw bytes."""
        a = _sample(rng, np.float32, 3000)
        frame = encoded_frame(a, get_codec("null"), chunk_bytes=CHUNK)
        blob = frame.tobytes()
        raw = _raw_bytes(a)
        # Every raw chunk appears verbatim in the stream, in order.
        offset = 0
        for start in range(0, len(raw), CHUNK):
            piece = raw[start : start + CHUNK]
            found = blob.find(piece, offset)
            assert found >= 0, "null codec transformed a chunk"
            offset = found + len(piece)
        # Framing overhead is bounded: header + one small record per chunk.
        assert len(blob) - len(raw) < 128 + 64 * (len(raw) // CHUNK + 1)

    def test_shuffle_deflate_compresses_structured_state(self, rng):
        """FP16-quantized masters + zeroed optimizer state: the 2x regime."""
        codec = get_codec("shuffle-deflate")
        quantized = (rng.standard_normal(50_000) * 0.02).astype(np.float16).astype(np.float32)
        zeros = np.zeros(50_000, dtype=np.float32)
        for array, floor in ((quantized, 1.8), (zeros, 20.0)):
            frame = encoded_frame(array, codec)
            assert array.nbytes / frame.nbytes > floor


class TestIntegrity:
    @pytest.fixture
    def frame(self, rng):
        a = _sample(rng, np.float32, 4000)
        return a, encoded_frame(a, get_codec("shuffle-deflate"), chunk_bytes=CHUNK)

    def test_truncated_stream_raises(self, frame):
        a, stream = frame
        for cut in (3, stream.size // 2, stream.size - 1):
            with pytest.raises(CodecError, match="truncated"):
                decode_frame_into(stream[:cut].copy(), np.empty_like(a))

    def test_corrupt_chunk_payload_raises(self, frame):
        a, stream = frame
        bad = stream.copy()
        bad[-1] ^= 0xFF  # inside the last chunk's compressed payload
        with pytest.raises(CodecError):
            decode_frame_into(bad, np.empty_like(a))

    def test_bit_flip_that_decompresses_fails_digest(self, frame):
        """Even a flip zlib tolerates must die on the per-chunk digest."""
        a, stream = frame
        # Flip the recorded digest itself: decode succeeds, digest check must fire.
        from repro.codec.framing import _GEOM_FMT, _HEAD_FMT
        import struct

        offset = struct.calcsize(_HEAD_FMT) + len(b"shuffle-deflate") + struct.calcsize(_GEOM_FMT)
        bad = stream.copy()
        bad[offset + 16] ^= 0xFF  # digest field of the first chunk record
        with pytest.raises(CodecError, match="integrity"):
            decode_frame_into(bad, np.empty_like(a))

    def test_corrupt_chunk_geometry_cannot_inflate_allocation(self, frame):
        """A bit-rotted chunk_bytes header must fail as CodecError — never as
        a runaway multi-terabyte scratch allocation (MemoryError)."""
        from repro.codec.framing import _GEOM_FMT, _HEAD_FMT
        import struct

        a, stream = frame
        geom_offset = struct.calcsize(_HEAD_FMT) + len(b"shuffle-deflate")
        bad = stream.copy()
        # chunk_bytes is the u64 right after the itemsize byte: blow it up.
        # The scratch is clamped to the payload size, so decode must either
        # reject the frame or still deliver digest-verified correct bytes —
        # never attempt a terabyte allocation.
        struct.pack_into("<Q", memoryview(bad), geom_offset + 1, 1 << 40)
        try:
            out = np.empty_like(a)
            decode_frame_into(bad, out)
            assert np.array_equal(out, a)
        except CodecError:
            pass
        # A zero itemsize (or misaligned chunk) is rejected outright.
        bad2 = stream.copy()
        bad2[geom_offset] = 0
        with pytest.raises(CodecError, match="geometry"):
            decode_frame_into(bad2, np.empty_like(a))
        bad3 = stream.copy()
        struct.pack_into("<Q", memoryview(bad3), geom_offset + 1, 3)  # not a multiple of 4
        with pytest.raises(CodecError, match="geometry"):
            decode_frame_into(bad3, np.empty_like(a))

    def test_unaligned_chunk_raw_len_rejected(self, frame):
        """A corrupt raw_len that is not a multiple of itemsize must fail as
        CodecError, not escape as a numpy reshape ValueError."""
        from repro.codec.framing import _GEOM_FMT, _HEAD_FMT
        import struct

        a, stream = frame
        rec_offset = struct.calcsize(_HEAD_FMT) + len(b"shuffle-deflate") + struct.calcsize(_GEOM_FMT)
        bad = stream.copy()
        struct.pack_into("<Q", memoryview(bad), rec_offset, 6)  # itemsize is 4
        with pytest.raises(CodecError, match="multiple of itemsize"):
            decode_frame_into(bad, np.empty_like(a))

    def test_wrong_destination_size_raises(self, frame):
        a, stream = frame
        with pytest.raises(CodecError, match="raw bytes"):
            decode_frame_into(stream, np.empty(a.size - 1, dtype=a.dtype))

    def test_bad_magic_raises(self, frame):
        a, stream = frame
        bad = stream.copy()
        bad[0] ^= 0xFF
        with pytest.raises(CodecError, match="magic"):
            decode_frame_into(bad, np.empty_like(a))

    def test_unknown_codec_rejected(self):
        with pytest.raises(CodecError, match="unknown codec"):
            get_codec("no-such-codec")
        assert "raw" in codec_names()

    def test_uninstalled_gated_codec_names_the_missing_package(self):
        # "zstd" is a *known* codec that may simply not be installed; the
        # error must say so instead of pretending the name is gibberish.
        if "zstd" in codec_names():
            pytest.skip("zstd is installed here; the gated arm is covered elsewhere")
        with pytest.raises(CodecError, match="installed"):
            get_codec("zstd")


def test_chunk_size_aligns_to_itemsize():
    assert _chunk_size(8, DEFAULT_CHUNK_BYTES) % 8 == 0
    assert _chunk_size(4, 10) == 8
    assert _chunk_size(8, 3) == 8  # never below one element


if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.data(),
        dtype=st.sampled_from(DTYPES),
        codec_name=st.sampled_from(CODECS),
        num_elements=st.integers(min_value=0, max_value=5000),
        chunk_bytes=st.integers(min_value=1, max_value=1 << 14),
    )
    def test_property_round_trip(data, dtype, codec_name, num_elements, chunk_bytes):
        """Any dtype × size × chunk granularity round-trips bitwise."""
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        rng = np.random.default_rng(seed)
        a = _sample(rng, dtype, num_elements)
        out = np.empty_like(a)
        frame = encoded_frame(a, get_codec(codec_name), chunk_bytes=chunk_bytes)
        digest = decode_frame_into(frame, out)
        assert np.array_equal(a, out)
        assert digest == payload_digest(memoryview(np.ascontiguousarray(a).reshape(-1)))
