"""Crash-safe striped flush: epoch keys, commit-after-barrier, recovery.

The contract: with ``crash_safe`` on, a striped key always reads as either
the complete previous value or the complete new value — a crash anywhere
between the first stripe write and the manifest commit must leave the old
generation fully readable, and later commits sweep the orphans the crash
left behind.  Also covers the chunked streaming reads
(`FileStore.load_into_chunks`) that restore-time digest verification uses,
and the hard-link adoption path (`StripedStore.adopt_striped`).
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.tiers.file_store import FileStore, StoreError, payload_digest
from repro.tiers.mmap_store import MmapFileStore
from repro.tiers.striped_store import StripedStore


@pytest.fixture
def backends(tmp_path):
    (tmp_path / "nvme").mkdir()
    (tmp_path / "pfs").mkdir()
    return [
        FileStore(tmp_path / "nvme", name="nvme"),
        FileStore(tmp_path / "pfs", name="pfs"),
    ]


@pytest.fixture
def striped(backends):
    return StripedStore(backends, threshold_bytes=256, crash_safe=True)


def reopen(backends, **kwargs):
    """A fresh StripedStore over the same directories (process restart)."""
    return StripedStore(
        [FileStore(b.root, name=b.name) for b in backends],
        threshold_bytes=256,
        crash_safe=True,
        **kwargs,
    )


class TestCrashSafeCommit:
    def test_round_trip_and_epoch_flip(self, striped, backends, rng):
        first = rng.standard_normal(1000).astype(np.float32)
        second = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", first)
        assert striped.epoch_of("k") == 0
        np.testing.assert_array_equal(striped.read("k"), first)
        striped.save_from("k", second)
        assert striped.epoch_of("k") == 1
        np.testing.assert_array_equal(striped.read("k"), second)
        # The previous epoch's stripe blobs were swept at commit.
        for backend in backends:
            assert not any(
                k.startswith("k.stripe") and not k.startswith("k.stripemeta")
                for k in backend.keys()
            ), "epoch-0 stripes survived the epoch-1 commit"
        # And the epoch ping-pongs back.
        striped.save_from("k", first)
        assert striped.epoch_of("k") == 0

    def test_plan_without_commit_is_invisible(self, striped, backends, rng):
        committed = rng.standard_normal(1000).astype(np.float32)
        doomed = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", committed)
        # Crash scenario: the next flush wrote some (here: all) of its stripe
        # blobs but died before the commit.
        parts = striped.plan_save("k", doomed)
        for part in parts[:1]:  # only the first stripe landed
            striped._backend_by_name(part.tier).save_from(part.key, part.array)
        # This process: reads still serve the committed generation.
        np.testing.assert_array_equal(striped.read("k"), committed)
        # A restarted process: same thing (the manifest is the commit point).
        survivor = reopen(backends)
        np.testing.assert_array_equal(survivor.read("k"), committed)

    def test_next_commit_sweeps_crash_orphans(self, striped, backends, rng):
        committed = rng.standard_normal(1000).astype(np.float32)
        doomed = rng.standard_normal(1000).astype(np.float32)
        final = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", committed)  # epoch 0
        parts = striped.plan_save("k", doomed)  # plans epoch 1
        for part in parts:
            striped._backend_by_name(part.tier).save_from(part.key, part.array)
        # crash: no commit.  Restart and complete a full flush (epoch 1 again).
        survivor = reopen(backends)
        survivor.save_from("k", final)
        assert survivor.epoch_of("k") == 1
        np.testing.assert_array_equal(survivor.read("k"), final)
        # No stripe blob of any other generation survives.
        expected = {
            part.key for part in survivor.plan_load("k", np.empty(1000, np.float32))
        }
        on_disk = {
            k for b in backends for k in FileStore(b.root, name=b.name).keys()
            if ".stripe" in k and not k.endswith(".stripemeta")
        }
        assert on_disk == expected, f"orphan stripes survived: {on_disk - expected}"

    def test_non_contiguous_crash_orphans_are_swept(self, striped, backends, rng):
        """An async fan-out lands stripes out of order: a crash can leave
        index gaps (stripe 2 without stripe 1).  The sweep must not stop at
        the first gap."""
        committed = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", committed)  # epoch 0
        # Crashed epoch-1 attempt: only stripes 0 and 2 landed (no stripe 1).
        backends[0].save_from("k.e1.stripe0", np.arange(8, dtype=np.float32))
        backends[1].save_from("k.e1.stripe2", np.arange(8, dtype=np.float32))
        survivor = reopen(backends)
        np.testing.assert_array_equal(survivor.read("k"), committed)
        final = rng.standard_normal(1000).astype(np.float32)
        survivor.save_from("k", final)  # commits epoch 1
        np.testing.assert_array_equal(survivor.read("k"), final)
        live = {part.key for part in survivor.plan_load("k", np.empty(1000, np.float32))}
        on_disk = {
            k for b in backends for k in FileStore(b.root, name=b.name).keys()
            if ".stripe" in k and not k.endswith(".stripemeta")
        }
        assert on_disk == live, f"gap orphans survived: {on_disk - live}"

    def test_first_striped_write_crash_keeps_whole_blob(self, striped, backends, rng):
        """A key upgrading whole-blob → striped must keep the whole blob
        readable until the stripe commit lands."""
        whole = rng.standard_normal(1000).astype(np.float32)
        backends[0].save_from("k", whole)  # pre-existing unstriped value
        parts = striped.plan_save("k", rng.standard_normal(1000).astype(np.float32))
        for part in parts[:1]:
            striped._backend_by_name(part.tier).save_from(part.key, part.array)
        # crash before commit: the key still reads as the whole blob.
        survivor = reopen(backends)
        assert not survivor.is_striped("k")
        np.testing.assert_array_equal(survivor.read("k"), whole)

    def test_commit_removes_stale_whole_blob(self, striped, backends, rng):
        whole = rng.standard_normal(1000).astype(np.float32)
        striped_data = rng.standard_normal(1000).astype(np.float32)
        backends[1].save_from("k", whole)
        striped.save_from("k", striped_data)
        assert not backends[1].contains("k"), "stale whole blob survived the commit"
        np.testing.assert_array_equal(striped.read("k"), striped_data)

    def test_failed_write_abandons_plan(self, striped, backends, rng):
        committed = rng.standard_normal(1000).astype(np.float32)
        striped.save_from("k", committed)
        huge = rng.standard_normal(1000).astype(np.float32)
        backends[0].capacity = 10  # force the stripe write to fail
        with pytest.raises(StoreError):
            striped.save_from("k", huge)
        backends[0].capacity = None
        np.testing.assert_array_equal(striped.read("k"), committed)
        with pytest.raises(StoreError, match="pending"):
            striped.commit_save("k")  # the failed plan was abandoned

    def test_commit_without_plan_raises(self, striped):
        with pytest.raises(StoreError, match="pending"):
            striped.commit_save("nope")


class TestVirtualTierCrashSafeFlush:
    @pytest.fixture
    def tier(self, tmp_path):
        from repro.core.config import MLPOffloadConfig, TierConfig
        from repro.core.virtual_tier import VirtualTier

        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        config = MLPOffloadConfig(
            tiers=(
                TierConfig("a", str(tmp_path / "a"), read_bw=2.0, write_bw=2.0),
                TierConfig("b", str(tmp_path / "b"), read_bw=1.0, write_bw=1.0),
            ),
            subgroup_size=1000,
            stripe_threshold_bytes=256.0,
            crash_safe_striped_flush=True,
        )
        tier = VirtualTier(config, worker="w0")
        tier.build_placement([0])
        yield tier
        tier.close()

    def test_async_flush_commits_behind_the_barrier(self, tier, rng):
        data = rng.standard_normal(1000).astype(np.float32)
        futures = tier.flush_subgroup("sg000", 0, {"params": data}, wait=False)
        for future in futures:
            result = future.result()
            assert result.ok
        # Awaiting the returned future is the barrier: the commit happened.
        assert tier.striped is not None and tier.striped.is_striped("sg000.params")
        fetched = tier.fetch_subgroup("sg000", 0, ["params"])
        np.testing.assert_array_equal(fetched["params"], data)

    def test_reflush_flips_epoch_and_stays_readable(self, tier, rng):
        first = rng.standard_normal(1000).astype(np.float32)
        second = rng.standard_normal(1000).astype(np.float32)
        tier.flush_subgroup("sg000", 0, {"params": first}, wait=True)
        tier.flush_subgroup("sg000", 0, {"params": second}, wait=True)
        assert tier.striped.epoch_of("sg000.params") == 1
        fetched = tier.fetch_subgroup("sg000", 0, ["params"])
        np.testing.assert_array_equal(fetched["params"], second)

    def test_downgrade_to_whole_blob_keeps_old_value_until_barrier(self, tier, rng):
        """Striped → whole downgrade (field shrank below the threshold): the
        stale striped layout must survive until the whole blob landed, and
        be gone once the flush future resolves."""
        big = rng.standard_normal(1000).astype(np.float32)
        small = rng.standard_normal(32).astype(np.float32)  # 128 B < 256 B threshold
        tier.flush_subgroup("sg000", 0, {"params": big}, wait=True)
        assert tier.striped.is_striped("sg000.params")
        futures = tier.flush_subgroup("sg000", 0, {"params": small}, wait=False)
        for future in futures:
            assert future.result().ok
        # Barrier passed: the striped layout was dropped behind the write.
        assert not tier.striped.is_striped("sg000.params")
        fetched = tier.fetch_subgroup("sg000", 0, ["params"])
        np.testing.assert_array_equal(fetched["params"], small)

    def test_failed_async_flush_abandons_plan_and_rearms_sweep(self, tier, rng):
        """A flush whose write barrier fails must abandon the pending plan
        (no stale _pending_plans entry) and re-arm the orphan sweep so the
        partial stripes get cleaned by the next successful commit."""
        committed = rng.standard_normal(1000).astype(np.float32)
        tier.flush_subgroup("sg000", 0, {"params": committed}, wait=True)
        tier.stores["b"].capacity = 10  # second path's stripe write will fail
        futures = tier.flush_subgroup(
            "sg000", 0, {"params": rng.standard_normal(1000).astype(np.float32)}, wait=False
        )
        results = [f.result() for f in futures]
        assert any(not r.ok for r in results), "the flush was expected to fail"
        assert "sg000.params" not in tier.striped._pending_plans
        assert "sg000.params" not in tier.striped._orphan_swept
        # Committed generation untouched; next flush succeeds and sweeps.
        np.testing.assert_array_equal(
            tier.fetch_subgroup("sg000", 0, ["params"])["params"], committed
        )
        tier.stores["b"].capacity = None
        final = rng.standard_normal(1000).astype(np.float32)
        tier.flush_subgroup("sg000", 0, {"params": final}, wait=True)
        np.testing.assert_array_equal(
            tier.fetch_subgroup("sg000", 0, ["params"])["params"], final
        )
        live = {
            part.key
            for part in tier.striped.plan_load("sg000.params", np.empty(1000, np.float32))
        }
        on_disk = {
            k
            for store in tier.stores.values()
            for k in store.keys()
            if ".stripe" in k and not k.endswith(".stripemeta")
        }
        assert on_disk == live, f"failed-flush orphans survived: {on_disk - live}"


class TestAdoptStriped:
    def test_adopt_links_and_commits(self, striped, backends, tmp_path, rng):
        data = rng.standard_normal(1000).astype(np.float32)
        # Source blobs live in sibling stores on the same filesystems.
        sources = [
            FileStore(backends[0].root.parent / "nvme_src", name="nvme_src"),
            FileStore(backends[1].root.parent / "pfs_src", name="pfs_src"),
        ]
        half = 500
        sources[0].save_from("blob0", data[:half])
        sources[1].save_from("blob1", data[half:])
        striped.adopt_striped(
            "k",
            [
                ("nvme", sources[0].path_of("blob0"), 0, half, None),
                ("pfs", sources[1].path_of("blob1"), half, half, None),
            ],
            dtype=np.float32,
            count=1000,
        )
        assert striped.is_striped("k")
        np.testing.assert_array_equal(striped.read("k"), data)
        # Zero payload bytes moved: the only write is the tiny manifest blob.
        assert backends[0].stats().bytes_written == backends[0].size_of(
            striped.manifest_key("k")
        )
        assert backends[1].stats().bytes_written == 0

    def test_adopt_rejects_gaps_and_unknown_backends(self, striped, backends, rng):
        data = rng.standard_normal(100).astype(np.float32)
        backends[0].save_from("src", data)
        path = backends[0].path_of("src")
        with pytest.raises(StoreError, match="unknown backend"):
            striped.adopt_striped("k", [("object", path, 0, 100, None)], dtype=np.float32, count=100)
        with pytest.raises(StoreError, match="non-contiguous"):
            striped.adopt_striped(
                "k",
                [("nvme", path, 0, 50, None), ("pfs", path, 60, 40, None)],
                dtype=np.float32,
                count=100,
            )


class TestLoadIntoChunks:
    @pytest.mark.parametrize("store_cls", [FileStore, MmapFileStore])
    def test_streams_digest_while_reading(self, store_cls, tmp_path, rng):
        store = store_cls(tmp_path / "t", name="t")
        data = rng.standard_normal(10_000).astype(np.float32)
        store.save_from("k", data)
        out = np.empty_like(data)
        hasher = hashlib.blake2b(digest_size=8)
        store.load_into_chunks("k", out, chunk_bytes=4096, hasher=hasher)
        np.testing.assert_array_equal(out, data)
        assert int.from_bytes(hasher.digest(), "big") == payload_digest(
            memoryview(data.reshape(-1))
        )
        # Byte accounting identical to load_into: the full blob is charged.
        assert store.stats().bytes_read == store.size_of("k")

    @pytest.mark.parametrize("store_cls", [FileStore, MmapFileStore])
    def test_validates_like_load_into(self, store_cls, tmp_path, rng):
        store = store_cls(tmp_path / "t", name="t")
        store.save_from("k", rng.standard_normal(100).astype(np.float32))
        with pytest.raises(StoreError, match="dtype"):
            store.load_into_chunks("k", np.empty(100, np.float64))
        with pytest.raises(StoreError, match="size"):
            store.load_into_chunks("k", np.empty(99, np.float32))
        with pytest.raises(StoreError, match="no key"):
            store.load_into_chunks("missing", np.empty(100, np.float32))

    def test_truncated_blob_detected(self, tmp_path, rng):
        store = FileStore(tmp_path / "t", name="t")
        store.save_from("k", rng.standard_normal(100).astype(np.float32))
        path = store.path_of("k")
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(StoreError, match="truncated|payload"):
            store.load_into_chunks("k", np.empty(100, np.float32), chunk_bytes=64)
