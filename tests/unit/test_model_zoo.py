"""Unit tests for the Table 2 model zoo and parameter-count model."""

import pytest

from repro.train.model_zoo import (
    MODEL_ZOO,
    TABLE2_NAMES,
    ModelConfig,
    model_by_name,
    smallest_offload_model,
    tiny_test_model,
)
from repro.util.bytesize import GB, GiB  # noqa: F401 - both units used in assertions


class TestTable2Geometries:
    @pytest.mark.parametrize(
        "name,layers,hidden,heads",
        [
            ("40B", 128, 5120, 40),
            ("52B", 64, 8192, 64),
            ("70B", 80, 8192, 64),
            ("100B", 124, 8192, 64),
            ("120B", 96, 10240, 80),
            ("130B", 70, 12288, 96),
            ("280B", 72, 16384, 128),
        ],
    )
    def test_geometries_match_table2(self, name, layers, hidden, heads):
        model = model_by_name(name)
        assert model.num_layers == layers
        assert model.hidden_dim == hidden
        assert model.num_heads == heads

    @pytest.mark.parametrize("name", TABLE2_NAMES)
    def test_parameter_counts_are_close_to_nominal(self, name):
        """The derived parameter count should be within 25% of the marketing size."""
        model = model_by_name(name)
        nominal = float(name.rstrip("B"))
        assert model.total_params_billions == pytest.approx(nominal, rel=0.25)

    def test_sizes_are_monotone_in_the_table_ordering(self):
        sizes = [MODEL_ZOO[name].total_params for name in TABLE2_NAMES]
        assert sizes == sorted(sizes)

    def test_smallest_offload_model_is_40b(self):
        assert smallest_offload_model().name == "40B"
        # Its optimizer state no longer fits in the 512 GB host memory once
        # the ZeRO-3 runtime buffers (250+ GB, §4.3) are accounted for (§4.1),
        # while the 20B baseline's comfortably does.
        runtime_floor = 250 * GB
        assert smallest_offload_model().optimizer_state_bytes > 512 * GiB - runtime_floor
        assert MODEL_ZOO["20B"].optimizer_state_bytes < 512 * GiB - runtime_floor

    def test_lookup_errors(self):
        with pytest.raises(KeyError):
            model_by_name("9000B")


class TestByteFootprints:
    def test_optimizer_state_is_six_times_fp16_model(self):
        model = model_by_name("70B")
        assert model.optimizer_state_bytes == 6 * model.fp16_model_bytes
        assert model.fp32_gradient_bytes == 2 * model.fp16_gradient_bytes

    def test_120b_optimizer_state_is_terabyte_scale(self):
        # The paper quotes ~1.8 TB of optimizer state for the 120B model (§4.2).
        model = model_by_name("120B")
        assert model.optimizer_state_bytes == pytest.approx(1.8e12, rel=0.3)

    def test_activation_checkpointing_reduces_activation_memory(self):
        model = model_by_name("40B")
        assert model.activation_bytes(1, checkpointing=True) < model.activation_bytes(
            1, checkpointing=False
        )
        assert model.activation_bytes(2) > model.activation_bytes(1)

    def test_head_dim(self):
        assert model_by_name("40B").head_dim == 128


class TestValidation:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", num_layers=0, hidden_dim=64, num_heads=4)
        with pytest.raises(ValueError):
            ModelConfig(name="bad", num_layers=2, hidden_dim=65, num_heads=4)
        with pytest.raises(ValueError):
            ModelConfig(name="bad", num_layers=2, hidden_dim=64, num_heads=4, vocab_size=0)
        with pytest.raises(ValueError):
            model_by_name("40B").activation_bytes(0)

    def test_tiny_test_model_and_scaling_helper(self):
        tiny = tiny_test_model(num_layers=2, hidden_dim=64, num_heads=4)
        assert tiny.total_params < 1_000_000
        larger = tiny.scaled_to("tiny-deep", num_layers=4)
        assert larger.num_layers == 4
        assert larger.hidden_dim == tiny.hidden_dim
