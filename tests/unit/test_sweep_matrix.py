"""Unit tests for the sweep matrix registry, filters and campaign sampling."""

from __future__ import annotations

import pytest

from repro.sweep.matrix import (
    MATRICES,
    Axis,
    MatrixError,
    ScenarioMatrix,
    campaign_sample,
    cell_key,
    matrix_by_name,
    parse_filter_args,
)

EXPECTED_CELL_COUNTS = {
    "model_size": 10,
    "weak_scaling": 10,
    "batch_size": 8,
    "ablation_nvme": 12,
    "ablation_multipath": 9,
    "engine_smoke": 12,
}


def test_registry_names_and_cell_counts():
    assert set(MATRICES) == set(EXPECTED_CELL_COUNTS)
    for name, expected in EXPECTED_CELL_COUNTS.items():
        matrix = matrix_by_name(name)
        cells = matrix.cells()
        assert len(cells) == expected == matrix.cell_count()
        # Every registered cell is distinct and carries the fixed parameters.
        assert len({cell_key(cell) for cell in cells}) == expected
        for cell in cells:
            for key, value in matrix.fixed.items():
                assert cell[key] == value


def test_unknown_matrix_lists_the_registry():
    with pytest.raises(MatrixError, match="weak_scaling"):
        matrix_by_name("nope")


def test_first_axis_varies_slowest():
    cells = matrix_by_name("weak_scaling").cells()
    # The figure ports rely on paper order: configs outer, engines inner.
    assert [cell["config"] for cell in cells[:4]] == ["40B@1", "40B@1", "70B@2", "70B@2"]
    assert [cell["engine"] for cell in cells[:2]] == ["DeepSpeed ZeRO-3", "MLP-Offload"]


def test_include_and_exclude_filters():
    matrix = matrix_by_name("weak_scaling")
    included = matrix.cells(include={"config": ["40B@1", "70B@2"]})
    assert len(included) == 4
    narrowed = matrix.cells(
        include={"config": ["40B@1", "70B@2"]}, exclude={"engine": ["DeepSpeed ZeRO-3"]}
    )
    assert [cell["engine"] for cell in narrowed] == ["MLP-Offload", "MLP-Offload"]


def test_filters_reject_unknown_axes():
    matrix = matrix_by_name("weak_scaling")
    with pytest.raises(MatrixError, match="include filter names unknown axes"):
        matrix.cells(include={"model": ["40B"]})
    with pytest.raises(MatrixError, match="exclude filter names unknown axes"):
        matrix.cells(exclude={"bogus": ["x"]})


def test_axis_validation():
    with pytest.raises(MatrixError, match="no values"):
        Axis("empty", ())
    with pytest.raises(MatrixError, match="duplicate values"):
        Axis("dup", ("a", "a"))
    with pytest.raises(MatrixError, match="not a JSON scalar"):
        Axis("bad", (("tuple",),))
    with pytest.raises(MatrixError, match="not a simple identifier"):
        Axis("bad name", ("a",))


def test_matrix_validation():
    axis = Axis("a", (1, 2))
    with pytest.raises(MatrixError, match="unknown kind"):
        ScenarioMatrix(name="m", kind="quantum", axes=(axis,))
    with pytest.raises(MatrixError, match="duplicate axis names"):
        ScenarioMatrix(name="m", kind="sim", axes=(axis, Axis("a", (3,))))
    with pytest.raises(MatrixError, match="fixed keys shadow axes"):
        ScenarioMatrix(name="m", kind="sim", axes=(axis,), fixed={"a": 9})


def test_campaign_sample_is_seed_deterministic():
    cells = matrix_by_name("engine_smoke").cells()
    first = campaign_sample(cells, 4, seed=11)
    again = campaign_sample(cells, 4, seed=11)
    other = campaign_sample(cells, 4, seed=12)
    assert first == again
    assert len(first) == 4
    assert first != other  # overwhelmingly likely for a 12-choose-4 space
    # Samples keep matrix order (stable resume paths + readable tables).
    keys = [cell_key(cell) for cell in cells]
    assert sorted(first, key=lambda c: keys.index(cell_key(c))) == first


def test_campaign_sample_bounds():
    cells = matrix_by_name("engine_smoke").cells()
    assert campaign_sample(cells, len(cells) + 5, seed=0) == cells
    with pytest.raises(MatrixError, match="positive"):
        campaign_sample(cells, 0, seed=0)


def test_parse_filter_args_merges_and_validates():
    parsed = parse_filter_args(["config=40B@1,70B@2", "config=100B@3", "engine=MLP-Offload"])
    assert parsed == {
        "config": ["40B@1", "70B@2", "100B@3"],
        "engine": ["MLP-Offload"],
    }
    assert parse_filter_args([]) == {}
    for bad in ("config", "=x", "config="):
        with pytest.raises(MatrixError, match="bad filter"):
            parse_filter_args([bad])
