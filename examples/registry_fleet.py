#!/usr/bin/env python
"""A checkpoint-registry fleet: cross-job dedup, cold restore, GC, scrubbing.

Boots the multi-tenant checkpoint registry service in-process and drives the
full life of a checkpoint fleet against it:

1. **fleet push** — a few dozen concurrent training jobs (async clients
   spread over several tenants) each push three checkpoint versions whose
   blobs overlap a shared base-model pool.  The push protocol negotiates
   per blob: the client sends its CAS-key list, the server answers with the
   missing subset, and only those blobs travel — the shared pool is
   uploaded once, fleet-wide;
2. **cold restore** — a fresh machine with an empty local checkpoint
   directory pulls a job's latest manifest and streams its blobs back
   through chunked ranged GETs, verifying every payload digest;
3. **retention GC** — tightening one tenant's retention and running the
   garbage collector retires old manifests and sweeps the blobs nothing
   references anymore (refcounts are recomputed from the on-disk manifests,
   never persisted);
4. **scrubbing** — a silently corrupted vault blob is caught by the
   idle-time scrubber, quarantined and surfaced in ``/healthz``; a verified
   re-upload of the same key heals the vault.

Run with::

    python examples/registry_fleet.py
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.bench.harness import format_table
from repro.ckpt.manifest import BlobRef, BlobSegment, CheckpointManifest, cas_key
from repro.registry import AsyncRegistryClient, RegistryClient, RegistryServerThread
from repro.tiers.file_store import FileStore, payload_digest

JOBS = 24
TENANTS = 6
VERSIONS = 3
SHARED_BLOBS = 6  # the "base model" pool every job references
BLOB_ELEMENTS = 4_000
RETENTION = 2


def blob(seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(BLOB_ELEMENTS).astype(np.float32)


def make_manifest(
    store: FileStore, worker: str, version: int, fields: Dict[str, np.ndarray]
) -> CheckpointManifest:
    refs = {}
    for name, array in fields.items():
        key = cas_key(payload_digest(array), array.nbytes)
        if not store.contains(key):
            store.write(key, array)
        seg = BlobSegment(
            tier="nvme",
            key=key,
            start=0,
            count=int(array.size),
            nbytes=int(array.nbytes),
            digest=payload_digest(array),
        )
        refs[name] = BlobRef(
            dtype="float32", count=int(array.size), source="staged", segments=(seg,)
        )
    return CheckpointManifest(
        version=version,
        worker=worker,
        iteration=version * 10,
        layout={"num_ranks": 1},
        steps={},
        placement={},
        subgroups={0: {k: v for k, v in refs.items() if k != "fp16"}},
        fp16_params=refs["fp16"],
    )


async def run_job(url: str, index: int, store: FileStore, pool: List[np.ndarray]) -> None:
    """One simulated training job: push VERSIONS checkpoints with dedup."""
    client = AsyncRegistryClient(url, tenant=f"tenant{index % TENANTS}")
    try:
        for version in range(1, VERSIONS + 1):
            manifest = make_manifest(
                store,
                f"job{index:02d}",
                version,
                {
                    "fp16": blob(10_000 + index * 31 + version),  # per-job unique
                    "master": pool[(index + version) % len(pool)],  # shared
                    "exp_avg": pool[(index * 3 + version) % len(pool)],  # shared
                },
            )
            keys = sorted({key for _tier, key in manifest.blob_keys()})
            missing, session = await client.missing(keys)
            for key in missing:
                await client.upload_blob(
                    key, store.path_of(key).read_bytes(), session=session
                )
            await client.commit_manifest(manifest, session=session)
    finally:
        await client.close()


def cold_restore(url: str, worker: str, restore_dir: Path) -> Tuple[int, int]:
    """Pull ``worker``'s latest manifest into an empty local store; verify."""
    dest = FileStore(restore_dir, name="nvme")
    with RegistryClient(url, tenant="tenant0") as client:
        manifest = client.fetch_manifest(worker)
        assert manifest is not None, f"{worker} has no checkpoint in the registry"
        fetched = 0
        for _tier, key in sorted(manifest.blob_keys()):
            client.fetch_blob_into_store(key, dest)  # chunked ranged GETs
            fetched += 1
        for ref in [manifest.fp16_params, *manifest.subgroups[0].values()]:
            seg = ref.segments[0]
            array = dest.read(seg.key)
            assert payload_digest(array) == seg.digest, f"digest mismatch on {seg.key}"
        return manifest.version, fetched


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-registry-"))
    scratch = FileStore(workdir / "scratch", name="nvme")
    pool = [blob(i) for i in range(SHARED_BLOBS)]

    with RegistryServerThread(
        workdir / "srv", retention=RETENTION, scrub_interval=0.1
    ) as srv:
        print(f"== registry up at {srv.url} ==")

        print(f"\n== fleet push: {JOBS} jobs x {VERSIONS} versions, {TENANTS} tenants ==")
        start = time.perf_counter()

        async def fleet() -> None:
            await asyncio.gather(*(run_job(srv.url, i, scratch, pool) for i in range(JOBS)))

        asyncio.run(fleet())
        elapsed = time.perf_counter() - start
        stats = srv.server.stats
        with RegistryClient(srv.url, tenant="tenant0") as client:
            health = client.healthz()
        pushes = JOBS * VERSIONS
        print(
            format_table(
                [
                    dict(
                        pushes=pushes,
                        seconds=round(elapsed, 2),
                        manifests=health["manifests"],
                        blobs_uploaded=stats.blobs_ingested,
                        blobs_deduped=stats.blobs_deduped,
                        vault_mib=round(health["blob_bytes"] / 2**20, 2),
                    )
                ],
                title="fleet summary",
            )
        )
        dedup_ratio = stats.blobs_deduped / max(1, stats.blobs_deduped + stats.blobs_ingested)
        print(f"cross-job dedup skipped {dedup_ratio:.0%} of referenced blobs")
        assert health["status"] == "ok" and health["active_pushes"] == 0

        print("\n== cold restore: empty local dir, latest checkpoint over HTTP ==")
        version, fetched = cold_restore(srv.url, "job00", workdir / "restore")
        print(f"restored job00 v{version}: {fetched} blobs fetched, all digests verified")

        print("\n== retention GC: tenant0 tightens retention to 1 ==")
        with RegistryClient(srv.url, tenant="tenant0") as client:
            client.set_retention(1)
            report = client.collect_garbage()
        print(f"retired {report['retired']} manifests, swept {report['swept']} blobs")
        assert report["retired"] > 0 and report["swept"] > 0

        print("\n== scrubber: silent corruption -> quarantine -> healed re-upload ==")
        victim = sorted(srv.server.vault.keys())[0]
        path = srv.server.vault.path_of(victim)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # silent bit rot in the payload tail
        path.write_bytes(bytes(data))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not srv.server.quarantined:
            time.sleep(0.05)
        with RegistryClient(srv.url, tenant="tenant0") as client:
            health = client.healthz()
            print(f"healthz: {health['status']}, quarantined: {health['quarantined']}")
            assert health["status"] == "degraded" and victim in health["quarantined"]
            missing, session = client.missing([victim])
            assert victim in missing, "dedup must not vouch for a quarantined key"
            client.upload_blob(victim, scratch.path_of(victim).read_bytes(), session=session)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and srv.server.quarantined:
                time.sleep(0.05)
            health = client.healthz()
            print(f"after re-upload: {health['status']}, quarantined: {health['quarantined']}")
            assert health["status"] == "ok"

    print("\nfleet pushed, deduped, restored, collected and scrubbed - all verified.")


if __name__ == "__main__":
    main()
