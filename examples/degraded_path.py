#!/usr/bin/env python
"""Kill one of two stripe paths mid-run and watch the engine degrade, not die.

Trains a small sharded model striped across an "nvme" and a "pfs" path,
then uses the deterministic fault injector to make pfs reject every write
partway through:

1. the in-flight flush fails over — the affected subgroups are rewritten
   onto the survivor and the path is quarantined after its first fatal
   error;
2. while quarantined, the stripe planner masks pfs out (new flushes go
   whole to nvme) and the path carries zero new engine bytes;
3. the periodic recovery probe keeps knocking; once the fault budget is
   exhausted the probe's write/read-back/verify round-trip succeeds and
   pfs is re-admitted — the next flush stripes across both paths again.

The whole episode is invisible to training: parameters and optimizer state
match a fault-free run bitwise.

Run with::

    python examples/degraded_path.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.bench.harness import format_table
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.tiers.faultstore import FaultPlan, FaultRule, arm_faults, clear_faults
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 24_000
SUBGROUP = 3_000
ITERATIONS = 10
#: pfs write ops 8.. (mid-initialize) fault; the budget then heals the path:
#: op 8 kills the in-flight flush, three failed probes burn the rest, the
#: fourth probe succeeds and re-admits pfs.
DEATH = FaultRule(kind="dead", op="write", tier="pfs", after=8, count=4)


def build_config(root: Path) -> MLPOffloadConfig:
    (root / "nvme").mkdir(parents=True, exist_ok=True)
    (root / "pfs").mkdir(parents=True, exist_ok=True)
    field_bytes = SUBGROUP * 4
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(root / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(root / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=SUBGROUP,
        host_cache_bytes=0.0,
        adam=AdamConfig(lr=1e-2),
        enable_striped_reads=True,
        stripe_threshold_bytes=float(field_bytes // 2),
        adaptive_bandwidth=False,
        io_retry_attempts=1,  # every injected fault is terminal: fail over fast
        path_quarantine_failures=2,
        path_probe_interval=2,
    )


def train(root: Path, plan: FaultPlan | None):
    layout = build_shard_layout(TOTAL_PARAMS, num_ranks=1, subgroup_size=SUBGROUP)
    views = flat_views(None, layout, 0)
    rng = np.random.default_rng(7)
    initial = rng.standard_normal(TOTAL_PARAMS).astype(np.float32)
    grads = [rng.standard_normal(TOTAL_PARAMS).astype(np.float32) * 0.1 for _ in range(ITERATIONS)]
    if plan is not None:
        arm_faults(plan)
    timeline = []
    try:
        with MLPOffloadEngine(build_config(root), layout, rank=0) as engine:
            engine.initialize(initial.copy())
            fp16 = initial.astype(np.float16)
            for iteration, grad in enumerate(grads):
                for index, view in views.items():
                    engine.on_backward_gradient(index, grad[view].astype(np.float16))
                engine.on_microbatch_complete()
                engine.run_update(fp16)
                if plan is not None:
                    health = engine.tier.health
                    timeline.append(
                        dict(
                            iteration=iteration,
                            pfs_healthy=health.is_healthy("pfs"),
                            pfs_bytes_written=engine.tier.engine.tier_stats("pfs").bytes_written,
                            failovers=engine.tier.failovers,
                            stripe_weights=str(
                                [round(w / 1e9, 1) for w in engine.tier._stripe_weights()]
                            ),
                        )
                    )
            master = engine.fetch_master_params()
            summary = engine.tier.health_summary()
    finally:
        clear_faults()
    return fp16, master, timeline, summary


def main() -> None:
    base = Path(tempfile.mkdtemp(prefix="repro-degraded-"))
    print("fault-free reference run...")
    clean_fp16, clean_master, _, _ = train(base / "clean", None)
    print(f"run with pfs dying mid-initialize ({DEATH.to_spec()})...")
    fp16, master, timeline, summary = train(base / "faulted", FaultPlan([DEATH]))

    print()
    print(format_table(timeline, title="pfs health over the run"))
    print()
    print(f"health summary: {summary}")

    assert np.array_equal(clean_fp16, fp16), "FP16 params diverged"
    assert np.array_equal(clean_master, master), "FP32 master state diverged"
    assert summary["failovers"] >= 1, "the dead path never triggered a failover"
    assert summary["paths"]["pfs"]["healthy"], "pfs was never re-admitted"
    assert summary["recovery_events"] >= 1, "the probe never re-admitted pfs"
    print()
    print(
        "bitwise-identical to the fault-free run; "
        f"{summary['failovers']} flush(es) failed over, pfs quarantined and "
        "re-admitted by the recovery probe"
    )


if __name__ == "__main__":
    main()
