#!/usr/bin/env python
"""Scenario-matrix sweep: declarative axes, N repeats, medians/IQR, resume.

Expands the ``weak_scaling`` matrix (Figures 11/12 as an argument product of
``config`` x ``engine``), runs every cell three times through the sweep
runner, and prints the per-cell median/IQR result table plus the boxplot
block of the ``SWEEP_*.json`` payload.  The per-cell records are
content-addressed on disk, so re-running this example resumes instead of
recomputing — delete the scratch directory to start fresh.

The same machinery drives the CLI::

    python -m repro.sweep run --matrix weak_scaling --repeats 3 --table

Run with::

    python examples/sweep_matrix.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.bench.harness import format_table
from repro.sweep import SweepRunner, build_payload, matrix_by_name

SCRATCH = Path(tempfile.gettempdir()) / "repro-sweep-example"


def main() -> None:
    matrix = matrix_by_name("weak_scaling")
    print(f"matrix {matrix.name!r}: {matrix.description}")
    for axis in matrix.axes:
        print(f"  axis {axis.name}: {', '.join(str(v) for v in axis.values)}")
    print(f"  -> {matrix.cell_count()} cells (argument product)\n")

    runner = SweepRunner(
        matrix,
        repeats=3,
        sweep_dir=SCRATCH,
        progress=lambda message: print(f"  {message}"),
    )
    report = runner.run()
    print(
        f"\nswept {len(report.records)} cell(s): {report.executed_cells} executed, "
        f"{report.skipped_cells} resumed from {SCRATCH}"
    )

    payload = build_payload(matrix, report.records, repeats=3)
    print()
    print(format_table(payload["series"]["cells"], title="per-cell medians/IQR"))
    print()
    boxes = [
        {"cell": label, **summary} for label, summary in payload["boxplot"]["update_s"].items()
    ]
    print(format_table(boxes, title="update_s five-number summaries (boxplot-ready)"))
    print(f"\nheadline median speedup (ZeRO-3 over MLP-Offload): {payload['median_speedup']:.2f}x")


if __name__ == "__main__":
    main()
