#!/usr/bin/env python
"""Paper-scale pre-training study on the simulator (Figures 7-10).

Reproduces the single-node model-size scalability experiment: 40B-120B
parameter models on a Testbed-1 node (4×H100-80GB, NVMe + VAST PFS),
comparing DeepSpeed ZeRO-3 NVMe offloading against MLP-Offload.

Run with::

    python examples/pretrain_study.py [model ...]
"""

from __future__ import annotations

import sys

from repro.bench.harness import format_table
from repro.sim.sweep import SINGLE_NODE_MODELS, model_size_sweep
from repro.tiers.spec import TESTBED_1


def main(models) -> None:
    print(f"testbed: {TESTBED_1.name} — {TESTBED_1.gpus_per_node} GPUs, "
          f"NVMe {TESTBED_1.tier('nvme').read_bw/1e9:.1f}/{TESTBED_1.tier('nvme').write_bw/1e9:.1f} GB/s, "
          f"PFS {TESTBED_1.tier('pfs').read_bw/1e9:.1f}/{TESTBED_1.tier('pfs').write_bw/1e9:.1f} GB/s")
    rows = []
    for model_name, engines in model_size_sweep(models).items():
        baseline = engines["DeepSpeed ZeRO-3"]
        ours = engines["MLP-Offload"]
        rows.append(
            {
                "model": model_name,
                "zero3_fwd_s": baseline.forward_seconds,
                "zero3_bwd_s": baseline.backward_seconds,
                "zero3_upd_s": baseline.update_seconds,
                "mlp_fwd_s": ours.forward_seconds,
                "mlp_bwd_s": ours.backward_seconds,
                "mlp_upd_s": ours.update_seconds,
                "speedup": baseline.iteration_seconds / ours.iteration_seconds,
                "io_gain": ours.effective_io_throughput_gbps / baseline.effective_io_throughput_gbps,
            }
        )
    print(format_table(rows, title="Iteration breakdown: DeepSpeed ZeRO-3 vs MLP-Offload (simulated)"))
    print("\npaper headline: 2.5x faster iterations, 2-2.6x higher effective I/O throughput")


if __name__ == "__main__":
    main(sys.argv[1:] or SINGLE_NODE_MODELS)
