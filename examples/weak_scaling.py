#!/usr/bin/env python
"""Weak-scaling study: 40B on 4 GPUs up to 280B on 32 GPUs (Figures 11-12).

Tensor parallelism within a node, data parallelism across nodes, on the
Testbed-2 (Polaris-like) configuration, comparing DeepSpeed ZeRO-3 with
MLP-Offload.  Also reports the §4.4 cost-effectiveness comparison against
GPU-only training of the 70B model.

Run with::

    python examples/weak_scaling.py
"""

from __future__ import annotations

from repro.bench import experiments
from repro.bench.harness import format_table
from repro.sim.sweep import weak_scaling_sweep


def main() -> None:
    rows = []
    for config, engines in weak_scaling_sweep().items():
        baseline = engines["DeepSpeed ZeRO-3"]
        ours = engines["MLP-Offload"]
        rows.append(
            {
                "config": config,
                "gpus": baseline.num_gpus,
                "zero3_iter_s": baseline.iteration_seconds,
                "mlp_iter_s": ours.iteration_seconds,
                "speedup": baseline.iteration_seconds / ours.iteration_seconds,
                "zero3_mparams_s": baseline.update_throughput_mparams,
                "mlp_mparams_s": ours.update_throughput_mparams,
            }
        )
    print(format_table(rows, title="Weak scaling on Testbed-2 (model size grown with node count)"))

    print()
    cost = experiments.cost_effectiveness_70b()
    print(format_table(cost.rows, title=cost.description))
    for note in cost.notes:
        print(f"  note: {note}")


if __name__ == "__main__":
    main()
