#!/usr/bin/env python
"""Checkpoint/restart: survive a crash without losing a bit of training state.

This example trains a tiny transformer through the MLP-Offload engine with
asynchronous checkpointing enabled, "crashes" after a few iterations,
restores the latest committed version into a brand-new engine, finishes the
run — and verifies the result is bitwise identical to a run that never
crashed.

Because the authoritative FP32 optimizer state already lives on the storage
tiers, each checkpoint costs little more than its manifest: tier-resident
subgroup blobs are referenced by hard link (zero bytes copied), and only the
dirty host-cached residue plus the FP16 working copy are staged and drained
concurrently with the next iteration.

Run with::

    python examples/checkpoint_restart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.ckpt import CheckpointReader
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.model_zoo import tiny_test_model
from repro.train.sharding import build_shard_layout
from repro.train.trainer import FunctionalTrainer, TrainerConfig
from repro.train.transformer import TransformerLM
from repro.util.bytesize import format_bytes

SUBGROUP_SIZE = 20_000
TOTAL_ITERATIONS = 5
CRASH_AFTER = 3


def build_engine(
    workdir: Path, model_params: int, *, checkpointing: bool, streaming_restore: bool = True
) -> MLPOffloadEngine:
    config = MLPOffloadConfig(
        tiers=(
            TierConfig(name="nvme", path=str(workdir / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig(name="pfs", path=str(workdir / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=SUBGROUP_SIZE,
        host_cache_bytes=2 * SUBGROUP_SIZE * 12,  # two subgroups of dirty residue
        checkpoint_dir=str(workdir / "ckpt") if checkpointing else None,
        checkpoint_interval=1,
        checkpoint_retention=3,
        # Staged blobs are byte-shuffled + block-compressed as they drain
        # (the default codec); restore streams: hard links + lazy residue.
        checkpoint_codec="shuffle-deflate",
        checkpoint_streaming_restore=streaming_restore,
        adam=AdamConfig(lr=1e-3),
    )
    layout = build_shard_layout(model_params, num_ranks=1, subgroup_size=SUBGROUP_SIZE)
    return MLPOffloadEngine(config, layout, rank=0)


def main() -> None:
    model_config = tiny_test_model(
        num_layers=2, hidden_dim=64, num_heads=4, vocab_size=256, sequence_length=32
    )
    model_params = TransformerLM(model_config).num_params
    trainer_config = TrainerConfig(micro_batch_size=2)

    # Reference: the same run without any crash (and without checkpointing).
    ref_dir = Path(tempfile.mkdtemp(prefix="mlp-offload-ckpt-ref-"))
    ref_engine = build_engine(ref_dir, model_params, checkpointing=False)
    ref_trainer = FunctionalTrainer(model_config, ref_engine, trainer_config=trainer_config)
    ref_losses = [r.mean_loss for r in ref_trainer.train(TOTAL_ITERATIONS)]
    ref_master = ref_trainer.master_params()
    ref_engine.close()

    workdir = Path(tempfile.mkdtemp(prefix="mlp-offload-ckpt-"))
    print(f"offload tiers + checkpoints under {workdir}")
    print(f"model: {model_params:,} parameters\n")

    # --- phase 1: train with checkpointing, then "crash" -------------------
    engine = build_engine(workdir, model_params, checkpointing=True)
    trainer = FunctionalTrainer(model_config, engine, trainer_config=trainer_config)
    for report in trainer.train(CRASH_AFTER):
        print(
            f"iter {report.iteration}: loss={report.mean_loss:.3f} "
            f"checkpoint=v{report.checkpoint_version}"
        )
    engine.checkpoint_wait()
    writer = engine.checkpointer
    ratio = writer.staged_bytes / max(1, writer.staged_stored_bytes)
    print(
        f"\ncheckpoint accounting after {CRASH_AFTER} versions: "
        f"{writer.linked_blobs} blobs hard-linked ({format_bytes(writer.linked_bytes)} "
        f"referenced without copying), {writer.staged_blobs} staged "
        f"({format_bytes(writer.staged_bytes)} raw -> "
        f"{format_bytes(writer.staged_stored_bytes)} on store, "
        f"{ratio:.2f}x compression via {writer.codec_name}), "
        f"{writer.reused_blobs} reused"
    )
    engine.close()
    print("simulated crash: engine abandoned mid-job\n")

    # --- interlude: eager vs streaming restore latency ----------------------
    import time

    restore_seconds = {}
    for mode, streaming in (("eager", False), ("streaming", True)):
        probe = build_engine(
            workdir, model_params, checkpointing=True, streaming_restore=streaming
        )
        start = time.perf_counter()
        restored = probe.restore_checkpoint()
        restore_seconds[mode] = time.perf_counter() - start
        detail = (
            f"{restored.linked_subgroups} subgroups hard-linked, "
            f"{restored.lazy_subgroups} deferred to first fetch"
            if streaming
            else "every subgroup read and re-flushed up front"
        )
        print(f"{mode:>9} restore: {restore_seconds[mode] * 1e3:7.1f} ms  ({detail})")
        probe.close()
    print(
        f"streaming restore is {restore_seconds['eager'] / restore_seconds['streaming']:.1f}x "
        "faster on this mostly-clean checkpoint\n"
    )

    # --- phase 2: restore into a fresh engine and finish --------------------
    engine = build_engine(workdir, model_params, checkpointing=True)
    reader = CheckpointReader(engine.config, worker="rank0")
    print(f"committed versions on disk: {reader.versions()}")
    trainer = FunctionalTrainer(
        model_config, engine, trainer_config=trainer_config, resume=True
    )
    print(f"resumed from iteration {engine.update_count}")
    resumed_losses = [r.mean_loss for r in trainer.train(TOTAL_ITERATIONS - CRASH_AFTER)]
    for offset, loss in enumerate(resumed_losses):
        print(f"iter {CRASH_AFTER + offset}: loss={loss:.3f} (resumed)")

    # --- verification -------------------------------------------------------
    identical = bool(np.array_equal(ref_master, trainer.master_params())) and (
        resumed_losses == ref_losses[CRASH_AFTER:]
    )
    print(
        f"\nresumed trajectory bitwise-identical to the uninterrupted run: {identical}"
    )
    engine.close()
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
