#!/usr/bin/env python
"""Multi-path virtual-tier planning with the Equation 1 performance model.

Shows how MLP-Offload decides where each optimizer-state subgroup lives:

1. probe (or declare) the bandwidth of every storage path,
2. split the subgroups proportionally to bandwidth (Equation 1),
3. adapt the split when a shared tier slows down under external load.

Run with::

    python examples/multipath_tiering.py
"""

from __future__ import annotations

from repro.bench.harness import format_table
from repro.core.performance_model import (
    BandwidthEstimator,
    allocate_subgroups,
    expected_round_trip_seconds,
)
from repro.core.placement import PlacementMap
from repro.tiers.spec import TESTBED_1, TESTBED_2
from repro.train.model_zoo import model_by_name
from repro.train.sharding import PAPER_SUBGROUP_SIZE, build_shard_layout


def main() -> None:
    model = model_by_name("70B")
    layout = build_shard_layout(model.total_params, num_ranks=4, subgroup_size=PAPER_SUBGROUP_SIZE)
    per_worker = layout.max_subgroups_per_rank()
    subgroup_bytes = layout.subgroups[0].optimizer_state_bytes
    print(f"70B model: {per_worker} subgroups per worker, "
          f"{subgroup_bytes / 1e9:.1f} GB of optimizer state each\n")

    rows = []
    for node in (TESTBED_1, TESTBED_2):
        bandwidths = {name: tier.effective_bw for name, tier in node.storage.items()}
        allocation = allocate_subgroups(per_worker, bandwidths)
        sweep = expected_round_trip_seconds(subgroup_bytes, allocation, bandwidths)
        nvme_only = expected_round_trip_seconds(
            subgroup_bytes, {"nvme": per_worker}, bandwidths
        )
        rows.append(
            {
                "testbed": node.name,
                "nvme_subgroups": allocation["nvme"],
                "pfs_subgroups": allocation["pfs"],
                "sweep_s_multipath": sweep,
                "sweep_s_nvme_only": nvme_only,
                "predicted_gain": nvme_only / sweep,
            }
        )
    print(format_table(rows, title="Equation 1 subgroup allocation (per worker)"))

    # Adaptive re-balancing when the PFS comes under pressure from other jobs.
    print("\nadaptive re-balancing on Testbed-1 when the PFS slows down 4x:")
    estimator = BandwidthEstimator(
        initial={n: t.effective_bw for n, t in TESTBED_1.storage.items()}, smoothing=1.0
    )
    placement = PlacementMap.from_allocation(
        list(range(per_worker)), estimator.allocate(per_worker)
    )
    print(f"  before: {placement.counts()}")
    degraded = TESTBED_1.tier("pfs").effective_bw / 4
    estimator.observe("pfs", nbytes=degraded * 10, seconds=10.0)
    moves = placement.rebalance(estimator.allocate(per_worker))
    print(f"  after : {placement.counts()}  ({len(moves)} subgroups re-homed)")


if __name__ == "__main__":
    main()
