#!/usr/bin/env python
"""Multi-path virtual-tier planning with the Equation 1 performance model.

Shows how MLP-Offload decides where each optimizer-state subgroup lives and
how striped reads keep every path busy:

1. probe (or declare) the bandwidth of every storage path,
2. split the subgroups proportionally to bandwidth (Equation 1),
3. adapt the split when a shared tier slows down under external load,
4. stripe each subgroup's fields across NVMe *and* PFS so both paths stream
   simultaneously during every fetch — with the per-path byte accounting to
   prove it.

Run with::

    python examples/multipath_tiering.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.bench.harness import format_table
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.core.performance_model import (
    BandwidthEstimator,
    allocate_subgroups,
    expected_round_trip_seconds,
)
from repro.core.placement import PlacementMap
from repro.tiers.spec import TESTBED_1, TESTBED_2
from repro.train.adam import AdamConfig
from repro.train.model_zoo import model_by_name
from repro.train.sharding import PAPER_SUBGROUP_SIZE, build_shard_layout, flat_views
from repro.util.bytesize import format_bytes


def main() -> None:
    model = model_by_name("70B")
    layout = build_shard_layout(model.total_params, num_ranks=4, subgroup_size=PAPER_SUBGROUP_SIZE)
    per_worker = layout.max_subgroups_per_rank()
    subgroup_bytes = layout.subgroups[0].optimizer_state_bytes
    print(f"70B model: {per_worker} subgroups per worker, "
          f"{subgroup_bytes / 1e9:.1f} GB of optimizer state each\n")

    rows = []
    for node in (TESTBED_1, TESTBED_2):
        bandwidths = {name: tier.effective_bw for name, tier in node.storage.items()}
        allocation = allocate_subgroups(per_worker, bandwidths)
        sweep = expected_round_trip_seconds(subgroup_bytes, allocation, bandwidths)
        nvme_only = expected_round_trip_seconds(
            subgroup_bytes, {"nvme": per_worker}, bandwidths
        )
        rows.append(
            {
                "testbed": node.name,
                "nvme_subgroups": allocation["nvme"],
                "pfs_subgroups": allocation["pfs"],
                "sweep_s_multipath": sweep,
                "sweep_s_nvme_only": nvme_only,
                "predicted_gain": nvme_only / sweep,
            }
        )
    print(format_table(rows, title="Equation 1 subgroup allocation (per worker)"))

    # Adaptive re-balancing when the PFS comes under pressure from other jobs.
    print("\nadaptive re-balancing on Testbed-1 when the PFS slows down 4x:")
    estimator = BandwidthEstimator(
        initial={n: t.effective_bw for n, t in TESTBED_1.storage.items()}, smoothing=1.0
    )
    placement = PlacementMap.from_allocation(
        list(range(per_worker)), estimator.allocate(per_worker)
    )
    print(f"  before: {placement.counts()}")
    degraded = TESTBED_1.tier("pfs").effective_bw / 4
    estimator.observe("pfs", nbytes=degraded * 10, seconds=10.0)
    moves = placement.rebalance(estimator.allocate(per_worker))
    print(f"  after : {placement.counts()}  ({len(moves)} subgroups re-homed)")

    striped_reads_demo()


def striped_reads_demo() -> None:
    """Drive the functional engine with striped reads and show the per-path split."""
    print("\nstriped multi-path reads (fields split across nvme+pfs per fetch):")
    workdir = Path(tempfile.mkdtemp(prefix="mlp-offload-striped-"))
    total_params, subgroup_params = 120_000, 20_000
    layout = build_shard_layout(total_params, num_ranks=1, subgroup_size=subgroup_params)
    views = flat_views(None, layout, 0)
    config = MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(workdir / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(workdir / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=subgroup_params,
        host_cache_bytes=0.0,  # force every fetch through the tiers
        adam=AdamConfig(lr=1e-3),
        enable_striped_reads=True,
        stripe_threshold_bytes=4096.0,
        adaptive_bandwidth=False,  # keep the read-hint split stable for the printout
    )
    rng = np.random.default_rng(11)
    initial = rng.standard_normal(total_params).astype(np.float32)
    with MLPOffloadEngine(config, layout, rank=0) as engine:
        engine.initialize(initial.copy())
        fp16 = initial.astype(np.float16)
        for _ in range(3):
            grad = rng.standard_normal(total_params).astype(np.float32) * 0.1
            for index, view in views.items():
                engine.on_backward_gradient(index, grad[view].astype(np.float16))
            engine.on_microbatch_complete()
            engine.run_update(fp16)
        rows = []
        total_read = total_written = 0
        for name in engine.tier.tier_names:
            stats = engine.tier.engine.tier_stats(name)
            total_read += stats.bytes_read
            total_written += stats.bytes_written
            rows.append(
                {
                    "path": name,
                    "raw_read": stats.bytes_read,
                    "bytes_read": format_bytes(stats.bytes_read),
                    "bytes_written": format_bytes(stats.bytes_written),
                    "read_ops": stats.read_ops,
                    "write_ops": stats.write_ops,
                }
            )
        for row in rows:
            raw_read = row.pop("raw_read")
            row["read_share"] = f"{raw_read / total_read:.0%}" if total_read else "-"
        print(format_table(rows, title="per-path byte accounting (striped reads)"))
        print(
            "  every fetch streamed from both paths at once: "
            f"{format_bytes(total_read)} read / {format_bytes(total_written)} written in total,\n"
            "  split ≈ proportionally to the 6.9:3.6 GB/s *read* bandwidth hints "
            "(Equation 1 applied within each field)"
        )


if __name__ == "__main__":
    main()
