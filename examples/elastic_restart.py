#!/usr/bin/env python
"""Elastic restart: kill a 3-rank job with SIGKILL, resume it 2-wide.

Three **real OS processes** (one per rank, spawned by the
`repro.ckpt.procrank` harness) train under the global two-phase commit
protocol, sharing one checkpoint directory.  Mid-flight, one rank is armed
— purely through its environment — to ``kill -9`` itself right after
publishing its prepared manifest for version 2.  The job dies torn.

The restart then resumes with only **two** ranks: each survivor re-plans
its `ShardLayout` over the same parameter space and the engine
re-partitions the 3-rank cut's fp16 shards and per-subgroup FP32 optimizer
state at restore time (`repro.ckpt.elastic`).  Because the optimizer is
elementwise, the gathered global state is invariant under re-sharding: the
2-rank trajectory finishes bitwise-identical to an uninterrupted run.

Run with::

    python examples/elastic_restart.py
"""

from __future__ import annotations

import signal
import tempfile

import numpy as np

from repro.bench.harness import format_table
from repro.ckpt.procrank import (
    WorldSpec,
    leaked_sentinels,
    reference_state,
    run_crash_scenario,
)

OLD_WORLD = 3
NEW_WORLD = 2
ITERATIONS = 3
KILL_PHASE = "post-publish"  # the victim dies right after its manifest lands
KILL_VERSION = 2


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-elastic-")
    spec = WorldSpec(workdir=workdir, world_size=OLD_WORLD, iterations=ITERATIONS)

    print(f"== reference: the uninterrupted trajectory ({ITERATIONS} iterations) ==")
    ref_fp16, ref_master = reference_state(spec)
    print(f"total params: {spec.total_params} (world-size-invariant gather)")

    print(
        f"\n== crash: {OLD_WORLD} real processes, rank 1 SIGKILLs itself "
        f"{KILL_PHASE}@v{KILL_VERSION} ==")
    out = run_crash_scenario(
        spec,
        phase=KILL_PHASE,
        victim=1,
        version=KILL_VERSION,
        resume_world_size=NEW_WORLD,
    )
    rows = [
        dict(wave="initial", world=OLD_WORLD, exit_codes=str(out["initial_codes"])),
        dict(wave="resume", world=NEW_WORLD, exit_codes=str(out["resume_codes"])),
    ]
    print(format_table(rows, title="process waves"))
    assert -signal.SIGKILL in out["initial_codes"]
    print(
        f"the resume wave restarted {NEW_WORLD}-wide from the {OLD_WORLD}-rank cut "
        f"in {out['recovery_seconds']:.2f}s (spawn -> every rank exited cleanly)"
    )

    fp16_ok = np.array_equal(out["fp16"], ref_fp16)
    master_ok = np.array_equal(out["master"], ref_master)
    leaks = leaked_sentinels(spec)
    print(
        format_table(
            [
                dict(check="gathered FP16 params bitwise", ok="yes" if fp16_ok else "NO"),
                dict(check="gathered FP32 master bitwise", ok="yes" if master_ok else "NO"),
                dict(check="no leaked leases/locks", ok="yes" if not leaks else "NO"),
            ],
            title="elastic restart contract",
        )
    )
    assert fp16_ok and master_ok, "the resized world diverged from the reference"
    assert not leaks, f"sentinels leaked: {leaks}"
    print(
        f"\nthe {OLD_WORLD}-rank job was killed mid-protocol and finished "
        f"{NEW_WORLD}-wide, bitwise-identical to never having crashed."
    )


if __name__ == "__main__":
    main()
