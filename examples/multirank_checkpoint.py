#!/usr/bin/env python
"""Multi-rank checkpointing: a torn commit and a consistent global restart.

Two in-process data-parallel workers (one engine per rank, sharing the tier
lock manager, the storage directories and the checkpoint directory) train
under the global two-phase commit protocol:

1. each rank's asynchronous drain publishes a *prepared* manifest
   (``ckpt-<worker>-<version>.prepared.json``);
2. whichever rank lands last wins the ``GLOBAL.lock`` election, renames
   every rank's manifest to its committed name and writes the global commit
   record ``GLOBAL-<version>.json`` — the job-wide commit point.

After a few coordinated iterations the job is driven through a **torn
commit**: both ranks run one more training step, but only rank 0 lives long
enough to publish its manifest.  The restart then demonstrates the point of
the protocol: every rank resolves the newest *global* version — never the
torn one, never a mixed per-rank cut — discards the torn debris, and
resumes bitwise-identically.

Run with::

    python examples/multirank_checkpoint.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.aio.locks import TierLockManager
from repro.bench.harness import format_table
from repro.ckpt import CheckpointCoordinator
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

TOTAL_PARAMS = 120_000
SUBGROUP_SIZE = 15_000
RANKS = 2
ITERATIONS = 4


def make_config(workdir: Path) -> MLPOffloadConfig:
    for name in ("nvme", "pfs"):
        (workdir / name).mkdir(parents=True, exist_ok=True)
    return MLPOffloadConfig(
        tiers=(
            TierConfig(name="nvme", path=str(workdir / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig(name="pfs", path=str(workdir / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=SUBGROUP_SIZE,
        host_cache_bytes=SUBGROUP_SIZE * 12,  # one subgroup of dirty residue
        checkpoint_dir=str(workdir / "ckpt"),
        checkpoint_coordination=True,  # the global two-phase commit
        checkpoint_retention=ITERATIONS + 1,
        adam=AdamConfig(lr=1e-3),
    )


def build_engines(config: MLPOffloadConfig, layout) -> tuple:
    coordinator = CheckpointCoordinator(
        config, workers=config.checkpoint_workers(layout.num_ranks)
    )
    manager = TierLockManager()
    engines = [
        MLPOffloadEngine(
            config, layout, rank=rank, lock_manager=manager,
            checkpoint_coordinator=coordinator,
        )
        for rank in range(RANKS)
    ]
    return engines, coordinator


def train_step(engines, views, fp16s, grads_of_iter, *, checkpoint_ranks) -> None:
    for rank, engine in enumerate(engines):
        for index, view in views[rank].items():
            engine.on_backward_gradient(index, grads_of_iter[rank][view].astype(np.float16))
        engine.on_microbatch_complete()
        engine.run_update(fp16s[rank])
        if rank in checkpoint_ranks:
            engine.save_checkpoint(fp16s[rank])


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-multirank-"))
    layout = build_shard_layout(TOTAL_PARAMS, num_ranks=RANKS, subgroup_size=SUBGROUP_SIZE)
    views = [flat_views(None, layout, rank) for rank in range(RANKS)]
    rng = np.random.default_rng(11)
    initial = [
        rng.standard_normal(layout.rank_params(rank)).astype(np.float32)
        for rank in range(RANKS)
    ]
    grads = [
        [
            rng.standard_normal(layout.rank_params(rank)).astype(np.float32) * 0.1
            for rank in range(RANKS)
        ]
        for _ in range(ITERATIONS + 1)
    ]

    config = make_config(workdir)
    engines, coordinator = build_engines(config, layout)
    fp16s = [arr.astype(np.float16) for arr in initial]
    for rank, engine in enumerate(engines):
        engine.initialize(initial[rank].copy())

    print(f"== {RANKS} ranks, {ITERATIONS} coordinated iterations ==")
    for index in range(ITERATIONS):
        train_step(engines, views, fp16s, grads[index], checkpoint_ranks=range(RANKS))
    for engine in engines:
        engine.checkpoint_wait()
    print(f"global versions committed: {coordinator.global_versions()}")
    expected = [
        (fp16s[rank].copy(), engine.fetch_master_params())
        for rank, engine in enumerate(engines)
    ]

    print("\n== torn commit: one more step, but only rank 0 publishes ==")
    train_step(engines, views, fp16s, grads[ITERATIONS], checkpoint_ranks={0})
    engines[0].checkpoint_wait()
    ckpt_dir = Path(config.checkpoint_dir)
    prepared = sorted(p.name for p in ckpt_dir.glob("*.prepared.json"))
    print(f"rank 0's stranded prepared manifest(s): {prepared}")
    print(f"newest global version is still: {coordinator.global_versions()[-1]}")
    for engine in engines:
        engine.close()  # the whole job "dies" here

    print("\n== restart: every rank resolves the newest *global* version ==")
    engines, coordinator = build_engines(make_config(workdir), layout)
    rows = []
    restart_bitwise = True
    for rank, engine in enumerate(engines):
        restored = engine.restore_checkpoint()
        fp16_expected, master_expected = expected[rank]
        bitwise = np.array_equal(restored.fp16_params, fp16_expected) and np.array_equal(
            engine.fetch_master_params(), master_expected
        )
        restart_bitwise &= bitwise
        rows.append(
            dict(
                rank=rank,
                restored_version=restored.version,
                global_version=restored.global_version,
                iteration=restored.iteration,
                bitwise="yes" if bitwise else "NO",
            )
        )
    print(format_table(rows, title="per-rank restart"))
    leftover = sorted(p.name for p in ckpt_dir.glob("*.prepared.json"))
    print(f"torn manifests after restart: {leftover or 'none (discarded)'}")
    assert restart_bitwise, "a rank diverged from the pre-torn-commit state"
    assert len({row["global_version"] for row in rows}) == 1, "mixed cut!"
    print("\nevery rank resumed bitwise-identically from one global cut.")
    for engine in engines:
        engine.close()


if __name__ == "__main__":
    main()
