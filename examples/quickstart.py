#!/usr/bin/env python
"""Quickstart: train a tiny transformer with real multi-path offloading.

This example exercises the *functional* MLP-Offload engine end to end on a
miniature GPT-style model: the FP32 optimizer state is sharded into
subgroups, offloaded to two directory-backed tiers (standing in for the
node-local NVMe and the parallel file system), and updated on the CPU with
cache-friendly reordering and delayed FP16→FP32 gradient conversion — the
full Algorithm 1 path of the paper, on state small enough for a laptop.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig
from repro.train.model_zoo import tiny_test_model
from repro.train.sharding import build_shard_layout
from repro.train.trainer import FunctionalTrainer, TrainerConfig
from repro.train.transformer import TransformerLM
from repro.util.bytesize import format_bytes


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="mlp-offload-quickstart-"))
    print(f"offload tiers under {workdir}")

    # 1. A miniature model (a few hundred thousand parameters).
    model_config = tiny_test_model(
        num_layers=2, hidden_dim=64, num_heads=4, vocab_size=256, sequence_length=32
    )
    model = TransformerLM(model_config)
    print(f"model: {model.num_params:,} parameters")

    # 2. Shard the flat parameter space into subgroups (the offloading unit).
    subgroup_size = 20_000
    layout = build_shard_layout(model.num_params, num_ranks=1, subgroup_size=subgroup_size)
    print(f"sharding: {layout.num_subgroups} subgroups of ≤{subgroup_size:,} parameters")

    # 3. Configure the virtual third-level tier: a local and a remote path,
    #    with the Table 1 Testbed-1 bandwidth hints driving the Equation 1 split.
    config = MLPOffloadConfig(
        tiers=(
            TierConfig(name="nvme", path=str(workdir / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig(name="pfs", path=str(workdir / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=subgroup_size,
        # Keep the host cache deliberately small (two subgroups) so the run
        # shows real fetch traffic, cache hits from the alternating order and
        # skipped flushes — the same dynamics the paper exploits at scale.
        host_cache_bytes=2 * subgroup_size * 12,
        adam=AdamConfig(lr=1e-3),
    )

    # 4. Train a few iterations through the offloading engine.
    engine = MLPOffloadEngine(config, layout, rank=0)
    trainer = FunctionalTrainer(
        model_config, engine, trainer_config=TrainerConfig(micro_batch_size=2)
    )
    try:
        for report in trainer.train(5):
            stats = report.update_report.stats
            print(
                f"iter {report.iteration}: loss={report.mean_loss:.3f} "
                f"update order={'asc' if report.update_report.order[0] == 0 else 'desc'} "
                f"cache hits={stats.cache_hits}/{stats.cache_hits + stats.cache_misses} "
                f"fetched={format_bytes(stats.fetch_bytes)} "
                f"skipped flushes={stats.skipped_flushes}"
            )
        distribution = engine.tier_distribution()
        print("optimizer-state placement:")
        for tier, nbytes in sorted(distribution.items()):
            print(f"  {tier:>5}: {format_bytes(nbytes)}")
    finally:
        engine.close()


if __name__ == "__main__":
    main()
