#!/usr/bin/env python
"""Ablation study: progressive activation of the MLP-Offload design principles.

Regenerates the paper's Figures 14 and 15 on the simulator: starting from the
DeepSpeed ZeRO-3 baseline, enable cache-friendly reordering, delayed gradient
conversion, tier-exclusive concurrency control and finally multi-path I/O,
and report how much each step contributes.

Run with::

    python examples/ablation_study.py [model ...]
"""

from __future__ import annotations

import sys

from repro.bench.harness import format_table
from repro.sim.sweep import ablation_sweep


def main(models) -> None:
    for multipath, figure in ((False, "Figure 14 — node-local NVMe only"), (True, "Figure 15 — NVMe + PFS")):
        rows = []
        for model, variants in ablation_sweep(models, multipath=multipath).items():
            baseline = None
            for label, result in variants.items():
                baseline = baseline if baseline is not None else result.iteration_seconds
                rows.append(
                    {
                        "model": model,
                        "variant": label,
                        "iteration_s": result.iteration_seconds,
                        "update_s": result.update_seconds,
                        "backward_s": result.backward_seconds,
                        "speedup_vs_first": baseline / result.iteration_seconds,
                    }
                )
        print(format_table(rows, title=figure))
        print()
    print("paper headline: each principle contributes; all of them plus multi-path reach ~2.5x")


if __name__ == "__main__":
    main(sys.argv[1:] or ("40B", "70B", "100B"))
