"""Figure 9: effective I/O throughput vs model size."""

from repro.bench import experiments


def test_fig09_io_throughput(benchmark, show):
    result = benchmark(experiments.fig9_io_throughput)
    show(result)
    models = ("40B", "52B", "70B", "100B", "120B")
    ratios = []
    for model in models:
        baseline = result.row_for(model=model, engine="DeepSpeed ZeRO-3")
        ours = result.row_for(model=model, engine="MLP-Offload")
        ratios.append(ours["io_gbps"] / baseline["io_gbps"])
        # The baseline is capped by the contended NVMe; MLP-Offload adds the PFS path.
        assert baseline["io_gbps"] < 7.0
        assert ours["io_gbps"] > baseline["io_gbps"]
    # Paper: ~2x-2.6x higher effective I/O throughput.
    assert all(1.3 < r < 4.0 for r in ratios)
    # The advantage shrinks slightly for larger models as the host cache covers
    # a smaller fraction of the optimizer state (paper §4.3).
    ours_series = [result.row_for(model=m, engine="MLP-Offload")["io_gbps"] for m in models]
    assert ours_series[-1] <= ours_series[0] * 1.1
