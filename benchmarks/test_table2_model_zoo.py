"""Table 2: model geometries used in the evaluation."""

from repro.bench import experiments


def test_table2_model_zoo(benchmark, show):
    result = benchmark(experiments.table2_model_zoo)
    show(result)
    rows = {row["model"]: row for row in result.rows}
    assert set(rows) == {"40B", "52B", "70B", "100B", "120B", "130B", "280B"}
    # Geometry spot checks straight from Table 2.
    assert rows["40B"]["num_layers"] == 128 and rows["40B"]["hidden_dim"] == 5120
    assert rows["280B"]["hidden_dim"] == 16384 and rows["280B"]["attention_heads"] == 128
    # Derived sizes are close to the nominal labels and monotone.
    params = [rows[m]["params_billion"] for m in ("40B", "52B", "70B", "100B", "120B", "130B", "280B")]
    assert params == sorted(params)
    # The 120B optimizer state is terabyte-scale (paper: ~1.8 TB).
    assert rows["120B"]["optimizer_state_gb"] > 1000
