"""Perf-smoke regression gate over ``BENCH_*.json`` / ``SWEEP_*.json`` trajectories.

The scheduled CI job regenerates every benchmark trajectory on the tiny
standard configurations and then runs this comparator against the
repo-committed baselines: a headline metric that regressed by more than the
threshold (25% by default, on the median where a metric is a distribution)
fails the job, so a perf regression cannot land silently behind a green
functional suite.  Sweep result tables (``SWEEP_*.json``, produced by
``python -m repro.sweep``) use the same trajectory-payload layout and are
gated identically — the sweep-smoke CI job compares its regenerated tables
against the committed ones.

Headline metrics extracted from each trajectory payload:

* per-mode **median step/update time** — from ``series.trajectory`` rows
  (``step_s``/``update_s`` grouped by ``mode``/``codec``/``engine``) or the
  ``mean_update_s`` mapping of the older payload shape (lower is better);
* **restore latency** — the median of the ``restore_latency_s`` mapping
  (lower is better; the median, not per-key comparison, because the keys
  are per-run version numbers);
* **ratio/speedup scalars** — any ``*ratio``/``*speedup`` key
  (``compression_ratio``, ``speedup``, ``restore_speedup``, …; higher is
  better);
* **overhead percentages** — every ``*_pct`` mapping (``overhead_pct``,
  ``overhead_vs_raw_pct``, …; lower is better, compared in absolute
  percentage points: a ratio of two near-zero percentages is meaningless).

A benchmark whose comparison has *measured* run-to-run noise wider than
the default budget declares it in the payload's top-level ``noise_points``
mapping (metric name → absolute points, e.g.
``{"overhead_pct:real_process": 20.0}``); the gate widens that metric's
budget by the **baseline's** declared noise — the committed payload, not
the candidate, owns the band, so a regressing run cannot vote itself a
wider budget.

Very small baselines (below ``--floor`` seconds) are skipped for time-like
metrics: a 2 ms step regressing to 3 ms is scheduler noise, not a signal.

``--ratios-only`` restricts the gate to the machine-independent metrics
(ratios, speedups, overhead percentages).  Use it whenever baseline and
candidate trajectories come from *different machines* — scheduled CI
regenerates on a shared hosted runner whose raw wall-clock routinely
differs from the committing machine's by more than any sane budget, while
the dimensionless headline metrics transfer.  Same-machine comparisons
(local before/after runs) should gate everything.

Usage::

    python benchmarks/check_trajectory.py --baseline <dir> --candidate <dir>

Exit status: 0 = no regression, 1 = regression (or a baseline trajectory
missing from the candidate side), 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from statistics import median
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: metric name → (value, direction); direction is "lower" or "higher".
Metrics = Dict[str, Tuple[float, str]]

#: Keys a trajectory row may group by, in priority order.
_GROUP_KEYS = ("mode", "codec", "engine")
#: Keys a trajectory row may carry its sample under.
_VALUE_KEYS = ("step_s", "update_s")
#: Time-like metrics below this many seconds are noise, not signal.
DEFAULT_FLOOR_SECONDS = 0.005
#: Trajectory payload families the directory comparison gates.
TRAJECTORY_GLOBS = ("BENCH_*.json", "SWEEP_*.json")


def _trajectory_rows(payload: dict) -> List[dict]:
    series = payload.get("series")
    if isinstance(series, dict) and isinstance(series.get("trajectory"), list):
        return [row for row in series["trajectory"] if isinstance(row, dict)]
    if isinstance(payload.get("trajectory"), list):  # pre-PR-4 payload shape
        return [row for row in payload["trajectory"] if isinstance(row, dict)]
    return []


def extract_metrics(payload: dict) -> Metrics:
    """Headline metrics of one ``BENCH_*.json`` payload."""
    metrics: Metrics = {}
    # Dimensionless higher-is-better scalars: "speedup", "restore_speedup",
    # "compression_ratio", ... — match by suffix so every benchmark's
    # headline ratio is gated without a per-file list.
    for name, value in sorted(payload.items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool) and (
            name.endswith("speedup") or name.endswith("ratio")
        ):
            metrics[name] = (float(value), "higher")
    restore = payload.get("restore_latency_s")
    if isinstance(restore, dict) and restore:
        values = [float(v) for v in restore.values() if isinstance(v, (int, float))]
        if values:
            metrics["restore_latency_s:median"] = (median(values), "lower")
    # Percentage mappings ("overhead_pct", "overhead_vs_raw_pct", ...):
    # lower is better, compared in absolute points.
    for name, value in sorted(payload.items()):
        if isinstance(value, dict) and name.endswith("_pct"):
            for mode, pct in sorted(value.items()):
                if isinstance(pct, (int, float)):
                    metrics[f"{name}:{mode}"] = (float(pct), "lower-pct")
    mean_update = payload.get("mean_update_s")
    if isinstance(mean_update, dict):
        for mode, value in sorted(mean_update.items()):
            if isinstance(value, (int, float)):
                metrics[f"mean_update_s:{mode}"] = (float(value), "lower")
    by_group: Dict[str, List[float]] = {}
    for row in _trajectory_rows(payload):
        group = next((str(row[k]) for k in _GROUP_KEYS if k in row), "all")
        value = next(
            (row[k] for k in _VALUE_KEYS if isinstance(row.get(k), (int, float))), None
        )
        if value is not None:
            by_group.setdefault(group, []).append(float(value))
    for group, values in sorted(by_group.items()):
        metrics[f"median_step_s:{group}"] = (median(values), "lower")
    return metrics


def extract_noise_points(payload: dict) -> Dict[str, float]:
    """The payload's declared per-metric measurement noise (absolute points).

    Only meaningful on the *baseline* side: the committed payload declares
    how noisy its own comparison is, widening that metric's budget for
    every future candidate.
    """
    declared = payload.get("noise_points")
    if not isinstance(declared, dict):
        return {}
    return {
        str(name): float(value)
        for name, value in declared.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def compare_metrics(
    baseline: Metrics,
    candidate: Metrics,
    *,
    threshold: float = 0.25,
    floor_seconds: float = DEFAULT_FLOOR_SECONDS,
    ratios_only: bool = False,
    baseline_noise_points: "Optional[Mapping[str, float]]" = None,
) -> List[str]:
    """Regressions of ``candidate`` against ``baseline`` (empty = clean).

    A lower-is-better metric regresses when it grew by more than
    ``threshold`` (relative); higher-is-better when it shrank by more than
    ``threshold``; a percentage metric when it grew by more than
    ``threshold * 100`` absolute points, plus that metric's
    ``baseline_noise_points`` entry when the baseline payload declared
    measured run-to-run noise.  A metric missing on the candidate
    side is a regression (the benchmark stopped reporting it); new
    candidate-only metrics are fine — the next baseline refresh picks them
    up.  ``ratios_only`` drops raw-duration metrics, keeping only the
    machine-independent ones (for cross-machine comparisons).
    """
    noise_points = dict(baseline_noise_points or {})
    problems: List[str] = []
    for name, (base_value, direction) in sorted(baseline.items()):
        if ratios_only and direction == "lower":
            continue  # raw duration: does not transfer across machines
        if name not in candidate:
            problems.append(f"{name}: missing from candidate (baseline {base_value:.6g})")
            continue
        cand_value = candidate[name][0]
        if direction == "lower-pct":
            # Percentages compare in absolute points — a ratio of two
            # near-zero overheads amplifies noise into false regressions.
            # The baseline's declared measurement noise widens the budget.
            budget_points = threshold * 100.0 + noise_points.get(name, 0.0)
            if cand_value > base_value + budget_points:
                problems.append(
                    f"{name}: {base_value:.4g}% -> {cand_value:.4g}% "
                    f"(budget +{budget_points:.0f} points)"
                )
            continue
        if base_value <= 0:
            continue  # degenerate baseline; nothing meaningful to compare
        if direction == "lower":
            # Every lower-is-better headline metric is a duration; below the
            # noise floor a relative comparison measures the scheduler, not
            # the code.
            if base_value < floor_seconds:
                continue
            if cand_value > base_value * (1.0 + threshold):
                problems.append(
                    f"{name}: {base_value:.6g} -> {cand_value:.6g} "
                    f"(+{(cand_value / base_value - 1.0) * 100.0:.1f}%, "
                    f"budget +{threshold * 100.0:.0f}%)"
                )
        else:
            if cand_value < base_value / (1.0 + threshold):
                problems.append(
                    f"{name}: {base_value:.6g} -> {cand_value:.6g} "
                    f"(-{(1.0 - cand_value / base_value) * 100.0:.1f}%, "
                    f"budget -{threshold * 100.0:.0f}%)"
                )
    return problems


def compare_directories(
    baseline_dir: Path,
    candidate_dir: Path,
    *,
    threshold: float = 0.25,
    floor_seconds: float = DEFAULT_FLOOR_SECONDS,
    ratios_only: bool = False,
) -> Tuple[List[str], List[str]]:
    """Compare every ``BENCH_*.json``/``SWEEP_*.json`` of ``baseline_dir``."""
    problems: List[str] = []
    checked: List[str] = []
    baselines = sorted(
        path for pattern in TRAJECTORY_GLOBS for path in baseline_dir.glob(pattern)
    )
    if not baselines:
        problems.append(f"no {'/'.join(TRAJECTORY_GLOBS)} baselines in {baseline_dir}")
        return problems, checked
    for path in baselines:
        candidate_path = candidate_dir / path.name
        if not candidate_path.is_file():
            problems.append(f"{path.name}: candidate trajectory was not produced")
            continue
        try:
            base_payload = json.loads(path.read_text(encoding="utf-8"))
            cand_payload = json.loads(candidate_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{path.name}: unreadable trajectory ({exc})")
            continue
        for problem in compare_metrics(
            extract_metrics(base_payload),
            extract_metrics(cand_payload),
            threshold=threshold,
            floor_seconds=floor_seconds,
            ratios_only=ratios_only,
            baseline_noise_points=extract_noise_points(base_payload),
        ):
            problems.append(f"{path.name}: {problem}")
        checked.append(path.name)
    return problems, checked


def main(argv: "Iterable[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="directory holding the committed BENCH_*.json trajectories",
    )
    parser.add_argument(
        "--candidate", type=Path, required=True,
        help="directory holding the freshly produced BENCH_*.json trajectories",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative regression budget per headline metric (default 0.25)",
    )
    parser.add_argument(
        "--floor", type=float, default=DEFAULT_FLOOR_SECONDS,
        help="seconds below which time-like baselines are treated as noise",
    )
    parser.add_argument(
        "--ratios-only", action="store_true",
        help="gate only machine-independent metrics (ratios/speedups/overhead "
        "percentages) — use when baseline and candidate ran on different machines",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")
    problems, checked = compare_directories(
        args.baseline, args.candidate,
        threshold=args.threshold, floor_seconds=args.floor,
        ratios_only=args.ratios_only,
    )
    for name in checked:
        print(f"checked {name}")
    if problems:
        print(f"\n{len(problems)} perf regression problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  REGRESSION {problem}", file=sys.stderr)
        return 1
    print(f"no perf regressions across {len(checked)} trajectory file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
