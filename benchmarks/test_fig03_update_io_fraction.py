"""Figure 3: fraction of the update phase spent in disk I/O (gap analysis)."""

from repro.bench import experiments


def test_fig03_update_io_fraction(benchmark, show):
    result = benchmark(experiments.fig3_update_io_fraction)
    show(result)
    cpu_row = result.row_for(model="20B (CPU)")
    assert cpu_row["io_fraction"] == 0.0
    for name in ("20B (SSD)", "40B (SSD)", "70B (SSD)", "120B (SSD)"):
        row = result.row_for(model=name)
        # Paper: ~99% of the SSD-offloaded update phase is disk I/O.
        assert row["io_fraction"] > 0.9
        # Paper: the in-memory update is dramatically (≈30x) faster.
        assert row["update_seconds"] > 5.0 * cpu_row["update_seconds"]
    # Larger models take longer updates.
    assert (
        result.row_for(model="120B (SSD)")["update_seconds"]
        > result.row_for(model="40B (SSD)")["update_seconds"]
    )
