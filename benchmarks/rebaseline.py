"""Gated, selective rebaseline helper for ``BENCH_*.json`` trajectories.

The perf-smoke benchmarks write their trajectory files straight to the
repository root — the same files the CI gate treats as the committed
baselines.  A casual local ``pytest -m perf_smoke`` therefore leaves a
possibly-noisy re-run sitting in the working tree, one ``git add`` away
from silently ratcheting the regression gate (a committed noisy baseline
raises the allowed overhead for every future nightly run).

This tool makes rebaselining deliberate:

* it snapshots the HEAD-committed version of every trajectory file,
* regenerates them (``pytest -m perf_smoke``, skipped with ``--no-run``),
* gates the fresh files against the committed ones with the same
  comparator CI uses (``check_trajectory.compare_metrics``,
  machine-independent metrics by default), and
* **restores the committed baselines whenever the gate fails** — a run
  that would not pass CI is never left in the tree.  If a regression is
  real, the cause needs investigating; the baseline is not the place to
  hide it.

Rebaselining is also *selective*: name the trajectories a code change
actually affected and every other baseline is restored untouched even
when the full benchmark suite regenerated it, so reviewers only see
deltas with a stated reason::

    python benchmarks/rebaseline.py BENCH_registry.json
    python benchmarks/rebaseline.py            # keep all (gate still applies)

``SWEEP_*.json`` tables regenerate through ``python -m repro.sweep``; pass
them explicitly together with ``--no-run`` to gate an existing re-run.

Exit status: 0 = fresh baselines kept, 1 = gate failed (committed
baselines restored) or the benchmark run itself failed, 2 = usage error.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Callable, Iterable, List, Sequence, Tuple

_CHECK_PATH = Path(__file__).resolve().with_name("check_trajectory.py")
_spec = importlib.util.spec_from_file_location("check_trajectory", _CHECK_PATH)
check_trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_trajectory)

#: Default rebaseline scope: the pytest-regenerated benchmark trajectories.
DEFAULT_GLOB = "BENCH_*.json"


def snapshot_committed(
    names: Iterable[str], repo_root: Path, dest: Path
) -> Tuple[List[str], List[str]]:
    """Copy the HEAD-committed version of each trajectory into ``dest``.

    Returns ``(tracked, new)``: names found at HEAD (snapshotted) and names
    with no committed version (brand-new baselines, nothing to gate
    against).
    """
    tracked: List[str] = []
    new: List[str] = []
    for name in names:
        proc = subprocess.run(
            ["git", "-C", str(repo_root), "show", f"HEAD:{name}"],
            capture_output=True,
        )
        if proc.returncode != 0:
            new.append(name)
            continue
        (dest / name).write_bytes(proc.stdout)
        tracked.append(name)
    return tracked, new


def restore_committed(committed_dir: Path, names: Iterable[str], repo_root: Path) -> None:
    """Put the snapshotted committed baselines back into the working tree."""
    for name in names:
        snapshot = committed_dir / name
        if snapshot.is_file():
            (repo_root / name).write_bytes(snapshot.read_bytes())


def rebaseline(
    repo_root: Path,
    committed_dir: Path,
    requested: Sequence[str],
    tracked: Sequence[str],
    new_names: Sequence[str],
    *,
    threshold: float = 0.25,
    ratios_only: bool = True,
    echo: Callable[[str], None] = print,
) -> int:
    """Gate fresh trajectories against committed ones; keep only ``requested``.

    Every tracked trajectory *not* requested is restored from the committed
    snapshot (selective rebaseline).  Requested trajectories are kept only
    if every one of them passes the comparator against its committed
    baseline; a single regression restores **all** of them and returns 1 —
    partial rebaselines would leave the tree in a state no single benchmark
    run produced.
    """
    requested_set = set(requested)
    bystanders = [name for name in tracked if name not in requested_set]
    restore_committed(committed_dir, bystanders, repo_root)
    for name in bystanders:
        echo(f"restored {name} (not requested; committed baseline kept)")

    problems: List[str] = []
    gated = [name for name in tracked if name in requested_set]
    for name in gated:
        candidate_path = repo_root / name
        if not candidate_path.is_file():
            problems.append(f"{name}: no regenerated trajectory in {repo_root}")
            continue
        try:
            base_payload = json.loads((committed_dir / name).read_text(encoding="utf-8"))
            cand_payload = json.loads(candidate_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{name}: unreadable trajectory ({exc})")
            continue
        for problem in check_trajectory.compare_metrics(
            check_trajectory.extract_metrics(base_payload),
            check_trajectory.extract_metrics(cand_payload),
            threshold=threshold,
            ratios_only=ratios_only,
        ):
            problems.append(f"{name}: {problem}")

    if problems:
        restore_committed(committed_dir, gated, repo_root)
        echo(f"\n{len(problems)} gate failure(s) — committed baselines restored:")
        for problem in problems:
            echo(f"  REGRESSION {problem}")
        echo(
            "\nA fresh run that fails the gate is noise or a real regression; "
            "neither belongs in the baseline.  Re-run on a quieter machine or "
            "investigate the cause."
        )
        return 1

    for name in gated:
        echo(f"rebaselined {name} (gate passed against committed baseline)")
    for name in new_names:
        if name in requested_set and (repo_root / name).is_file():
            echo(f"rebaselined {name} (new trajectory; no committed baseline)")
    if gated or new_names:
        echo(
            "\nCommit these with the code change that justifies them and say "
            "so in the commit message (machine, repeat count, or the commit "
            "that changed performance)."
        )
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trajectories", nargs="*",
        help="trajectory files to rebaseline (default: every BENCH_*.json); "
        "all others are restored to their committed content",
    )
    parser.add_argument(
        "--no-run", action="store_true",
        help="gate the trajectories already in the working tree instead of "
        "regenerating them with pytest",
    )
    parser.add_argument(
        "--marker", default="perf_smoke",
        help="pytest -m marker used to regenerate the trajectories",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative regression budget per headline metric (default 0.25)",
    )
    parser.add_argument(
        "--all-metrics", action="store_true",
        help="gate raw durations too (same machine as the committed "
        "baselines); default gates only machine-independent metrics",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    repo_root = Path(__file__).resolve().parents[1]
    known = sorted(path.name for path in repo_root.glob(DEFAULT_GLOB))
    requested = list(args.trajectories) if args.trajectories else known
    for name in requested:
        if Path(name).name != name:
            parser.error(f"trajectory names are repo-root files, got path {name!r}")

    with tempfile.TemporaryDirectory(prefix="repro-rebaseline-") as tmp:
        committed_dir = Path(tmp)
        scope = sorted(set(known) | set(requested))
        tracked, new = snapshot_committed(scope, repo_root, committed_dir)
        if not args.no_run:
            env = dict(os.environ)
            parts = [str(repo_root / "src")]
            if env.get("PYTHONPATH"):
                parts.append(env["PYTHONPATH"])
            env["PYTHONPATH"] = os.pathsep.join(parts)
            proc = subprocess.run(
                [sys.executable, "-m", "pytest", "-m", args.marker, "-q"],
                cwd=repo_root, env=env,
            )
            if proc.returncode != 0:
                restore_committed(committed_dir, tracked, repo_root)
                print(
                    f"benchmark run failed (exit {proc.returncode}); "
                    "committed baselines restored",
                    file=sys.stderr,
                )
                return 1
        return rebaseline(
            repo_root, committed_dir, requested, tracked, new,
            threshold=args.threshold, ratios_only=not args.all_metrics,
        )


if __name__ == "__main__":
    raise SystemExit(main())
