"""Micro-benchmarks of the functional engine's hot paths (real file I/O).

These complement the figure benches: they measure the functional engine's
update phase and the vectorized CPU Adam on small state, demonstrating that
the library's own kernels (not only the simulator) are exercised end to end.
"""

import numpy as np
import pytest

from repro.core.config import MLPOffloadConfig, TierConfig
from repro.core.engine import MLPOffloadEngine
from repro.train.adam import AdamConfig, AdamState, adam_update
from repro.train.sharding import build_shard_layout, flat_views

TOTAL = 200_000
SUBGROUP = 25_000


@pytest.fixture
def engine(tmp_path):
    config = MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(tmp_path / "nvme")),
            TierConfig("pfs", str(tmp_path / "pfs")),
        ),
        subgroup_size=SUBGROUP,
        host_cache_bytes=3 * SUBGROUP * 12,
        adam=AdamConfig(lr=1e-3),
    )
    layout = build_shard_layout(TOTAL, num_ranks=1, subgroup_size=SUBGROUP)
    engine = MLPOffloadEngine(config, layout, rank=0)
    rng = np.random.default_rng(0)
    engine.initialize(rng.standard_normal(TOTAL).astype(np.float32))
    yield engine
    engine.close()


def test_functional_update_phase(benchmark, engine):
    rng = np.random.default_rng(1)
    views = flat_views(None, engine.layout, 0)
    fp16 = np.zeros(TOTAL, dtype=np.float16)

    def one_iteration():
        for index, view in views.items():
            engine.on_backward_gradient(
                index, rng.standard_normal(view.stop - view.start).astype(np.float16)
            )
        engine.on_microbatch_complete()
        return engine.run_update(fp16)

    report = benchmark(one_iteration)
    assert report.stats.subgroups_processed == len(engine.subgroups)
    assert report.stats.params_updated == TOTAL


def test_vectorized_cpu_adam(benchmark):
    rng = np.random.default_rng(2)
    state = AdamState.zeros(1_000_000, init=rng.standard_normal(1_000_000).astype(np.float32))
    grad = rng.standard_normal(1_000_000).astype(np.float32)
    config = AdamConfig()

    benchmark(adam_update, state, grad, config)
    assert np.isfinite(state.params).all()
