"""Figure 5: effective per-subgroup read/write throughput under concurrency (40B)."""

from repro.bench import experiments


def test_fig05_subgroup_throughput(benchmark, show):
    result = benchmark(experiments.fig5_subgroup_throughput)
    show(result)
    summary = result.row_for(subgroup=-1)
    # Paper (Testbed-1, 40B, NVMe offload): mean read 3.68 GB/s, write 1.44 GB/s;
    # the shape requirement is that the per-subgroup write throughput is the
    # bottleneck and both are well below the device peak.
    assert summary["read_gbps"] > summary["write_gbps"]
    assert summary["read_gbps"] < 6.9
    assert summary["write_gbps"] < 5.3
    per_subgroup = [row for row in result.rows if row["subgroup"] >= 0]
    assert len(per_subgroup) >= 50  # one point per subgroup of the 40B model
