"""Checkpoint overhead benchmark: async overlap vs synchronous stall.

The `repro.ckpt` design claim: because the authoritative FP32 optimizer
state already lives on the storage tiers, a checkpoint costs little more
than a manifest plus the dirty residue — tier-resident subgroups are
hard-linked (no payload movement) and the staged residue drains overlapped
with the next iteration.  This benchmark pins that claim against a
no-checkpoint baseline and two synchronous contrasts (the lazy snapshot with
a blocking commit, and the classic read-everything copy-out checkpoint), and
verifies that every committed version restores to bitwise-identical state.

Marked ``perf_smoke``; each run refreshes ``BENCH_checkpoint.json`` at the
repository root with the per-step trajectories and overhead percentages.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import checkpoint_overhead_comparison
from repro.bench.harness import trajectory_payload

#: Trajectory file consumed by later PRs to compare checkpoint overhead.
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_checkpoint.json"


@pytest.mark.perf_smoke
def test_async_checkpoint_overhead_under_ten_percent(tmp_path, show):
    result = checkpoint_overhead_comparison(workdir=tmp_path)
    show(result)

    check = result.row_for(series="check")
    assert check["results_identical"], "checkpointing perturbed the training trajectory"
    assert check["restart_bitwise"], "a committed version failed bitwise restart"
    assert check["versions_restored"] >= 2, "expected several committed versions to restore"

    overhead = {
        row["mode"]: row["overhead_pct"]
        for row in result.rows
        if row.get("series") == "summary" and row["mode"] != "none"
    }
    assert overhead["async"] < 10.0, (
        f"async checkpointing added {overhead['async']:.1f}% per step (>10% budget)"
    )
    # The async overlap must beat the synchronous stall of the same snapshot,
    # and the classic copy-out checkpoint must cost the most.
    assert overhead["async"] < overhead["sync-lazy"]
    assert overhead["sync-full"] > overhead["sync-lazy"]

    blobs = result.row_for(series="blobs", mode="async")
    assert blobs["linked_blobs"] > 0, "no tier-resident blobs were hard-linked"
    assert blobs["staged_bytes"] > 0, "no dirty residue was staged"
    full = result.row_for(series="blobs", mode="sync-full")
    assert full["staged_bytes"] > blobs["staged_bytes"], (
        "copy-out mode should stage every subgroup, the lazy snapshot only the residue"
    )

    restore_rows = [row for row in result.rows if row.get("series") == "restore"]
    assert restore_rows, "no restore latencies were recorded"
    TRAJECTORY_PATH.write_text(
        json.dumps(
            trajectory_payload(
                result,
                restore_latency_s={
                    f"v{row['version']}": row["restore_s"] for row in restore_rows
                },
                overhead_pct=overhead,
            ),
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
