"""Figure 8: update throughput (millions of parameters per second) vs model size."""

from repro.bench import experiments


def test_fig08_update_throughput(benchmark, show):
    result = benchmark(experiments.fig8_update_throughput)
    show(result)
    for model in ("40B", "52B", "70B", "100B", "120B"):
        baseline = result.row_for(model=model, engine="DeepSpeed ZeRO-3")
        ours = result.row_for(model=model, engine="MLP-Offload")
        ratio = ours["update_mparams_per_s"] / baseline["update_mparams_per_s"]
        # Paper: 1.8x-2.4x higher update throughput.
        assert 1.4 < ratio < 6.0
        # Offloaded updates are an order of magnitude below the ~8000 Mparams/s
        # CPU-resident rate: the bottleneck is I/O, not compute (§4.2).
        assert ours["update_mparams_per_s"] < 4000
    # Baseline throughput stays roughly flat across model sizes (paper: ~190-250).
    baseline_series = [
        result.row_for(model=m, engine="DeepSpeed ZeRO-3")["update_mparams_per_s"]
        for m in ("40B", "52B", "70B", "100B", "120B")
    ]
    assert max(baseline_series) / min(baseline_series) < 2.0
