"""I/O fault resilience benchmark: clean vs transient faults vs one dead path.

The fault-tolerance machinery must be cheap when faults are transient
(retries absorb seeded EIO/short-read bursts at ~1x clean throughput,
bitwise-identical results) and graceful when a path dies outright (the run
completes single-path at the survivor's bandwidth share, never a crash or
a wedge).  Both headline ratios are higher-is-better and gated by
``check_trajectory.py`` against ``BENCH_io_faults.json``.

Marked ``perf_smoke`` so that ``pytest -m perf_smoke`` gives future PRs a
fast perf trajectory; each run refreshes ``BENCH_io_faults.json`` at the
repository root.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import io_fault_resilience_comparison

#: Trajectory file consumed by later PRs to compare fault-path performance.
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_io_faults.json"


@pytest.mark.perf_smoke
def test_fault_tolerance_is_cheap_and_degrades_gracefully(tmp_path, show):
    result = io_fault_resilience_comparison(workdir=tmp_path)
    show(result)

    check = result.row_for(series="check")
    assert check["bitwise_identical"], "faulted runs diverged from the clean run"
    assert check["transient_injected"] >= 4, "the transient fault plan never fired"
    assert check["transient_retries"] >= 1, "no retry was recorded for injected faults"
    assert check["degraded_failovers"] >= 1, "the dead path never triggered a failover"
    assert check["pfs_quarantined"], "the dead path was never quarantined"

    transparency = result.row_for(series="summary", engine="retry_transparency")["value"]
    degraded = result.row_for(series="summary", engine="degraded_throughput")["value"]
    assert transparency > 0.8, (
        f"transient retries cost {1 - transparency:.0%} of clean throughput"
    )
    # Two paths at 40+25 MB/s: losing pfs bounds the survivor at ~62% of
    # clean; well below that means the degraded path is paying for timeouts.
    assert degraded > 0.35, f"degraded run retains only {degraded:.0%} of clean throughput"

    # The quarantined path moved no payload: writes all failed over, reads
    # never touched it.
    dead_path = result.row_for(series="path_bytes", engine="degraded", tier="pfs")
    assert dead_path["bytes_written"] == 0
    assert dead_path["bytes_read"] == 0
    survivor = result.row_for(series="path_bytes", engine="degraded", tier="nvme")
    assert survivor["bytes_written"] > 0 and survivor["bytes_read"] > 0

    trajectory = {
        "experiment": result.experiment,
        "description": result.description,
        "retry_transparency_ratio": transparency,
        "degraded_throughput_ratio": degraded,
        "median_update_s": {
            label: result.row_for(series="summary", engine=label)["median_update_s"]
            for label in ("clean", "transient", "degraded")
        },
        "path_bytes": {
            f"{row['engine']}/{row['tier']}": {
                "bytes_read": row["bytes_read"],
                "bytes_written": row["bytes_written"],
            }
            for row in result.rows
            if row.get("series") == "path_bytes"
        },
        # These runs sleep for real on throttled tiers; the ratio of medians
        # still moves a few points run-to-run on a loaded machine.
        "noise_points": {
            "retry_transparency_ratio": 12.0,
            "degraded_throughput_ratio": 12.0,
        },
        "trajectory": [row for row in result.rows if row.get("series") == "trajectory"],
    }
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
