"""Figure 14: progressive-activation ablation on node-local NVMe only."""

from repro.bench import experiments

LADDER = ("DeepSpeed ZeRO-3", "Enable Caching", "Skip Gradients", "Process Atomic R/W")


def test_fig14_ablation_nvme(benchmark, show):
    result = benchmark(experiments.fig14_ablation_nvme)
    show(result)
    for model in ("40B", "70B", "100B"):
        series = [result.row_for(model=model, engine=label)["iteration_s"] for label in LADDER]
        # Each design principle contributes: iteration time is monotone
        # non-increasing along the ladder (paper Figure 14).
        assert all(later <= earlier * 1.001 for earlier, later in zip(series, series[1:]))
        # Without any PFS the full ladder is already a substantial win
        # (paper: up to 1.6x).
        assert series[0] / series[-1] > 1.3
