"""Figure 4: raw SSD vs PFS bandwidth and per-process latency under concurrency."""

from repro.bench import experiments


def test_fig04_tier_bandwidth(benchmark, show):
    result = benchmark(experiments.fig4_tier_bandwidth)
    show(result)
    nvme_1 = result.row_for(tier="nvme", processes=1)
    nvme_4 = result.row_for(tier="nvme", processes=4)
    pfs_1 = result.row_for(tier="pfs", processes=1)
    # Table 1 shape: the local NVMe out-reads the VAST PFS on Testbed-1.
    assert nvme_1["read_gbps"] > pfs_1["read_gbps"]
    # Aggregate throughput stays flat while per-process latency grows ~linearly.
    assert nvme_4["read_gbps"] == nvme_1["read_gbps"]
    assert nvme_4["read_latency_s_per_gb"] > 3.0 * nvme_1["read_latency_s_per_gb"]
    # §3.2: FP16→FP32 CPU conversion is an order of magnitude faster than any tier.
    cpu = result.row_for(tier="cpu_fp16_to_fp32", processes=1)
    assert cpu["read_gbps"] > 5.0 * nvme_1["read_gbps"]
