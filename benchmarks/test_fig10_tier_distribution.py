"""Figure 10: distribution of optimizer state across host memory, NVMe and PFS."""

from repro.bench import experiments


def test_fig10_tier_distribution(benchmark, show):
    result = benchmark(experiments.fig10_tier_distribution)
    show(result)
    for model in ("40B", "52B", "70B", "100B", "120B"):
        row = result.row_for(model=model)
        # All three locations hold a non-trivial share.
        assert row["host_gb"] > 0
        assert row["nvme_gb"] > 0
        assert row["pfs_gb"] > 0
        # Performance-model split: NVMe holds more than the PFS, roughly the
        # 2:1 ratio implied by Table 1's bandwidths (paper Figure 10).
        ratio = row["nvme_gb"] / row["pfs_gb"]
        assert 1.1 < ratio < 3.0
        assert abs(row["host_pct"] + row["nvme_pct"] + row["pfs_pct"] - 100.0) < 1.0
    # The host-cached *fraction* shrinks as the model grows.
    assert (
        result.row_for(model="120B")["host_pct"] < result.row_for(model="40B")["host_pct"]
    )
    # Absolute host-cached bytes for the 40B model are in the low hundreds of GB
    # (paper: 145 GB of 659 GB).
    assert 50 < result.row_for(model="40B")["host_gb"] < 350
