"""Figure 12: job-level update throughput under weak scaling."""

from repro.bench import experiments


def test_fig12_weak_scaling_throughput(benchmark, show):
    result = benchmark(experiments.fig12_weak_scaling_throughput)
    show(result)
    configs = ("40B[4]", "70B[8]", "100B[12]", "130B[16]", "280B[32]")
    baseline_series = [
        result.row_for(config=c, engine="DeepSpeed ZeRO-3")["update_mparams_per_s"] for c in configs
    ]
    ours_series = [
        result.row_for(config=c, engine="MLP-Offload")["update_mparams_per_s"] for c in configs
    ]
    # Update throughput grows with resources for both engines (paper Figure 12).
    assert baseline_series[-1] > 2.0 * baseline_series[0]
    assert ours_series[-1] > 2.0 * ours_series[0]
    # MLP-Offload sustains a higher throughput at every scale.
    for ours, baseline in zip(ours_series, baseline_series):
        assert ours > 1.4 * baseline
