"""Figure 13: gradient accumulation (equivalent batch sizes 32-512) for the 40B model.

Ported to the sweep harness: the ``batch_size`` scenario matrix runs through
:class:`~repro.sweep.runner.SweepRunner` and the figure rows are rebuilt with
:func:`~repro.sweep.results.figure_result`, pinned row-for-row against the
pre-port loop (:func:`repro.bench.experiments.fig13_gradient_accumulation`).
"""

from repro.bench import experiments
from repro.sweep import SweepRunner, figure_result, matrix_by_name


def test_fig13_gradient_accumulation(benchmark, show, tmp_path):
    matrix = matrix_by_name("batch_size")

    def sweep():
        runner = SweepRunner(matrix, repeats=1, sweep_dir=tmp_path / "cells")
        return figure_result(matrix, runner.run().records)

    result = benchmark(sweep)
    show(result)
    # The sweep port reproduces the pre-port figure exactly, field for field.
    assert result.rows == experiments.fig13_gradient_accumulation().rows
    batches = (32, 128, 256, 512)
    for batch in batches:
        baseline = result.row_for(batch_size=batch, engine="DeepSpeed ZeRO-3")
        ours = result.row_for(batch_size=batch, engine="MLP-Offload")
        # Paper: MLP-Offload remains at least ~40% faster even when
        # accumulation amortizes the update phase.
        assert baseline["iteration_s"] / ours["iteration_s"] > 1.4
    # Iteration time grows with the equivalent batch size (more fwd/bwd passes).
    ours_series = [
        result.row_for(batch_size=b, engine="MLP-Offload")["iteration_s"] for b in batches
    ]
    assert ours_series == sorted(ours_series)
    # The relative advantage shrinks as accumulation grows (update amortized).
    gain_small = (
        result.row_for(batch_size=32, engine="DeepSpeed ZeRO-3")["iteration_s"]
        / result.row_for(batch_size=32, engine="MLP-Offload")["iteration_s"]
    )
    gain_large = (
        result.row_for(batch_size=512, engine="DeepSpeed ZeRO-3")["iteration_s"]
        / result.row_for(batch_size=512, engine="MLP-Offload")["iteration_s"]
    )
    assert gain_large < gain_small
