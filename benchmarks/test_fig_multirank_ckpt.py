"""Multi-rank checkpoint coordination benchmark: global commit overhead.

The `repro.ckpt.coordinator` design claim: promoting per-rank manifests to a
job-wide global version costs a rename per rank plus one small record write
per version — all on drain threads — so coordinated checkpointing stays
within a few percent of independent per-worker commits, while a torn commit
(ranks dying mid-checkpoint) always restarts from one consistent global cut.

Marked ``perf_smoke``; each run refreshes ``BENCH_multirank_ckpt.json`` at
the repository root with the two-rank step trajectories, the coordination
overhead and the torn-commit recovery latencies.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import multirank_checkpoint_comparison
from repro.bench.harness import trajectory_payload

#: Trajectory file consumed by later PRs to compare coordination overhead.
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_multirank_ckpt.json"


@pytest.mark.perf_smoke
def test_global_commit_overhead_under_ten_percent(tmp_path, show):
    result = multirank_checkpoint_comparison(workdir=tmp_path)
    show(result)

    check = result.row_for(series="check")
    assert check["results_identical"], "coordination perturbed the training trajectory"
    assert check["torn_never_promoted"], "an incomplete version was promoted to global"
    assert check["restart_bitwise"], (
        "a rank failed to restart bitwise-identically from the newest global version"
    )
    assert check["global_versions"] >= 2, "expected several promoted global versions"

    summary = result.row_for(series="summary", mode="coordinated")
    assert summary["overhead_pct"] < 10.0, (
        f"global commit added {summary['overhead_pct']:.1f}% per step (>10% budget)"
    )

    restore_rows = [row for row in result.rows if row.get("series") == "restore"]
    assert len(restore_rows) == 2, "expected one restore row per rank"
    assert len({row["global_version"] for row in restore_rows}) == 1, (
        "ranks restarted from different versions — a mixed cut"
    )

    TRAJECTORY_PATH.write_text(
        json.dumps(
            trajectory_payload(
                result,
                restore_latency_s={
                    f"rank{row['rank']}": row["restore_s"] for row in restore_rows
                },
                overhead_pct={"coordinated": summary["overhead_pct"]},
                torn_recovery_s=check["torn_recovery_s"],
            ),
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
