"""Figure 1: model growth vs GPU memory growth (motivation)."""

from repro.bench import experiments


def test_fig01_memory_wall(benchmark, show):
    result = benchmark(experiments.fig1_memory_wall)
    show(result)
    model_growth = result.row_for(series="growth", name="model_per_2yr")["value"]
    gpu_growth = result.row_for(series="growth", name="gpu_per_2yr")["value"]
    # Shape: model sizes grow orders of magnitude faster than GPU memory.
    assert model_growth > 20.0
    assert gpu_growth < 4.0
    assert model_growth / gpu_growth > 10.0
