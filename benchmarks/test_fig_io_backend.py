"""Pluggable I/O backend benchmark: bitwise identity + codec compression.

Every available raw-I/O backend (``thread`` always, ``odirect``/``io_uring``
where the kernel and filesystem cooperate) must produce bitwise-identical
training state and byte-for-byte identical tier blob files — the gated
``bitwise_identity_ratio`` headline is 1.0 or the backend layer is broken.
The codec side frames a representative checkpoint payload through every
registered chunk codec; the always-available
``shuffle_deflate_compression_ratio`` is the second gated headline, while
lz4/zstd ratios ride along wherever those packages are importable.

Backend wall-clock numbers are recorded but deliberately *ungated*: which
raw path wins is machine- and filesystem-specific, so the trajectory gate
must not encode one machine's verdict.

Marked ``perf_smoke``; each run refreshes ``BENCH_io_backend.json`` at the
repository root.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import io_backend_codec_comparison

#: Trajectory file consumed by later PRs to compare backend/codec behaviour.
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_io_backend.json"


@pytest.mark.perf_smoke
def test_backends_are_bitwise_identical_and_codecs_compress(tmp_path, show):
    result = io_backend_codec_comparison(workdir=tmp_path)
    show(result)

    check = result.row_for(series="check")
    assert check["bitwise_identity_ratio"] == 1.0, (
        "a raw-I/O backend produced different training state or blob bytes"
    )
    backends = check["backends"].split(",")
    assert "thread" in backends, "the fallback thread backend must always be available"

    codec_rows = [row for row in result.rows if row.get("series") == "codec"]
    ratios = {row["codec"]: row["compression_ratio"] for row in codec_rows}
    assert "shuffle-deflate" in ratios, "the built-in codec must always be measured"
    # Mantissa-quantized float32 noise: the shuffled zero plane alone
    # guarantees real compression on any general-purpose codec.
    for name, ratio in ratios.items():
        assert ratio > 1.2, f"codec {name} failed to compress the quantized payload ({ratio:.2f}x)"

    trajectory = {
        "experiment": result.experiment,
        "description": result.description,
        "backends": backends,
        # Gated, machine-independent headlines.
        "bitwise_identity_ratio": check["bitwise_identity_ratio"],
        "shuffle_deflate_compression_ratio": ratios["shuffle-deflate"],
        # Ungated context: raw medians and optional-codec ratios (only
        # present where the packages are installed / the kernel cooperates).
        "median_update_s": {
            row["engine"]: row["median_update_s"]
            for row in result.rows
            if row.get("series") == "summary"
        },
        "codec_compression": ratios,
        "trajectory": [row for row in result.rows if row.get("series") == "trajectory"],
    }
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
