"""Figure 15: ablation with the PFS active (multi-path I/O)."""

from repro.bench import experiments

LADDER = ("Multi-Path (with caching)", "MP Skip Grads", "Our Approach")


def test_fig15_ablation_multipath(benchmark, show):
    nvme_result = experiments.fig14_ablation_nvme()
    result = benchmark(experiments.fig15_ablation_multipath)
    show(result)
    for model in ("40B", "70B", "100B"):
        series = [result.row_for(model=model, engine=label)["iteration_s"] for label in LADDER]
        # The remaining principles still help on top of multi-path I/O.
        assert all(later <= earlier * 1.001 for earlier, later in zip(series, series[1:]))
        baseline = nvme_result.row_for(model=model, engine="DeepSpeed ZeRO-3")["iteration_s"]
        nvme_only_best = nvme_result.row_for(model=model, engine="Process Atomic R/W")["iteration_s"]
        # Multi-path adds a further speedup over the best NVMe-only variant
        # (paper: another ~1.6x) ...
        assert series[-1] < nvme_only_best
        # ... reaching the paper's headline ~2.5x end-to-end improvement
        # (we accept anything clearly above 2x).
        assert baseline / series[-1] > 2.0
