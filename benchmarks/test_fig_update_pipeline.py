"""Update-phase pipelining benchmark: sequential vs prefetch/flush overlap.

The pipelined update phase (windowed prefetch + lazy async flush) must beat
the single-buffered Algorithm-1 baseline on a throttled-tier workload while
producing bitwise-identical results — the functional counterpart of the
paper's claim that overlapping tier I/O with the CPU Adam compute recovers
the throughput lost to storage.  The tiers serialize concurrent transfers
per direction (duplex device timelines), so the asserted speedup measures
real overlap, not bandwidth multiplication.

Marked ``perf_smoke`` so that ``pytest -m perf_smoke`` gives future PRs a
fast (<30 s) perf trajectory; each run refreshes ``BENCH_update_pipeline.json``
at the repository root with the measured per-iteration wall times.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import update_pipeline_comparison

#: Trajectory file consumed by later PRs to compare update-phase performance.
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_update_pipeline.json"


@pytest.mark.perf_smoke
def test_pipelined_update_beats_sequential(tmp_path, show):
    result = update_pipeline_comparison(workdir=tmp_path)
    show(result)

    check = result.row_for(series="check")
    assert check["bitwise_identical"], "pipelined results diverged from sequential"

    mean_seq = result.row_for(series="summary", engine="sequential")["mean_update_s"]
    mean_pipe = result.row_for(series="summary", engine="pipelined")["mean_update_s"]
    speedup = result.row_for(series="summary", engine="speedup")["value"]
    assert mean_pipe < mean_seq, "pipelined update phase is not faster than sequential"
    assert speedup > 1.2, f"pipelined speedup {speedup:.2f}x below the 1.2x floor"

    pool = result.row_for(series="pool")
    # Warm buffers dominate: the I/O path recycles pooled arrays instead of
    # allocating fresh ones (the zero-copy discipline of the tentpole).
    assert pool["hit_rate"] > 0.5, f"buffer-pool hit rate {pool['hit_rate']:.2f} too low"

    trajectory = {
        "experiment": result.experiment,
        "description": result.description,
        "speedup": speedup,
        "mean_update_s": {"sequential": mean_seq, "pipelined": mean_pipe},
        "pool": {k: pool[k] for k in ("hits", "misses", "hit_rate")},
        "trajectory": [row for row in result.rows if row.get("series") == "trajectory"],
    }
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
