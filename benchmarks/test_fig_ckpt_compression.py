"""Compressed delta checkpointing + streaming hard-link restore benchmark.

The PR-4 claims, pinned: byte-shuffle + LZ4-class block compression cuts the
bytes a checkpoint writes by >= 2x on the standard (sparse-gradient,
mixed-precision) workload at <= 10% added median step time over the raw
async writer; the null codec isolates framing cost (~zero); and the
streaming restore — hard links for clean subgroups, lazy streamed residue —
restores a mostly-clean checkpoint >= 5x faster than the eager read-and-
re-flush restore, with resume bitwise-identical in both modes.

Marked ``perf_smoke``; each run refreshes ``BENCH_ckpt_compression.json`` at
the repository root with the byte accounting, per-step trajectories and
restore latencies.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import checkpoint_compression_comparison
from repro.bench.harness import trajectory_payload

#: Trajectory file consumed by later PRs to compare checkpoint compression.
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_ckpt_compression.json"


@pytest.mark.perf_smoke
def test_compression_halves_bytes_and_hardlink_restore_is_fast(tmp_path, show):
    result = checkpoint_compression_comparison(workdir=tmp_path)
    show(result)

    check = result.row_for(series="check")
    assert check["codecs_identical"], "a codec perturbed the training trajectory"
    assert check["resume_bitwise_eager"], "eager restore diverged from the reference"
    assert check["resume_bitwise_streaming"], "streaming restore diverged from the reference"

    bytes_rows = {row["codec"]: row for row in result.rows if row.get("series") == "bytes"}
    shuffle_ratio = bytes_rows["shuffle-deflate"]["compression_ratio"]
    assert shuffle_ratio >= 2.0, (
        f"shuffle+deflate compressed checkpoint bytes only {shuffle_ratio:.2f}x (< 2x)"
    )
    # The null codec measures pure framing overhead: within a percent of raw.
    assert 0.98 <= bytes_rows["null"]["compression_ratio"] <= 1.0
    assert bytes_rows["raw"]["compression_ratio"] == 1.0
    # Identical raw payloads across codecs (only the encoding differs).
    assert bytes_rows["raw"]["staged_bytes"] == bytes_rows["shuffle-deflate"]["staged_bytes"]

    steps = {row["codec"]: row for row in result.rows if row.get("series") == "steps"}
    assert steps["shuffle-deflate"]["overhead_vs_raw_pct"] <= 10.0, (
        "compressing on the drain thread cost more than the 10% step budget: "
        f"{steps['shuffle-deflate']['overhead_vs_raw_pct']:.1f}%"
    )

    restore = {row["mode"]: row for row in result.rows if row.get("series") == "restore"}
    assert restore["streaming"]["linked_subgroups"] > 0, "no subgroup was hard-linked back"
    assert restore["streaming"]["lazy_subgroups"] > 0, "no residue was restored lazily"
    assert check["restore_speedup"] >= 5.0, (
        f"hard-link/lazy restore only {check['restore_speedup']:.1f}x faster than eager (< 5x)"
    )

    TRAJECTORY_PATH.write_text(
        json.dumps(
            trajectory_payload(
                result,
                compression_ratio=shuffle_ratio,
                restore_latency_s={
                    mode: row["restore_s"] for mode, row in restore.items()
                },
                restore_speedup=check["restore_speedup"],
                overhead_vs_raw_pct={
                    codec: row["overhead_vs_raw_pct"] for codec, row in steps.items()
                },
            ),
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
