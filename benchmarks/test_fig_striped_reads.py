"""Striped multi-path reads benchmark: single-path vs striped subgroup fetches.

Striping a subgroup's fields across NVMe and PFS must beat fetching each
field whole from a single tier on a read-bound throttled-tier workload,
while producing bitwise-identical parameters and optimizer state — the
functional counterpart of the paper's claim that the *aggregate* tier
bandwidth, not any single device, bounds the offloaded update phase.  Each
throttle serializes concurrent transfers per direction on its own device
timeline, so the asserted speedup measures genuine multi-path aggregation,
not bandwidth multiplication.

Marked ``perf_smoke`` so that ``pytest -m perf_smoke`` gives future PRs a
fast perf trajectory; each run refreshes ``BENCH_striped_reads.json`` at the
repository root with the measured per-iteration wall times and the per-path
byte accounting.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import striped_read_comparison

#: Trajectory file consumed by later PRs to compare striped-read performance.
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_striped_reads.json"


@pytest.mark.perf_smoke
def test_striped_reads_beat_single_path(tmp_path, show):
    result = striped_read_comparison(workdir=tmp_path)
    show(result)

    check = result.row_for(series="check")
    assert check["bitwise_identical"], "striped results diverged from single-path"

    mean_single = result.row_for(series="summary", engine="single-path")["mean_update_s"]
    mean_striped = result.row_for(series="summary", engine="striped")["mean_update_s"]
    speedup = result.row_for(series="summary", engine="speedup")["value"]
    assert mean_striped < mean_single, "striped reads are not faster than single-path"
    assert speedup > 1.15, f"striped speedup {speedup:.2f}x below the 1.15x floor"

    bandwidth = result.row_for(series="summary", engine="fetch_bandwidth")
    assert bandwidth["striped"] > bandwidth["single_path"], (
        "striped aggregate fetch bandwidth does not exceed the single-path baseline"
    )

    # Every striped fetch must engage both paths: each tier serves a
    # non-trivial share of the read bytes (bandwidth-proportional split).
    path_rows = {
        row["tier"]: row
        for row in result.rows
        if row.get("series") == "path_bytes" and row.get("engine") == "striped"
    }
    total_read = sum(row["bytes_read"] for row in path_rows.values())
    assert total_read > 0
    for tier, row in path_rows.items():
        share = row["bytes_read"] / total_read
        assert share > 0.2, f"tier {tier} served only {share:.0%} of striped read bytes"

    trajectory = {
        "experiment": result.experiment,
        "description": result.description,
        "speedup": speedup,
        "mean_update_s": {"single_path": mean_single, "striped": mean_striped},
        "fetch_bandwidth": {
            "single_path": bandwidth["single_path"],
            "striped": bandwidth["striped"],
        },
        "path_bytes": {
            f"{row['engine']}/{row['tier']}": {
                "bytes_read": row["bytes_read"],
                "bytes_written": row["bytes_written"],
            }
            for row in result.rows
            if row.get("series") == "path_bytes"
        },
        "trajectory": [row for row in result.rows if row.get("series") == "trajectory"],
    }
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
