"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper through
:mod:`repro.bench.experiments`, prints the measured rows next to the paper's
headline numbers and asserts the qualitative shape (who wins, by roughly what
factor, where crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentResult, format_table


def report(result: ExperimentResult) -> None:
    """Print an experiment's rows and notes underneath the benchmark output."""
    print()
    print(format_table(result.rows, title=f"[{result.experiment}] {result.description}"))
    for note in result.notes:
        print(f"  note: {note}")


@pytest.fixture
def show():
    return report
