"""Figure 11 (and §4.4 cost-effectiveness): weak-scaling iteration times on Testbed-2.

Figure 11 is ported to the sweep harness: the rows come from a
``weak_scaling`` :class:`~repro.sweep.matrix.ScenarioMatrix` run through
:class:`~repro.sweep.runner.SweepRunner` and rebuilt with
:func:`~repro.sweep.results.figure_result`.  The port is pinned by an exact
row-for-row equality assertion against the pre-port hand-wired loop
(:func:`repro.bench.experiments.fig11_weak_scaling_time`), so the sweep path
cannot drift from the original figure.
"""

from repro.bench import experiments
from repro.sweep import SweepRunner, figure_result, matrix_by_name


def test_fig11_weak_scaling_time(benchmark, show, tmp_path):
    matrix = matrix_by_name("weak_scaling")

    def sweep():
        runner = SweepRunner(matrix, repeats=1, sweep_dir=tmp_path / "cells")
        return figure_result(matrix, runner.run().records)

    result = benchmark(sweep)
    show(result)
    # The sweep port reproduces the pre-port figure exactly, field for field.
    assert result.rows == experiments.fig11_weak_scaling_time().rows
    configs = ("40B[4]", "70B[8]", "100B[12]", "130B[16]", "280B[32]")
    for config in configs:
        baseline = result.row_for(config=config, engine="DeepSpeed ZeRO-3")
        ours = result.row_for(config=config, engine="MLP-Offload")
        speedup = baseline["iteration_s"] / ours["iteration_s"]
        # Paper: MLP-Offload stays ~2x faster even at 32 GPUs / 280B.
        assert speedup > 1.5
        # I/O (the update phase) still dominates the baseline at scale.
        assert baseline["update_s"] / baseline["iteration_s"] > 0.6
    # Baseline iteration time stays roughly flat / slightly decreasing with
    # scale because per-node optimizer state shrinks (paper: 242 -> 156 s).
    base_first = result.row_for(config="40B[4]", engine="DeepSpeed ZeRO-3")["iteration_s"]
    base_last = result.row_for(config="280B[32]", engine="DeepSpeed ZeRO-3")["iteration_s"]
    assert base_last < 1.2 * base_first


def test_cost_effectiveness_70b(benchmark, show):
    result = benchmark(experiments.cost_effectiveness_70b)
    show(result)
    ours = result.row_for(engine="MLP-Offload")
    baseline = result.row_for(engine="DeepSpeed ZeRO-3")
    # Offloaded training uses 10x fewer GPUs than the 80-GPU GPU-only run.
    assert ours["gpu_reduction"] == 10.0
    # MLP-Offload is meaningfully less slowed-down than ZeRO-3, i.e. more
    # cost-effective (paper: 4.8x vs 7x slowdown -> ~2x cost effectiveness).
    assert ours["slowdown_vs_gpu_only"] < baseline["slowdown_vs_gpu_only"]
    assert ours["cost_effectiveness"] > 1.0
