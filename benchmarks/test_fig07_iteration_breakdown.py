"""Figure 7: iteration-time breakdown vs model size (single Testbed-1 node)."""

from repro.bench import experiments


def test_fig07_iteration_breakdown(benchmark, show):
    result = benchmark(experiments.fig7_iteration_breakdown)
    show(result)
    for model in ("40B", "52B", "70B", "100B", "120B"):
        baseline = result.row_for(model=model, engine="DeepSpeed ZeRO-3")
        ours = result.row_for(model=model, engine="MLP-Offload")
        speedup = baseline["iteration_s"] / ours["iteration_s"]
        # Paper: iterations are 2.1x-2.7x faster; accept a generous band that
        # still demands a clear, paper-scale win.
        assert 1.5 < speedup < 6.0
        # The update phase dominates the baseline iteration.
        assert baseline["update_s"] / baseline["iteration_s"] > 0.7
        # MLP-Offload reduces the backward pass to a negligible level
        # (paper: ~13.5x faster backward).
        assert baseline["backward_s"] / ours["backward_s"] > 5.0
        # Forward passes are tiny for both engines.
        assert baseline["forward_s"] < 0.05 * baseline["iteration_s"]
    # Iteration time grows with the model size for both engines
    # (modulo the 52B/40B and 120B/100B geometry exceptions noted in the paper).
    base_40 = result.row_for(model="40B", engine="DeepSpeed ZeRO-3")["iteration_s"]
    base_120 = result.row_for(model="120B", engine="DeepSpeed ZeRO-3")["iteration_s"]
    assert base_120 > base_40
