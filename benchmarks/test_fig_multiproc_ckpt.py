"""Real-process checkpoint coordination benchmark: processes, kills, elastic.

The `repro.ckpt.procrank` harness claim: the global commit protocol costs
the same whether ranks are threads or real OS processes — leases, the
election lock and torn-commit discard all work across process boundaries —
and a SIGKILLed job restarts bitwise from one consistent global cut, even
when it resumes under a *different* world size.

Marked ``perf_smoke``; each run refreshes ``BENCH_multiproc_ckpt.json`` at
the repository root with the step trajectories of both worlds, the
real-process overhead and the kill-recovery / elastic-restore latencies.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import multiproc_checkpoint_comparison
from repro.bench.harness import trajectory_payload

#: Trajectory file consumed by later PRs to track real-process coordination.
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_multiproc_ckpt.json"


@pytest.mark.perf_smoke
def test_real_process_ranks_recover_bitwise(tmp_path, show):
    result = multiproc_checkpoint_comparison(workdir=tmp_path)
    show(result)

    check = result.row_for(series="check")
    assert check["threaded_identical"], "threaded world diverged from the reference"
    assert check["real_identical"], "real-process world diverged from the reference"
    assert check["kill_bitwise"], (
        "the SIGKILLed job did not restart bitwise from the global cut"
    )
    assert check["elastic_bitwise"], (
        "the elastic 3->2 resume did not reproduce the reference state"
    )
    assert check["no_leaked_sentinels"], "leases or election locks leaked"

    recovery = {
        row["scenario"]: row for row in result.rows if row.get("series") == "recovery"
    }
    assert recovery["elastic"]["world_to"] < recovery["elastic"]["world_from"]

    summary = result.row_for(series="summary", mode="real_process")
    TRAJECTORY_PATH.write_text(
        json.dumps(
            trajectory_payload(
                result,
                overhead_pct={"real_process": summary["overhead_pct"]},
                restore_latency_s={
                    "kill_recovery": recovery["kill_recovery"]["recovery_s"],
                    "elastic": recovery["elastic"]["recovery_s"],
                },
                # The threaded-vs-real comparison's measured run-to-run
                # noise (half-range of the per-wave overheads): the
                # trajectory gate widens this metric's budget by the
                # committed value instead of flapping on scheduler noise.
                noise_points={
                    "overhead_pct:real_process": summary["overhead_noise_points"],
                },
            ),
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
