"""Checkpoint-registry benchmark: dedup ratio, push overhead, cold restore.

The registry's economics claim: pushing every committed checkpoint to the
shared service costs a bounded slice of step time (the drain does the HTTP
work; the step only waits for the commit), a second job with identical
state uploads almost nothing thanks to the CAS missing-set negotiation, and
a cold remote restore — empty local directory, everything over HTTP — is a
small constant factor over the local restore while staying bitwise exact.

Marked ``perf_smoke``; each run refreshes ``BENCH_registry.json`` at the
repository root with the step trajectories, the dedup ratio and both
restore latencies, gated by ``benchmarks/check_trajectory.py``.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import registry_push_restore_comparison
from repro.bench.harness import trajectory_payload

#: Trajectory file consumed by later PRs to track registry cost regressions.
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_registry.json"


@pytest.mark.perf_smoke
def test_registry_dedup_overhead_and_cold_restore(tmp_path, show):
    result = registry_push_restore_comparison(workdir=tmp_path)
    show(result)

    summary = result.row_for(series="summary")
    assert summary["push_failures"] == 0, "a registry push failed during the benchmark"
    assert summary["cold_restore_bitwise"], "cold remote restore diverged from the pusher"
    # the dedup acceptance bound: the second identical job uploads <10% of
    # its blob bytes — the registry vouches for everything the first pushed
    assert summary["second_job_upload_pct"] < 10.0, summary
    assert summary["dedup_ratio"] > 0.9, summary

    restore = {row["mode"]: row for row in result.rows if row.get("series") == "restore"}
    assert restore["local"]["version"] == restore["remote_cold"]["version"]
    # cold restore does strictly more work (manifest + every blob over HTTP);
    # it must stay a small factor, not an order of magnitude, over local
    assert restore["remote_cold"]["seconds"] < max(
        restore["local"]["seconds"] * 50, 5.0
    ), restore

    TRAJECTORY_PATH.write_text(
        json.dumps(
            trajectory_payload(
                result,
                registry_dedup_ratio=summary["dedup_ratio"],
                registry_upload_pct={"second_job": summary["second_job_upload_pct"]},
                restore_latency_s={
                    "local": restore["local"]["seconds"],
                    "remote_cold": restore["remote_cold"]["seconds"],
                },
            ),
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
