"""DeepSpeed-ZeRO-3-style baseline offloading engine.

The baseline (Figure 6, top) differs from MLP-Offload in four ways:

1. it offloads exclusively to the node-local NVMe tier (no multi-path);
2. it processes subgroups in ascending ID order every iteration, so the host
   buffers thrash (§3.1);
3. it up-converts FP16 gradients to FP32 on the host during the backward
   pass and flushes them to storage, inflating both the backward pass and
   every update-phase fetch;
4. it applies no node-level concurrency control, so all workers of a node
   compete for the shared NVMe bandwidth.

All four are switches on :class:`~repro.core.config.MLPOffloadConfig`, so the
baseline engine is the shared functional engine with the switches off.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional

from repro.aio.locks import TierLockManager
from repro.core.config import MLPOffloadConfig
from repro.core.engine import OffloadEngineBase
from repro.train.sharding import ShardLayout


def zero3_config(config: MLPOffloadConfig) -> MLPOffloadConfig:
    """Derive the baseline configuration from an MLP-Offload configuration.

    Keeps the storage paths, subgroup size, Adam hyper-parameters and host
    budget, but restricts offloading to the primary (NVMe) tier and disables
    every MLP-Offload design principle.
    """
    return replace(
        config,
        tiers=(config.primary_tier,),
        enable_multipath=False,
        enable_tier_locks=False,
        enable_cache_reorder=False,
        enable_delayed_grad_conversion=False,
        # The baseline's backward-phase FP32 gradient flush is synchronous;
        # the async drain is an MLP-Offload-side improvement.
        pipeline_backward_flush=False,
    )


class ZeRO3OffloadEngine(OffloadEngineBase):
    """The DeepSpeed ZeRO-3 + DeepNVMe baseline as a functional engine.

    Construct it with the *same* :class:`MLPOffloadConfig` used for the
    MLP-Offload engine; the constructor derives the baseline variant of the
    configuration internally so comparisons always share storage paths,
    subgroup size and optimizer hyper-parameters.
    """

    def __init__(
        self,
        config: MLPOffloadConfig,
        layout: ShardLayout,
        rank: int,
        *,
        lock_manager: Optional[TierLockManager] = None,
        throttles: Optional[Mapping[str, object]] = None,
        io_threads: int = 4,
    ) -> None:
        super().__init__(
            zero3_config(config),
            layout,
            rank,
            lock_manager=lock_manager,
            throttles=throttles,
            io_threads=io_threads,
        )
