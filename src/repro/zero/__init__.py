"""Baseline offloading engines: DeepSpeed ZeRO-3 style and ablation variants.

The paper compares MLP-Offload against DeepSpeed ZeRO-3 with NVMe optimizer
offloading through the DeepNVMe engine (§4.1, "Compared Approaches") and runs
an ablation that enables the design principles one by one (§4.6,
Figures 14–15).  Both are expressed here as configurations of the shared
functional engine:

* :class:`~repro.zero.zero3_engine.ZeRO3OffloadEngine` — sequential subgroup
  order, FP32 gradient flush during backward, single (NVMe) tier, no
  node-level concurrency control;
* :mod:`repro.zero.variants` — the progressive ablation ladder used by
  Figures 14 and 15.
"""

from repro.zero.zero3_engine import ZeRO3OffloadEngine, zero3_config
from repro.zero.variants import ABLATION_LADDER_NVME, ABLATION_LADDER_MULTIPATH, AblationVariant, variant_config

__all__ = [
    "ZeRO3OffloadEngine",
    "zero3_config",
    "AblationVariant",
    "variant_config",
    "ABLATION_LADDER_NVME",
    "ABLATION_LADDER_MULTIPATH",
]
