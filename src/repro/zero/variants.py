"""Ablation variants (paper §4.6, Figures 14 and 15).

The paper evaluates the design principles by *progressive activation*:

Figure 14 (node-local NVMe only)
    1. ``DeepSpeed ZeRO-3`` — the baseline;
    2. ``Enable Caching`` — + cache-friendly subgroup reordering;
    3. ``Skip Gradients`` — + delayed in-place gradient conversion;
    4. ``Process Atomic R/W`` — + tier-exclusive concurrency control.

Figure 15 (NVMe + PFS)
    1. ``Multi-Path (with caching)`` — multi-path offloading + caching;
    2. ``MP Skip Grads`` — + delayed gradient conversion;
    3. ``Our Approach`` — + concurrency control (all principles on).

Each variant is simply an :class:`~repro.core.config.MLPOffloadConfig` with
the corresponding switches, so it can drive both the functional engine and
the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.core.config import MLPOffloadConfig


@dataclass(frozen=True)
class AblationVariant:
    """One rung of the ablation ladder."""

    name: str
    label: str
    multipath: bool
    cache_reorder: bool
    delayed_grads: bool
    tier_locks: bool

    def apply(self, config: MLPOffloadConfig) -> MLPOffloadConfig:
        """Derive this variant's configuration from a full MLP-Offload config."""
        tiers = config.tiers if self.multipath else (config.primary_tier,)
        return replace(
            config,
            tiers=tiers,
            enable_multipath=self.multipath,
            enable_cache_reorder=self.cache_reorder,
            enable_delayed_grad_conversion=self.delayed_grads,
            enable_tier_locks=self.tier_locks,
        )


#: Figure 14's ladder: single tier, principles enabled one at a time.
ABLATION_LADDER_NVME: Tuple[AblationVariant, ...] = (
    AblationVariant(
        name="zero3",
        label="DeepSpeed ZeRO-3",
        multipath=False,
        cache_reorder=False,
        delayed_grads=False,
        tier_locks=False,
    ),
    AblationVariant(
        name="caching",
        label="Enable Caching",
        multipath=False,
        cache_reorder=True,
        delayed_grads=False,
        tier_locks=False,
    ),
    AblationVariant(
        name="skip_gradients",
        label="Skip Gradients",
        multipath=False,
        cache_reorder=True,
        delayed_grads=True,
        tier_locks=False,
    ),
    AblationVariant(
        name="atomic_rw",
        label="Process Atomic R/W",
        multipath=False,
        cache_reorder=True,
        delayed_grads=True,
        tier_locks=True,
    ),
)

#: Figure 15's ladder: multi-path enabled throughout, remaining principles added.
ABLATION_LADDER_MULTIPATH: Tuple[AblationVariant, ...] = (
    AblationVariant(
        name="multipath_caching",
        label="Multi-Path (with caching)",
        multipath=True,
        cache_reorder=True,
        delayed_grads=False,
        tier_locks=False,
    ),
    AblationVariant(
        name="multipath_skip_grads",
        label="MP Skip Grads",
        multipath=True,
        cache_reorder=True,
        delayed_grads=True,
        tier_locks=False,
    ),
    AblationVariant(
        name="mlp_offload",
        label="Our Approach",
        multipath=True,
        cache_reorder=True,
        delayed_grads=True,
        tier_locks=True,
    ),
)


def variant_config(variant_name: str, config: MLPOffloadConfig) -> MLPOffloadConfig:
    """Look up a variant by name across both ladders and apply it to ``config``."""
    for variant in ABLATION_LADDER_NVME + ABLATION_LADDER_MULTIPATH:
        if variant.name == variant_name:
            return variant.apply(config)
    known = [v.name for v in ABLATION_LADDER_NVME + ABLATION_LADDER_MULTIPATH]
    raise KeyError(f"unknown ablation variant {variant_name!r}; known: {known}")
