"""Discrete-event simulation of offloaded training at paper scale.

The functional engine proves the algorithms correct on real (tiny) state;
this subpackage reproduces the paper's *timing* results for 40B–280B models
on the Table 1 testbeds, where the real optimizer state would be terabytes.

The simulator is a fluid (processor-sharing) discrete-event model:

* :mod:`repro.sim.resources` — bandwidth-shared resources (NVMe, PFS, PCIe,
  CPU update slots) with optional exclusive access and contention penalties;
* :mod:`repro.sim.workload` — derives per-worker subgroup workloads, cache
  capacities and compute costs from a model configuration, topology and
  testbed;
* :mod:`repro.sim.pipeline` — simulates the update-phase subgroup pipeline
  (prefetch / convert / compute / H2D / lazy flush) for any engine variant;
* :mod:`repro.sim.iteration` — full iteration simulation (forward, backward,
  update) including ZeRO-3 communication and gradient-flush behaviour;
* :mod:`repro.sim.metrics` — result records mirroring the paper's metrics;
* :mod:`repro.sim.sweep` — parameter sweeps over model sizes, node counts,
  batch sizes and ablation variants used by the benchmark harness.
"""

from repro.sim.metrics import IterationResult, UpdatePhaseResult
from repro.sim.workload import EngineKnobs, UpdateWorkload, build_workload
from repro.sim.pipeline import simulate_update_phase
from repro.sim.iteration import IterationModel, simulate_iteration
from repro.sim.sweep import (
    ablation_sweep,
    batch_size_sweep,
    model_size_sweep,
    weak_scaling_sweep,
)

__all__ = [
    "IterationResult",
    "UpdatePhaseResult",
    "EngineKnobs",
    "UpdateWorkload",
    "build_workload",
    "simulate_update_phase",
    "IterationModel",
    "simulate_iteration",
    "model_size_sweep",
    "weak_scaling_sweep",
    "batch_size_sweep",
    "ablation_sweep",
]
