"""Result records produced by the simulator, mirroring the paper's metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class UpdatePhaseResult:
    """Simulated update phase of one node (aggregated over its workers)."""

    wall_seconds: float
    fetch_bytes: float
    flush_bytes: float
    fetch_seconds: float
    flush_seconds: float
    compute_seconds: float
    cache_hits: int
    cache_misses: int
    params_updated: float
    skipped_flushes: int
    tier_read_bytes: Dict[str, float] = field(default_factory=dict)
    tier_write_bytes: Dict[str, float] = field(default_factory=dict)

    @property
    def io_bytes(self) -> float:
        return self.fetch_bytes + self.flush_bytes

    @property
    def io_seconds(self) -> float:
        return self.fetch_seconds + self.flush_seconds

    @property
    def io_fraction(self) -> float:
        """Fraction of update wall time spent waiting on storage I/O.

        Computed against the non-overlapped compute time: the portion of the
        wall clock not explained by CPU compute is attributed to I/O, which
        matches how Figure 3 reports "Disk I/O Time" vs "Compute Time".
        """
        if self.wall_seconds <= 0:
            return 0.0
        non_io = min(self.compute_seconds, self.wall_seconds)
        return max(0.0, self.wall_seconds - non_io) / self.wall_seconds

    @property
    def update_throughput(self) -> float:
        """Parameters updated per second of update-phase wall time."""
        return self.params_updated / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def effective_io_throughput(self) -> float:
        """Bytes moved through the third-level tier per second of update time.

        The paper computes ``2 × subgroup_size / (read_time + write_time)``
        per subgroup and aggregates (§4.3); because the update phase is I/O
        bound, that aggregate equals total tier traffic divided by the update
        wall time, which is how the simulator reports it.
        """
        if self.wall_seconds <= 0:
            return 0.0
        return self.io_bytes / self.wall_seconds

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class IterationResult:
    """Simulated full training iteration for one configuration."""

    label: str
    model_name: str
    forward_seconds: float
    backward_seconds: float
    update: UpdatePhaseResult
    num_gpus: int
    tier_distribution_bytes: Dict[str, float] = field(default_factory=dict)

    @property
    def update_seconds(self) -> float:
        return self.update.wall_seconds

    @property
    def iteration_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds + self.update.wall_seconds

    @property
    def update_throughput_mparams(self) -> float:
        """Update throughput in millions of parameters per second (Figures 8/12)."""
        return self.update.update_throughput / 1e6

    @property
    def effective_io_throughput_gbps(self) -> float:
        """Effective I/O throughput in decimal GB/s (Figure 9)."""
        return self.update.effective_io_throughput / 1e9

    def breakdown(self) -> Dict[str, float]:
        return {
            "forward": self.forward_seconds,
            "backward": self.backward_seconds,
            "update": self.update.wall_seconds,
        }


def speedup(baseline: IterationResult, improved: IterationResult) -> float:
    """End-to-end iteration-time speedup of ``improved`` over ``baseline``."""
    if improved.iteration_seconds <= 0:
        raise ValueError("improved iteration time must be positive")
    return baseline.iteration_seconds / improved.iteration_seconds
