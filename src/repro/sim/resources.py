"""Fluid (processor-sharing) resources for the discrete-event simulator.

Every shared device — an NVMe drive, a PFS mount, the PCIe link, the node's
CPU update capacity — is modelled as a :class:`FluidResource` with a nominal
capacity in units/second (bytes/s or parameters/s).  Concurrent transfers on
a resource share its capacity equally (processor sharing), optionally
degraded by a *contention penalty* that models the per-process overhead of
uncoordinated access observed in the paper's Figure 4/Figure 9 (aggregate
NVMe throughput drops from 5.3 GB/s to ~3.2 GB/s when four worker processes
hammer it concurrently).

Resources may also be marked *exclusive*: at most one distinct owner may have
active transfers at any time, and other owners' transfers queue — this is how
the simulator realizes MLP-Offload's tier-exclusive concurrency control.

:class:`FluidSimulation` advances time by repeatedly finding the next
transfer completion under the current rate assignment.  Rates only change at
completion (or admission) events, so the piecewise-constant integration is
exact for this model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set


@dataclass
class FluidResource:
    """One capacity-shared device.

    Attributes
    ----------
    name:
        Identifier used in results and for lock bookkeeping.
    capacity:
        Nominal capacity in units/second.
    exclusive:
        If ``True``, only one owner's transfers may be active at a time;
        other owners' transfers wait in FIFO order (tier-exclusive locks).
    contention_penalty:
        Per-extra-owner efficiency loss applied when ``exclusive`` is
        ``False``: with ``k`` distinct owners active the usable aggregate
        capacity is ``capacity / (1 + contention_penalty * (k - 1))``.
        ``0`` means ideal sharing.
    """

    name: str
    capacity: float
    exclusive: bool = False
    contention_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"resource {self.name!r} must have positive capacity")
        if self.contention_penalty < 0:
            raise ValueError("contention_penalty must be non-negative")

    def effective_capacity(self, distinct_owners: int) -> float:
        """Aggregate usable capacity with ``distinct_owners`` concurrent owners."""
        if distinct_owners <= 1:
            return self.capacity
        return self.capacity / (1.0 + self.contention_penalty * (distinct_owners - 1))


@dataclass
class Transfer:
    """One unit of work on a resource (a fetch, a flush, a compute slice)."""

    resource: FluidResource
    units: float
    owner: str
    label: str = ""
    on_complete: Optional[Callable[["Transfer", float], None]] = None
    remaining: float = field(init=False)
    started_at: Optional[float] = field(default=None, init=False)
    completed_at: Optional[float] = field(default=None, init=False)
    admitted: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.units < 0:
            raise ValueError("transfer units must be non-negative")
        self.remaining = float(self.units)

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def duration(self) -> float:
        if self.started_at is None or self.completed_at is None:
            raise RuntimeError("transfer has not completed")
        return self.completed_at - self.started_at


class FluidSimulation:
    """Processor-sharing discrete-event simulation over a set of resources."""

    def __init__(self) -> None:
        self.now = 0.0
        self._active: Dict[str, List[Transfer]] = {}
        self._queued: Dict[str, List[Transfer]] = {}
        self._resources: Dict[str, FluidResource] = {}
        self._counter = itertools.count()

    # -- submission ---------------------------------------------------------

    def submit(self, transfer: Transfer) -> Transfer:
        """Register a transfer; it becomes active immediately unless its
        resource is exclusive and held by a different owner."""
        resource = transfer.resource
        self._resources.setdefault(resource.name, resource)
        self._active.setdefault(resource.name, [])
        self._queued.setdefault(resource.name, [])
        if transfer.units == 0:
            transfer.started_at = self.now
            transfer.completed_at = self.now
            if transfer.on_complete is not None:
                transfer.on_complete(transfer, self.now)
            return transfer
        if self._admissible(transfer):
            self._admit(transfer)
        else:
            self._queued[resource.name].append(transfer)
        return transfer

    def _admissible(self, transfer: Transfer) -> bool:
        resource = transfer.resource
        if not resource.exclusive:
            return True
        owners = {t.owner for t in self._active[resource.name]}
        return not owners or owners == {transfer.owner}

    def _admit(self, transfer: Transfer) -> None:
        transfer.admitted = True
        transfer.started_at = self.now
        self._active[transfer.resource.name].append(transfer)

    # -- execution ------------------------------------------------------------

    def _rates(self) -> Dict[int, float]:
        """Current per-transfer rates keyed by ``id(transfer)``."""
        rates: Dict[int, float] = {}
        for name, transfers in self._active.items():
            if not transfers:
                continue
            resource = self._resources[name]
            owners = {t.owner for t in transfers}
            capacity = resource.effective_capacity(len(owners))
            share = capacity / len(transfers)
            for transfer in transfers:
                rates[id(transfer)] = share
        return rates

    def _next_completion(self, rates: Dict[int, float]) -> Optional[float]:
        horizon: Optional[float] = None
        for transfers in self._active.values():
            for transfer in transfers:
                rate = rates.get(id(transfer), 0.0)
                if rate <= 0:
                    continue
                eta = transfer.remaining / rate
                if horizon is None or eta < horizon:
                    horizon = eta
        return horizon

    def step(self) -> bool:
        """Advance to the next completion event.  Returns ``False`` when idle."""
        rates = self._rates()
        horizon = self._next_completion(rates)
        if horizon is None:
            return False
        self.now += horizon
        completed: List[Transfer] = []
        for name, transfers in self._active.items():
            still_active: List[Transfer] = []
            for transfer in transfers:
                rate = rates.get(id(transfer), 0.0)
                transfer.remaining -= rate * horizon
                if transfer.remaining <= 1e-9:
                    transfer.remaining = 0.0
                    transfer.completed_at = self.now
                    completed.append(transfer)
                else:
                    still_active.append(transfer)
            self._active[name] = still_active
        # Promote queued transfers on resources that freed up.
        for name, queue in self._queued.items():
            if not queue:
                continue
            promoted: List[Transfer] = []
            for transfer in list(queue):
                if self._admissible(transfer):
                    queue.remove(transfer)
                    self._admit(transfer)
                    promoted.append(transfer)
            # (promotion order is FIFO per resource by construction)
        for transfer in completed:
            if transfer.on_complete is not None:
                transfer.on_complete(transfer, self.now)
        return True

    def run(self, *, max_events: int = 10_000_000) -> float:
        """Run until every submitted transfer has completed; returns the final clock."""
        events = 0
        while self.step():
            events += 1
            if events > max_events:
                raise RuntimeError("simulation exceeded the event budget (livelock?)")
        pending = sum(len(q) for q in self._queued.values())
        if pending:
            raise RuntimeError(f"simulation stalled with {pending} queued transfers")
        return self.now

    # -- introspection -----------------------------------------------------------

    def busy(self) -> bool:
        return any(self._active.values()) or any(self._queued.values())

    def active_owners(self, resource_name: str) -> Set[str]:
        return {t.owner for t in self._active.get(resource_name, [])}
