"""Derive per-node update-phase workloads from model + testbed + engine knobs.

The workload captures everything the pipeline simulator needs to know about
one node's update phase:

* how many subgroups each worker owns and how many bytes each one moves in
  each direction (the baseline also fetches FP32 gradients);
* how many subgroups fit in the host cache (per worker) — sized from the
  memory estimator exactly as §4.1 describes (>90 % host-memory utilization
  after runtime buffers, gradient accumulation and pinned I/O buffers);
* how subgroups are split across the physical tiers (Equation 1, or
  everything on NVMe for single-path variants);
* CPU update / conversion throughput and PCIe bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.performance_model import allocate_subgroups
from repro.tiers.spec import NodeSpec, StorageTierSpec
from repro.train.memory_estimator import estimate_memory
from repro.train.model_zoo import (
    FP16_BYTES,
    FP16_GRAD_BYTES,
    FP32_GRAD_BYTES,
    OPTIMIZER_STATE_BYTES,
    ModelConfig,
)
from repro.train.parallelism import ParallelTopology
from repro.train.sharding import PAPER_SUBGROUP_SIZE


@dataclass(frozen=True)
class EngineKnobs:
    """The four design-principle switches, as seen by the simulator."""

    multipath: bool = True
    cache_reorder: bool = True
    delayed_grads: bool = True
    tier_locks: bool = True

    @classmethod
    def mlp_offload(cls) -> "EngineKnobs":
        return cls(True, True, True, True)

    @classmethod
    def zero3_baseline(cls) -> "EngineKnobs":
        return cls(False, False, False, False)


@dataclass
class UpdateWorkload:
    """One node's update-phase workload (symmetric across its workers)."""

    workers: int
    subgroups_per_worker: int
    subgroup_params: int
    #: Bytes fetched from storage per (non-cached) subgroup.
    fetch_bytes_per_subgroup: float
    #: Bytes flushed to storage per (non-skipped) subgroup.
    flush_bytes_per_subgroup: float
    #: Host-cache capacity, in subgroups, per worker.
    cache_subgroups_per_worker: int
    #: CPU work per subgroup, expressed in parameters (conversion folded in).
    compute_params_per_subgroup: float
    #: FP16 parameter bytes pushed to the GPU per subgroup.
    h2d_bytes_per_subgroup: float
    #: Per-worker split of subgroups across physical tiers (Equation 1).
    tier_allocation: Dict[str, int]
    #: The physical tiers visible to the node (bandwidths already scaled for
    #: PFS sharing across nodes).
    tiers: Dict[str, StorageTierSpec]
    knobs: EngineKnobs
    node: NodeSpec
    #: Total FP32-gradient bytes flushed per worker during the backward pass
    #: (zero for the delayed-conversion policy).
    backward_grad_flush_bytes_per_worker: float = 0.0

    @property
    def total_subgroups(self) -> int:
        return self.workers * self.subgroups_per_worker

    @property
    def params_per_worker(self) -> int:
        return self.subgroups_per_worker * self.subgroup_params

    @property
    def optimizer_state_bytes_per_worker(self) -> float:
        return float(self.params_per_worker) * OPTIMIZER_STATE_BYTES

    def cache_hit_count(self) -> int:
        """Steady-state host-cache hits per worker per update phase.

        With the alternating order the resident tail of the previous phase is
        exactly the head of the next phase, so every cached subgroup hits;
        with the sequential order the resident tail is the part touched
        *last*, so (unless everything fits) the leading fetches evict it
        before it is reached and the hit count is zero.
        """
        cache = min(self.cache_subgroups_per_worker, self.subgroups_per_worker)
        if cache <= 0:
            return 0
        if cache >= self.subgroups_per_worker:
            return self.subgroups_per_worker
        return cache if self.knobs.cache_reorder else 0

    def skipped_flush_count(self) -> int:
        """Subgroups per worker left dirty in the host cache (no flush needed)."""
        cache = min(self.cache_subgroups_per_worker, self.subgroups_per_worker)
        if cache <= 0:
            return 0
        if cache >= self.subgroups_per_worker:
            return self.subgroups_per_worker
        # Both orders leave the last `cache` processed subgroups resident, but
        # the sequential order immediately evicts (and therefore flushes) them
        # at the start of the next phase with no reuse, so in steady state the
        # baseline writes every subgroup once per iteration.
        return cache if self.knobs.cache_reorder else 0

    def host_cached_bytes(self) -> float:
        """Bytes of optimizer state resident in host memory (Figure 10's "Host Mem.")."""
        cache = min(self.cache_subgroups_per_worker, self.subgroups_per_worker)
        return float(self.workers * cache * self.subgroup_params * OPTIMIZER_STATE_BYTES)

    def tier_distribution_bytes(self) -> Dict[str, float]:
        """Bytes of optimizer state per location for the whole node (Figure 10)."""
        distribution: Dict[str, float] = {"host": self.host_cached_bytes()}
        cache = min(self.cache_subgroups_per_worker, self.subgroups_per_worker)
        offloaded = self.subgroups_per_worker - cache
        total_alloc = sum(self.tier_allocation.values())
        for tier, count in self.tier_allocation.items():
            share = count / total_alloc if total_alloc else 0.0
            distribution[tier] = (
                self.workers * offloaded * share * self.subgroup_params * OPTIMIZER_STATE_BYTES
            )
        return distribution


def _scaled_tiers(node: NodeSpec, topology: ParallelTopology) -> Dict[str, StorageTierSpec]:
    """Scale shared-tier bandwidth by the number of nodes competing for it."""
    tiers: Dict[str, StorageTierSpec] = {}
    for name, tier in node.storage.items():
        if tier.shared_across_nodes and topology.num_nodes > 1:
            tiers[name] = tier.scaled(1.0 / topology.num_nodes)
        else:
            tiers[name] = tier
    return tiers


def build_workload(
    model: ModelConfig,
    node: NodeSpec,
    knobs: EngineKnobs,
    *,
    topology: Optional[ParallelTopology] = None,
    subgroup_size: int = PAPER_SUBGROUP_SIZE,
    pinned_buffer_subgroups: int = 3,
) -> UpdateWorkload:
    """Build one node's update-phase workload for a given engine variant."""
    if topology is None:
        topology = ParallelTopology.single_node(node.gpus_per_node)
    workers = topology.workers_per_node
    params_per_rank = topology.params_per_rank(model)
    subgroups_per_worker = max(1, math.ceil(params_per_rank / subgroup_size))
    actual_subgroup_params = math.ceil(params_per_rank / subgroups_per_worker)

    breakdown = estimate_memory(
        model,
        topology,
        gpu_memory=node.gpu_memory,
        host_memory=node.host_memory,
        subgroup_size=subgroup_size,
        pinned_buffer_subgroups=pinned_buffer_subgroups,
        baseline_fp32_grads=not knobs.delayed_grads,
    )
    subgroup_state_bytes = actual_subgroup_params * OPTIMIZER_STATE_BYTES
    cache_subgroups_per_worker = int(
        breakdown.host_cache_available // (subgroup_state_bytes * workers)
    )
    # The pinned I/O buffers themselves retain the last few subgroups across
    # iterations even when the host memory left for caching is nil, which is
    # why Figure 10 shows a small "Host Mem." slice even for the largest
    # models.
    cache_floor = min(pinned_buffer_subgroups, subgroups_per_worker)
    cache_subgroups_per_worker = max(cache_floor, min(cache_subgroups_per_worker, subgroups_per_worker))

    fetch_bytes = float(subgroup_state_bytes)
    if not knobs.delayed_grads:
        fetch_bytes += actual_subgroup_params * FP32_GRAD_BYTES
    flush_bytes = float(subgroup_state_bytes)

    # Conversion cost folded into the CPU update work as parameter-equivalents.
    conversion_bytes = actual_subgroup_params * FP16_GRAD_BYTES
    conversion_param_equiv = (
        conversion_bytes / node.fp16_to_fp32_bw
    ) * node.cpu_update_throughput
    compute_params = actual_subgroup_params + (
        conversion_param_equiv if knobs.delayed_grads else 0.0
    )

    tiers = _scaled_tiers(node, topology)
    if knobs.multipath:
        bandwidths = {name: tier.effective_bw for name, tier in tiers.items()}
        allocation = allocate_subgroups(subgroups_per_worker, bandwidths)
    else:
        local = [name for name, tier in tiers.items() if not tier.shared_across_nodes]
        primary = local[0] if local else next(iter(tiers))
        allocation = {name: 0 for name in tiers}
        allocation[primary] = subgroups_per_worker
        tiers = {primary: tiers[primary]}
        allocation = {primary: subgroups_per_worker}

    backward_flush = 0.0
    if not knobs.delayed_grads:
        backward_flush = float(params_per_rank) * FP32_GRAD_BYTES

    return UpdateWorkload(
        workers=workers,
        subgroups_per_worker=subgroups_per_worker,
        subgroup_params=actual_subgroup_params,
        fetch_bytes_per_subgroup=fetch_bytes,
        flush_bytes_per_subgroup=flush_bytes,
        cache_subgroups_per_worker=cache_subgroups_per_worker,
        compute_params_per_subgroup=compute_params,
        h2d_bytes_per_subgroup=actual_subgroup_params * FP16_BYTES,
        tier_allocation=allocation,
        tiers=tiers,
        knobs=knobs,
        node=node,
        backward_grad_flush_bytes_per_worker=backward_flush,
    )
