"""Parameter sweeps used by the benchmark harness.

Each sweep mirrors one of the paper's experiment axes:

* :func:`model_size_sweep` — model sizes 40B–120B on a single Testbed-1 node
  (Figures 7, 8, 9, 10, and the gap analysis of Figure 3);
* :func:`weak_scaling_sweep` — model size grown with node count on Testbed-2
  (Figures 11 and 12);
* :func:`batch_size_sweep` — gradient accumulation on the 40B model
  (Figure 13);
* :func:`ablation_sweep` — progressive activation of the design principles
  (Figures 14 and 15).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.sim.iteration import IterationModel, simulate_iteration
from repro.sim.metrics import IterationResult
from repro.sim.workload import EngineKnobs
from repro.tiers.spec import TESTBED_1, TESTBED_2, NodeSpec
from repro.train.model_zoo import ModelConfig, model_by_name
from repro.train.parallelism import ParallelTopology
from repro.train.sharding import PAPER_SUBGROUP_SIZE
from repro.zero.variants import ABLATION_LADDER_MULTIPATH, ABLATION_LADDER_NVME, AblationVariant

#: The model-size axis of the single-node experiments (Figures 7–10).
SINGLE_NODE_MODELS: Tuple[str, ...] = ("40B", "52B", "70B", "100B", "120B")

#: The weak-scaling axis of §4.4: (model, number of nodes on Testbed-2).
WEAK_SCALING_POINTS: Tuple[Tuple[str, int], ...] = (
    ("40B", 1),
    ("70B", 2),
    ("100B", 3),
    ("130B", 4),
    ("280B", 8),
)

#: The equivalent global batch sizes of the gradient-accumulation study (§4.5).
BATCH_SIZE_POINTS: Tuple[int, ...] = (32, 128, 256, 512)


def _knobs_for(variant: AblationVariant) -> EngineKnobs:
    return EngineKnobs(
        multipath=variant.multipath,
        cache_reorder=variant.cache_reorder,
        delayed_grads=variant.delayed_grads,
        tier_locks=variant.tier_locks,
    )


def compare_engines(
    model: ModelConfig,
    node: NodeSpec,
    *,
    topology: Optional[ParallelTopology] = None,
    micro_batch_size: int = 1,
    gradient_accumulation_steps: int = 1,
    subgroup_size: int = PAPER_SUBGROUP_SIZE,
) -> Dict[str, IterationResult]:
    """Simulate the ZeRO-3 baseline and MLP-Offload for one configuration."""
    results: Dict[str, IterationResult] = {}
    for label, knobs in (
        ("DeepSpeed ZeRO-3", EngineKnobs.zero3_baseline()),
        ("MLP-Offload", EngineKnobs.mlp_offload()),
    ):
        spec = IterationModel(
            model=model,
            node=node,
            knobs=knobs,
            topology=topology,
            micro_batch_size=micro_batch_size,
            gradient_accumulation_steps=gradient_accumulation_steps,
            subgroup_size=subgroup_size,
            label=label,
        )
        results[label] = simulate_iteration(spec)
    return results


def model_size_sweep(
    model_names: Sequence[str] = SINGLE_NODE_MODELS,
    node: NodeSpec = TESTBED_1,
) -> Dict[str, Dict[str, IterationResult]]:
    """Single-node sweep over model sizes: ``{model: {engine: result}}``."""
    sweep: Dict[str, Dict[str, IterationResult]] = {}
    for name in model_names:
        model = model_by_name(name)
        sweep[name] = compare_engines(model, node)
    return sweep


def weak_scaling_sweep(
    points: Sequence[Tuple[str, int]] = WEAK_SCALING_POINTS,
    node: NodeSpec = TESTBED_2,
) -> Dict[str, Dict[str, IterationResult]]:
    """Weak-scaling sweep: tensor parallel within a node, data parallel across nodes."""
    sweep: Dict[str, Dict[str, IterationResult]] = {}
    for name, num_nodes in points:
        model = model_by_name(name)
        topology = ParallelTopology.weak_scaling(num_nodes, node.gpus_per_node)
        key = f"{name}[{topology.world_size}]"
        sweep[key] = compare_engines(model, node, topology=topology)
    return sweep


def batch_size_sweep(
    batch_sizes: Sequence[int] = BATCH_SIZE_POINTS,
    node: NodeSpec = TESTBED_1,
    model_name: str = "40B",
    micro_batch_size: int = 8,
) -> Dict[int, Dict[str, IterationResult]]:
    """Gradient-accumulation sweep for the 40B model (Figure 13).

    The paper fixes the per-GPU micro-batch at 8 samples (the largest that
    fits) and grows the equivalent global batch size by adding accumulation
    steps across the node's 4 data-parallel GPUs.
    """
    model = model_by_name(model_name)
    sweep: Dict[int, Dict[str, IterationResult]] = {}
    for batch in batch_sizes:
        per_step = micro_batch_size * node.gpus_per_node
        if batch % per_step != 0:
            raise ValueError(
                f"batch size {batch} is not a multiple of micro_batch × GPUs = {per_step}"
            )
        accumulation = batch // per_step
        sweep[batch] = compare_engines(
            model,
            node,
            micro_batch_size=micro_batch_size,
            gradient_accumulation_steps=accumulation,
        )
    return sweep


def ablation_sweep(
    model_names: Sequence[str] = ("40B", "70B", "100B"),
    node: NodeSpec = TESTBED_1,
    *,
    multipath: bool = False,
) -> Dict[str, Dict[str, IterationResult]]:
    """Progressive-activation ablation (Figure 14 without PFS, Figure 15 with).

    Returns ``{model: {variant_label: result}}`` in ladder order.
    """
    ladder = ABLATION_LADDER_MULTIPATH if multipath else ABLATION_LADDER_NVME
    sweep: Dict[str, Dict[str, IterationResult]] = {}
    for name in model_names:
        model = model_by_name(name)
        per_model: Dict[str, IterationResult] = {}
        for variant in ladder:
            spec = IterationModel(
                model=model,
                node=node,
                knobs=_knobs_for(variant),
                label=variant.label,
            )
            per_model[variant.label] = simulate_iteration(spec)
        sweep[name] = per_model
    return sweep
