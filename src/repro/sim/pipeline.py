"""Update-phase pipeline simulation (one node, all workers).

Each worker walks its subgroups in the engine's processing order; each
subgroup passes through the stages of Algorithm 1:

``fetch`` (tier read, skipped on a host-cache hit) → ``update`` (CPU, shared
by all workers of the node, with the FP16→FP32 conversion folded in) →
``H2D push`` (per-GPU PCIe) and ``lazy flush`` (tier write, skipped for the
subgroups that stay resident in the host cache).

Pipelining follows the paper's buffer budget: a worker keeps up to
``prefetch_ahead`` fetches in flight beyond the subgroup currently being
updated (three pinned buffers → one being flushed, one updated, one
prefetched).  Tier-exclusive concurrency control and uncoordinated-access
contention are inherited from the :class:`~repro.sim.resources.FluidResource`
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.metrics import UpdatePhaseResult
from repro.sim.resources import FluidResource, FluidSimulation, Transfer
from repro.sim.workload import UpdateWorkload

#: Per-extra-owner efficiency penalty of *uncoordinated* tier access,
#: calibrated to the paper's observation that four concurrent worker
#: processes drive the NVMe at roughly 60 % of its nominal bandwidth
#: (Figures 4 and 9: 5.3 GB/s peak write vs ~3.2 GB/s effective).
DEFAULT_CONTENTION_PENALTY = 0.35
#: Residual penalty when MLP-Offload's tier-exclusive concurrency control is
#: active.  The lock is held per I/O burst rather than for the whole phase,
#: so device-level interference (PCIe arbitration, controller switching) is
#: reduced but not eliminated — matching the modest "Process Atomic R/W"
#: gain of Figure 14.
LOCKED_CONTENTION_PENALTY = 0.15


@dataclass
class _WorkerState:
    """Mutable bookkeeping of one worker's pipeline progress."""

    index: int
    placements: List[Optional[str]]
    hits: List[bool]
    flush_skipped: List[bool]
    next_fetch: int = 0
    next_compute: int = 0
    computes_done: int = 0
    fetch_done: List[bool] = field(default_factory=list)
    compute_running: bool = False


class UpdatePhaseSimulator:
    """Simulates one node's update phase for a given workload."""

    def __init__(
        self,
        workload: UpdateWorkload,
        *,
        prefetch_ahead: int = 2,
        contention_penalty: float = DEFAULT_CONTENTION_PENALTY,
    ) -> None:
        if prefetch_ahead < 1:
            raise ValueError("prefetch_ahead must be >= 1")
        self.workload = workload
        self.prefetch_ahead = prefetch_ahead
        self.contention_penalty = contention_penalty
        self.sim = FluidSimulation()
        knobs = workload.knobs
        penalty = LOCKED_CONTENTION_PENALTY if knobs.tier_locks else contention_penalty
        self.read_resources: Dict[str, FluidResource] = {}
        self.write_resources: Dict[str, FluidResource] = {}
        for name, tier in workload.tiers.items():
            self.read_resources[name] = FluidResource(
                name=f"{name}.read",
                capacity=tier.read_bw,
                contention_penalty=penalty,
            )
            self.write_resources[name] = FluidResource(
                name=f"{name}.write",
                capacity=tier.write_bw,
                contention_penalty=penalty,
            )
        self.cpu = FluidResource(name="cpu.update", capacity=workload.node.cpu_update_throughput)
        self.h2d = [
            FluidResource(name=f"h2d.worker{w}", capacity=workload.node.d2h_bw)
            for w in range(workload.workers)
        ]
        # Counters.
        self.fetch_bytes = 0.0
        self.flush_bytes = 0.0
        self.fetch_seconds = 0.0
        self.flush_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.skipped_flushes = 0
        self.tier_read_bytes: Dict[str, float] = {name: 0.0 for name in workload.tiers}
        self.tier_write_bytes: Dict[str, float] = {name: 0.0 for name in workload.tiers}
        self._workers = [self._build_worker(w) for w in range(workload.workers)]

    # -- worker construction -------------------------------------------------

    def _build_worker(self, index: int) -> _WorkerState:
        wl = self.workload
        n = wl.subgroups_per_worker
        hits_count = wl.cache_hit_count()
        skip_count = wl.skipped_flush_count()
        # Interleaved tier placement weighted by the Equation 1 allocation, so
        # that consecutive positions alternate between physical paths.
        placements: List[Optional[str]] = []
        remaining = {name: count for name, count in wl.tier_allocation.items()}
        initial = {name: max(1, count) for name, count in remaining.items()}
        for _ in range(n):
            candidates = [t for t, c in remaining.items() if c > 0]
            if not candidates:
                placements.append(next(iter(wl.tiers)))
                continue
            best = max(candidates, key=lambda t: (remaining[t] / initial[t], remaining[t], t))
            placements.append(best)
            remaining[best] -= 1
        hits = [pos < hits_count for pos in range(n)]
        flush_skipped = [pos >= n - skip_count for pos in range(n)]
        state = _WorkerState(
            index=index,
            placements=placements,
            hits=hits,
            flush_skipped=flush_skipped,
            fetch_done=[False] * n,
        )
        return state

    # -- pipeline driving ------------------------------------------------------

    def _issue_fetches(self, worker: _WorkerState) -> None:
        wl = self.workload
        n = wl.subgroups_per_worker
        limit = min(n, worker.computes_done + self.prefetch_ahead + 1)
        while worker.next_fetch < limit:
            position = worker.next_fetch
            worker.next_fetch += 1
            if worker.hits[position]:
                self.cache_hits += 1
                worker.fetch_done[position] = True
                continue
            self.cache_misses += 1
            tier = worker.placements[position]
            assert tier is not None
            nbytes = wl.fetch_bytes_per_subgroup
            self.fetch_bytes += nbytes
            self.tier_read_bytes[tier] += nbytes

            def on_fetch_done(transfer: Transfer, now: float, *, w=worker, p=position) -> None:
                self.fetch_seconds += transfer.duration
                w.fetch_done[p] = True
                self._start_compute(w)

            self.sim.submit(
                Transfer(
                    resource=self.read_resources[tier],
                    units=nbytes,
                    owner=f"worker{worker.index}",
                    label=f"fetch.w{worker.index}.p{position}",
                    on_complete=on_fetch_done,
                )
            )

    def _start_compute(self, worker: _WorkerState) -> None:
        wl = self.workload
        n = wl.subgroups_per_worker
        if worker.compute_running or worker.next_compute >= n:
            return
        position = worker.next_compute
        if not worker.fetch_done[position]:
            return
        worker.compute_running = True

        def on_compute_done(transfer: Transfer, now: float, *, w=worker, p=position) -> None:
            w.compute_running = False
            w.computes_done += 1
            w.next_compute += 1
            self._finish_subgroup(w, p)
            self._issue_fetches(w)
            self._start_compute(w)

        self.sim.submit(
            Transfer(
                resource=self.cpu,
                units=wl.compute_params_per_subgroup,
                owner=f"worker{worker.index}",
                label=f"update.w{worker.index}.p{position}",
                on_complete=on_compute_done,
            )
        )

    def _finish_subgroup(self, worker: _WorkerState, position: int) -> None:
        wl = self.workload
        # Asynchronous H2D push of the refreshed FP16 parameters.
        self.sim.submit(
            Transfer(
                resource=self.h2d[worker.index],
                units=wl.h2d_bytes_per_subgroup,
                owner=f"worker{worker.index}",
                label=f"h2d.w{worker.index}.p{position}",
            )
        )
        if worker.flush_skipped[position]:
            self.skipped_flushes += 1
            return
        tier = worker.placements[position]
        assert tier is not None
        nbytes = wl.flush_bytes_per_subgroup
        self.flush_bytes += nbytes
        self.tier_write_bytes[tier] += nbytes

        def on_flush_done(transfer: Transfer, now: float) -> None:
            self.flush_seconds += transfer.duration

        self.sim.submit(
            Transfer(
                resource=self.write_resources[tier],
                units=nbytes,
                owner=f"worker{worker.index}",
                label=f"flush.w{worker.index}.p{position}",
                on_complete=on_flush_done,
            )
        )

    # -- entry point ------------------------------------------------------------

    def run(self) -> UpdatePhaseResult:
        for worker in self._workers:
            self._issue_fetches(worker)
            self._start_compute(worker)
        wall = self.sim.run()
        wl = self.workload
        params_updated = float(wl.workers * wl.subgroups_per_worker * wl.subgroup_params)
        compute_seconds = params_updated / wl.node.cpu_update_throughput
        return UpdatePhaseResult(
            wall_seconds=wall,
            fetch_bytes=self.fetch_bytes,
            flush_bytes=self.flush_bytes,
            fetch_seconds=self.fetch_seconds,
            flush_seconds=self.flush_seconds,
            compute_seconds=compute_seconds,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            params_updated=params_updated,
            skipped_flushes=self.skipped_flushes,
            tier_read_bytes=dict(self.tier_read_bytes),
            tier_write_bytes=dict(self.tier_write_bytes),
        )


def simulate_update_phase(
    workload: UpdateWorkload,
    *,
    prefetch_ahead: int = 2,
    contention_penalty: float = DEFAULT_CONTENTION_PENALTY,
) -> UpdatePhaseResult:
    """Convenience wrapper: build, run and return one node's update phase."""
    simulator = UpdatePhaseSimulator(
        workload, prefetch_ahead=prefetch_ahead, contention_penalty=contention_penalty
    )
    return simulator.run()
