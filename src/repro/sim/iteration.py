"""Full-iteration simulation: forward, backward and update phases.

The update phase comes from the pipeline simulator; the forward and backward
phases are modelled analytically:

* **forward** — transformer FLOPs on the node's GPUs plus the ZeRO-3
  parameter all-gather over the inter-node fabric;
* **backward** — twice the forward FLOPs, inflated by activation-checkpoint
  recomputation (+33 %, §4.1), plus the gradient reduce-scatter, plus — for
  the baseline gradient policy only — the FP16→FP32 up-conversion and the
  FP32 gradient flush to the third-level tier, which is what makes the
  baseline's backward pass "begin to be noticeable" (§4.2) while MLP-Offload
  reduces it "to a negligible level".

GPU throughput constants are sustained-efficiency estimates for the paper's
H100/A100 parts; as with all simulator outputs they are meant to reproduce
the *shape* of the paper's results, not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.metrics import IterationResult
from repro.sim.pipeline import DEFAULT_CONTENTION_PENALTY, simulate_update_phase
from repro.sim.workload import EngineKnobs, build_workload
from repro.tiers.spec import NodeSpec
from repro.train.model_zoo import FP16_GRAD_BYTES, FP32_GRAD_BYTES, ModelConfig
from repro.train.parallelism import ParallelTopology
from repro.train.sharding import PAPER_SUBGROUP_SIZE

#: Sustained mixed-precision throughput assumed per GPU model (FLOP/s).
GPU_SUSTAINED_FLOPS: Dict[str, float] = {
    "testbed-1": 300e12,  # H100-80GB
    "testbed-2": 120e12,  # A100-40GB
}
#: Extra backward-pass compute due to activation checkpointing (§4.1).
ACTIVATION_RECOMPUTE_FACTOR = 1.33


@dataclass(frozen=True)
class IterationModel:
    """Everything needed to simulate one configuration's iteration."""

    model: ModelConfig
    node: NodeSpec
    knobs: EngineKnobs
    topology: Optional[ParallelTopology] = None
    micro_batch_size: int = 1
    gradient_accumulation_steps: int = 1
    subgroup_size: int = PAPER_SUBGROUP_SIZE
    label: str = ""

    def resolved_topology(self) -> ParallelTopology:
        if self.topology is not None:
            return self.topology
        return ParallelTopology.single_node(self.node.gpus_per_node)


def _compute_seconds(model: ModelConfig, node: NodeSpec, topology: ParallelTopology, micro_batch: int, *, backward: bool) -> float:
    """Dense transformer FLOP time per pass on one worker's GPU."""
    flops_per_token = 2.0 * model.total_params / topology.tensor_parallel
    tokens = model.sequence_length * micro_batch
    flops = flops_per_token * tokens
    if backward:
        flops *= 2.0 * ACTIVATION_RECOMPUTE_FACTOR
    gpu_flops = GPU_SUSTAINED_FLOPS.get(node.name, 150e12)
    return flops / gpu_flops


def _communication_seconds(model: ModelConfig, node: NodeSpec, topology: ParallelTopology) -> float:
    """ZeRO-3 parameter gather / gradient reduce time per pass (inter-node only)."""
    if topology.num_nodes <= 1:
        # Intra-node collectives ride NVLink-class links and are negligible
        # next to the I/O times studied here.
        return 0.0
    gather_bytes = topology.zero3_gather_bytes_per_pass(model)
    return gather_bytes / node.interconnect_bw


def simulate_iteration(
    spec: IterationModel,
    *,
    contention_penalty: float = DEFAULT_CONTENTION_PENALTY,
    prefetch_ahead: int = 2,
) -> IterationResult:
    """Simulate one full training iteration and return its result record."""
    model = spec.model
    node = spec.node
    topology = spec.resolved_topology()
    knobs = spec.knobs

    workload = build_workload(
        model,
        node,
        knobs,
        topology=topology,
        subgroup_size=spec.subgroup_size,
    )
    update = simulate_update_phase(
        workload, prefetch_ahead=prefetch_ahead, contention_penalty=contention_penalty
    )
    # Every node runs the same update phase concurrently on its own shard of
    # the optimizer state, so the job-level update throughput (the metric of
    # Figures 8 and 12) covers all nodes' parameters in one node's wall time.
    update.params_updated *= topology.num_nodes

    accum = spec.gradient_accumulation_steps
    forward_compute = _compute_seconds(model, node, topology, spec.micro_batch_size, backward=False)
    backward_compute = _compute_seconds(model, node, topology, spec.micro_batch_size, backward=True)
    comm = _communication_seconds(model, node, topology)
    forward_seconds = (forward_compute + comm) * accum

    # Gradient handling on the backward path.
    params_per_rank = topology.params_per_rank(model)
    grad_d2h_seconds = params_per_rank * FP16_GRAD_BYTES / node.d2h_bw
    backward_io_seconds = grad_d2h_seconds
    if not knobs.delayed_grads:
        conversion_seconds = params_per_rank * FP16_GRAD_BYTES / node.fp16_to_fp32_bw
        # All workers of the node flush their FP32 gradients to the (single)
        # offload tier during every backward pass.
        flush_tier = next(iter(workload.tiers.values()))
        node_flush_bytes = workload.workers * params_per_rank * FP32_GRAD_BYTES
        flush_seconds = node_flush_bytes / flush_tier.write_bw
        backward_io_seconds = grad_d2h_seconds + conversion_seconds + flush_seconds
    # I/O overlaps with the backward compute; whichever is longer dominates.
    backward_seconds = (max(backward_compute + comm, backward_io_seconds)) * accum

    label = spec.label or ("MLP-Offload" if knobs == EngineKnobs.mlp_offload() else "variant")
    return IterationResult(
        label=label,
        model_name=model.name,
        forward_seconds=forward_seconds,
        backward_seconds=backward_seconds,
        update=update,
        num_gpus=topology.world_size,
        tier_distribution_bytes=workload.tier_distribution_bytes(),
    )
