"""Job-level two-phase checkpoint commit across data-parallel ranks.

The per-worker writer (:mod:`repro.ckpt.writer`) commits manifests
independently, which is exactly right for one rank and exactly wrong for a
job: a crash can leave rank 0 at version 7 and rank 1 at version 6, with no
cut of the job that every rank can restart from.  The coordinator layers a
filesystem-based two-phase commit on top of the existing per-worker
machinery:

**Phase one — prepare.**  Each rank's asynchronous drain publishes its
manifest under the phase-one name ``ckpt-<worker>-<version>.prepared.json``
(atomic tmp+rename, fsynced — durable but not yet part of any global
version).  Nothing about the drain itself changes: blobs still land in the
shared content-addressed stores before the prepared manifest is published.

**Phase two — promote.**  After publishing, the rank calls
:meth:`CheckpointCoordinator.try_promote`.  Whichever rank gets there last
finds every registered worker's manifest for version ``v`` present, takes
the coordinator lock (``GLOBAL.lock``, created with ``O_EXCL`` — an
any-rank election, no dedicated coordinator process), renames each prepared
manifest to its committed name, and writes the global commit record
``GLOBAL-<v>.json`` (atomic tmp+rename+fsync).  *That rename is the job's
commit point*: a global version exists completely or not at all.

**Restart.**  :meth:`latest_global` resolves the newest global version;
per-rank manifests newer than it — committed or prepared — are torn-commit
debris and are discarded (:meth:`discard_torn`) before any rank restores,
so every rank resumes from the same cut.

**Garbage collection** runs under the same lock and operates on *global*
versions: retention keeps the newest ``checkpoint_retention`` global
versions, per-rank manifests of retired or torn versions are deleted, and a
blob survives while **any rank of any surviving manifest** — including
still-prepared ones, whose blobs are fully written — references it.  The
blob sweep additionally stands down while any drain is in flight, closing
the window between a drain's content-addressed reuse check and its prepared
publication — in both deployments:

* *in-process* drains register with :meth:`drain_begin` / :meth:`drain_end`;
  the check is atomic with the sweep (one mutex spans both).
* *cross-process* drains are announced by **drain-intent leases**: before
  any dedup-reuse check, :meth:`drain_begin` publishes
  ``DRAIN-<worker>.lease`` (pid + /proc start tick — the same liveness
  scheme as ``GLOBAL.lock``) and then waits out any *live foreign* lock
  holder, so a sweep that won the election before the lease landed finishes
  before the drain reads a single store key.  The sweep, conversely, stands
  down whenever a live-owner lease exists; a dead owner's lease is broken
  like a stale lock (here and on the restart path), so a killed rank never
  wedges GC.  A blob dedup-reused by a rank mid-drain in *another process*,
  whose last committed reference is concurrently retired, therefore
  survives the sweep — the lease pins it until the prepared manifest lands
  and references it durably.

A crashed promoter leaves a stale ``GLOBAL.lock``; the next election breaks
it once its owning pid is dead (unreadable/torn lock files age out after
``checkpoint_lock_stale_seconds``; a lock whose owner is alive is never
stolen), so one rank's death never wedges the job's checkpoint stream.
"""

from __future__ import annotations

import json
import os
import threading
import time
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.ckpt.manifest import (
    CheckpointError,
    CheckpointManifest,
    ManifestDirSnapshot,
    _fsync_directory,
    referenced_blobs,
    scan_manifest_dir,
)
from repro.ckpt.faults import fault_point
from repro.ckpt.store import CAS_PREFIX, build_blob_stores
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - break the core <-> ckpt import cycle
    from repro.core.config import MLPOffloadConfig

_LOG = get_logger("ckpt.coordinator")

#: Global commit record schema version.
GLOBAL_FORMAT = 1
#: Election lock file name (lives next to the manifests).
LOCK_NAME = "GLOBAL.lock"
#: Drain-intent lease glob (``DRAIN-<worker>.lease`` next to the manifests).
LEASE_GLOB = "DRAIN-*.lease"


def global_record_name(version: int) -> str:
    return f"GLOBAL-{version:06d}.json"


def drain_lease_name(worker: str) -> str:
    return f"DRAIN-{worker}.lease"


def _proc_start_time(pid: int) -> Optional[int]:
    """Kernel start tick of ``pid`` (Linux); ``None`` where unavailable.

    A pid plus its start time identifies a process across pid reuse: a
    recycled pid (likely in small container pid namespaces) passes
    ``os.kill(pid, 0)`` but carries a different start tick, so a lock file
    recording both can be recognized as a dead run's leftover instead of
    wedging every future election.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            data = handle.read()
        # Fields after the parenthesized comm (which may contain spaces);
        # starttime is overall field 22 → index 19 past the ") " split.
        return int(data.rsplit(b") ", 1)[1].split()[19])
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return None


def _proc_is_zombie(pid: int) -> bool:
    """``True`` when ``pid`` has exited and merely awaits reaping (Linux).

    A ``SIGKILL``-ed worker whose parent has not called ``wait()`` yet still
    passes the ``os.kill(pid, 0)`` probe, but it will never release a lock
    or finish a drain — for liveness purposes it is dead.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            data = handle.read()
        return data.rsplit(b") ", 1)[1].split()[0] == b"Z"
    except (OSError, IndexError):  # pragma: no cover - non-Linux
        return False


@dataclass(frozen=True)
class GlobalCommitRecord:
    """One committed *global* checkpoint version: a consistent job-wide cut."""

    version: int
    #: Engine ``update_count`` every rank's manifest records for this version.
    iteration: int
    #: The registered workers whose manifests form the cut.
    workers: Tuple[str, ...]
    created_unix: float = 0.0

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": GLOBAL_FORMAT,
                "version": self.version,
                "iteration": self.iteration,
                "workers": list(self.workers),
                "created_unix": self.created_unix,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "GlobalCommitRecord":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"global commit record is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != GLOBAL_FORMAT:
            raise CheckpointError(f"unsupported global commit record: {payload!r}")
        try:
            return cls(
                version=int(payload["version"]),
                iteration=int(payload["iteration"]),
                workers=tuple(str(w) for w in payload["workers"]),
                created_unix=float(payload.get("created_unix", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed global commit record: {exc}") from exc


class CoordinatorLock:
    """``O_CREAT | O_EXCL`` election lock with dead-owner stale-breaking.

    The lock file records its owner's pid and creation time.  An acquire
    attempt that finds the file held checks whether the recorded pid is
    still alive; a *dead* owner's lock (a promoter that crashed between
    promote and GC, say) is broken and the acquisition retried once.  A
    lock whose owner is alive is **never** stolen, no matter its age — a
    slow GC under the lock must not admit a second promoter (two
    concurrent blob sweeps can delete payloads a prepared manifest is
    about to reference); ``stale_seconds`` only ages out *unreadable*
    (torn) lock files, where no pid can be checked.  Within one process a
    ``threading.Lock`` serializes holders so two drain threads never both
    believe they won.
    """

    def __init__(self, directory: Path, *, stale_seconds: float = 30.0) -> None:
        self.path = directory / LOCK_NAME
        self.stale_seconds = stale_seconds
        self._thread_lock = threading.Lock()

    def _owner_is_dead(self, path: Optional[Path] = None) -> bool:
        path = self.path if path is None else path
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            pid = int(payload["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable or torn lock (no pid to probe): age it out via mtime.
            try:
                created = path.stat().st_mtime
            except OSError:
                return True  # vanished — treat as released
            return (time.time() - created) > self.stale_seconds
        # The recorded pid being alive is not enough: a crashed run's pid may
        # have been recycled onto an unrelated (or even this) process.  The
        # start tick recorded at lock creation disambiguates where available.
        recorded_start = payload.get("starttime")
        if recorded_start is not None:
            current_start = _proc_start_time(pid)
            if current_start is not None and current_start != int(recorded_start):
                return True  # pid reused: the owning process is gone
        if pid == os.getpid():
            # Another CoordinatorLock instance in this very process holds it
            # (distinct engines each carry their own lock object).
            return False
        if _proc_is_zombie(pid):
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:  # pragma: no cover - pid alive, other user
            return False
        return False

    def _break_stale(self) -> bool:
        """Atomically claim and break an observed-stale lock; ``True`` = broken.

        A blind ``unlink`` after the staleness check is a TOCTOU: two
        breakers can both judge the old lock dead, the first replaces it
        with its own fresh lock, and the second's unlink (or rename) would
        then destroy the *fresh* one — leaving the path free for a third
        contender while the fresh lock's owner still believes it holds the
        election.  Breaking therefore happens under its own ``O_EXCL``
        breaker guard (one breaker at a time, cross-process), re-verifies
        staleness on the *current* lock file inside the guard, and only
        then **renames** it to a private tombstone for a final check.  A
        live lock observed at any point aborts the break; a breaker that
        loses the rename race simply contends for the now-free path via
        the ordinary ``O_EXCL`` create.
        """
        guard = self.path.with_name(f"{LOCK_NAME}.breaker")
        try:
            guard_fd = os.open(guard, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            # Another breaker is active — or died holding the guard; age the
            # guard out so a crashed breaker cannot wedge future elections.
            try:
                if (time.time() - guard.stat().st_mtime) > self.stale_seconds:
                    guard.unlink()
            except OSError:  # pragma: no cover - raced with the live breaker
                pass
            return False
        try:
            # Re-verify under the guard: the lock may have been broken and
            # freshly re-created while we were deciding.
            if not self._owner_is_dead():
                return False
            tombstone = self.path.with_name(f"{LOCK_NAME}.break.{os.getpid()}")
            try:
                os.rename(self.path, tombstone)
            except FileNotFoundError:
                return True  # already broken; path is free to contend for
            if self._owner_is_dead(tombstone):
                try:
                    tombstone.unlink()
                except FileNotFoundError:  # pragma: no cover - swept
                    pass
                return True
            # Claimed a live lock despite the guard (owner raced between our
            # re-verify and rename — only possible if it re-created without
            # the guard): restore it; ``link`` cannot clobber a newer lock.
            try:
                os.link(tombstone, self.path)
            except (FileExistsError, OSError):  # pragma: no cover - newer won
                pass
            try:
                tombstone.unlink()
            except FileNotFoundError:  # pragma: no cover - swept
                pass
            return False
        finally:
            os.close(guard_fd)
            try:
                guard.unlink()
            except FileNotFoundError:  # pragma: no cover - aged out by a peer
                pass

    def _try_create(self) -> bool:
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(
                fd,
                json.dumps(
                    {
                        "pid": os.getpid(),
                        "starttime": _proc_start_time(os.getpid()),
                        "created_unix": time.time(),
                    }
                ).encode(),
            )
        finally:
            os.close(fd)
        return True

    def acquire(self) -> bool:
        """Non-blocking: ``True`` when this caller now holds the election."""
        if not self._thread_lock.acquire(blocking=False):
            return False
        if self._try_create():
            return True
        if self._owner_is_dead():
            _LOG.warning("breaking stale coordinator lock %s", self.path)
            if self._break_stale() and self._try_create():
                return True
        self._thread_lock.release()
        return False

    def release(self) -> None:
        # Unlink only a lock file this process wrote: if a peer broke our
        # lock as stale (our pid died and was reused, or the file tore) and
        # re-acquired, deleting the file now would admit a third holder.
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            if int(payload.get("pid", -1)) == os.getpid():
                self.path.unlink()
        except (OSError, ValueError, TypeError):  # pragma: no cover - torn/raced
            pass
        self._thread_lock.release()


class CheckpointCoordinator:
    """Promotes per-rank prepared manifests to global commit records.

    One instance may be shared by several in-process engines (the same way a
    :class:`~repro.aio.locks.TierLockManager` is); separate processes
    coordinate purely through the filesystem protocol.  ``workers`` is the
    registry of ranks whose manifests a global version requires — typically
    ``rank0 … rank{world_size-1}``.
    """

    def __init__(
        self,
        config: "MLPOffloadConfig",
        *,
        workers: Sequence[str],
        throttles: Optional[Dict[str, object]] = None,
    ) -> None:
        if not config.checkpoint_enabled:
            raise CheckpointError("checkpoint_dir is not configured")
        if not workers:
            raise CheckpointError("coordinator needs at least one registered worker")
        self.config = config
        self.directory = Path(config.checkpoint_dir)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.workers: Tuple[str, ...] = tuple(workers)
        self.lock = CoordinatorLock(
            self.directory, stale_seconds=config.checkpoint_lock_stale_seconds
        )
        self.stores = build_blob_stores(config, throttles=throttles)
        #: In-flight in-process drains (worker → nesting count): while any is
        #: active the blob sweep stands down, because that drain may have
        #: dedup-reused a blob its manifest has not yet pinned.
        self._drains: Dict[str, int] = {}
        self._drains_lock = threading.Lock()
        #: Promotions this instance performed (introspection / benches).
        self.promoted_versions: List[int] = []
        #: Versions this instance refused to promote (inconsistent cuts),
        #: with the reason.  A refused version is *skipped*, not fatal: later
        #: consistent versions still promote, and the skipped version's
        #: manifests are swept as orphans once a newer global commit lands.
        self.promotion_errors: List[str] = []
        #: Version numbers behind :attr:`promotion_errors` — excluded from
        #: completeness checks so a poisoned version is neither re-attempted
        #: on every election nor spun on by :meth:`promote_pending`.
        self._refused_versions: set = set()

    # -- drain tracking: in-process counts + on-disk intent leases -----------

    def drain_begin(self, worker: str) -> None:
        """Announce a drain before its first content-addressed reuse check.

        Two guards start here.  In-process, the nesting count under
        ``_drains_lock`` makes the GC's drain check atomic with its blob
        sweep.  Cross-process, a ``DRAIN-<worker>.lease`` sentinel is
        published *first*, then any live foreign ``GLOBAL.lock`` holder is
        waited out: a sweeper that took the lock before our lease landed
        could not have seen it, so the drain must not read a store key until
        that sweep (bounded, at most one per promotion) has finished.
        Either the lease landed before the sweeper's scan — and the sweep
        stands down — or the sweep completes before this method returns and
        every reuse check observes its deletions (a swept blob simply reads
        as absent and is re-written).
        """
        with self._drains_lock:
            count = self._drains.get(worker, 0)
            self._drains[worker] = count + 1
            if count == 0:
                self._publish_lease(worker)
        self._await_no_foreign_sweeper()

    def drain_end(self, worker: str) -> None:
        with self._drains_lock:
            count = self._drains.get(worker, 0) - 1
            if count <= 0:
                self._drains.pop(worker, None)
                self._retire_lease(worker)
            else:  # pragma: no cover - drains are serialized per writer
                self._drains[worker] = count

    def renew_drain_lease(self, worker: str) -> None:
        """Refresh the lease's mtime while a long drain runs.

        Liveness is judged by pid + start tick, so a healthy owner's lease
        never expires by age; the renewal keeps the *unreadable-lease*
        age-out honest if the lease file itself is ever damaged.
        """
        try:
            os.utime(self.directory / drain_lease_name(worker))
        except OSError:  # pragma: no cover - lease raced away / FS hiccup
            pass

    def _publish_lease(self, worker: str) -> None:
        path = self.directory / drain_lease_name(worker)
        tmp = path.with_suffix(".lease.tmp")
        payload = json.dumps(
            {
                "pid": os.getpid(),
                "starttime": _proc_start_time(os.getpid()),
                "worker": worker,
                "created_unix": time.time(),
            }
        )
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_directory(self.directory)

    def _retire_lease(self, worker: str) -> None:
        # Unlink only a lease this process published (mirrors the lock
        # release): a peer that broke our lease as dead and republished for
        # the same worker name must not lose its own.
        path = self.directory / drain_lease_name(worker)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if int(payload.get("pid", -1)) == os.getpid():
                path.unlink()
        except (OSError, ValueError, TypeError):  # pragma: no cover - torn/raced
            pass

    def _await_no_foreign_sweeper(self) -> None:
        """Block while another *live process* holds ``GLOBAL.lock``.

        Our own process's holders need no wait — their GC is already atomic
        with the in-process drain count via ``_drains_lock``.  A dead
        holder's lock is the next election's problem, not ours.  The wait is
        bounded: a holder outliving twice the stale horizon is logged and no
        longer waited on (its sweep, if any, is long finished — GC holds the
        lock for one bounded pass).
        """
        deadline = time.monotonic() + 2.0 * self.lock.stale_seconds
        path = self.lock.path
        while time.monotonic() < deadline:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                pid = int(payload["pid"])
            except FileNotFoundError:
                return
            except (OSError, ValueError, KeyError, TypeError):
                # Unreadable: either torn mid-write (the write is tiny — a
                # re-read resolves it) or a crash's empty leftover, which
                # ages out by mtime exactly as the election treats it.
                try:
                    if (time.time() - path.stat().st_mtime) > self.lock.stale_seconds:
                        return
                except OSError:
                    return  # vanished — released
                time.sleep(0.002)
                continue
            if pid == os.getpid():
                return
            starttime = payload.get("starttime")
            if starttime is not None:
                current = _proc_start_time(pid)
                if current is not None and current != int(starttime):
                    return  # pid reused — the holding process is dead
            if _proc_is_zombie(pid):
                return  # exited unreaped — its sweep can never resume
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return
            except PermissionError:  # pragma: no cover - alive, other user
                pass
            time.sleep(0.005)
        _LOG.warning(  # pragma: no cover - pathological holder
            "drain proceeding: %s held live beyond %.0fs", path, 2 * self.lock.stale_seconds
        )

    def _scan_leases(self) -> Tuple[List[Path], List[Path]]:
        """Split the drain-intent leases into (live-owner, dead-owner) lists."""
        live: List[Path] = []
        dead: List[Path] = []
        for lease in self.directory.glob(LEASE_GLOB):
            if self.lock._owner_is_dead(lease):
                dead.append(lease)
            else:
                live.append(lease)
        return live, dead

    def _break_dead_leases(self, leases: Sequence[Path]) -> None:
        for lease in leases:
            _LOG.info("breaking dead drain lease %s", lease.name)
            try:
                lease.unlink()
            except FileNotFoundError:  # pragma: no cover - lost a race
                pass

    # -- global version queries ---------------------------------------------

    def global_versions(self) -> List[int]:
        """Committed global versions, ascending (one atomic listing)."""
        return sorted(scan_manifest_dir(self.directory).global_versions)

    def load_global(self, version: int) -> GlobalCommitRecord:
        path = self.directory / global_record_name(version)
        try:
            record = GlobalCommitRecord.from_json(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CheckpointError(
                f"no global checkpoint version {version} in {str(self.directory)!r}"
            ) from None
        if record.version != version:
            raise CheckpointError(
                f"global record {path.name} claims version {record.version}"
            )
        return record

    def latest_global(self) -> Optional[GlobalCommitRecord]:
        versions = self.global_versions()
        return self.load_global(versions[-1]) if versions else None

    # -- phase two: promotion ------------------------------------------------

    def _complete_versions(self, snapshot: ManifestDirSnapshot) -> List[int]:
        """Versions beyond the newest global for which every worker landed."""
        newest = max(snapshot.global_versions, default=0)
        candidates: Optional[set] = None
        for worker in self.workers:
            landed = set(snapshot.prepared.get(worker, {})) | set(
                snapshot.committed.get(worker, {})
            )
            candidates = landed if candidates is None else candidates & landed
        assert candidates is not None
        return sorted(
            v for v in candidates if v > newest and v not in self._refused_versions
        )

    #: Lock-contention retry schedule for ``try_promote``: a complete version
    #: must not silently stay un-promoted just because the current holder's
    #: re-scan ran before our prepared manifest landed — without a retry, a
    #: run's *final* checkpoint (no later drain to pick it up) would roll
    #: back at restart.
    _PROMOTE_ATTEMPTS = 10
    _PROMOTE_RETRY_SECONDS = 0.02

    def try_promote(self) -> Optional[int]:
        """Promote every fully-prepared version; return the newest promoted.

        Called by any rank after its drain publishes a prepared manifest
        (and again from ``checkpoint_wait``, so a quiesced job always gets
        its last complete version promoted).  Returns ``None`` when no
        version is complete yet, or when the election stayed contended for
        the whole (short) retry window — the next call promotes then.

        A version whose per-rank manifests disagree on the iteration number
        is recorded in :attr:`promotion_errors` and skipped — it can never
        become a consistent cut, but it must not wedge every later
        checkpoint either; its manifests are swept as orphans once a newer
        version commits.
        """
        acquired = False
        for attempt in range(self._PROMOTE_ATTEMPTS):
            if not self._complete_versions(scan_manifest_dir(self.directory)):
                return None
            if self.lock.acquire():
                acquired = True
                break
            time.sleep(self._PROMOTE_RETRY_SECONDS)
        if not acquired:
            return None
        try:
            promoted: Optional[int] = None
            # Re-scan under the lock: the pre-check above is advisory only.
            snapshot = scan_manifest_dir(self.directory)
            for version in self._complete_versions(snapshot):
                try:
                    self._promote_one(snapshot, version)
                except CheckpointError as exc:
                    _LOG.error("refusing to promote version %d: %s", version, exc)
                    self.promotion_errors.append(f"v{version}: {exc}")
                    self._refused_versions.add(version)
                    continue
                promoted = version
                self.promoted_versions.append(version)
            if promoted is not None:
                self._collect_garbage()
            return promoted
        finally:
            self.lock.release()

    def _promote_one(
        self,
        snapshot: ManifestDirSnapshot,
        version: int,
        *,
        workers: Optional[Tuple[str, ...]] = None,
    ) -> None:
        """Rename each rank's prepared manifest and write ``GLOBAL-<v>.json``.

        ``workers`` overrides the instance registry for this one version —
        the restart roll-forward uses it to promote a cut written by a
        *different* world size than the restarting job's.
        """
        workers = self.workers if workers is None else workers
        iterations: Dict[str, int] = {}
        for worker in workers:
            path = snapshot.prepared.get(worker, {}).get(version)
            if path is None:
                path = snapshot.committed[worker][version]
            manifest = CheckpointManifest.from_json(path.read_text(encoding="utf-8"))
            if manifest.worker != worker or manifest.version != version:
                raise CheckpointError(
                    f"manifest {path.name} claims worker {manifest.worker!r} "
                    f"version {manifest.version}"
                )
            iterations[worker] = manifest.iteration
        if len(set(iterations.values())) != 1:
            raise CheckpointError(
                f"version {version} is inconsistent across ranks: per-worker "
                f"iterations {iterations} — the ranks did not checkpoint the "
                "same cut"
            )
        for worker in workers:
            prepared = snapshot.prepared.get(worker, {}).get(version)
            if prepared is not None:
                committed = self.directory / f"ckpt-{worker}-{version:06d}.json"
                os.replace(prepared, committed)
        _fsync_directory(self.directory)
        fault_point("mid-promote", version=version)
        record = GlobalCommitRecord(
            version=version,
            iteration=next(iter(iterations.values())),
            workers=workers,
            created_unix=time.time(),
        )
        path = self.directory / global_record_name(version)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_directory(self.directory)
        _LOG.info("global checkpoint v%d committed (%d workers)", version, len(workers))

    def promote_pending(self, timeout: float = 5.0) -> Optional[int]:
        """Keep electing until every currently-complete version is promoted.

        ``try_promote``'s short retry window is fine mid-run (a later drain
        retries), but a *quiesced* job — ``checkpoint_wait`` after the final
        drain — has no later drain: losing the election there would leave
        the run's last complete version un-promoted and roll it back at
        restart.  This blocks (bounded by ``timeout``) until no complete
        unpromoted version remains, re-standing for election whenever the
        current holder releases.  Returns the newest version promoted by
        this caller, if any.
        """
        deadline = time.monotonic() + timeout
        promoted: Optional[int] = None
        while self._complete_versions(scan_manifest_dir(self.directory)):
            try:
                result = self.try_promote()
            except Exception as exc:  # noqa: BLE001 - promotion is retried
                # Transient promotion I/O (a flaky PFS rename, a peer
                # manifest read) must not crash the caller: the local
                # checkpoints are durable, and the election retries below
                # until the deadline.
                _LOG.warning("promotion attempt failed (will retry): %s", exc)
                result = None
            if result is not None:
                promoted = result
                continue
            if time.monotonic() >= deadline:
                _LOG.warning(
                    "gave up promoting a complete checkpoint version after %.1fs "
                    "of election contention",
                    timeout,
                )
                break
            time.sleep(self._PROMOTE_RETRY_SECONDS)
        return promoted

    # -- restart: roll-forward promotion + torn-commit cleanup ---------------

    def _roll_forward_candidates(self, snapshot: ManifestDirSnapshot) -> List[int]:
        """Versions beyond the newest global with *any* landed manifest."""
        newest = max(snapshot.global_versions, default=0)
        candidates: set = set()
        for per_worker in (snapshot.prepared, snapshot.committed):
            for versions in per_worker.values():
                candidates.update(v for v in versions if v > newest)
        return sorted(candidates - self._refused_versions)

    def _version_workers(
        self, snapshot: ManifestDirSnapshot, version: int
    ) -> Optional[Tuple[str, ...]]:
        """The worker set a landed ``version`` needs for completeness.

        Derived from the manifests' own layout echo (``num_ranks``), **not**
        from this instance's registry: a restart may run at a different
        world size than the job that wrote the cut, and the cut is complete
        exactly when every rank of *its* world landed.  Returns ``None``
        when not all of them did (a torn commit, left for
        :meth:`discard_torn`).
        """
        for per_worker in (snapshot.prepared, snapshot.committed):
            for versions in per_worker.values():
                path = versions.get(version)
                if path is None:
                    continue
                manifest = CheckpointManifest.from_json(path.read_text(encoding="utf-8"))
                num_ranks = int(manifest.layout.get("num_ranks", 0))
                if num_ranks < 1:
                    return None
                required = tuple(f"rank{r}" for r in range(num_ranks))
                for worker in required:
                    landed = snapshot.prepared.get(worker, {}).get(
                        version
                    ) or snapshot.committed.get(worker, {}).get(version)
                    if landed is None:
                        return None
                return required
        return None  # pragma: no cover - callers pass landed candidates only

    def roll_forward(self, timeout: float = 5.0) -> Optional[int]:
        """Promote fully-landed-but-never-promoted versions at restart.

        A crash after every rank published version ``v`` but before any
        election wrote ``GLOBAL-<v>.json`` (or after a promoter's renames
        but before its record landed) leaves strictly more progress on disk
        than the newest global record admits.  Rolling *back* past ``v``
        would discard a complete, consistent cut; this promotes it instead.
        Runs under the election lock and blocks (bounded by ``timeout``)
        while another restarting rank holds it — returning early with the
        lock contended could resolve a different "newest global" than the
        peer that is mid-promotion.  Completeness is judged against each
        version's *own* world size (from its manifests' layout echo), so a
        restart at a new world size still rolls an old-world cut forward.
        Returns the newest version promoted by this caller, if any.
        """
        deadline = time.monotonic() + timeout
        while True:
            if not self._roll_forward_candidates(scan_manifest_dir(self.directory)):
                return None
            if self.lock.acquire():
                break
            if time.monotonic() >= deadline:
                _LOG.warning("roll-forward gave up on a contended election lock")
                return None
            time.sleep(self._PROMOTE_RETRY_SECONDS)
        try:
            promoted: Optional[int] = None
            snapshot = scan_manifest_dir(self.directory)
            for version in self._roll_forward_candidates(snapshot):
                workers = self._version_workers(snapshot, version)
                if workers is None:
                    continue  # torn — discard_torn's job
                try:
                    self._promote_one(snapshot, version, workers=workers)
                except CheckpointError as exc:
                    _LOG.error("refusing to roll version %d forward: %s", version, exc)
                    self.promotion_errors.append(f"v{version}: {exc}")
                    self._refused_versions.add(version)
                    continue
                _LOG.info("rolled checkpoint version %d forward at restart", version)
                promoted = version
                self.promoted_versions.append(version)
            if promoted is not None:
                self._collect_garbage()
            return promoted
        finally:
            self.lock.release()

    def discard_torn(self, global_version: int) -> int:
        """Delete per-rank manifests newer than ``global_version``.

        Called on restart once the newest global version is chosen: anything
        a rank published beyond it — prepared or already renamed by a
        promoter that died mid-promotion — belongs to a commit that never
        (and now never will) complete.  Returns the number of manifests
        discarded.  Runs under the election lock so concurrent restarting
        ranks do not interleave with a live promotion; their own discards
        are idempotent.
        """
        discarded = 0
        if not self.lock.acquire():
            # Another restarting rank holds the lock and is doing this exact
            # cleanup; nothing left for us once it finishes.
            return 0
        try:
            snapshot = scan_manifest_dir(self.directory)
            if max(snapshot.global_versions, default=0) > global_version:
                raise CheckpointError(
                    f"cannot discard beyond global version {global_version}: a newer "
                    "global commit exists"
                )
            # Crashed ranks' drain-intent leases would otherwise linger until
            # the first post-restart promotion's GC; break them here so a
            # fresh job starts with a clean protocol directory.
            _live, dead_leases = self._scan_leases()
            self._break_dead_leases(dead_leases)
            for per_worker in (snapshot.prepared, snapshot.committed):
                for versions in per_worker.values():
                    for version, path in versions.items():
                        if version > global_version:
                            try:
                                path.unlink()
                                discarded += 1
                            except FileNotFoundError:
                                pass
            if discarded:
                _LOG.info(
                    "discarded %d torn per-rank manifest(s) beyond global v%d",
                    discarded,
                    global_version,
                )
        finally:
            self.lock.release()
        return discarded

    # -- garbage collection on global versions -------------------------------

    def _sweep_promoter_debris(self) -> None:
        """Remove crashed promoters' leftovers; caller holds the lock.

        A promoter dying between writing ``GLOBAL-<v>.json.tmp`` and its
        rename strands the temp file (no worker-scoped sweep ever matches
        it); a breaker dying mid-:meth:`CoordinatorLock._break_stale`
        strands its claim tombstone.  Both are invisible to
        ``scan_manifest_dir`` and harmless to correctness — this keeps them
        from accumulating.  Holding the election lock guarantees no live
        promoter's temp write is in flight; tombstones are only swept once
        aged (a live breaker holds one for microseconds).
        """
        for tmp in self.directory.glob("GLOBAL-*.json.tmp"):
            try:
                tmp.unlink()
            except FileNotFoundError:  # pragma: no cover - lost a race
                pass
        horizon = time.time() - self.lock.stale_seconds
        for tombstone in self.directory.glob(f"{LOCK_NAME}.break.*"):
            try:
                if tombstone.stat().st_mtime < horizon:
                    tombstone.unlink()
            except FileNotFoundError:  # pragma: no cover - lost a race
                pass

    def _collect_garbage(self) -> None:
        """Retention GC keyed on *global* versions; caller holds the lock.

        Works from one atomic directory listing: retire global records
        beyond the retention window, delete per-rank manifests whose version
        is at or below the newest global but not in any retained global
        version (retired versions plus torn-commit debris), then sweep
        content-addressed blobs no surviving manifest — committed *or*
        prepared — references.  The blob sweep stands down while any
        in-process drain is in flight.
        """
        self._sweep_promoter_debris()
        snapshot = scan_manifest_dir(self.directory)
        global_versions = sorted(snapshot.global_versions)
        if not global_versions:
            return
        retention = self.config.checkpoint_retention
        live = set(global_versions[-retention:])
        newest = global_versions[-1]
        for version in global_versions[:-retention]:
            try:
                snapshot.global_versions[version].unlink()
            except FileNotFoundError:  # pragma: no cover - lost a race
                pass
        for per_worker in (snapshot.committed, snapshot.prepared):
            for versions in per_worker.values():
                for version, path in versions.items():
                    if version <= newest and version not in live:
                        try:
                            path.unlink()
                        except FileNotFoundError:  # pragma: no cover - lost a race
                            pass
        fault_point("mid-gc", version=newest)
        # The drain check must be atomic with the sweep: a drain beginning
        # *after* a one-time check could dedup-reuse a blob this sweep is
        # concurrently deleting.  Holding ``_drains_lock`` across the scan
        # and sweep makes ``drain_begin`` block until the sweep finishes
        # (the sweep is bounded and runs at most once per promotion), so a
        # drain either registered before the check — and the sweep stands
        # down — or starts strictly after the last delete.  Cross-process
        # drains are covered the same way by their on-disk leases: publishing
        # happens before any reuse check, and a lease published after this
        # scan belongs to a drain whose ``drain_begin`` is still waiting out
        # our live ``GLOBAL.lock`` — it cannot read a key until we finish.
        with self._drains_lock:
            if self._drains:
                _LOG.debug("skipping blob sweep: a drain is in flight")
                return
            live_leases, dead_leases = self._scan_leases()
            self._break_dead_leases(dead_leases)
            if live_leases:
                _LOG.debug(
                    "skipping blob sweep: drain lease(s) held by live rank(s): %s",
                    [lease.name for lease in live_leases],
                )
                return
            try:
                referenced = referenced_blobs(
                    scan_manifest_dir(self.directory).manifest_paths(include_prepared=True)
                )
            except CheckpointError as exc:
                _LOG.warning("skipping checkpoint blob GC: %s", exc)
                return
            for tier, store in self.stores.items():
                for key in list(store.keys()):
                    if key.startswith(CAS_PREFIX) and (tier, key) not in referenced:
                        store.delete(key)


# -- in-process sharing -------------------------------------------------------

#: One coordinator per checkpoint directory per process (weak: the entry dies
#: with the last engine referencing it).  Drain tracking — the guard that
#: suspends the blob sweep while a rank's drain may have dedup-reused an
#: otherwise-unreferenced blob — only protects ranks that share an instance,
#: so engines that are not handed an explicit coordinator must converge on
#: the same one rather than each silently constructing a private copy.
_SHARED_COORDINATORS: "weakref.WeakValueDictionary[str, CheckpointCoordinator]" = (
    weakref.WeakValueDictionary()
)
_SHARED_COORDINATORS_LOCK = threading.Lock()


def shared_coordinator(
    config: "MLPOffloadConfig",
    *,
    workers: Sequence[str],
    throttles: Optional[Dict[str, object]] = None,
) -> CheckpointCoordinator:
    """The process-wide coordinator for ``config.checkpoint_dir``.

    Returns the existing instance when one is alive for the same directory
    and worker registry (in-process data-parallel engines then share drain
    tracking automatically); otherwise constructs and registers a new one.
    A caller whose registry disagrees with the registered instance gets a
    private coordinator — mismatched worlds must not silently merge.
    """
    key = os.path.realpath(str(config.checkpoint_dir))
    with _SHARED_COORDINATORS_LOCK:
        existing = _SHARED_COORDINATORS.get(key)
        if existing is not None and existing.workers == tuple(workers):
            return existing
        coordinator = CheckpointCoordinator(config, workers=workers, throttles=throttles)
        if existing is None:
            _SHARED_COORDINATORS[key] = coordinator
        return coordinator
