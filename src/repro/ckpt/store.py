"""Content-addressed checkpoint blob stores.

Checkpoint payloads live in one :class:`~repro.tiers.file_store.FileStore`
per active physical tier, rooted *inside* that tier's directory
(``<tier.path>/_ckpt``).  Keeping the blob store on the same filesystem as
the tier it shadows is what makes "reference, don't copy" possible: a
tier-resident subgroup blob is brought into the checkpoint with a hard link
(:meth:`FileStore.adopt`) — zero data movement — and stays valid even after
the next iteration overwrites the tier's key, because the tier store never
mutates a blob in place.

Keys are content-addressed (:func:`repro.ckpt.manifest.cas_key`: payload
64-bit BLAKE2b digest plus size), so identical payloads are stored once no matter how many
versions or workers reference them, and garbage collection is a simple sweep
of keys no committed manifest references.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, Mapping, Optional

from repro.tiers import faultstore
from repro.tiers.file_store import FileStore
from repro.tiers.spec import BlobStore

if TYPE_CHECKING:  # pragma: no cover - break the core <-> ckpt import cycle
    from repro.core.config import MLPOffloadConfig

#: Subdirectory of each tier path holding that tier's checkpoint blobs.
CKPT_SUBDIR = "_ckpt"
#: Prefix of content-addressed blob keys (GC only ever touches these).
CAS_PREFIX = "cas"


def blob_store_roots(config: "MLPOffloadConfig") -> Dict[str, Path]:
    """Blob-store directory per active tier (mirrors the virtual tier's set)."""
    active = config.tiers if config.enable_multipath else (config.primary_tier,)
    return {tier.name: Path(tier.path) / CKPT_SUBDIR for tier in active}


def build_blob_stores(
    config: "MLPOffloadConfig",
    *,
    throttles: Optional[Mapping[str, object]] = None,
) -> Dict[str, BlobStore]:
    """Create the per-tier checkpoint blob stores.

    ``throttles`` should be the same bandwidth-throttle objects driving the
    corresponding tier stores, so checkpoint traffic and training I/O share
    each path's device timeline — the contention is real, which is what the
    overhead benchmark measures.
    """
    stores: Dict[str, BlobStore] = {}
    for name, root in blob_store_roots(config).items():
        throttle = None
        if throttles is not None:
            throttle = throttles.get(name)  # type: ignore[assignment]
        # Checkpoint blobs ride the same filesystem as the tier they shadow,
        # so they use the same configured raw-I/O backend (resolved per
        # store: each probes its own directory and falls back independently).
        stores[name] = FileStore(root, name=name, throttle=throttle, backend=config.io.backend)
    # Same injection point as the virtual tier's stores: an armed fault plan
    # (chaos tests) covers checkpoint blob traffic too.  No-op otherwise.
    return faultstore.maybe_wrap(stores)
