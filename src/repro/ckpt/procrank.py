"""Real-process rank harness for the checkpoint crash matrix.

Every other test of the coordinated checkpoint protocol drives *threaded*
in-process ranks; this module spawns real OS processes — one per rank,
``python -m repro.ckpt.procrank --spec … --rank N`` — all training against
one shared checkpoint directory, exactly like data-parallel workers on one
node.  The driver can arm any worker, purely through its environment
(:mod:`repro.ckpt.faults`), to ``SIGKILL`` itself at an exact protocol
phase: mid-drain, pre-publish, post-publish, mid-promote (holding
``GLOBAL.lock``!) or mid-GC.  No cleanup handler runs — what lands on disk
is what a node loss leaves behind.  A resume wave of fresh processes (any
world size, same or different) must then restart every rank from one
consistent ``GLOBAL-<v>`` cut, bitwise-equal to an uninterrupted run.

The workload is deliberately deterministic and world-size-invariant: the
full global parameter/gradient vectors are derived from the spec's seed and
each rank trains its :class:`ShardLayout` slice.  Because the CPU Adam
update is elementwise, the gathered FP16/FP32 state after iteration *k* is
bitwise-identical for every world size — :func:`reference_state` computes
it once with a single in-process rank and serves as the oracle for both
crash-restart and elastic-restart assertions.

Worker protocol details the driver relies on:

* each worker writes ``result-rank<r>.npz`` (its FP16 params, gathered FP32
  master state, and global interval) plus ``timings-rank<r>-<tag>.json`` on
  a clean exit — a killed worker leaves neither;
* a resuming worker restores, then waits at a file barrier
  (``restored-rank<r>.flag``) until *every* rank of the wave restored —
  without it, a fast rank's first new drain could race a slow peer's
  torn-manifest discard;
* ``--hold-drain-lease`` mode publishes a drain-intent lease and parks until
  told to release — the GC-window regression test uses it as a foreign rank
  frozen mid-drain.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ckpt.coordinator import LEASE_GLOB, LOCK_NAME, CheckpointCoordinator
from repro.ckpt.faults import FAULT_ENV
from repro.core.config import MLPOffloadConfig, TierConfig
from repro.train.adam import AdamConfig
from repro.train.sharding import build_shard_layout, flat_views

#: Phases where only the armed victim dies (the fault fires in its drain).
DRAIN_PHASES = ("mid-drain", "pre-publish", "post-publish")
#: Phases reached only by the election winner — the driver arms *every*
#: rank, because any of them may win ``GLOBAL.lock`` (and after the winner
#: dies, a peer's promotion retry wins and dies too).
PROMOTER_PHASES = ("mid-promote", "mid-gc")

_BARRIER_TIMEOUT = 60.0


@dataclass
class WorldSpec:
    """One deterministic multi-process training workload."""

    workdir: str
    world_size: int = 3
    total_params: int = 6_000
    subgroup_size: int = 500
    iterations: int = 3
    seed: int = 1234
    checkpoint_retention: int = 2

    def to_json(self, path: Path) -> None:
        path.write_text(json.dumps(asdict(self), indent=2))

    @classmethod
    def from_json(cls, path: Path) -> "WorldSpec":
        return cls(**json.loads(path.read_text()))

    @property
    def base(self) -> Path:
        return Path(self.workdir)


def make_config(spec: WorldSpec, world_size: Optional[int] = None) -> MLPOffloadConfig:
    """The shared storage/checkpoint configuration of the job."""
    base = spec.base
    for tier in ("nvme", "pfs"):
        (base / tier).mkdir(parents=True, exist_ok=True)
    return MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(base / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(base / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=spec.subgroup_size,
        host_cache_bytes=2 * spec.subgroup_size * 12,
        stripe_threshold_bytes=float(spec.subgroup_size * 2),
        checkpoint_dir=str(base / "ckpt"),
        checkpoint_coordination=True,
        checkpoint_world_size=world_size or spec.world_size,
        checkpoint_retention=spec.checkpoint_retention,
        adam=AdamConfig(lr=1e-3),
    )


def global_init(spec: WorldSpec) -> np.ndarray:
    """The full FP32 initial parameter vector (identical in every process)."""
    rng = np.random.default_rng(spec.seed)
    return rng.standard_normal(spec.total_params).astype(np.float32)


def global_grad(spec: WorldSpec, iteration: int) -> np.ndarray:
    """The full FP32 gradient vector of one iteration."""
    rng = np.random.default_rng(spec.seed + 1 + iteration)
    return (rng.standard_normal(spec.total_params) * 0.1).astype(np.float32)


def reference_state(
    spec: WorldSpec, iterations: Optional[int] = None, *, workdir: Optional[Path] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """The uninterrupted trajectory's ``(fp16, fp32 master)`` global state.

    Runs a single in-process rank over the full parameter space with no
    checkpointing; the elementwise Adam update makes the result bitwise-equal
    to the gathered state of *any* world size after the same iterations.
    """
    from repro.aio.locks import TierLockManager
    from repro.core.engine import MLPOffloadEngine

    base = Path(workdir) if workdir is not None else spec.base / "reference"
    for tier in ("nvme", "pfs"):
        (base / tier).mkdir(parents=True, exist_ok=True)
    config = MLPOffloadConfig(
        tiers=(
            TierConfig("nvme", str(base / "nvme"), read_bw=6.9e9, write_bw=5.3e9),
            TierConfig("pfs", str(base / "pfs"), read_bw=3.6e9, write_bw=3.6e9),
        ),
        subgroup_size=spec.subgroup_size,
        host_cache_bytes=2 * spec.subgroup_size * 12,
        stripe_threshold_bytes=float(spec.subgroup_size * 2),
        adam=AdamConfig(lr=1e-3),
    )
    layout = build_shard_layout(
        spec.total_params, num_ranks=1, subgroup_size=spec.subgroup_size
    )
    engine = MLPOffloadEngine(config, layout, rank=0, lock_manager=TierLockManager())
    try:
        init = global_init(spec)
        engine.initialize(init.copy())
        fp16 = init.astype(np.float16)
        views = flat_views(None, layout, 0)
        for it in range(iterations if iterations is not None else spec.iterations):
            grad = global_grad(spec, it)
            for index, view in views.items():
                engine.on_backward_gradient(index, grad[view].astype(np.float16))
            engine.on_microbatch_complete()
            engine.run_update(fp16)
        return fp16.copy(), engine.fetch_master_params()
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Worker side (runs inside the spawned process)
# ---------------------------------------------------------------------------


def _result_path(spec: WorldSpec, rank: int) -> Path:
    return spec.base / f"result-rank{rank}.npz"


def _barrier_flag(spec: WorldSpec, rank: int) -> Path:
    return spec.base / f"restored-rank{rank}.flag"


def _restore_barrier(spec: WorldSpec, rank: int, world_size: int) -> None:
    """Wait until every rank of the resume wave finished restoring.

    A rank that starts training immediately after its own restore would
    publish a new prepared manifest beyond the newest global version — a
    slow peer still inside ``discard_torn`` could legally delete it as torn
    debris.  Real launchers have a collective barrier here; files stand in.
    """
    _barrier_flag(spec, rank).write_text(str(os.getpid()))
    deadline = time.monotonic() + _BARRIER_TIMEOUT
    while time.monotonic() < deadline:
        if all(_barrier_flag(spec, r).exists() for r in range(world_size)):
            return
        time.sleep(0.005)
    raise TimeoutError(f"rank {rank}: restore barrier timed out")


def run_worker(
    spec: WorldSpec, rank: int, world_size: int, *, resume: bool, tag: str
) -> None:
    """One rank's training loop: step, checkpoint every iteration, exit."""
    from repro.aio.locks import TierLockManager
    from repro.core.engine import MLPOffloadEngine

    config = make_config(spec, world_size)
    layout = build_shard_layout(
        spec.total_params, num_ranks=world_size, subgroup_size=spec.subgroup_size
    )
    engine = MLPOffloadEngine(config, layout, rank=rank, lock_manager=TierLockManager())
    start, stop = layout.rank_intervals[rank]
    views = flat_views(None, layout, rank)
    timings: Dict[str, object] = {"rank": rank, "tag": tag, "step_seconds": []}
    try:
        if resume:
            t0 = time.perf_counter()
            restored = engine.restore_checkpoint()
            timings["restore_seconds"] = time.perf_counter() - t0
            timings["restored_version"] = restored.version
            fp16 = restored.fp16_params
            start_iter = int(restored.iteration)
            _restore_barrier(spec, rank, world_size)
        else:
            init = global_init(spec)[start:stop]
            engine.initialize(init.copy())
            fp16 = init.astype(np.float16)
            start_iter = 0
        for it in range(start_iter, spec.iterations):
            grad = global_grad(spec, it)[start:stop]
            t0 = time.perf_counter()
            for index, view in views.items():
                engine.on_backward_gradient(index, grad[view].astype(np.float16))
            engine.on_microbatch_complete()
            engine.run_update(fp16)
            engine.save_checkpoint(fp16, wait=True)
            timings["step_seconds"].append(time.perf_counter() - t0)
        engine.checkpoint_wait()
        master = engine.fetch_master_params()
        np.savez(
            _result_path(spec, rank),
            fp16=fp16,
            master=master,
            interval=np.array([start, stop], dtype=np.int64),
            iterations=np.int64(spec.iterations),
        )
        (spec.base / f"timings-rank{rank}-{tag}.json").write_text(json.dumps(timings))
    finally:
        engine.close()


def hold_drain_lease(spec: WorldSpec, rank: int, world_size: int) -> None:
    """Publish a drain-intent lease and park until the driver releases it.

    Models a foreign-process rank frozen *inside* its drain, right after the
    content-addressed reuse check — the window the leases exist to protect.
    """
    config = make_config(spec, world_size)
    coordinator = CheckpointCoordinator(
        config, workers=config.checkpoint_workers(world_size)
    )
    worker = f"rank{rank}"
    coordinator.drain_begin(worker)
    try:
        (spec.base / "lease-held.flag").write_text(str(os.getpid()))
        release = spec.base / "lease-release.flag"
        deadline = time.monotonic() + _BARRIER_TIMEOUT
        while time.monotonic() < deadline and not release.exists():
            time.sleep(0.005)
    finally:
        coordinator.drain_end(worker)


# ---------------------------------------------------------------------------
# Driver side (runs in the test / bench process)
# ---------------------------------------------------------------------------


def _worker_env(arm: Optional[str] = None) -> Dict[str, str]:
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    env.pop(FAULT_ENV, None)
    if arm:
        env[FAULT_ENV] = arm
    return env


def spawn_worker(
    spec: WorldSpec,
    rank: int,
    world_size: int,
    *,
    resume: bool = False,
    tag: str = "initial",
    arm: Optional[str] = None,
    spec_path: Optional[Path] = None,
) -> subprocess.Popen:
    """Launch one rank as a real OS process; ``arm`` is a fault spec."""
    if spec_path is None:
        spec.base.mkdir(parents=True, exist_ok=True)
        spec_path = spec.base / "spec.json"
        if not spec_path.exists():
            spec.to_json(spec_path)
    cmd = [
        sys.executable,
        "-m",
        "repro.ckpt.procrank",
        "--spec",
        str(spec_path),
        "--rank",
        str(rank),
        "--world-size",
        str(world_size),
        "--tag",
        tag,
    ]
    if resume:
        cmd.append("--resume")
    return subprocess.Popen(cmd, env=_worker_env(arm))


def run_world(
    spec: WorldSpec,
    world_size: int,
    *,
    resume: bool = False,
    tag: str = "initial",
    arm_by_rank: Optional[Dict[int, str]] = None,
    timeout: float = 120.0,
) -> List[int]:
    """Run one wave of worker processes to completion; returns exit codes.

    A ``-signal.SIGKILL`` code is an armed victim dying on schedule; the
    caller decides which codes a scenario permits.
    """
    if resume:
        for rank in range(world_size):
            _barrier_flag(spec, rank).unlink(missing_ok=True)
    procs = [
        spawn_worker(
            spec,
            rank,
            world_size,
            resume=resume,
            tag=tag,
            arm=(arm_by_rank or {}).get(rank),
        )
        for rank in range(world_size)
    ]
    codes = []
    deadline = time.monotonic() + timeout
    for proc in procs:
        remaining = max(1.0, deadline - time.monotonic())
        try:
            codes.append(proc.wait(timeout=remaining))
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            raise
    return codes


def arm_plan(phase: str, victim: int, world_size: int, version: int) -> Dict[int, str]:
    """Which ranks to arm so that ``phase`` kills a real process at ``version``.

    Drain-side phases fire inside the victim's own drain.  Promoter phases
    fire only in whichever rank wins the election — unknowable in advance —
    so every rank is armed; the scenario then kills the *actual* elected
    promoter (and any peer whose promotion retry wins next).
    """
    spec = f"{phase}@{version}"
    if phase in PROMOTER_PHASES:
        return {rank: spec for rank in range(world_size)}
    return {victim: spec}


def run_crash_scenario(
    spec: WorldSpec,
    *,
    phase: str,
    victim: int,
    version: int,
    resume_world_size: Optional[int] = None,
) -> Dict[str, object]:
    """One crash-matrix cell: train, kill at a phase, resume, collect.

    Returns the gathered post-resume state plus the victim wave's exit
    codes.  The resume wave is never armed.
    """
    initial_codes = run_world(
        spec,
        spec.world_size,
        tag="initial",
        arm_by_rank=arm_plan(phase, victim, spec.world_size, version),
    )
    assert -signal.SIGKILL in initial_codes, (
        f"{phase}@{version}: no process died — fault never fired "
        f"(exit codes {initial_codes})"
    )
    resume_world = resume_world_size or spec.world_size
    t0 = time.perf_counter()
    resume_codes = run_world(spec, resume_world, resume=True, tag="resume")
    recovery_seconds = time.perf_counter() - t0
    assert resume_codes == [0] * resume_world, (
        f"{phase}@{version}: resume wave failed with exit codes {resume_codes}"
    )
    fp16, master = collect_results(spec, resume_world)
    return {
        "initial_codes": initial_codes,
        "resume_codes": resume_codes,
        "recovery_seconds": recovery_seconds,
        "fp16": fp16,
        "master": master,
    }


def collect_results(spec: WorldSpec, world_size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Gather every rank's result file into global FP16/FP32 vectors."""
    fp16 = np.zeros(spec.total_params, dtype=np.float16)
    master = np.zeros(spec.total_params, dtype=np.float32)
    covered = 0
    for rank in range(world_size):
        with np.load(_result_path(spec, rank)) as data:
            start, stop = (int(v) for v in data["interval"])
            fp16[start:stop] = data["fp16"]
            master[start:stop] = data["master"]
            covered += stop - start
    if covered != spec.total_params:
        raise AssertionError(
            f"rank results cover {covered} of {spec.total_params} parameters"
        )
    return fp16, master


def leaked_sentinels(spec: WorldSpec) -> List[str]:
    """Leases or election locks left behind after all processes exited."""
    ckpt = spec.base / "ckpt"
    if not ckpt.is_dir():
        return []
    leaks = [p.name for p in ckpt.glob(LEASE_GLOB)]
    lock = ckpt / LOCK_NAME
    if lock.exists():
        leaks.append(lock.name)
    return leaks


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", required=True, help="path to the WorldSpec json")
    parser.add_argument("--rank", type=int, required=True)
    parser.add_argument("--world-size", type=int, required=True)
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--tag", default="initial", help="label for the timings file")
    parser.add_argument(
        "--hold-drain-lease",
        action="store_true",
        help="publish a drain lease and park until lease-release.flag appears",
    )
    args = parser.parse_args(argv)
    spec = WorldSpec.from_json(Path(args.spec))
    if args.hold_drain_lease:
        hold_drain_lease(spec, args.rank, args.world_size)
        return 0
    run_worker(spec, args.rank, args.world_size, resume=args.resume, tag=args.tag)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
