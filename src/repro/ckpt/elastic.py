"""Elastic restart: restore a global cut under a different world size.

A ``GLOBAL-<v>.json`` commit record pins one consistent cut of the job —
every rank's manifest at version ``v``.  Nothing about those manifests is
tied to the number of ranks that *restores* them: the shard layout is pure
index arithmetic over the flat global parameter space
(:func:`repro.train.sharding.build_shard_layout`), every blob segment
records its element extent, and the CPU Adam update is elementwise — so the
FP32 master state of a parameter depends only on its own gradient history,
never on which rank happened to own it.  Restoring an N-rank cut on M ranks
is therefore a *re-partitioning*, not a retraining concern: rebuild the
writing job's layout from the manifests' layout echo, map each restoring
rank's global interval onto the old subgroups that overlap it, read each
old blob once and scatter the overlapping slices into the new rank's
subgroup buffers.  The gathered FP32 master state after an elastic restore
is bitwise-equal to the pre-crash N-rank gather.

The planner here is engine-agnostic: :func:`open_elastic_source` loads and
cross-validates every old rank's manifest for the cut,
:func:`repartition` serves arbitrary ``(field, global interval)`` read
requests from the old blobs, and :func:`interval_step` resolves the Adam
step counter of a new subgroup from the old subgroups it overlaps.
:meth:`repro.core.engine.OffloadEngineBase.restore_checkpoint` drives them
whenever the global record's world size differs from the engine's layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ckpt.manifest import CheckpointError, CheckpointManifest
from repro.ckpt.restore import CheckpointReader
from repro.train.sharding import ShardLayout, build_shard_layout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ckpt.coordinator import GlobalCommitRecord
    from repro.core.config import MLPOffloadConfig
    from repro.tiers.array_pool import ArrayPool

#: One re-partitioning read request: field name ("fp16" or an FP32 state
#: field), the half-open global element interval wanted, and the 1-D output
#: array (sized ``stop - start``, dtype float16 for "fp16", float32 else).
RepartitionRequest = Tuple[str, int, int, np.ndarray]


@dataclass
class ElasticSource:
    """One global cut opened for re-partitioned reads."""

    version: int
    iteration: int
    old_layout: ShardLayout
    #: Old worker → its manifest of the cut (``rank0 … rank{N-1}``).
    manifests: Dict[str, CheckpointManifest]
    readers: Dict[str, CheckpointReader]
    #: Caller user-data of the cut (taken from rank 0's manifest; the
    #: trainer-level payload is identical across ranks by construction).
    user_data: Dict[str, object]


def open_elastic_source(
    config: "MLPOffloadConfig",
    record: "GlobalCommitRecord",
    *,
    throttles: Optional[Dict[str, object]] = None,
) -> ElasticSource:
    """Load and cross-validate every old rank's manifest of ``record``."""
    expected_workers = tuple(f"rank{r}" for r in range(len(record.workers)))
    if tuple(record.workers) != expected_workers:
        raise CheckpointError(
            f"global v{record.version} names workers {list(record.workers)}; elastic "
            f"restore requires the canonical rank0…rank{len(record.workers) - 1} registry"
        )
    manifests: Dict[str, CheckpointManifest] = {}
    readers: Dict[str, CheckpointReader] = {}
    echo: Optional[Dict[str, int]] = None
    iterations = set()
    for worker in record.workers:
        reader = CheckpointReader(config, worker=worker, throttles=throttles)
        manifest = reader.load_manifest(record.version)
        if manifest.worker != worker or manifest.version != record.version:
            raise CheckpointError(
                f"manifest of {worker!r} claims worker {manifest.worker!r} "
                f"version {manifest.version}"
            )
        readers[worker] = reader
        manifests[worker] = manifest
        iterations.add(int(manifest.iteration))
        if echo is None:
            echo = manifest.layout
        else:
            for key in ("total_params", "num_ranks", "subgroup_size"):
                if manifest.layout.get(key) != echo.get(key):
                    raise CheckpointError(
                        f"global v{record.version} has inconsistent layout echoes: "
                        f"{worker!r} records {manifest.layout}, rank0 {echo}"
                    )
    assert echo is not None
    if len(iterations) != 1:
        raise CheckpointError(
            f"global v{record.version} manifests disagree on the iteration: "
            f"{sorted(iterations)}"
        )
    if int(echo.get("num_ranks", 0)) != len(record.workers):
        raise CheckpointError(
            f"global v{record.version} covers {len(record.workers)} workers but its "
            f"manifests echo num_ranks={echo.get('num_ranks')}"
        )
    old_layout = build_shard_layout(
        int(echo["total_params"]),
        num_ranks=int(echo["num_ranks"]),
        subgroup_size=int(echo["subgroup_size"]),
    )
    return ElasticSource(
        version=record.version,
        iteration=iterations.pop(),
        old_layout=old_layout,
        manifests=manifests,
        readers=readers,
        user_data=dict(manifests[record.workers[0]].user_data),
    )


def _overlaps(
    start: int, stop: int, requests: Sequence[Tuple[int, int, np.ndarray]]
) -> List[Tuple[int, int, np.ndarray, int]]:
    """Requests overlapping ``[start, stop)`` as (lo, hi, out, request_start)."""
    found = []
    for req_start, req_stop, out in requests:
        lo, hi = max(start, req_start), min(stop, req_stop)
        if lo < hi:
            found.append((lo, hi, out, req_start))
    return found


def repartition(
    source: ElasticSource,
    requests: Sequence[RepartitionRequest],
    *,
    pool: Optional["ArrayPool"] = None,
    verify: bool = True,
) -> None:
    """Serve global-interval read requests from the old world's blobs.

    Iterates the *old* shards on the outside so every old blob is read (and
    digest-verified, with ``verify`` on) exactly once per field, no matter
    how many new-world subgroups its interval straddles; the overlapping
    slices are scattered into each request's output in global coordinates.
    Scratch buffers come from ``pool`` when given (the engine's zero-copy
    discipline), plain allocations otherwise.
    """
    fp16_requests: List[Tuple[int, int, np.ndarray]] = []
    state_requests: Dict[str, List[Tuple[int, int, np.ndarray]]] = {}
    for field, start, stop, out in requests:
        if stop - start != out.size:
            raise CheckpointError(
                f"repartition request {field!r} [{start}, {stop}) does not match "
                f"its output of {out.size} elements"
            )
        if field == "fp16":
            fp16_requests.append((start, stop, out))
        else:
            state_requests.setdefault(field, []).append((start, stop, out))

    def scratch(count: int, dtype) -> np.ndarray:
        return pool.acquire(count, dtype) if pool is not None else np.empty(count, dtype)

    def recycle(array: np.ndarray) -> None:
        if pool is not None:
            pool.release(array)

    # FP16 working copy: one blob per old rank, covering its whole interval.
    for rank, (rank_start, rank_stop) in enumerate(source.old_layout.rank_intervals):
        hits = _overlaps(rank_start, rank_stop, fp16_requests)
        if not hits:
            continue
        worker = f"rank{rank}"
        buf = scratch(rank_stop - rank_start, np.float16)
        try:
            source.readers[worker].read_blob(
                source.manifests[worker].fp16_params, buf, verify=verify, pool=pool
            )
            for lo, hi, out, req_start in hits:
                out[lo - req_start : hi - req_start] = buf[lo - rank_start : hi - rank_start]
        finally:
            recycle(buf)

    # FP32 state fields: one blob per old subgroup per field.
    for osg in source.old_layout.subgroups:
        worker = f"rank{osg.rank}"
        manifest = source.manifests[worker]
        for field, reqs in state_requests.items():
            hits = _overlaps(osg.global_start, osg.global_stop, reqs)
            if not hits:
                continue
            fields = manifest.subgroups.get(osg.index)
            ref = None if fields is None else fields.get(field)
            if ref is None:
                raise CheckpointError(
                    f"global v{source.version} lacks field {field!r} of {worker}'s "
                    f"subgroup {osg.index}"
                )
            buf = scratch(osg.num_params, np.float32)
            try:
                source.readers[worker].read_blob(ref, buf, verify=verify, pool=pool)
                for lo, hi, out, req_start in hits:
                    out[lo - req_start : hi - req_start] = buf[
                        lo - osg.global_start : hi - osg.global_start
                    ]
            finally:
                recycle(buf)


def interval_step(source: ElasticSource, start: int, stop: int) -> int:
    """The Adam step counter of the old subgroups covering ``[start, stop)``.

    Steps advance uniformly (every subgroup updates every iteration), so the
    old subgroups overlapping one new subgroup must agree; a disagreement
    means the manifests do not describe one consistent cut.
    """
    steps = set()
    for osg in source.old_layout.subgroups:
        if osg.global_start < stop and osg.global_stop > start:
            steps.add(int(source.manifests[f"rank{osg.rank}"].steps.get(osg.index, 0)))
    if len(steps) != 1:
        raise CheckpointError(
            f"global v{source.version}: Adam steps disagree across the old subgroups "
            f"covering [{start}, {stop}): {sorted(steps)}"
        )
    return steps.pop()
