"""Versioned checkpoint manifests (the `repro.ckpt` metadata model).

A checkpoint is a *manifest* — one small JSON document — plus the
content-addressed blobs it references.  The manifest records, per subgroup
and per optimizer-state field, an ordered list of blob segments (one for a
whole blob, one per stripe for striped fields), each with its payload digest,
together with the engine bookkeeping needed to resume: per-subgroup Adam step
counts, the placement map, the iteration number and caller-supplied user
data.

Manifests are committed atomically (written to a temp file and
``os.replace``\\ d into place), so a manifest either exists completely or not
at all; a crash mid-drain leaves at most ``*.tmp`` files and orphan blobs,
all of which restart ignores.  The next commit's garbage collection sweeps
the orphan blobs and this worker's stale manifest temps, and each blob
store removes dead writers' temp files when it is (re)constructed.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.tiers.file_store import payload_digest as _buffer_digest

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_FORMAT = 1


class CheckpointError(RuntimeError):
    """Raised for malformed manifests, missing or corrupt blobs, and misuse."""


def payload_digest(array: np.ndarray) -> int:
    """64-bit digest of an array's payload bytes (the on-store convention).

    Delegates to :func:`repro.tiers.file_store.payload_digest` so manifests,
    the write-time registry and the restore-time verification all agree on
    one hash.
    """
    contiguous = np.ascontiguousarray(array)
    return _buffer_digest(memoryview(contiguous.reshape(-1)))


def cas_key(digest: int, nbytes: int, codec: str = "raw") -> str:
    """Content-addressed blob key: 64-bit payload digest plus size.

    ``digest`` and ``nbytes`` always describe the *uncompressed* payload —
    that is what deduplication keys on, so a delta checkpoint pays nothing
    for unchanged subgroups no matter how they were encoded.  Non-``"raw"``
    codecs are suffixed into the key because their on-store bytes differ:
    the same content stored raw and stored framed must not collide.
    """
    base = f"cas{digest & 0xFFFFFFFFFFFFFFFF:016x}-{int(nbytes)}"
    return base if codec == "raw" else f"{base}-{codec}"


#: The exact shape :func:`cas_key` produces (anchored; parse, don't guess).
_CAS_KEY_RE = re.compile(r"^cas(?P<digest>[0-9a-f]{16})-(?P<nbytes>\d+)(?:-(?P<codec>.+))?$")


def parse_cas_key(key: str) -> Optional[Tuple[int, int, str]]:
    """Invert :func:`cas_key`: ``(digest, nbytes, codec)``, or ``None``.

    The digest and byte count always describe the *uncompressed* payload the
    key promises — what the registry service verifies uploads against, and
    what a store can derive lazily without re-reading a blob whose key it
    already trusts (see :meth:`repro.tiers.file_store.FileStore.digest_of`).
    Returns ``None`` for keys that are not content-addressed (e.g. plain
    subgroup field keys), never raises.
    """
    match = _CAS_KEY_RE.match(key)
    if match is None:
        return None
    return (
        int(match.group("digest"), 16),
        int(match.group("nbytes")),
        match.group("codec") or "raw",
    )


@dataclass(frozen=True)
class BlobSegment:
    """One stored blob covering ``[start, start + count)`` elements of a field.

    ``nbytes`` and ``digest`` always describe the segment's *raw*
    (uncompressed) payload — the bytes that land back in memory on restore.
    ``codec`` records how the payload is stored (``"raw"`` = a plain tier
    blob, anything else = a :mod:`repro.codec` frame stream), and
    ``stored_nbytes`` the on-store payload size of that encoding (``None``
    means "same as raw", which is what ``"raw"`` segments and manifests
    written before compression existed carry).
    """

    tier: str
    key: str
    start: int
    count: int
    nbytes: int
    digest: int
    codec: str = "raw"
    stored_nbytes: Optional[int] = None

    @property
    def on_store_nbytes(self) -> int:
        """Payload bytes the segment occupies on its store (post-codec)."""
        return self.nbytes if self.stored_nbytes is None else self.stored_nbytes

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "tier": self.tier,
            "key": self.key,
            "start": self.start,
            "count": self.count,
            "nbytes": self.nbytes,
            "digest": self.digest,
        }
        if self.codec != "raw":
            payload["codec"] = self.codec
            payload["stored_nbytes"] = self.on_store_nbytes
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BlobSegment":
        try:
            stored = data.get("stored_nbytes")
            return cls(
                tier=str(data["tier"]),
                key=str(data["key"]),
                start=int(data["start"]),
                count=int(data["count"]),
                nbytes=int(data["nbytes"]),
                digest=int(data["digest"]),
                codec=str(data.get("codec", "raw")),
                stored_nbytes=None if stored is None else int(stored),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed blob segment: {data!r}") from exc


@dataclass(frozen=True)
class BlobRef:
    """One logical field blob: its geometry plus the segments storing it.

    ``source`` records how the blob entered the checkpoint — ``"linked"``
    (hard-linked tier-resident bytes, no data movement) or ``"staged"``
    (copied through a pooled scratch buffer and drained asynchronously) —
    which the overhead benchmark and the docs surface.
    """

    dtype: str
    count: int
    source: str
    segments: Tuple[BlobSegment, ...]

    def __post_init__(self) -> None:
        if self.source not in ("linked", "staged"):
            raise CheckpointError(f"unknown blob source {self.source!r}")
        covered = sum(seg.count for seg in self.segments)
        if covered != self.count:
            raise CheckpointError(
                f"blob segments cover {covered} elements, expected {self.count}"
            )

    @property
    def numpy_dtype(self) -> np.dtype:
        try:
            return np.dtype(self.dtype)
        except TypeError as exc:
            raise CheckpointError(f"unknown blob dtype {self.dtype!r}") from exc

    @property
    def nbytes(self) -> int:
        return sum(seg.nbytes for seg in self.segments)

    @property
    def stored_nbytes(self) -> int:
        """On-store payload bytes across segments (post-codec; == raw for raw)."""
        return sum(seg.on_store_nbytes for seg in self.segments)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dtype": self.dtype,
            "count": self.count,
            "source": self.source,
            "segments": [seg.to_dict() for seg in self.segments],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BlobRef":
        try:
            segments = tuple(BlobSegment.from_dict(seg) for seg in data["segments"])
            return cls(
                dtype=str(data["dtype"]),
                count=int(data["count"]),
                source=str(data["source"]),
                segments=segments,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed blob ref: {data!r}") from exc


@dataclass(frozen=True)
class CheckpointManifest:
    """One committed checkpoint version of one worker."""

    version: int
    worker: str
    #: Engine ``update_count`` at the snapshot (the iteration boundary).
    iteration: int
    #: Shard-layout echo used to reject restores into mismatched engines.
    layout: Dict[str, int]
    #: Per-subgroup Adam step counters.
    steps: Dict[int, int]
    #: Subgroup → tier assignment recorded at snapshot time.
    placement: Dict[int, str]
    #: Subgroup → field → blob reference for the FP32 optimizer state.
    subgroups: Dict[int, Dict[str, BlobRef]]
    #: The model's FP16 working parameters.
    fp16_params: BlobRef
    created_unix: float = 0.0
    user_data: Dict[str, Any] = field(default_factory=dict)

    def blob_keys(self) -> Set[Tuple[str, str]]:
        """Every ``(tier, key)`` this manifest references (for GC refcounting)."""
        keys: Set[Tuple[str, str]] = set()
        for fields in self.subgroups.values():
            for ref in fields.values():
                for seg in ref.segments:
                    keys.add((seg.tier, seg.key))
        for seg in self.fp16_params.segments:
            keys.add((seg.tier, seg.key))
        return keys

    def to_json(self) -> str:
        payload = {
            "format": MANIFEST_FORMAT,
            "version": self.version,
            "worker": self.worker,
            "iteration": self.iteration,
            "created_unix": self.created_unix,
            "layout": dict(self.layout),
            "steps": {str(k): v for k, v in self.steps.items()},
            "placement": {str(k): v for k, v in self.placement.items()},
            "subgroups": {
                str(index): {name: ref.to_dict() for name, ref in fields.items()}
                for index, fields in self.subgroups.items()
            },
            "fp16_params": self.fp16_params.to_dict(),
            "user_data": self.user_data,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CheckpointManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"manifest is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise CheckpointError("manifest must be a JSON object")
        fmt = payload.get("format")
        if fmt != MANIFEST_FORMAT:
            raise CheckpointError(f"unsupported manifest format {fmt!r}")
        try:
            return cls(
                version=int(payload["version"]),
                worker=str(payload["worker"]),
                iteration=int(payload["iteration"]),
                created_unix=float(payload.get("created_unix", 0.0)),
                layout={str(k): int(v) for k, v in payload["layout"].items()},
                steps={int(k): int(v) for k, v in payload["steps"].items()},
                placement={int(k): str(v) for k, v in payload["placement"].items()},
                subgroups={
                    int(index): {
                        str(name): BlobRef.from_dict(ref) for name, ref in fields.items()
                    }
                    for index, fields in payload["subgroups"].items()
                },
                fp16_params=BlobRef.from_dict(payload["fp16_params"]),
                user_data=dict(payload.get("user_data", {})),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointError(f"malformed manifest: {exc}") from exc


#: Committed manifest filename pattern: ``ckpt-<worker>-<version>.json``.
_MANIFEST_RE = re.compile(r"^ckpt-(?P<worker>.+)-(?P<version>\d{6})\.json$")
#: Prepared (phase-one) manifest pattern: ``ckpt-<worker>-<version>.prepared.json``.
_PREPARED_RE = re.compile(r"^ckpt-(?P<worker>.+)-(?P<version>\d{6})\.prepared\.json$")
#: Global commit record pattern: ``GLOBAL-<version>.json`` (see
#: :mod:`repro.ckpt.coordinator`).
_GLOBAL_RE = re.compile(r"^GLOBAL-(?P<version>\d{6})\.json$")


@dataclass(frozen=True)
class ManifestDirSnapshot:
    """One *atomic* classified listing of a checkpoint directory.

    Garbage collection and global-commit promotion must never interleave
    several directory listings: a manifest landing between two ``glob`` calls
    would be visible to one decision (which blobs exist) but not the other
    (which blobs are referenced).  Every consumer therefore takes exactly one
    ``os.listdir`` snapshot via :func:`scan_manifest_dir` and derives all of
    its views — committed versions per worker, prepared (phase-one) versions
    per worker, global commit records — from that single listing.  Temp files
    (``*.tmp``) and lock files are skipped at classification time.
    """

    directory: Path
    #: worker → version → committed manifest path.
    committed: Dict[str, Dict[int, Path]]
    #: worker → version → prepared (not yet globally committed) manifest path.
    prepared: Dict[str, Dict[int, Path]]
    #: global version → ``GLOBAL-<version>.json`` path.
    global_versions: Dict[int, Path]

    def workers(self) -> Set[str]:
        """Every worker with a committed *or* prepared manifest present."""
        return set(self.committed) | set(self.prepared)

    def manifest_paths(self, *, include_prepared: bool = True) -> List[Path]:
        """Every per-worker manifest path in the snapshot, sorted."""
        paths: List[Path] = []
        for per_worker in self.committed.values():
            paths.extend(per_worker.values())
        if include_prepared:
            for per_worker in self.prepared.values():
                paths.extend(per_worker.values())
        return sorted(paths)


def scan_manifest_dir(directory: "str | os.PathLike[str]") -> ManifestDirSnapshot:
    """Classify a checkpoint directory from a single ``os.listdir`` call."""
    directory = Path(directory)
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        names = []
    committed: Dict[str, Dict[int, Path]] = {}
    prepared: Dict[str, Dict[int, Path]] = {}
    global_versions: Dict[int, Path] = {}
    for name in sorted(names):
        match = _PREPARED_RE.match(name)
        if match:
            prepared.setdefault(match.group("worker"), {})[
                int(match.group("version"))
            ] = directory / name
            continue
        match = _MANIFEST_RE.match(name)
        if match:
            committed.setdefault(match.group("worker"), {})[
                int(match.group("version"))
            ] = directory / name
            continue
        match = _GLOBAL_RE.match(name)
        if match:
            global_versions[int(match.group("version"))] = directory / name
    return ManifestDirSnapshot(
        directory=directory,
        committed=committed,
        prepared=prepared,
        global_versions=global_versions,
    )


def referenced_blobs(paths: "Sequence[Path]") -> Set[Tuple[str, str]]:
    """Union of blob keys referenced by the manifests at ``paths``.

    A path deleted between the snapshot and the read (a concurrent retention
    sweep won its race) is skipped — its references died with it.  A manifest
    that exists but cannot be parsed raises :class:`CheckpointError`: callers
    doing blob GC must treat that as "reference set unknown" and skip the
    sweep rather than delete blobs the unreadable manifest might reference.
    """
    referenced: Set[Tuple[str, str]] = set()
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            continue
        referenced |= CheckpointManifest.from_json(text).blob_keys()
    return referenced


def _fsync_directory(directory: Path) -> None:
    """Flush a directory's entries (making a rename durable); best-effort."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir fsync
        pass
    finally:
        os.close(fd)


class ManifestStore:
    """The manifest directory: committed versions of every worker.

    One directory may hold manifests of several workers (sharing one set of
    blob stores); versions are tracked per worker, while garbage collection
    considers every worker's references.
    """

    def __init__(self, directory: "str | os.PathLike[str]", worker: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if not worker or "/" in worker:
            raise CheckpointError(f"invalid worker name {worker!r}")
        self.worker = worker

    def path_for(self, version: int) -> Path:
        return self.directory / f"ckpt-{self.worker}-{version:06d}.json"

    def prepared_path_for(self, version: int) -> Path:
        """Phase-one path: published by the drain, awaiting the global commit."""
        return self.directory / f"ckpt-{self.worker}-{version:06d}.prepared.json"

    def committed_versions(self) -> List[int]:
        """This worker's committed versions, ascending."""
        return sorted(scan_manifest_dir(self.directory).committed.get(self.worker, {}))

    def prepared_versions(self) -> List[int]:
        """This worker's prepared (not yet globally committed) versions, ascending."""
        return sorted(scan_manifest_dir(self.directory).prepared.get(self.worker, {}))

    def load(self, version: int) -> CheckpointManifest:
        path = self.path_for(version)
        if not path.exists():
            raise CheckpointError(
                f"no committed checkpoint version {version} for worker {self.worker!r} "
                f"in {str(self.directory)!r}"
            )
        manifest = CheckpointManifest.from_json(path.read_text(encoding="utf-8"))
        if manifest.version != version or manifest.worker != self.worker:
            raise CheckpointError(
                f"manifest {path.name} claims version {manifest.version} / worker "
                f"{manifest.worker!r}"
            )
        return manifest

    def latest(self) -> Optional[CheckpointManifest]:
        versions = self.committed_versions()
        return self.load(versions[-1]) if versions else None

    def commit(self, manifest: CheckpointManifest, *, prepared: bool = False) -> Path:
        """Atomically and durably publish ``manifest``.

        The temp file's data is fsynced before the rename and the directory
        entry after it, so a power failure cannot leave a torn manifest
        under a committed name — the commit point is the rename itself.
        With ``prepared`` the manifest lands under the phase-one
        ``*.prepared.json`` name instead: complete and durable, but not yet
        part of a global commit (see :mod:`repro.ckpt.coordinator`).
        """
        path = self.prepared_path_for(manifest.version) if prepared else self.path_for(
            manifest.version
        )
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(manifest.to_json() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_directory(self.directory)
        return path

    def delete(self, version: int) -> None:
        path = self.path_for(version)
        if path.exists():
            path.unlink()

    def delete_prepared(self, version: int) -> None:
        path = self.prepared_path_for(version)
        if path.exists():
            path.unlink()

    def workers_present(self) -> Set[str]:
        """Every worker with a committed *or* prepared manifest in this directory."""
        return scan_manifest_dir(self.directory).workers()

    def sweep_stale_tmp(self) -> None:
        """Remove *this worker's* uncommitted manifest temp files.

        Safe whenever no commit of this worker is in flight (commits are
        serialized per writer); other workers' temp files are left alone.
        """
        for tmp in self.directory.glob(f"ckpt-{self.worker}-*.json.tmp"):
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - lost a race with another sweep
                pass

    def all_referenced_blobs(self, *, include_prepared: bool = True) -> Set[Tuple[str, str]]:
        """Blob keys referenced by *any* worker's manifests (one atomic listing).

        Prepared manifests are counted by default: their blobs are fully
        written (a prepared manifest is only published after its drain's
        write barrier), so a blob sweep that missed them would delete
        payloads a global commit is about to reference.  A damaged manifest
        raises :class:`CheckpointError` — callers doing blob GC must treat
        that as "reference set unknown" and skip the sweep (see
        ``CheckpointWriter._collect_garbage``) rather than delete blobs the
        unreadable manifest might still reference.
        """
        snapshot = scan_manifest_dir(self.directory)
        return referenced_blobs(snapshot.manifest_paths(include_prepared=include_prepared))
