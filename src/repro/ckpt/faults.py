"""Crash-injection points for the checkpoint protocol.

The multi-process crash matrix (:mod:`repro.ckpt.procrank`) needs to kill a
real worker process at an exact protocol phase — not "roughly mid-drain",
but *after the staged writes were submitted and before the prepared manifest
landed*.  Sprinkling the protocol with named :func:`fault_point` hooks makes
those phases addressable:

========================  ====================================================
``mid-drain``             staged blob writes submitted, none judged yet
``pre-publish``           write barrier passed, prepared manifest not yet
                          committed
``post-publish``          prepared manifest durable, promotion not attempted
``mid-promote``           per-rank manifests renamed, ``GLOBAL-<v>.json`` not
                          yet written (the faulting process holds
                          ``GLOBAL.lock``)
``mid-gc``                manifests retired, blob sweep not yet run (again
                          under ``GLOBAL.lock``)
``registry-mid-push``     registry client: at least one blob uploaded, more
                          uploads (or the manifest commit) still outstanding
``registry-pre-commit``   registry client: every missing blob uploaded, the
                          manifest commit request not yet sent
``registry-mid-gc``       registry server: per-tenant manifests retired, the
                          cross-tenant blob sweep not yet run
``registry-mid-scrub``    registry server: the idle-time scrubber picked a
                          manifest to audit, no segment verified yet
========================  ====================================================

Every hook is a no-op unless armed.  Two arming mechanisms:

* **In-process** — :func:`install_fault` registers a callable (record, raise,
  block on an event, ...) for one phase; unit tests use this.
* **Cross-process** — the environment variable ``REPRO_CKPT_FAULT`` holds
  ``<phase>@<version>`` (e.g. ``mid-promote@3``); a worker process reaching
  that phase for that checkpoint version sends itself ``SIGKILL`` — no
  cleanup handlers, no atexit, exactly what a node loss looks like.  The
  crash-matrix driver arms victims purely through their environment, so the
  production code path under test is byte-for-byte the shipped one.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Any, Callable, Dict, Optional, Tuple

#: Environment variable arming a self-``SIGKILL`` in worker processes.
FAULT_ENV = "REPRO_CKPT_FAULT"

#: Checkpoint-coordination phases (fired by every multi-rank training run;
#: the procrank crash matrix sweeps exactly these).
COORDINATOR_PHASES = (
    "mid-drain",
    "pre-publish",
    "post-publish",
    "mid-promote",
    "mid-gc",
)

#: Registry service phases — client-side push phases and server-side
#: maintenance phases; they fire only when a registry is in the picture, so
#: the registry fault suite (not the coordinator crash matrix) sweeps them.
REGISTRY_PHASES = (
    "registry-mid-push",
    "registry-pre-commit",
    "registry-mid-gc",
    "registry-mid-scrub",
)

#: Every phase instrumented with a :func:`fault_point` hook.
FAULT_PHASES = COORDINATOR_PHASES + REGISTRY_PHASES

_handlers: Dict[str, Callable[..., None]] = {}
_handlers_lock = threading.Lock()


def install_fault(name: str, handler: Callable[..., None]) -> None:
    """Register an in-process handler invoked when ``name`` is reached."""
    if name not in FAULT_PHASES:
        raise ValueError(f"unknown fault point {name!r} (known: {FAULT_PHASES})")
    with _handlers_lock:
        _handlers[name] = handler


def clear_faults() -> None:
    """Remove every in-process handler (tests call this in teardown)."""
    with _handlers_lock:
        _handlers.clear()


def _armed_spec() -> Optional[Tuple[str, Optional[int]]]:
    """The ``(phase, version)`` armed via the environment, if any."""
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return None
    phase, _, version = spec.partition("@")
    try:
        return phase, (int(version) if version else None)
    except ValueError:
        return phase, None


def fault_point(name: str, **context: Any) -> None:
    """A named crash-injection point; no-op unless armed.

    ``context`` carries the protocol state at the point (currently the
    checkpoint ``version`` being processed); the environment arming matches
    on it so a victim dies at *one specific* version, not the first drain it
    runs.  An in-process handler, when installed, takes precedence over the
    environment and receives the full context.
    """
    with _handlers_lock:
        handler = _handlers.get(name)
    if handler is not None:
        handler(**context)
        return
    armed = _armed_spec()
    if armed is None or armed[0] != name:
        return
    version = armed[1]
    if version is not None and context.get("version") not in (None, version):
        return
    # A real node loss: no cleanup, no flushing, no atexit.  The process is
    # gone between two instructions of the protocol.
    os.kill(os.getpid(), signal.SIGKILL)
