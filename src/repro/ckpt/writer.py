"""Asynchronous checkpoint snapshot planner and writer.

The writer turns one consistent iteration-boundary view of an offload
engine's state into a committed checkpoint version in two phases:

**Synchronous snapshot** (inside :meth:`CheckpointWriter.snapshot`, on the
caller's thread — the "stall" the benchmark measures for the sync mode):

* *linked* fields — subgroups whose authoritative copy already sits on a
  storage tier — are referenced by content: their payload digest comes from
  the tier store's write-time registry (or one fallback read), and the blob
  file is hard-linked into the tier's content-addressed checkpoint store.
  No payload bytes move; cost is a metadata operation per blob.
* *staged* fields — subgroups whose newest state lives dirty in the host
  cache, plus the FP16 working parameters — have already been copied by the
  engine into private pooled scratch buffers; the writer only records them
  for the drain.

**Asynchronous drain** (a background thread per snapshot): staged buffers
are checksummed, striped across the checkpoint stores when large
(:func:`repro.tiers.spec.plan_stripes` — the same extent math the striped
tier reads use), encoded through the configured codec
(:mod:`repro.codec`: byte-shuffle + LZ4-class DEFLATE by default; content
addressing keys on the *uncompressed* digest, so an unchanged payload is
deduplicated before it is ever encoded), written through a dedicated
:class:`~repro.aio.engine.AsyncIOEngine` (multi-part payloads fan out via
``write_multi``), and — once every write has landed — the versioned manifest
is committed atomically and retention GC sweeps manifests and unreferenced
blobs.  Training's next iteration runs concurrently with the drain; the
hard-linked inodes are immune to the tier overwrites it performs, and the
staged buffers are private copies.

One snapshot may be in flight at a time; starting the next one (or closing
the writer) waits for the previous commit and re-raises its error, so a
failed checkpoint can never be silently lost.
"""

from __future__ import annotations

import errno
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.aio.engine import AsyncIOEngine, os_error_in_chain
from repro.ckpt.manifest import (
    BlobRef,
    BlobSegment,
    CheckpointError,
    CheckpointManifest,
    ManifestStore,
    cas_key,
    payload_digest,
    scan_manifest_dir,
)
from repro.ckpt.faults import fault_point
from repro.ckpt.store import CAS_PREFIX, build_blob_stores
from repro.codec import RAW_CODEC, encoded_frame, get_codec
from repro.tiers.array_pool import ArrayPool
from repro.tiers.file_store import StoreError, element_count
from repro.tiers.spec import plan_stripes
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - break the core <-> ckpt import cycle
    from repro.ckpt.coordinator import CheckpointCoordinator
    from repro.core.config import MLPOffloadConfig
    from repro.core.virtual_tier import TierBlobRef, VirtualTier

_LOG = get_logger("ckpt.writer")


def capacity_exhausted(error: BaseException) -> bool:
    """Whether ``error`` means a checkpoint store ran out of space.

    Covers a real ``ENOSPC`` anywhere in the cause chain (the async engine
    preserves it through its retry wrapper — ``ENOSPC`` is deliberately not
    in its transient set) and the :class:`FileStore` soft capacity limit.
    Out-of-space is an *availability* condition the writer degrades through
    (skip the version, keep training), unlike corruption or logic errors
    which must surface.
    """
    chained = os_error_in_chain(error)
    if chained is not None and chained.errno == errno.ENOSPC:
        return True
    current: Optional[BaseException] = error
    while current is not None:
        if isinstance(current, StoreError) and "capacity exceeded" in str(current):
            return True
        current = current.__cause__
    return False


@dataclass
class SubgroupSource:
    """One subgroup's contribution to a snapshot: staged, linked or carried."""

    index: int
    #: Field → private pooled copy of the newest state (dirty residue).
    staged: Optional[Dict[str, np.ndarray]] = None
    #: Field → tier-resident blob references (content, not bytes).
    linked: Optional[Dict[str, List[TierBlobRef]]] = None
    #: Field → blob refs of an earlier committed version, re-referenced
    #: verbatim.  Used for subgroups still awaiting their lazy restore: the
    #: checkpoint-store blobs already hold their exact state, so the new
    #: manifest references them directly — no bytes move, and the reference
    #: keeps the blobs alive across retention GC until the subgroup is
    #: actually restored and re-flushed.
    carried: Optional[Dict[str, BlobRef]] = None

    def __post_init__(self) -> None:
        given = sum(x is not None for x in (self.staged, self.linked, self.carried))
        if given != 1:
            raise CheckpointError(
                f"subgroup {self.index}: exactly one of staged/linked/carried must be given"
            )


class PendingCheckpoint:
    """Handle on one in-flight snapshot: its version plus a completion barrier."""

    def __init__(self, version: int) -> None:
        self.version = version
        #: True when the drain abandoned this version on an out-of-space
        #: condition instead of committing it (see ``capacity_exhausted``).
        #: ``wait()`` then returns normally — the skip is a degradation the
        #: caller can observe, not a failure it must handle.
        self.skipped = False
        self._done = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> int:
        """Block until the version is committed; re-raise any drain error."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"checkpoint version {self.version} still draining")
        if self._thread is not None:
            self._thread.join()
        if self._error is not None:
            raise self._error
        return self.version

    def _finish(self, error: Optional[BaseException] = None) -> None:
        self._error = error
        self._done.set()


@dataclass
class _StagedItem:
    """One staged array awaiting drain, addressed by its manifest slot."""

    slot: Tuple  # ("sg", index, field) or ("fp16",)
    array: np.ndarray


class CheckpointWriter:
    """Writes versioned checkpoints of one worker's engine state.

    Parameters
    ----------
    config:
        Engine configuration; ``checkpoint_dir`` must be set.  The striping
        switches govern whether large staged blobs are split across the
        checkpoint stores.
    worker:
        Worker identity — namespaces the manifest files.
    pool:
        The engine's :class:`ArrayPool`; staged buffers are returned to it
        once their writes complete.
    tier:
        The engine's :class:`VirtualTier` — source of hard-link paths and
        fallback checksums for linked blobs.
    throttles:
        Per-tier bandwidth throttles shared with the tier stores (checkpoint
        traffic contends with training I/O on the same device timelines).
    """

    def __init__(
        self,
        config: MLPOffloadConfig,
        *,
        worker: str,
        pool: ArrayPool,
        tier: VirtualTier,
        throttles: Optional[Mapping[str, object]] = None,
        io_threads: int = 2,
        coordinator: Optional[CheckpointCoordinator] = None,
    ) -> None:
        if not config.checkpoint_enabled:
            raise CheckpointError("checkpoint_dir is not configured")
        self.config = config
        self.worker = worker
        self.pool = pool
        self.tier = tier
        self.stores = build_blob_stores(config, throttles=throttles)
        self.store_names: List[str] = list(self.stores)
        self.engine = AsyncIOEngine(self.stores, num_threads=io_threads, queue_depth=32)
        self.manifests = ManifestStore(config.checkpoint_dir, worker)
        #: Global-commit coordinator (two-phase multi-rank protocol); ``None``
        #: keeps the PR 3/4 per-worker independent commits.
        self.coordinator = coordinator
        #: Codec applied to staged payloads on the drain thread ("raw" = none).
        self.codec_name = config.checkpoint_codec
        if self.codec_name != RAW_CODEC:
            get_codec(self.codec_name)  # fail fast on unknown codecs
        self._pending: Optional[PendingCheckpoint] = None
        # Version numbering resumes beyond anything this worker published —
        # committed, still-prepared, or part of a global commit — so a
        # restarted rank can never collide with torn-commit leftovers.
        snapshot = scan_manifest_dir(self.manifests.directory)
        self._last_version = max(
            [
                *snapshot.committed.get(worker, {}),
                *snapshot.prepared.get(worker, {}),
                *(snapshot.global_versions if coordinator is not None else ()),
            ],
            default=0,
        )
        self._closed = False
        #: Cumulative accounting across snapshots (introspection / benches).
        self.linked_blobs = 0
        self.linked_bytes = 0
        self.reused_blobs = 0
        self.staged_blobs = 0
        self.staged_bytes = 0
        #: On-store bytes of the staged blobs after encoding (== staged_bytes
        #: for the "raw" codec); staged_bytes / staged_stored_bytes is the
        #: checkpoint compression ratio the benchmark reports.
        self.staged_stored_bytes = 0
        #: (tier, key) → encoded payload size.  Content-addressed blobs are
        #: immutable, so a reused blob's stored size never changes — caching
        #: it spares the drain thread a header read per reuse per snapshot.
        self._stored_sizes: Dict[Tuple[str, str], int] = {}
        #: Registry push accounting (``checkpoint_registry_url``): versions
        #: pushed, bytes actually uploaded vs deduped away, wall time, and
        #: pushes the registry failed to take (training continues regardless).
        self.registry_pushes = 0
        self.registry_uploaded_bytes = 0
        self.registry_skipped_bytes = 0
        self.registry_push_seconds = 0.0
        self.registry_push_failures = 0
        self._registry = None  # lazy RegistryClient, drain-thread only
        #: Checkpoint versions abandoned because a store ran out of space
        #: mid-drain (training continued; the previous version stands).
        self.skipped_versions = 0

    # -- public API --------------------------------------------------------

    def wait(self) -> Optional[int]:
        """Block until the in-flight snapshot (if any) commits; return its version."""
        pending, self._pending = self._pending, None
        if pending is None:
            return None
        return pending.wait()

    def snapshot(
        self,
        *,
        iteration: int,
        layout: Dict[str, int],
        steps: Dict[int, int],
        placement: Dict[int, str],
        subgroups: Sequence[SubgroupSource],
        fp16_params: np.ndarray,
        user_data: Optional[Dict[str, Any]] = None,
    ) -> PendingCheckpoint:
        """Capture one snapshot and start its asynchronous drain.

        ``fp16_params`` and every ``staged`` array in ``subgroups`` must be
        private copies owned by the writer from this call on (typically
        pooled buffers); they are released back to the pool when the drain
        finishes, successfully or not — including when this call itself
        fails (e.g. a previous drain's error re-raised by the pre-snapshot
        wait).  Linked references must describe quiescent tier blobs (no
        flush of those subgroups in flight).
        """
        staged_items: List[_StagedItem] = [_StagedItem(("fp16",), fp16_params)]
        linked_refs: Dict[int, Dict[str, BlobRef]] = {}
        in_drain_window = False
        try:
            # Take ownership of every staged buffer first, so any failure
            # below — including a re-raised previous drain error — releases
            # all of them, not just the ones already walked.
            for source in subgroups:
                if source.staged is not None:
                    for name, array in source.staged.items():
                        staged_items.append(_StagedItem(("sg", source.index, name), array))
            if self._closed:
                raise CheckpointError("checkpoint writer is closed")
            self.wait()
            if self.coordinator is not None:
                # Open the drain window BEFORE any content reuse below: the
                # carry checks and hard-link adoptions re-reference blobs that
                # no manifest protects until this version's prepared manifest
                # lands, and only the published drain-intent lease makes a
                # foreign rank's concurrent blob sweep stand down.  The window
                # stays open across the handoff to the drain thread, which
                # closes it when the manifest publishes (or the drain fails).
                self.coordinator.drain_begin(self.worker)
                in_drain_window = True
            for source in subgroups:
                if source.staged is not None:
                    continue
                if source.carried is not None:
                    linked_refs[source.index] = self._carry_fields(
                        source.index, source.carried
                    )
                    continue
                assert source.linked is not None
                fields: Dict[str, BlobRef] = {}
                for name, refs in source.linked.items():
                    fields[name] = self._link_field(refs)
                linked_refs[source.index] = fields
        except BaseException:
            if in_drain_window:
                self.coordinator.drain_end(self.worker)
            self._release([item.array for item in staged_items])
            raise
        version = self._last_version + 1
        self._last_version = version

        pending = PendingCheckpoint(version)
        manifest_base = dict(
            version=version,
            worker=self.worker,
            iteration=iteration,
            layout=dict(layout),
            steps=dict(steps),
            placement=dict(placement),
            created_unix=time.time(),
            user_data=dict(user_data or {}),
        )
        thread = threading.Thread(
            target=self._drain,
            args=(pending, manifest_base, linked_refs, staged_items),
            name=f"repro-ckpt-{self.worker}-v{version}",
            daemon=True,
        )
        pending._thread = thread
        self._pending = pending
        thread.start()
        return pending

    def close(self) -> None:
        """Wait for the in-flight snapshot and shut the blob I/O engine down."""
        if self._closed:
            return
        try:
            self.wait()
        finally:
            self._closed = True
            self.engine.close()
            if self._registry is not None:
                self._registry.close()
                self._registry = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- synchronous phase: content references ------------------------------

    def _link_field(self, refs: Sequence[TierBlobRef]) -> BlobRef:
        """Bring one linked field into the checkpoint store (links, no copies)."""
        if not refs:
            raise CheckpointError("linked field has no tier blob references")
        segments: List[BlobSegment] = []
        for ref in refs:
            store = self.stores.get(ref.tier)
            tier_store = self.tier.stores.get(ref.tier)
            if store is None or tier_store is None:
                raise CheckpointError(f"no checkpoint store for tier {ref.tier!r}")
            checksum = ref.checksum
            if checksum is None:
                # Blob written before checksum tracking (e.g. by a previous
                # process): one maintenance read fills the registry.
                checksum = tier_store.compute_checksum(ref.key)
            key = cas_key(checksum, ref.nbytes)
            if store.contains(key):
                self.reused_blobs += 1
            else:
                store.adopt(key, self.tier.blob_path(ref.tier, ref.key), checksum=checksum)
                self.linked_blobs += 1
                self.linked_bytes += ref.nbytes
            segments.append(
                BlobSegment(
                    tier=ref.tier,
                    key=key,
                    start=ref.start,
                    count=ref.count,
                    nbytes=ref.nbytes,
                    digest=checksum,
                )
            )
        total = sum(seg.count for seg in segments)
        return BlobRef(
            dtype="float32", count=total, source="linked", segments=tuple(segments)
        )

    def _carry_fields(self, index: int, fields: Mapping[str, BlobRef]) -> Dict[str, BlobRef]:
        """Re-reference an earlier version's blobs verbatim (lazy-restore carry).

        The caller asserts the subgroup's state is exactly what those blobs
        hold (it has not been touched since the restore that produced them);
        every referenced blob must still exist in the checkpoint stores.
        """
        for name, ref in fields.items():
            for seg in ref.segments:
                store = self.stores.get(seg.tier)
                if store is None or not store.contains(seg.key):
                    raise CheckpointError(
                        f"carried blob {seg.key!r} of subgroup {index} field {name!r} "
                        f"is missing on tier {seg.tier!r}"
                    )
                self.reused_blobs += 1
        return dict(fields)

    # -- asynchronous phase: staged drain + commit + GC ----------------------

    def _stage_weights(self, targets: Sequence[str]) -> Optional[List[float]]:
        """Write-bandwidth weights for striping staged blobs (None = equal)."""
        weights = []
        for name in targets:
            hint = self.config.tier(name).write_bw
            if hint is None:
                return None
            weights.append(float(hint))
        return weights if sum(weights) > 0 else None

    def _stored_payload_nbytes(self, tier: str, key: str) -> int:
        """On-store payload size of an existing encoded blob.

        One header read on first sight; cached afterwards (content-addressed
        blobs never change size), so steady-state delta reuse stays free of
        per-snapshot file opens.
        """
        cached = self._stored_sizes.get((tier, key))
        if cached is not None:
            return cached
        dtype, shape = self.stores[tier].meta_of(key)
        nbytes = element_count(shape) * dtype.itemsize
        if len(self._stored_sizes) > 65536:  # bound a very long run's footprint
            self._stored_sizes.clear()
        self._stored_sizes[(tier, key)] = nbytes
        return nbytes

    def _plan_staged(
        self,
        item: _StagedItem,
        queued: Dict[Tuple[str, str], Optional[int]],
        encoded: List[np.ndarray],
    ) -> Tuple[BlobRef, List[Tuple[str, str, np.ndarray]]]:
        """Checksum, stripe and encode one staged array; ref plus write parts.

        ``queued`` tracks CAS keys already scheduled earlier in the same
        drain (mapping each to its stored payload size), so identical
        payloads (e.g. several all-zero fields) are written exactly once per
        snapshot — and, since content addressing keys on the *uncompressed*
        digest, a payload already in the store (an earlier version's delta)
        skips encoding entirely.  Encoding runs here, on the drain thread,
        overlapped with the caller's next iteration; frame buffers are
        pooled and appended to ``encoded`` for release once their writes
        land.
        """
        flat = np.ascontiguousarray(item.array).reshape(-1)
        # Stripe across the first ``stripe_fanout()`` checkpoint stores only,
        # with weights trimmed to the same set (mirrors the virtual tier's
        # stripe_tier_names handling for stripe_paths < tier count).
        fanout = max(1, min(self.config.stripe_fanout(), len(self.store_names)))
        targets = self.store_names[:fanout]
        extents = plan_stripes(
            int(flat.size),
            int(flat.itemsize),
            num_paths=len(targets),
            threshold_bytes=self.config.stripe.threshold_bytes,
            weights=self._stage_weights(targets) if len(targets) >= 2 else None,
        )
        codec = None if self.codec_name == RAW_CODEC else get_codec(self.codec_name)
        segments: List[BlobSegment] = []
        parts: List[Tuple[str, str, np.ndarray]] = []
        for ext in extents:
            view = flat[ext.start : ext.stop]
            checksum = payload_digest(view)
            key = cas_key(checksum, view.nbytes, self.codec_name)
            tier = targets[ext.path]
            stored_nbytes: Optional[int] = None
            if (tier, key) in queued:
                self.reused_blobs += 1
                stored_nbytes = queued[(tier, key)]
            elif self.stores[tier].contains(key):
                self.reused_blobs += 1
                if codec is not None:
                    stored_nbytes = self._stored_payload_nbytes(tier, key)
            else:
                if codec is None:
                    payload: np.ndarray = view
                else:
                    payload = encoded_frame(view, codec, pool=self.pool)
                    encoded.append(payload)
                    stored_nbytes = int(payload.nbytes)
                queued[(tier, key)] = stored_nbytes
                if stored_nbytes is not None:
                    self._stored_sizes[(tier, key)] = stored_nbytes
                parts.append((tier, key, payload))
                self.staged_blobs += 1
                self.staged_bytes += int(view.nbytes)
                self.staged_stored_bytes += int(payload.nbytes)
            segments.append(
                BlobSegment(
                    tier=tier,
                    key=key,
                    start=int(ext.start),
                    count=int(ext.count),
                    nbytes=int(view.nbytes),
                    digest=checksum,
                    codec=self.codec_name,
                    stored_nbytes=stored_nbytes,
                )
            )
        ref = BlobRef(
            dtype=flat.dtype.name,
            count=int(flat.size),
            source="staged",
            segments=tuple(segments),
        )
        return ref, parts

    def _drain(
        self,
        pending: PendingCheckpoint,
        manifest_base: Dict[str, Any],
        linked_refs: Dict[int, Dict[str, BlobRef]],
        staged_items: List[_StagedItem],
    ) -> None:
        encoded: List[np.ndarray] = []
        # ``snapshot()`` opened the drain window before adopting any linked
        # or carried blobs; this thread inherits it.  While the window is
        # open the coordinator's blob sweep stands down: the plan below may
        # dedup-reuse a blob that no manifest references until this
        # version's prepared manifest lands (the commit below, still inside
        # the drain window).
        in_drain_window = self.coordinator is not None
        try:
            staged_refs: Dict[Tuple, BlobRef] = {}
            futures = []
            queued: Dict[Tuple[str, str], Optional[int]] = {}
            try:
                for item in staged_items:
                    ref, parts = self._plan_staged(item, queued, encoded)
                    staged_refs[item.slot] = ref
                    if len(parts) > 1:
                        futures.append(
                            self.engine.write_multi(
                                parts, key=ref.segments[0].key, worker=self.worker
                            )
                        )
                    elif parts:
                        tier, key, payload = parts[0]
                        futures.append(self.engine.write(tier, key, payload, worker=self.worker))
            except BaseException:
                # A later item's planning (e.g. its encode) failed while
                # earlier writes are already streaming pooled buffers: await
                # them before the finally below recycles anything.
                for future in futures:
                    try:
                        future.result()
                    except BaseException:  # noqa: BLE001 - already failing
                        pass
                raise
            fault_point("mid-drain", version=pending.version)
            # Await EVERY write before judging any: a buffer may only go back
            # to the pool (the finally below) once no write can still be
            # streaming it, and an early raise on the first failure would
            # release siblings mid-serialization — committing torn bytes
            # under a content-addressed key.
            first_error: Optional[BaseException] = None
            for future in futures:
                result = future.result()
                if not result.ok and first_error is None:
                    first_error = result.error
            if first_error is not None:
                raise first_error
            if self.coordinator is not None:
                # The drain's writes landed but the manifest has not: renew
                # the drain-intent lease so a long encode+write phase cannot
                # be mistaken for an abandoned one.
                self.coordinator.renew_drain_lease(self.worker)

            subgroups: Dict[int, Dict[str, BlobRef]] = {k: dict(v) for k, v in linked_refs.items()}
            fp16_ref: Optional[BlobRef] = None
            for slot, ref in staged_refs.items():
                if slot[0] == "fp16":
                    fp16_ref = ref
                else:
                    _, index, name = slot
                    subgroups.setdefault(index, {})[name] = ref
            assert fp16_ref is not None
            manifest = CheckpointManifest(
                subgroups=subgroups, fp16_params=fp16_ref, **manifest_base
            )
            if self.coordinator is not None:
                # Phase one of the global commit: publish the prepared
                # manifest, leave the drain window, then stand for election —
                # whichever rank lands last promotes the version to a global
                # commit record and runs the global-retention GC under the
                # coordinator lock.
                # Serialized per writer, so no commit of this worker is in
                # flight: a crashed predecessor's manifest temp files are
                # safe to sweep (the uncoordinated path does this in its
                # per-drain GC, which coordinated drains never run).
                self.manifests.sweep_stale_tmp()
                fault_point("pre-publish", version=pending.version)
                self.manifests.commit(manifest, prepared=True)
                self.coordinator.drain_end(self.worker)
                in_drain_window = False
                fault_point("post-publish", version=pending.version)
                try:
                    self.coordinator.try_promote()
                except Exception as exc:  # noqa: BLE001 - promotion is retried
                    # The *local* commit is already durable (the prepared
                    # manifest landed); a promotion hiccup — say a transient
                    # I/O error renaming another rank's manifest — must not
                    # report this rank's checkpoint as failed.  A later
                    # drain's (or checkpoint_wait's) election retries it.
                    _LOG.warning(
                        "promotion attempt after checkpoint v%d prepared failed "
                        "(will be retried): %s",
                        pending.version,
                        exc,
                    )
                # Push only once the election committed this version locally:
                # a still-prepared manifest may yet be discarded by the global
                # cut, and the registry must never serve a version that never
                # globally existed.
                if self.manifests.path_for(pending.version).exists():
                    self._registry_push(manifest)
            else:
                self.manifests.commit(manifest)
                self._registry_push(manifest)
                self._collect_garbage()
            pending._finish(None)
        except BaseException as exc:  # noqa: BLE001 - surfaced via wait()
            if in_drain_window:
                self.coordinator.drain_end(self.worker)
            if isinstance(exc, Exception) and capacity_exhausted(exc):
                # Out of space mid-drain: abandon THIS version, not training.
                # No manifest was committed, so the previous version stays
                # authoritative; the partial staged blobs this drain already
                # landed are content-addressed orphans a later successful
                # drain's GC sweeps.  wait() reports success with the handle
                # flagged skipped — a missed snapshot is a wider recovery
                # window, never a correctness problem.
                self.skipped_versions += 1
                pending.skipped = True
                _LOG.warning(
                    "checkpoint v%d skipped: store out of space during drain (%s)",
                    pending.version,
                    exc,
                )
                pending._finish(None)
            else:
                _LOG.error("checkpoint v%d drain failed: %s", pending.version, exc)
                pending._finish(exc)
        finally:
            self._release([item.array for item in staged_items] + encoded)

    def _registry_push(self, manifest: CheckpointManifest) -> None:
        """Push one freshly committed version to the checkpoint registry.

        Runs on the drain thread, after the local commit is durable.  The
        dedup negotiation means a steady-state job uploads only the blobs
        this version newly introduced.  A registry outage is an availability
        problem, never a correctness one: failures are counted and logged,
        and the local checkpoint stands regardless.
        """
        url = self.config.checkpoint_registry_url
        if not url:
            return
        start = time.perf_counter()
        try:
            if self._registry is None:
                from repro.registry.client import RegistryClient

                self._registry = RegistryClient(
                    url, tenant=self.config.checkpoint_registry_tenant
                )
            stats = self._registry.push_manifest(manifest, self.stores)
        except Exception as exc:  # noqa: BLE001 - registry outage != ckpt failure
            self.registry_push_failures += 1
            _LOG.warning(
                "registry push of checkpoint v%d failed (local checkpoint stands): %s",
                manifest.version,
                exc,
            )
            if self._registry is not None:
                self._registry.close()
                self._registry = None
            return
        self.registry_pushes += 1
        self.registry_uploaded_bytes += stats.uploaded_bytes
        self.registry_skipped_bytes += stats.skipped_bytes
        self.registry_push_seconds += time.perf_counter() - start

    def _collect_garbage(self) -> None:
        """Drop versions beyond the retention window and sweep orphans.

        Runs on the drain thread right after a commit, so no commit of this
        worker is in flight — its stale manifest temp files (from a crashed
        predecessor) are safe to remove.  Blob stores sweep their own dead
        writers' temp files at construction (`FileStore._sweep_stale_tmp`).

        All decisions derive from ONE ``os.listdir`` snapshot (``.tmp`` and
        lock files skipped at classification): interleaving several listings
        let a manifest land *between* the workers-present check and the
        reference scan — visible to neither — and its blobs were swept out
        from under its commit.  Prepared (phase-one) manifests count both as
        worker presence and as blob references for the same reason.
        """
        self.manifests.sweep_stale_tmp()
        snapshot = scan_manifest_dir(self.manifests.directory)
        committed = sorted(snapshot.committed.get(self.worker, {}))
        for version in committed[: -self.config.checkpoint_retention]:
            self.manifests.delete(version)
        if snapshot.workers() - {self.worker}:
            # Another worker shares these blob stores and may be mid-drain:
            # its staged blobs are referenced by no *committed* manifest yet,
            # so an unreferenced-key sweep here could delete them out from
            # under its commit.  Global blob GC is the coordinator's job
            # (``checkpoint_coordination``); per-worker manifest retention
            # above is always safe.
            _LOG.debug("skipping blob sweep: multiple workers share %s", self.manifests.directory)
            return
        try:
            referenced = self.manifests.all_referenced_blobs()
        except CheckpointError as exc:
            # A damaged/foreign manifest in the directory: skip the sweep
            # rather than risk deleting blobs it might still reference.
            _LOG.warning("skipping checkpoint blob GC: %s", exc)
            return
        for tier, store in self.stores.items():
            for key in list(store.keys()):
                if key.startswith(CAS_PREFIX) and (tier, key) not in referenced:
                    store.delete(key)

    def _release(self, arrays) -> None:
        self.pool.release_all(arrays)
