"""Checkpoint restart path: manifest selection, blob reads, integrity checks.

Restoring is the writer's mirror image: pick a committed manifest (the
latest, or an explicit version) and read referenced blob segments back into
caller-supplied arrays.  Raw segments stream straight into the destination
(the same zero-copy ``load_into`` discipline as tier fetches) with their
digest computed chunk by chunk *while* reading; encoded segments
(:mod:`repro.codec`) are fetched into a pooled scratch buffer and decoded
chunk by chunk, each chunk's recorded digest verified as it lands.  Either
way a mismatch against the manifest digest (bit rot, truncated drain, manual
tampering) raises :class:`CheckpointError` — corrupt state is never silently
restored, and nothing is ever materialized whole beyond the destination
buffer itself.

The engine layers two restore strategies on top of this reader
(:meth:`repro.core.engine.OffloadEngineBase.restore_checkpoint`): the eager
mode reads and re-flushes every subgroup up front, while the streaming mode
hard-links clean tier-resident blobs straight back into the tier stores and
restores staged residue lazily on first fetch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

import numpy as np

from repro.ckpt.manifest import (
    BlobRef,
    BlobSegment,
    CheckpointError,
    CheckpointManifest,
    ManifestStore,
)
from repro.ckpt.store import build_blob_stores
from repro.codec import CodecError, decode_frame_into
from repro.tiers.array_pool import ArrayPool
from repro.tiers.file_store import StoreError, finish_digest, streaming_digest

if TYPE_CHECKING:  # pragma: no cover - break the core <-> ckpt import cycle
    from repro.core.config import MLPOffloadConfig


@dataclass
class RestoredCheckpoint:
    """What a successful restore hands back to the caller."""

    version: int
    #: Engine ``update_count`` the checkpoint was taken at.
    iteration: int
    #: The model's FP16 working parameters at the snapshot.
    fp16_params: np.ndarray
    user_data: Dict[str, Any] = field(default_factory=dict)
    #: How the engine brought the state back: ``"eager"`` (read + re-flush
    #: everything up front) or ``"streaming"`` (hard links + lazy residue).
    mode: str = "eager"
    #: Subgroups whose blobs were hard-linked back into the tier stores.
    linked_subgroups: int = 0
    #: Subgroups left pending for lazy restore on first fetch.
    lazy_subgroups: int = 0
    #: The job-wide global commit version the restore resolved (equals
    #: ``version`` once global coordination picked the cut); ``None`` for an
    #: uncoordinated per-worker restore.
    global_version: Optional[int] = None


class CheckpointReader:
    """Reads committed checkpoints of one worker back into memory.

    ``throttles`` (per-tier, the same objects driving the tier stores) make
    restore traffic contend with whatever else is using the paths — the
    engine passes its own so restore timings are honest.
    """

    def __init__(
        self,
        config: Optional[MLPOffloadConfig] = None,
        *,
        worker: str = "rank0",
        throttles: Optional[Mapping[str, object]] = None,
        stores: Optional[Mapping[str, object]] = None,
        manifest_dir: Optional[str] = None,
    ) -> None:
        """Build a reader over an engine ``config`` — or over injected stores.

        The engine path passes ``config`` (stores are built per active tier,
        manifests live in ``checkpoint_dir``).  Services that are not an
        engine — the registry's idle-time scrubber audits every tenant's
        manifests against one global blob vault — inject ``stores`` (any
        mapping of tier name → store; a mapping that answers every name with
        the same store flattens all tiers onto one vault) plus the
        ``manifest_dir`` holding that worker's manifests.
        """
        if stores is None or manifest_dir is None:
            if config is None or not config.checkpoint_enabled:
                raise CheckpointError("checkpoint_dir is not configured")
        self.config = config
        self.worker = worker
        self.stores = (
            stores if stores is not None else build_blob_stores(config, throttles=throttles)
        )
        self.manifests = ManifestStore(
            manifest_dir if manifest_dir is not None else config.checkpoint_dir, worker
        )

    # -- manifest selection ------------------------------------------------

    def versions(self) -> List[int]:
        """Committed versions available for this worker, ascending."""
        return self.manifests.committed_versions()

    def load_manifest(self, version: Optional[int] = None) -> CheckpointManifest:
        """The chosen (or latest) committed manifest; raises if none exists."""
        if version is not None:
            return self.manifests.load(version)
        manifest = self.manifests.latest()
        if manifest is None:
            raise CheckpointError(
                f"no committed checkpoints for worker {self.worker!r} in "
                f"{str(self.manifests.directory)!r}"
            )
        return manifest

    # -- blob reads --------------------------------------------------------

    def _store_for(self, seg: BlobSegment):
        store = self.stores.get(seg.tier)
        if store is None:
            raise CheckpointError(f"no checkpoint store for tier {seg.tier!r}")
        return store

    def _read_segment(
        self,
        seg: BlobSegment,
        view: np.ndarray,
        *,
        verify: bool,
        pool: Optional[ArrayPool],
    ) -> None:
        """Fill ``view`` (flat, the segment's extent) from one stored segment."""
        store = self._store_for(seg)
        try:
            if seg.codec == "raw":
                hasher = streaming_digest() if verify else None
                store.load_into_chunks(seg.key, view, hasher=hasher)
                observed = finish_digest(hasher) if hasher is not None else None
            else:
                frame = (
                    pool.acquire(seg.on_store_nbytes, np.uint8)
                    if pool is not None
                    else np.empty(seg.on_store_nbytes, np.uint8)
                )
                try:
                    store.load_into(seg.key, frame)
                    # Decode verifies every chunk's recorded digest as it
                    # streams; the aggregate digest comes back for the
                    # manifest comparison below.
                    observed = decode_frame_into(frame, view)
                finally:
                    if pool is not None:
                        pool.release(frame)
        except StoreError as exc:
            # Missing file, bad permissions, truncated blob: an I/O problem,
            # not (necessarily) corruption — keep the triage distinction.
            raise CheckpointError(
                f"checkpoint blob {seg.key!r} on tier {seg.tier!r} is unreadable: {exc}"
            ) from exc
        except CodecError as exc:
            raise CheckpointError(
                f"checkpoint blob {seg.key!r} on tier {seg.tier!r} failed its "
                f"integrity check: {exc}"
            ) from exc
        if verify and observed is not None and observed != seg.digest:
            raise CheckpointError(
                f"checkpoint blob {seg.key!r} on tier {seg.tier!r} failed its "
                f"integrity check (digest {observed:#018x} != manifest "
                f"{seg.digest:#018x})"
            )

    def read_blob(
        self,
        ref: BlobRef,
        out: np.ndarray,
        *,
        verify: bool = True,
        pool: Optional[ArrayPool] = None,
    ) -> np.ndarray:
        """Read one logical blob into ``out`` (flat, segment by segment).

        ``out`` must be 1-D C-contiguous with the ref's dtype and element
        count.  Raw segments stream with a chunked read (digest computed on
        the fly when ``verify`` is on); encoded segments are fetched into a
        ``pool``-leased frame buffer (a plain allocation when no pool is
        given) and decoded chunk by chunk into the destination, with
        per-chunk digests always enforced.  A digest mismatch raises
        :class:`CheckpointError` — corrupt state is never silently restored.
        """
        dtype = ref.numpy_dtype
        if out.dtype != dtype:
            raise CheckpointError(
                f"restore dtype mismatch: blob is {dtype.name}, destination is {out.dtype.name}"
            )
        flat = out.reshape(-1)
        if int(flat.size) != ref.count:
            raise CheckpointError(
                f"restore size mismatch: blob has {ref.count} elements, destination has "
                f"{flat.size}"
            )
        for seg in ref.segments:
            self._read_segment(
                seg, flat[seg.start : seg.start + seg.count], verify=verify, pool=pool
            )
        return out

    def check_blobs(self, manifest: CheckpointManifest) -> None:
        """Cheap existence/size audit of every blob a manifest references."""
        for ref in self._all_refs(manifest):
            for seg in ref.segments:
                store = self.stores.get(seg.tier)
                if store is None or not store.contains(seg.key):
                    raise CheckpointError(
                        f"checkpoint v{manifest.version} references missing blob "
                        f"{seg.key!r} on tier {seg.tier!r}"
                    )

    def verify_blobs(
        self,
        manifest: CheckpointManifest,
        *,
        pool: Optional[ArrayPool] = None,
        on_error=None,
    ) -> int:
        """Full streamed digest audit of every blob a manifest references.

        The deep counterpart of :meth:`check_blobs` — reads every segment
        through the same chunked paths a restore uses (scratch destinations
        leased from ``pool``) and verifies every digest, without keeping any
        state.  Returns the number of segments verified.  Use it to vet a
        checkpoint *before* trusting a zero-copy hard-link restore, which by
        design never touches the linked payloads.

        ``on_error`` — when given, a failed segment does not abort the audit:
        the callback receives ``(segment, error)`` and the walk continues, so
        a background scrubber can quarantine every bad blob of a manifest in
        one pass instead of stopping at the first.  Failed segments do not
        count as verified.
        """
        own_pool = pool if pool is not None else ArrayPool()
        verified = 0
        for ref in self._all_refs(manifest):
            dtype = ref.numpy_dtype
            for seg in ref.segments:
                scratch = own_pool.acquire(seg.count, dtype)
                try:
                    self._read_segment(seg, scratch, verify=True, pool=own_pool)
                except CheckpointError as exc:
                    if on_error is None:
                        raise
                    on_error(seg, exc)
                    continue
                finally:
                    own_pool.release(scratch)
                verified += 1
        return verified

    @staticmethod
    def _all_refs(manifest: CheckpointManifest) -> List[BlobRef]:
        refs: List[BlobRef] = [manifest.fp16_params]
        for fields in manifest.subgroups.values():
            refs.extend(fields.values())
        return refs
