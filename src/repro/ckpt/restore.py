"""Checkpoint restart path: manifest selection, blob reads, integrity checks.

Restoring is the writer's mirror image: pick a committed manifest (the
latest, or an explicit version), read every referenced blob segment straight
into caller-supplied arrays (the same zero-copy ``load_into`` discipline as
tier fetches), and verify each segment's digest against the manifest before
trusting it.  The engine then rebuilds its virtual-tier placement from the
recorded assignments and flushes the restored state back to the tiers — see
:meth:`repro.core.engine.OffloadEngineBase.restore_checkpoint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from repro.ckpt.manifest import (
    BlobRef,
    CheckpointError,
    CheckpointManifest,
    ManifestStore,
    payload_digest,
)
from repro.ckpt.store import build_blob_stores
from repro.tiers.file_store import StoreError

if TYPE_CHECKING:  # pragma: no cover - break the core <-> ckpt import cycle
    from repro.core.config import MLPOffloadConfig


@dataclass
class RestoredCheckpoint:
    """What a successful restore hands back to the caller."""

    version: int
    #: Engine ``update_count`` the checkpoint was taken at.
    iteration: int
    #: The model's FP16 working parameters at the snapshot.
    fp16_params: np.ndarray
    user_data: Dict[str, Any] = field(default_factory=dict)


class CheckpointReader:
    """Reads committed checkpoints of one worker back into memory."""

    def __init__(self, config: MLPOffloadConfig, *, worker: str = "rank0") -> None:
        if not config.checkpoint_enabled:
            raise CheckpointError("checkpoint_dir is not configured")
        self.config = config
        self.worker = worker
        self.stores = build_blob_stores(config)
        self.manifests = ManifestStore(config.checkpoint_dir, worker)

    # -- manifest selection ------------------------------------------------

    def versions(self) -> List[int]:
        """Committed versions available for this worker, ascending."""
        return self.manifests.committed_versions()

    def load_manifest(self, version: Optional[int] = None) -> CheckpointManifest:
        """The chosen (or latest) committed manifest; raises if none exists."""
        if version is not None:
            return self.manifests.load(version)
        manifest = self.manifests.latest()
        if manifest is None:
            raise CheckpointError(
                f"no committed checkpoints for worker {self.worker!r} in "
                f"{str(self.manifests.directory)!r}"
            )
        return manifest

    # -- blob reads --------------------------------------------------------

    def read_blob(self, ref: BlobRef, out: np.ndarray, *, verify: bool = True) -> np.ndarray:
        """Read one logical blob into ``out`` (flat, segment by segment).

        ``out`` must be 1-D C-contiguous with the ref's dtype and element
        count.  With ``verify`` on, every segment's payload digest is
        checked against the manifest; a mismatch (bit rot, truncated drain,
        manual tampering) raises :class:`CheckpointError` — corrupt state is
        never silently restored.
        """
        dtype = ref.numpy_dtype
        if out.dtype != dtype:
            raise CheckpointError(
                f"restore dtype mismatch: blob is {dtype.name}, destination is {out.dtype.name}"
            )
        flat = out.reshape(-1)
        if int(flat.size) != ref.count:
            raise CheckpointError(
                f"restore size mismatch: blob has {ref.count} elements, destination has "
                f"{flat.size}"
            )
        for seg in ref.segments:
            store = self.stores.get(seg.tier)
            if store is None:
                raise CheckpointError(f"no checkpoint store for tier {seg.tier!r}")
            view = flat[seg.start : seg.start + seg.count]
            try:
                store.load_into(seg.key, view)
            except StoreError as exc:
                raise CheckpointError(
                    f"checkpoint blob {seg.key!r} on tier {seg.tier!r} is unreadable: {exc}"
                ) from exc
            if verify:
                observed = payload_digest(view)
                if observed != seg.digest:
                    raise CheckpointError(
                        f"checkpoint blob {seg.key!r} on tier {seg.tier!r} failed its "
                        f"integrity check (digest {observed:#018x} != manifest "
                        f"{seg.digest:#018x})"
                    )
        return out

    def check_blobs(self, manifest: CheckpointManifest) -> None:
        """Cheap existence/size audit of every blob a manifest references."""
        refs: List[BlobRef] = [manifest.fp16_params]
        for fields in manifest.subgroups.values():
            refs.extend(fields.values())
        for ref in refs:
            for seg in ref.segments:
                store = self.stores.get(seg.tier)
                if store is None or not store.contains(seg.key):
                    raise CheckpointError(
                        f"checkpoint v{manifest.version} references missing blob "
                        f"{seg.key!r} on tier {seg.tier!r}"
                    )
