"""Asynchronous multi-tier checkpoint/restart subsystem.

The offload engine keeps the authoritative FP32 optimizer state on the
storage tiers already, so a checkpoint costs little more than a manifest
plus the dirty residue: tier-resident subgroup blobs are *referenced by
content* (hard-linked into per-tier content-addressed stores — no data
movement), only dirty host-cached subgroups and the FP16 working parameters
are staged through pooled scratch buffers, and the staged writes drain
asynchronously, overlapped with the next training iteration.

Layout on disk::

    <checkpoint_dir>/ckpt-<worker>-<version>.json   committed manifests
    <tier.path>/_ckpt/cas<digest>-<nbytes>.bin      content-addressed blobs

Public surface: :class:`CheckpointWriter` / :class:`CheckpointReader` for
direct use, :class:`CheckpointManifest` for the metadata model, and the
engine-level hooks ``save_checkpoint`` / ``maybe_checkpoint`` /
``restore_checkpoint`` on :class:`repro.core.engine.OffloadEngineBase`,
which most callers should prefer.
"""

from repro.ckpt.manifest import (
    BlobRef,
    BlobSegment,
    CheckpointError,
    CheckpointManifest,
    ManifestStore,
    cas_key,
    payload_digest,
)
from repro.ckpt.restore import CheckpointReader, RestoredCheckpoint
from repro.ckpt.store import build_blob_stores, blob_store_roots
from repro.ckpt.writer import CheckpointWriter, PendingCheckpoint, SubgroupSource

__all__ = [
    "BlobRef",
    "BlobSegment",
    "CheckpointError",
    "CheckpointManifest",
    "CheckpointReader",
    "CheckpointWriter",
    "ManifestStore",
    "PendingCheckpoint",
    "RestoredCheckpoint",
    "SubgroupSource",
    "blob_store_roots",
    "build_blob_stores",
    "cas_key",
    "payload_digest",
]
