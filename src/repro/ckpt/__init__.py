"""Asynchronous multi-tier checkpoint/restart subsystem.

The offload engine keeps the authoritative FP32 optimizer state on the
storage tiers already, so a checkpoint costs little more than a manifest
plus the dirty residue: tier-resident subgroup blobs are *referenced by
content* (hard-linked into per-tier content-addressed stores — no data
movement), only dirty host-cached subgroups and the FP16 working parameters
are staged through pooled scratch buffers, and the staged writes drain
asynchronously, overlapped with the next training iteration.

Layout on disk::

    <checkpoint_dir>/ckpt-<worker>-<version>.json            committed manifests
    <checkpoint_dir>/ckpt-<worker>-<version>.prepared.json   phase-one (pre-global-commit)
    <checkpoint_dir>/GLOBAL-<version>.json                   global commit records
    <checkpoint_dir>/GLOBAL.lock                             coordinator election lock
    <checkpoint_dir>/DRAIN-<worker>.lease                    drain-intent leases
    <tier.path>/_ckpt/cas<digest>-<nbytes>.bin               content-addressed blobs

With ``checkpoint_coordination`` on, a job-level two-phase commit
(:class:`CheckpointCoordinator`) promotes a version to a global commit
record only once *every* registered rank's manifest landed, and restart
first rolls forward any fully-prepared-but-unpromoted version, then
resolves the newest global version — one consistent cut across all
data-parallel workers — discarding torn-commit debris beyond it.  Ranks
may live in separate OS processes: each publishes a liveness-checked
``DRAIN-<worker>.lease`` for the duration of its drain so the elected
sweeper never retires a blob a foreign rank is dedup-reusing, restart
under a different world size re-partitions the cut onto the new layout
(:mod:`repro.ckpt.elastic`), and :mod:`repro.ckpt.procrank` drives real
subprocess ranks through SIGKILL crash matrices to prove all of it.

Public surface: :class:`CheckpointWriter` / :class:`CheckpointReader` for
direct use, :class:`CheckpointManifest` for the metadata model, and the
engine-level hooks ``save_checkpoint`` / ``maybe_checkpoint`` /
``restore_checkpoint`` on :class:`repro.core.engine.OffloadEngineBase`,
which most callers should prefer.
"""

from repro.ckpt.coordinator import (
    CheckpointCoordinator,
    GlobalCommitRecord,
    drain_lease_name,
)
from repro.ckpt.elastic import ElasticSource, open_elastic_source, repartition
from repro.ckpt.faults import clear_faults, fault_point, install_fault
from repro.ckpt.manifest import (
    BlobRef,
    BlobSegment,
    CheckpointError,
    CheckpointManifest,
    ManifestDirSnapshot,
    ManifestStore,
    cas_key,
    payload_digest,
    scan_manifest_dir,
)
from repro.ckpt.restore import CheckpointReader, RestoredCheckpoint
from repro.ckpt.store import build_blob_stores, blob_store_roots
from repro.ckpt.writer import CheckpointWriter, PendingCheckpoint, SubgroupSource

__all__ = [
    "BlobRef",
    "BlobSegment",
    "CheckpointCoordinator",
    "CheckpointError",
    "CheckpointManifest",
    "CheckpointReader",
    "CheckpointWriter",
    "ElasticSource",
    "GlobalCommitRecord",
    "ManifestDirSnapshot",
    "ManifestStore",
    "PendingCheckpoint",
    "RestoredCheckpoint",
    "SubgroupSource",
    "blob_store_roots",
    "build_blob_stores",
    "cas_key",
    "clear_faults",
    "drain_lease_name",
    "fault_point",
    "install_fault",
    "open_elastic_source",
    "payload_digest",
    "repartition",
    "scan_manifest_dir",
]
