"""Wire format of the checkpoint registry: hand-rolled HTTP/1.1 + content checks.

The registry speaks a deliberately small slice of HTTP/1.1 over stdlib
sockets and :mod:`asyncio` streams — no external HTTP dependency, no
``http.server``.  One pure parsing core (request/response head, headers,
``Range``) is shared by every transport so the async server, the sync client
and the async client can never disagree on framing:

* requests and responses carry explicit ``Content-Length`` bodies (no
  chunked transfer encoding — every payload's size is known up front);
* connections are keep-alive by default (HTTP/1.1 semantics); either side
  may send ``Connection: close``;
* blob downloads honour single-range ``Range: bytes=a-b`` headers with
  ``206 Partial Content`` replies, which is what lets a remote restore
  stream a large blob in bounded chunks.

The module also owns *content* verification: an uploaded blob is a raw
:class:`~repro.tiers.file_store.FileStore` file whose content-addressed key
promises an uncompressed payload digest.  :func:`verify_blob_file` re-derives
that digest from the actual bytes — decoding framed payloads through
:mod:`repro.codec.framing` — so a partial, corrupt or mislabelled upload can
never become visible under a trusted key.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.ckpt.manifest import parse_cas_key
from repro.codec import CodecError, decode_frame_into
from repro.tiers.file_store import StoreError, payload_digest, read_blob_file

#: Hard cap on request/response head bytes (start line + headers).
MAX_HEAD_BYTES = 64 * 1024
#: Hard cap on body bytes either side will accept (one blob upload).
MAX_BODY_BYTES = 256 * 1024 * 1024

_REQUEST_LINE_RE = re.compile(r"^(?P<method>[A-Z]+) (?P<target>\S+) HTTP/1\.[01]$")
_STATUS_LINE_RE = re.compile(r"^HTTP/1\.[01] (?P<status>\d{3})(?: (?P<reason>.*))?$")
_RANGE_RE = re.compile(r"^bytes=(?P<start>\d+)-(?P<stop>\d*)$")
#: Tenant / worker path segments (no separators, no dotfiles, no surprises).
NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_REASONS = {
    200: "OK",
    206: "Partial Content",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    416: "Range Not Satisfiable",
    500: "Internal Server Error",
}


class ProtocolError(RuntimeError):
    """Raised for malformed requests/responses and failed content checks."""


@dataclass
class Request:
    """One parsed request: method, path, lower-cased headers, body."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


def parse_head(head: bytes, *, response: bool = False) -> Tuple[str, str, Dict[str, str]]:
    """Parse one head block (start line + headers, no trailing blank line).

    Returns ``(method, target, headers)`` for requests and
    ``(status, reason, headers)`` for responses (status as a string so the
    return shape is uniform).  Header names are lower-cased; duplicate
    headers keep the last value (none of the registry's headers repeat).
    """
    lines = head.decode("latin-1").split("\r\n")
    if not lines or not lines[0]:
        raise ProtocolError("empty head")
    if response:
        match = _STATUS_LINE_RE.match(lines[0])
        if match is None:
            raise ProtocolError(f"malformed status line {lines[0]!r}")
        first, second = match.group("status"), match.group("reason") or ""
    else:
        match = _REQUEST_LINE_RE.match(lines[0])
        if match is None:
            raise ProtocolError(f"malformed request line {lines[0]!r}")
        first, second = match.group("method"), match.group("target")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return first, second, headers


def body_length(headers: Dict[str, str]) -> int:
    """The declared body length; raises on absurd or malformed declarations."""
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError as exc:
        raise ProtocolError(f"malformed Content-Length {raw!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"Content-Length {length} out of bounds")
    return length


def parse_range(value: Optional[str], total: int) -> Optional[Tuple[int, int]]:
    """Decode a single-range ``Range`` header against a ``total``-byte body.

    Returns ``(start, stop)`` byte offsets (half-open) or ``None`` when no
    header was sent.  Only the ``bytes=a-b`` / ``bytes=a-`` forms the
    registry client emits are accepted; anything else (including suffix
    ranges and out-of-bounds starts) raises :class:`ProtocolError`, which
    the server maps to ``416``.  A stop past the end is clamped to ``total``
    (standard HTTP semantics — the last window of a chunked download simply
    over-asks).
    """
    if value is None:
        return None
    match = _RANGE_RE.match(value.strip())
    if match is None:
        raise ProtocolError(f"unsupported Range {value!r}")
    start = int(match.group("start"))
    stop = min(int(match.group("stop")) + 1, total) if match.group("stop") else total
    if start >= total or start >= stop:
        raise ProtocolError(f"Range {value!r} does not fit a {total}-byte body")
    return start, stop


def format_head(
    start_line: str, headers: Dict[str, str], *, body_len: int, keep_alive: bool = True
) -> bytes:
    """Serialize one head block, Content-Length and Connection included."""
    lines = [start_line]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    lines.append(f"content-length: {body_len}")
    if not keep_alive:
        lines.append("connection: close")
    lines.append("")
    lines.append("")
    return "\r\n".join(lines).encode("latin-1")


def format_response(
    status: int, body: bytes, *, headers: Optional[Dict[str, str]] = None, keep_alive: bool = True
) -> bytes:
    """One complete response (head + body) ready to write to a transport."""
    reason = _REASONS.get(status, "Unknown")
    head = format_head(
        f"HTTP/1.1 {status} {reason}",
        dict(headers or {}),
        body_len=len(body),
        keep_alive=keep_alive,
    )
    return head + body


def format_request(
    method: str, path: str, body: bytes, *, headers: Optional[Dict[str, str]] = None
) -> bytes:
    """One complete request (head + body) ready to write to a transport."""
    head = format_head(f"{method} {path} HTTP/1.1", dict(headers or {}), body_len=len(body))
    return head + body


def split_head(buffer: bytes) -> Optional[Tuple[bytes, bytes]]:
    """Split ``buffer`` at the head/body boundary, or ``None`` if incomplete."""
    index = buffer.find(b"\r\n\r\n")
    if index < 0:
        if len(buffer) > MAX_HEAD_BYTES:
            raise ProtocolError("head exceeds the size limit")
        return None
    return buffer[:index], buffer[index + 4 :]


async def read_request(reader) -> Optional[Request]:
    """Read one request from an asyncio stream (``None`` on clean EOF)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception:  # IncompleteReadError (EOF), LimitOverrunError, reset
        return None
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError("request head exceeds the size limit")
    method, target, headers = parse_head(head[:-4])
    length = body_length(headers)
    body = await reader.readexactly(length) if length else b""
    return Request(method=method, path=target, headers=headers, body=body)


# -- content verification ---------------------------------------------------


def verify_blob_file(path, key: str) -> int:
    """Check that the blob file at ``path`` *is* the content ``key`` names.

    Parses the CAS key, deserializes the file (header validation included),
    and re-derives the uncompressed-payload digest — directly for raw
    payloads, through :func:`repro.codec.framing.decode_frame_into` for
    framed ones (every chunk digest enforced along the way).  Returns the
    uncompressed payload size.  Raises :class:`ProtocolError` on any
    mismatch; the file has not been trusted, so callers simply discard it.
    """
    parsed = parse_cas_key(key)
    if parsed is None:
        raise ProtocolError(f"{key!r} is not a content-addressed blob key")
    digest, nbytes, codec = parsed
    try:
        stored = read_blob_file(path)
    except StoreError as exc:
        raise ProtocolError(f"blob upload for {key!r} is malformed: {exc}") from exc
    if codec == "raw":
        flat = np.ascontiguousarray(stored).reshape(-1)
        if int(flat.nbytes) != nbytes:
            raise ProtocolError(
                f"blob upload for {key!r} holds {flat.nbytes} payload bytes, "
                f"key promises {nbytes}"
            )
        observed = payload_digest(memoryview(flat))
    else:
        scratch = np.empty(nbytes, np.uint8)
        try:
            observed = decode_frame_into(stored, scratch)
        except CodecError as exc:
            raise ProtocolError(f"blob upload for {key!r} failed to decode: {exc}") from exc
    if observed != digest:
        raise ProtocolError(
            f"blob upload for {key!r} failed its integrity check "
            f"(digest {observed:#018x} != key {digest:#018x})"
        )
    return nbytes
