"""Multi-tenant checkpoint registry: asyncio HTTP push/restore service.

A standing service a fleet of training jobs pushes committed checkpoints to
and cold-restores from, with cross-job blob dedup (one global
content-addressed vault behind per-tenant manifest catalogs), per-tenant
retention GC and an idle-time integrity scrubber.  See
``docs/architecture.md`` ("Registry service") for the data flow.
"""

from repro.registry.client import (
    AsyncRegistryClient,
    PushStats,
    RegistryClient,
    RegistryError,
    pull_checkpoint,
)
from repro.registry.protocol import ProtocolError
from repro.registry.server import RegistryServer, RegistryServerThread

__all__ = [
    "AsyncRegistryClient",
    "ProtocolError",
    "PushStats",
    "RegistryClient",
    "RegistryError",
    "RegistryServer",
    "RegistryServerThread",
    "pull_checkpoint",
]
