"""``repro-registry`` — run the checkpoint registry service from the shell.

::

    repro-registry serve --root /srv/registry --port 8420 --retention 4

``--port 0`` (the default) binds an ephemeral port; the chosen port is
printed on the ``listening on`` line, which is how subprocess harnesses
discover where to connect.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-registry",
        description="Multi-tenant checkpoint registry service (HTTP push/restore, "
        "cross-job blob dedup, retention GC, idle-time scrubber).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    serve = commands.add_parser("serve", help="run the registry service")
    serve.add_argument("--root", required=True, help="storage root directory")
    serve.add_argument("--host", default="127.0.0.1", help="listen address (default %(default)s)")
    serve.add_argument(
        "--port", type=int, default=0, help="listen port; 0 binds an ephemeral one (default)"
    )
    serve.add_argument(
        "--retention",
        type=int,
        default=2,
        help="default manifests kept per (tenant, worker) (default %(default)s)",
    )
    serve.add_argument(
        "--scrub-interval",
        type=float,
        default=5.0,
        help="idle-time scrubber cadence in seconds; 0 disables (default %(default)s)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    from repro.registry.server import RegistryServer

    server = RegistryServer(
        args.root,
        host=args.host,
        port=args.port,
        retention=args.retention,
        scrub_interval=args.scrub_interval,
    )
    await server.start()
    print(f"listening on {server.host}:{server.port}", flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.close()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        try:
            asyncio.run(_serve(args))
        except KeyboardInterrupt:
            pass
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
