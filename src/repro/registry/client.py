"""Clients of the checkpoint registry: sync (trainer-side) and asyncio.

The sync :class:`RegistryClient` is what the checkpoint writer and the
restore path embed — plain blocking sockets, keep-alive with one transparent
reconnect, no threads of its own, so it slots into the writer's existing
drain thread without ceremony.  The :class:`AsyncRegistryClient` drives the
same wire format from an event loop; it exists for fleet-scale simulation
(hundreds of concurrent pushing clients in one process).

The push protocol is dedup-first: ``missing(keys)`` declares the full blob
set of a manifest and opens a push session (the server publishes a
crash-visible lease for it); only the server's *missing* subset is uploaded;
``commit`` publishes the manifest and retires the lease.  Every upload is
re-verified server-side against its content-addressed key, so the client
never has to be trusted.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import socket
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.ckpt.faults import fault_point
from repro.ckpt.manifest import CheckpointError, CheckpointManifest, ManifestStore
from repro.ckpt.store import build_blob_stores
from repro.registry.protocol import (
    MAX_HEAD_BYTES,
    ProtocolError,
    body_length,
    format_request,
    parse_head,
    split_head,
    verify_blob_file,
)
from repro.util.logging import get_logger

_LOG = get_logger("registry.client")
_COUNTER = itertools.count()

#: Default ranged-GET window for streaming blob downloads.
DEFAULT_CHUNK_BYTES = 1 << 20


class RegistryError(RuntimeError):
    """A registry request that came back non-2xx (or not at all)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"registry returned {status}: {message}")
        self.status = status


@dataclass
class PushStats:
    """What one manifest push cost: dedup hits vs bytes actually moved."""

    version: int
    uploaded_blobs: int = 0
    uploaded_bytes: int = 0
    skipped_blobs: int = 0
    skipped_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.uploaded_bytes + self.skipped_bytes


def _parse_url(url: str) -> Tuple[str, int]:
    parts = urlsplit(url)
    if parts.scheme != "http" or not parts.hostname:
        raise ValueError(f"registry url must be http://host:port, got {url!r}")
    return parts.hostname, parts.port or 80


def _decode_error(status: int, body: bytes) -> RegistryError:
    try:
        message = json.loads(body.decode("utf-8")).get("error", "")
    except (UnicodeDecodeError, json.JSONDecodeError):
        message = body[:200].decode("utf-8", "replace")
    return RegistryError(status, message or "(no detail)")


class RegistryClient:
    """Blocking keep-alive client of one registry service, for one tenant."""

    def __init__(self, url: str, *, tenant: str = "default", timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout
        self._host, self._port = _parse_url(self.url)
        self._sock: Optional[socket.socket] = None

    # -- transport ---------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection((self._host, self._port), timeout=self.timeout)
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "RegistryClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        *,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request/response exchange; reconnects once on a dead socket.

        Every registry operation is idempotent (uploads are content-addressed,
        commits replay byte-identically), so the blanket single retry after a
        connection-level failure is safe.
        """
        payload = format_request(method, path, body, headers=headers)
        last: Optional[Exception] = None
        for attempt in range(2):
            try:
                sock = self._connect()
                sock.sendall(payload)
                return self._read_response(sock)
            except (ConnectionError, socket.timeout, OSError, ProtocolError) as exc:
                self.close()
                last = exc
                if attempt:
                    break
        raise RegistryError(0, f"transport failure talking to {self.url}: {last}")

    def _read_response(self, sock: socket.socket) -> Tuple[int, Dict[str, str], bytes]:
        buffer = b""
        head = None
        while head is None:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("registry closed the connection mid-response")
            buffer += chunk
            if len(buffer) > MAX_HEAD_BYTES and b"\r\n\r\n" not in buffer:
                raise ProtocolError("response head exceeds the size limit")
            parts = split_head(buffer)
            if parts is not None:
                head, buffer = parts
        status_str, _reason, headers = parse_head(head, response=True)
        length = body_length(headers)
        while len(buffer) < length:
            chunk = sock.recv(min(1 << 20, length - len(buffer)))
            if not chunk:
                raise ConnectionError("registry closed the connection mid-body")
            buffer += chunk
        if headers.get("connection", "").lower() == "close":
            self.close()
        return int(status_str), headers, buffer[:length]

    def _call(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        *,
        headers: Optional[Dict[str, str]] = None,
        allow: Tuple[int, ...] = (200,),
    ) -> Tuple[int, Dict[str, str], bytes]:
        status, rheaders, rbody = self._request(method, path, body, headers=headers)
        if status not in allow:
            raise _decode_error(status, rbody)
        return status, rheaders, rbody

    # -- registry operations ----------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        _status, _headers, body = self._call("GET", "/healthz")
        return json.loads(body.decode("utf-8"))

    def missing(self, keys: List[str]) -> Tuple[List[str], str]:
        """Open a push session: returns (keys the server lacks, session id)."""
        _s, _h, body = self._call(
            "POST", f"/v1/{self.tenant}/missing", json.dumps({"keys": sorted(keys)}).encode()
        )
        payload = json.loads(body.decode("utf-8"))
        return list(payload["missing"]), str(payload["session"])

    def upload_blob(self, key: str, data: bytes, *, session: Optional[str] = None) -> bool:
        """Upload one raw blob file; returns True if the server deduped it."""
        headers = {"x-session": session} if session else None
        _s, _h, body = self._call("PUT", f"/v1/blobs/{key}", data, headers=headers)
        return bool(json.loads(body.decode("utf-8")).get("deduped", False))

    def commit_manifest(
        self, manifest: CheckpointManifest, *, session: Optional[str] = None
    ) -> None:
        headers = {"x-session": session} if session else None
        self._call(
            "PUT",
            f"/v1/{self.tenant}/manifests/{manifest.worker}/{manifest.version}",
            manifest.to_json().encode("utf-8"),
            headers=headers,
        )

    def push_manifest(self, manifest: CheckpointManifest, stores) -> PushStats:
        """Push one committed checkpoint: dedup negotiation, uploads, commit.

        ``stores`` maps tier name → local store (the writer's own mapping);
        only the server's missing subset is read back off the local tiers and
        uploaded.  Fault points ``registry-mid-push`` (after each upload) and
        ``registry-pre-commit`` (after all uploads, before the manifest PUT)
        arm the torn-push crash tests.
        """
        tier_of: Dict[str, str] = {}
        for tier, key in sorted(manifest.blob_keys()):
            tier_of.setdefault(key, tier)
        missing, session = self.missing(list(tier_of))
        stats = PushStats(version=manifest.version)
        missing_set = set(missing)
        for key, tier in tier_of.items():
            store = stores.get(tier)
            if store is None:
                raise CheckpointError(f"no local store for tier {tier!r} while pushing {key!r}")
            if key not in missing_set:
                stats.skipped_blobs += 1
                stats.skipped_bytes += store.size_of(key)
                continue
            data = store.path_of(key).read_bytes()
            self.upload_blob(key, data, session=session)
            stats.uploaded_blobs += 1
            stats.uploaded_bytes += len(data)
            fault_point("registry-mid-push", version=manifest.version, key=key)
        fault_point("registry-pre-commit", version=manifest.version)
        self.commit_manifest(manifest, session=session)
        return stats

    def versions(self, worker: str) -> List[int]:
        _s, _h, body = self._call("GET", f"/v1/{self.tenant}/manifests/{worker}")
        return [int(v) for v in json.loads(body.decode("utf-8"))["versions"]]

    def fetch_manifest(
        self, worker: str, version: Optional[int] = None
    ) -> Optional[CheckpointManifest]:
        """The chosen (or latest) manifest, or ``None`` if the tenant has none."""
        target = "latest" if version is None else str(version)
        status, _h, body = self._call(
            "GET", f"/v1/{self.tenant}/manifests/{worker}/{target}", allow=(200, 404)
        )
        if status == 404:
            return None
        return CheckpointManifest.from_json(body.decode("utf-8"))

    def fetch_blob(
        self,
        key: str,
        dest_path: "str | os.PathLike[str]",
        *,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> int:
        """Stream one blob file down in bounded ranged GETs; verify; publish.

        The file accumulates in a private temp next to ``dest_path``, is
        verified against the content-addressed ``key`` (digest re-derived,
        frames decoded) and only then renamed into place — the same
        torn-download discipline as every store write.  Returns the file size.
        """
        dest = Path(dest_path)
        tmp = dest.with_name(f"{dest.name}.{os.getpid()}.{next(_COUNTER)}.tmp")
        offset = 0
        total: Optional[int] = None
        try:
            with open(tmp, "wb") as handle:
                while total is None or offset < total:
                    stop = offset + chunk_bytes - 1
                    status, headers, body = self._call(
                        "GET",
                        f"/v1/blobs/{key}",
                        headers={"range": f"bytes={offset}-{stop}"},
                        allow=(200, 206),
                    )
                    total = int(headers.get("x-blob-total", len(body)))
                    if status == 200:  # server ignored the range: whole body
                        handle.write(body)
                        offset = total
                        break
                    if not body:
                        raise ProtocolError(f"empty range response for {key!r}")
                    handle.write(body)
                    offset += len(body)
            verify_blob_file(tmp, key)
            os.replace(tmp, dest)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        return offset

    def fetch_blob_into_store(self, key: str, store) -> int:
        """Download one blob straight into a local tier store under ``key``."""
        tmp = Path(store.root) / f"{key}.dl.{os.getpid()}.{next(_COUNTER)}.tmp"
        nbytes = self.fetch_blob(key, tmp)
        try:
            store.adopt(key, tmp)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        return nbytes

    def collect_garbage(self) -> Dict[str, Any]:
        _s, _h, body = self._call("POST", f"/v1/{self.tenant}/gc", b"{}")
        return json.loads(body.decode("utf-8"))

    def set_retention(self, retention: int) -> None:
        self._call(
            "PUT", f"/v1/{self.tenant}/retention", json.dumps({"retention": retention}).encode()
        )


def pull_checkpoint(
    config, *, worker: str = "rank0", version: Optional[int] = None
) -> Optional[int]:
    """Materialize a registry checkpoint into this job's local tiers.

    The cold-restore path: fetch the (latest or requested) manifest for
    ``worker`` from ``config.checkpoint_registry_url``, stream every blob the
    local tier stores are missing down into them (verified against its CAS
    key before adoption), then commit the manifest locally.  From there the
    ordinary local restore machinery — including the zero-copy hard-link
    streaming path — runs unchanged, so a registry restore is bitwise
    identical to a local one.  Returns the restored version, or ``None`` when
    the registry has nothing for this worker/tenant.
    """
    if not config.checkpoint_registry_url:
        return None
    with RegistryClient(
        config.checkpoint_registry_url, tenant=config.checkpoint_registry_tenant
    ) as client:
        manifest = client.fetch_manifest(worker, version)
        if manifest is None:
            return None
        stores = build_blob_stores(config)
        fetched = 0
        for tier, key in sorted(manifest.blob_keys()):
            store = stores.get(tier)
            if store is None:
                raise CheckpointError(
                    f"registry checkpoint v{manifest.version} references tier {tier!r}, "
                    f"which this job does not configure"
                )
            if store.contains(key):
                continue
            client.fetch_blob_into_store(key, store)
            fetched += 1
        ManifestStore(config.checkpoint_dir, worker).commit(manifest)
        _LOG.info(
            "pulled checkpoint v%d for %s from %s (%d blobs fetched)",
            manifest.version,
            worker,
            config.checkpoint_registry_url,
            fetched,
        )
        return manifest.version


class AsyncRegistryClient:
    """The same wire protocol over asyncio streams (fleet simulation)."""

    def __init__(self, url: str, *, tenant: str = "default") -> None:
        self.url = url.rstrip("/")
        self.tenant = tenant
        self._host, self._port = _parse_url(self.url)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._reader = None
            self._writer = None

    async def _call(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        *,
        headers: Optional[Dict[str, str]] = None,
        allow: Tuple[int, ...] = (200,),
    ) -> Tuple[int, Dict[str, str], bytes]:
        last: Optional[Exception] = None
        for attempt in range(2):
            try:
                if self._writer is None:
                    self._reader, self._writer = await asyncio.open_connection(
                        self._host, self._port
                    )
                self._writer.write(format_request(method, path, body, headers=headers))
                await self._writer.drain()
                head = await self._reader.readuntil(b"\r\n\r\n")
                status_str, _reason, rheaders = parse_head(head[:-4], response=True)
                length = body_length(rheaders)
                rbody = await self._reader.readexactly(length) if length else b""
                status = int(status_str)
                if status not in allow:
                    raise _decode_error(status, rbody)
                return status, rheaders, rbody
            except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                await self.close()
                last = exc
                if attempt:
                    break
        raise RegistryError(0, f"transport failure talking to {self.url}: {last}")

    async def healthz(self) -> Dict[str, Any]:
        _s, _h, body = await self._call("GET", "/healthz")
        return json.loads(body.decode("utf-8"))

    async def missing(self, keys: List[str]) -> Tuple[List[str], str]:
        _s, _h, body = await self._call(
            "POST", f"/v1/{self.tenant}/missing", json.dumps({"keys": sorted(keys)}).encode()
        )
        payload = json.loads(body.decode("utf-8"))
        return list(payload["missing"]), str(payload["session"])

    async def upload_blob(self, key: str, data: bytes, *, session: Optional[str] = None) -> bool:
        headers = {"x-session": session} if session else None
        _s, _h, body = await self._call("PUT", f"/v1/blobs/{key}", data, headers=headers)
        return bool(json.loads(body.decode("utf-8")).get("deduped", False))

    async def commit_manifest(
        self, manifest: CheckpointManifest, *, session: Optional[str] = None
    ) -> None:
        headers = {"x-session": session} if session else None
        await self._call(
            "PUT",
            f"/v1/{self.tenant}/manifests/{manifest.worker}/{manifest.version}",
            manifest.to_json().encode("utf-8"),
            headers=headers,
        )

    async def fetch_manifest(
        self, worker: str, version: Optional[int] = None
    ) -> Optional[CheckpointManifest]:
        target = "latest" if version is None else str(version)
        status, _h, body = await self._call(
            "GET", f"/v1/{self.tenant}/manifests/{worker}/{target}", allow=(200, 404)
        )
        if status == 404:
            return None
        return CheckpointManifest.from_json(body.decode("utf-8"))

    async def versions(self, worker: str) -> List[int]:
        _s, _h, body = await self._call("GET", f"/v1/{self.tenant}/manifests/{worker}")
        return [int(v) for v in json.loads(body.decode("utf-8"))["versions"]]

    async def fetch_blob_bytes(self, key: str, *, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> bytes:
        """The whole blob file, streamed down in bounded ranged GETs."""
        pieces: List[bytes] = []
        offset = 0
        total: Optional[int] = None
        while total is None or offset < total:
            status, headers, body = await self._call(
                "GET",
                f"/v1/blobs/{key}",
                headers={"range": f"bytes={offset}-{offset + chunk_bytes - 1}"},
                allow=(200, 206),
            )
            total = int(headers.get("x-blob-total", len(body)))
            pieces.append(body)
            offset += len(body)
            if status == 200:
                break
            if not body:
                raise ProtocolError(f"empty range response for {key!r}")
        return b"".join(pieces)

    async def collect_garbage(self) -> Dict[str, Any]:
        _s, _h, body = await self._call("POST", f"/v1/{self.tenant}/gc", b"{}")
        return json.loads(body.decode("utf-8"))
