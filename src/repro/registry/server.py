"""The multi-tenant checkpoint registry service (asyncio, stdlib only).

One standing process that a fleet of training jobs pushes checkpoints to and
restores from.  Storage layout under the service root::

    <root>/blobs/              one global content-addressed FileStore vault
    <root>/tenants/<tenant>/   that tenant's manifest catalog (the exact
                               ``repro.ckpt.manifest`` directory format, so
                               ``scan_manifest_dir`` / ``ManifestStore`` work
                               unchanged on the server side)
    <root>/quarantine/         blobs the scrubber failed and pulled aside
    <root>/leases/             push-intent leases (crash-visible GC guards)

**Cross-job dedup** falls out of the vault being global while catalogs are
per tenant: blob keys are the PR 4 uncompressed-digest CAS keys, so N
fine-tunes of one base model reference the same master blobs and the push
protocol (client sends its digest list, server answers with the missing
subset) uploads each payload once, fleet-wide.

**GC safety** reuses the drain-lease liveness scheme: every push session
publishes an on-disk ``PUSH-<pid>-<n>.lease`` before any blob lands and
retires it when the manifest commits.  The blob sweep derives its reference
set from the on-disk manifests alone (no persistent refcounts — a server
killed mid-GC recovers by pure recomputation), excludes keys of live push
sessions, and stands down entirely while a *foreign* live lease exists
(another process sharing the root mid-push); dead owners' leases are broken
exactly like dead drain leases.

**Scrubbing**: the PR 4 ``CheckpointReader.verify_blobs`` deep audit runs as
an idle-time coroutine — only while no push is in flight — walking every
tenant's manifests round-robin with all tier names flattened onto the vault.
A segment that fails its digest is quarantined (moved out of the vault, so
dedup can never vouch for corrupt bytes again) and surfaced in ``/healthz``;
a fresh upload of the same key clears it.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.ckpt.faults import fault_point
from repro.ckpt.manifest import (
    CheckpointError,
    CheckpointManifest,
    ManifestStore,
    parse_cas_key,
    referenced_blobs,
    scan_manifest_dir,
)
from repro.ckpt.restore import CheckpointReader
from repro.ckpt.store import CAS_PREFIX
from repro.registry.protocol import (
    NAME_RE,
    ProtocolError,
    Request,
    format_response,
    parse_range,
    read_request,
    verify_blob_file,
)
from repro.tiers.file_store import FileStore, StoreError
from repro.util.logging import get_logger

_LOG = get_logger("registry.server")

#: Push sessions idle longer than this are expired and their leases broken.
DEFAULT_LEASE_TIMEOUT = 30.0
#: Unique temp/lease suffix counter (same discipline as FileStore temps).
_COUNTER = itertools.count()


class _VaultMap:
    """A store mapping answering *every* tier name with the one global vault.

    Client manifests carry their job's tier names (``nvme``, ``pfs``, …);
    on the server all payloads live in the single blob vault.  Injecting
    this mapping into :class:`CheckpointReader` flattens the tier dimension
    away so ``verify_blobs`` audits registry checkpoints unchanged.
    """

    def __init__(self, store: FileStore) -> None:
        self._store = store

    def get(self, name: str, default=None):
        return self._store

    def __getitem__(self, name: str):
        return self._store


@dataclass
class _PushSession:
    """One in-flight push: its declared keys protect the blobs from GC."""

    session_id: str
    tenant: str
    keys: Set[str]
    lease_path: Path
    deadline: float = 0.0


@dataclass
class _Stats:
    pushes: int = 0
    blobs_ingested: int = 0
    bytes_ingested: int = 0
    blobs_deduped: int = 0
    manifests_committed: int = 0
    gc_runs: int = 0
    gc_swept_blobs: int = 0
    gc_retired_manifests: int = 0
    gc_standdowns: int = 0
    scrubbed_segments: int = 0
    scrub_errors: int = 0
    expired_sessions: int = 0
    requests: int = 0
    errors: Dict[str, int] = field(default_factory=dict)


class RegistryServer:
    """The asyncio registry service over one storage root.

    Parameters
    ----------
    root:
        Service storage root (created if missing).
    host / port:
        Listen address; ``port=0`` binds an ephemeral port (``self.port``
        holds the real one once :meth:`start` returns).
    retention:
        Default per-worker manifest retention; tenants may override it via
        ``PUT /v1/<tenant>/retention`` (persisted in the tenant catalog).
    scrub_interval:
        Idle-time scrubber cadence in seconds (``0`` disables the scrubber).
    lease_timeout:
        Seconds of inactivity after which a push session is abandoned and
        its lease broken (a SIGKILLed client mid-push).
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        retention: int = 2,
        scrub_interval: float = 0.2,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    ) -> None:
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.root = Path(root)
        self.host = host
        self.port = port
        self.retention = retention
        self.scrub_interval = scrub_interval
        self.lease_timeout = lease_timeout
        self.tenants_dir = self.root / "tenants"
        self.quarantine_dir = self.root / "quarantine"
        self.leases_dir = self.root / "leases"
        self.incoming_dir = self.root / "incoming"
        for directory in (
            self.tenants_dir,
            self.quarantine_dir,
            self.leases_dir,
            self.incoming_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self.vault = FileStore(self.root / "blobs", name="registry")
        self.stats = _Stats()
        #: key → reason, for every blob the scrubber pulled out of the vault.
        self.quarantined: Dict[str, str] = {}
        self._sessions: Dict[str, _PushSession] = {}
        self._session_counter = itertools.count(1)
        self._retentions: Dict[str, int] = {}
        self._scrub_queue: List[Tuple[str, str, int]] = []
        self._maintenance = asyncio.Lock()
        self._server: Optional[asyncio.base_events.Server] = None
        self._scrub_task: Optional[asyncio.Task] = None
        self._connections: Set[asyncio.Task] = set()
        self._break_dead_leases()
        self._sweep_stale_incoming()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the idle-time scrubber."""
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.scrub_interval > 0:
            self._scrub_task = asyncio.ensure_future(self._scrub_loop())
        _LOG.info("registry listening on %s:%d root=%s", self.host, self.port, self.root)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._scrub_task is not None:
            self._scrub_task.cancel()
            try:
                await self._scrub_task
            except asyncio.CancelledError:
                pass
            self._scrub_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(format_response(400, _err(str(exc)), keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                self.stats.requests += 1
                try:
                    status, body, headers = await self._route(request)
                except ProtocolError as exc:
                    status, body, headers = 400, _err(str(exc)), None
                except CheckpointError as exc:
                    status, body, headers = 409, _err(str(exc)), None
                except StoreError as exc:
                    status, body, headers = 404, _err(str(exc)), None
                except Exception as exc:  # noqa: BLE001 - must answer something
                    _LOG.error("registry 500 on %s %s: %s", request.method, request.path, exc)
                    status, body, headers = 500, _err(f"internal error: {exc}"), None
                if status >= 400:
                    label = f"{status}"
                    self.stats.errors[label] = self.stats.errors.get(label, 0) + 1
                writer.write(
                    format_response(status, body, headers=headers, keep_alive=request.keep_alive)
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished mid-exchange; nothing half-applied survives
        except asyncio.CancelledError:
            pass  # server close cancelled this connection; exit quietly
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _route(self, request: Request) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        parts = [p for p in request.path.split("?", 1)[0].split("/") if p]
        method = request.method
        if parts == ["healthz"] and method == "GET":
            return 200, _json(self.healthz()), None
        if len(parts) == 3 and parts[:2] == ["v1", "blobs"]:
            if method == "PUT":
                return await self._put_blob(parts[2], request)
            if method == "GET":
                return await self._get_blob(parts[2], request)
        if len(parts) >= 2 and parts[0] == "v1":
            tenant = parts[1]
            if not NAME_RE.match(tenant):
                raise ProtocolError(f"invalid tenant name {tenant!r}")
            rest = parts[2:]
            if rest == ["missing"] and method == "POST":
                return self._post_missing(tenant, request)
            if rest == ["gc"] and method == "POST":
                return await self._post_gc(tenant, request)
            if rest == ["retention"] and method == "PUT":
                return self._put_retention(tenant, request)
            if len(rest) == 2 and rest[0] == "manifests" and method == "GET":
                return self._get_versions(tenant, rest[1])
            if len(rest) == 3 and rest[0] == "manifests":
                if method == "GET":
                    return self._get_manifest(tenant, rest[1], rest[2])
                if method == "PUT":
                    return await self._put_manifest(tenant, rest[1], rest[2], request)
        return 404, _err(f"no route for {method} {request.path}"), None

    # -- push protocol ------------------------------------------------------

    def _post_missing(self, tenant: str, request: Request):
        payload = _json_body(request)
        keys = payload.get("keys")
        if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
            raise ProtocolError("missing-set request needs a 'keys' list")
        for key in keys:
            if parse_cas_key(key) is None:
                raise ProtocolError(f"{key!r} is not a content-addressed blob key")
        missing = sorted(
            k for k in set(keys) if not self.vault.contains(k) or k in self.quarantined
        )
        session = self._open_session(tenant, set(keys))
        self.stats.pushes += 1
        return 200, _json({"missing": missing, "session": session.session_id}), None

    async def _put_blob(self, key: str, request: Request):
        session = self._touch_session(request)
        if parse_cas_key(key) is None:
            raise ProtocolError(f"{key!r} is not a content-addressed blob key")
        if session is not None:
            session.keys.add(key)
        nbytes, deduped = await asyncio.to_thread(self._ingest_blob, key, request.body)
        if deduped:
            self.stats.blobs_deduped += 1
        else:
            self.stats.blobs_ingested += 1
            self.stats.bytes_ingested += len(request.body)
        self.quarantined.pop(key, None)  # a verified re-upload clears the quarantine
        return 200, _json({"key": key, "nbytes": nbytes, "deduped": deduped}), None

    def _ingest_blob(self, key: str, body: bytes) -> Tuple[int, bool]:
        """Verify and adopt one uploaded blob file; never visible if torn.

        The body lands in a private temp file, is verified against the CAS
        key it claims (digest re-derived from the actual bytes, frames
        decoded), and only then hard-linked into the vault under the key —
        the same publish-by-rename discipline every store write uses, so a
        client SIGKILLed mid-upload leaves at most an unreferenced temp.
        """
        if self.vault.contains(key) and key not in self.quarantined:
            return parse_cas_key(key)[1], True
        tmp = self.incoming_dir / f"{key}.{os.getpid()}.{next(_COUNTER)}.tmp"
        try:
            tmp.write_bytes(body)
            nbytes = verify_blob_file(tmp, key)
            self.vault.adopt(key, tmp)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        return nbytes, False

    async def _get_blob(self, key: str, request: Request):
        try:
            path = self.vault.path_of(key)
        except StoreError:
            if key in self.quarantined:
                raise ProtocolError(f"blob {key!r} is quarantined: {self.quarantined[key]}")
            raise
        total = path.stat().st_size
        try:
            window = parse_range(request.headers.get("range"), total)
        except ProtocolError as exc:
            return 416, _err(str(exc)), None
        start, stop = window if window is not None else (0, total)
        data = await asyncio.to_thread(_read_window, path, start, stop)
        headers = {"x-blob-total": str(total)}
        if window is None:
            return 200, data, headers
        headers["content-range"] = f"bytes {start}-{stop - 1}/{total}"
        return 206, data, headers

    async def _put_manifest(self, tenant: str, worker: str, version_str: str, request: Request):
        if not NAME_RE.match(worker):
            raise ProtocolError(f"invalid worker name {worker!r}")
        try:
            version = int(version_str)
        except ValueError as exc:
            raise ProtocolError(f"invalid version {version_str!r}") from exc
        manifest = CheckpointManifest.from_json(request.body.decode("utf-8"))
        if manifest.worker != worker or manifest.version != version:
            raise ProtocolError(
                f"manifest claims worker {manifest.worker!r} v{manifest.version}, "
                f"request names {worker!r} v{version}"
            )
        missing = sorted(
            {key for _tier, key in manifest.blob_keys() if not self.vault.contains(key)}
        )
        if missing:
            # The manifest must never become visible before every payload it
            # references is durable — a restore that raced it would fail.
            raise CheckpointError(f"manifest v{version} references unuploaded blobs: {missing}")
        catalog = ManifestStore(self._tenant_dir(tenant), worker)
        catalog.commit(manifest)
        self.stats.manifests_committed += 1
        self._close_session(request)
        retired = self._retire_manifests(tenant)
        return 200, _json({"version": version, "retired": retired}), None

    def _get_versions(self, tenant: str, worker: str):
        snapshot = scan_manifest_dir(self._tenant_dir(tenant, create=False))
        versions = sorted(snapshot.committed.get(worker, {}))
        return 200, _json({"worker": worker, "versions": versions}), None

    def _get_manifest(self, tenant: str, worker: str, version_str: str):
        snapshot = scan_manifest_dir(self._tenant_dir(tenant, create=False))
        versions = sorted(snapshot.committed.get(worker, {}))
        if not versions:
            return 404, _err(f"tenant {tenant!r} has no manifests for {worker!r}"), None
        if version_str == "latest":
            version = versions[-1]
        else:
            try:
                version = int(version_str)
            except ValueError as exc:
                raise ProtocolError(f"invalid version {version_str!r}") from exc
            if version not in versions:
                return 404, _err(f"no version {version} for {worker!r}"), None
        path = snapshot.committed[worker][version]
        try:
            return 200, path.read_bytes(), None
        except FileNotFoundError:
            return 404, _err(f"version {version} was retired concurrently"), None

    # -- sessions & leases ---------------------------------------------------

    def _open_session(self, tenant: str, keys: Set[str]) -> _PushSession:
        session_id = f"p{next(self._session_counter)}"
        lease = self.leases_dir / f"PUSH-{os.getpid()}-{next(_COUNTER)}.lease"
        lease.write_text(
            json.dumps({"tenant": tenant, "session": session_id, "created": time.time()}),
            encoding="utf-8",
        )
        session = _PushSession(
            session_id=session_id,
            tenant=tenant,
            keys=set(keys),
            lease_path=lease,
            deadline=time.monotonic() + self.lease_timeout,
        )
        self._sessions[session_id] = session
        return session

    def _touch_session(self, request: Request) -> Optional[_PushSession]:
        session_id = request.headers.get("x-session")
        if not session_id:
            return None
        session = self._sessions.get(session_id)
        if session is None:
            raise ProtocolError(f"unknown or expired push session {session_id!r}")
        session.deadline = time.monotonic() + self.lease_timeout
        return session

    def _close_session(self, request: Request) -> None:
        session_id = request.headers.get("x-session")
        session = self._sessions.pop(session_id, None) if session_id else None
        if session is not None:
            try:
                session.lease_path.unlink()
            except OSError:  # pragma: no cover - lease already broken
                pass

    def _expire_sessions(self) -> None:
        now = time.monotonic()
        for session_id in [s for s, sess in self._sessions.items() if sess.deadline < now]:
            session = self._sessions.pop(session_id)
            self.stats.expired_sessions += 1
            _LOG.warning(
                "expiring push session %s of tenant %s (client gone mid-push)",
                session_id,
                session.tenant,
            )
            try:
                session.lease_path.unlink()
            except OSError:  # pragma: no cover - lease already broken
                pass

    def _break_dead_leases(self) -> None:
        """Break leases whose owning process is gone (crash hygiene at start).

        Mirrors the drain-lease scheme: a lease names its writer's pid; a
        dead pid can never commit its manifest, so its blobs are orphans the
        next GC may sweep.  Live foreign owners are left alone — the sweep
        stands down for them instead.
        """
        for lease in self.leases_dir.glob("PUSH-*.lease"):
            pid = _lease_pid(lease)
            if pid is None or pid == os.getpid() or not _pid_alive(pid):
                try:
                    lease.unlink()
                except OSError:  # pragma: no cover - lost a race
                    pass

    def _sweep_stale_incoming(self) -> None:
        for tmp in self.incoming_dir.glob("*.tmp"):
            try:
                pid = int(tmp.name.split(".")[-3])
            except (ValueError, IndexError):
                pid = None
            if pid is None or pid == os.getpid() or not _pid_alive(pid):
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - lost a race
                    pass

    def _foreign_live_lease(self) -> Optional[Path]:
        for lease in self.leases_dir.glob("PUSH-*.lease"):
            pid = _lease_pid(lease)
            if pid is None:
                continue
            if pid != os.getpid() and _pid_alive(pid):
                return lease
            if pid != os.getpid():
                try:
                    lease.unlink()
                except OSError:  # pragma: no cover - lost a race
                    pass
        return None

    # -- retention & GC ------------------------------------------------------

    def _put_retention(self, tenant: str, request: Request):
        payload = _json_body(request)
        retention = payload.get("retention")
        if not isinstance(retention, int) or retention < 1:
            raise ProtocolError("'retention' must be an integer >= 1")
        self._retentions[tenant] = retention
        policy = self._tenant_dir(tenant) / "retention.json"
        policy.write_text(json.dumps({"retention": retention}) + "\n", encoding="utf-8")
        return 200, _json({"tenant": tenant, "retention": retention}), None

    def _tenant_retention(self, tenant: str) -> int:
        cached = self._retentions.get(tenant)
        if cached is not None:
            return cached
        policy = self.tenants_dir / tenant / "retention.json"
        retention = self.retention
        if policy.is_file():
            try:
                retention = max(1, int(json.loads(policy.read_text(encoding="utf-8"))["retention"]))
            except (ValueError, KeyError, json.JSONDecodeError):
                pass  # damaged policy file: fall back to the server default
        self._retentions[tenant] = retention
        return retention

    def _retire_manifests(self, tenant: str) -> int:
        """Drop committed versions beyond the tenant's retention window."""
        directory = self._tenant_dir(tenant, create=False)
        snapshot = scan_manifest_dir(directory)
        retention = self._tenant_retention(tenant)
        retired = 0
        for worker, versions in snapshot.committed.items():
            for version in sorted(versions)[:-retention]:
                try:
                    versions[version].unlink()
                    retired += 1
                except OSError:  # pragma: no cover - lost a race
                    pass
        self.stats.gc_retired_manifests += retired
        return retired

    async def _post_gc(self, tenant: str, request: Request):
        async with self._maintenance:
            report = self._collect_garbage(tenant)
        return 200, _json(report), None

    def _collect_garbage(self, tenant: Optional[str] = None) -> Dict[str, Any]:
        """Retention retire + cross-tenant blob sweep (recomputed refcounts).

        Reference counts are *never* persisted: the sweep re-derives the full
        reference set from the on-disk manifests of every tenant, so a server
        killed between the manifest retire and the blob sweep merely leaves
        unreferenced blobs for the next run — no orphaned counters, no
        double-free.  Keys declared by live push sessions are protected (the
        uploaded-but-not-yet-committed window), and the sweep stands down
        while a foreign process's live push lease exists.
        """
        self.stats.gc_runs += 1
        tenants = [tenant] if tenant else self._tenant_names()
        retired = sum(self._retire_manifests(name) for name in tenants)
        fault_point("registry-mid-gc")
        lease = self._foreign_live_lease()
        if lease is not None:
            self.stats.gc_standdowns += 1
            return {"retired": retired, "swept": 0, "standdown": lease.name}
        protected: Set[str] = set()
        for session in self._sessions.values():
            protected |= session.keys
        try:
            referenced = self._referenced_keys()
        except CheckpointError as exc:
            # A damaged manifest means "reference set unknown" — skip the
            # sweep rather than risk deleting blobs it may still reference.
            _LOG.warning("skipping registry blob sweep: %s", exc)
            return {"retired": retired, "swept": 0, "skipped": str(exc)}
        swept = 0
        for key in list(self.vault.keys()):
            if not key.startswith(CAS_PREFIX):
                continue
            if key in referenced or key in protected:
                continue
            try:
                self.vault.delete(key)
                swept += 1
            except StoreError:  # pragma: no cover - deleted concurrently
                pass
        self.stats.gc_swept_blobs += swept
        return {"retired": retired, "swept": swept}

    def _referenced_keys(self) -> Set[str]:
        referenced: Set[str] = set()
        for name in self._tenant_names():
            snapshot = scan_manifest_dir(self.tenants_dir / name)
            for _tier, key in referenced_blobs(snapshot.manifest_paths()):
                referenced.add(key)
        return referenced

    def _tenant_names(self) -> List[str]:
        try:
            return sorted(
                entry for entry in os.listdir(self.tenants_dir)
                if (self.tenants_dir / entry).is_dir()
            )
        except FileNotFoundError:  # pragma: no cover - root vanished
            return []

    def _tenant_dir(self, tenant: str, *, create: bool = True) -> Path:
        directory = self.tenants_dir / tenant
        if create:
            directory.mkdir(parents=True, exist_ok=True)
        return directory

    # -- scrubber ------------------------------------------------------------

    async def _scrub_loop(self) -> None:
        """Idle-time deep audit: verify one manifest per quiet tick."""
        while True:
            await asyncio.sleep(self.scrub_interval)
            try:
                self._expire_sessions()
                if self._sessions:
                    continue  # idle-time only: pushes in flight own the vault
                target = self._next_scrub_target()
                if target is None:
                    continue
                async with self._maintenance:
                    fault_point("registry-mid-scrub")
                    await asyncio.to_thread(self._scrub_one, *target)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - scrubbing must outlive hiccups
                _LOG.warning("scrub pass failed (continuing): %s", exc)

    def _next_scrub_target(self) -> Optional[Tuple[str, str, int]]:
        if not self._scrub_queue:
            for name in self._tenant_names():
                snapshot = scan_manifest_dir(self.tenants_dir / name)
                for worker, versions in sorted(snapshot.committed.items()):
                    for version in sorted(versions):
                        self._scrub_queue.append((name, worker, version))
        return self._scrub_queue.pop(0) if self._scrub_queue else None

    def _scrub_one(self, tenant: str, worker: str, version: int) -> None:
        reader = CheckpointReader(
            stores=_VaultMap(self.vault),
            manifest_dir=str(self.tenants_dir / tenant),
            worker=worker,
        )
        try:
            manifest = reader.manifests.load(version)
        except CheckpointError:
            return  # retired (or damaged) since the queue was built
        failures: List[Tuple[str, str]] = []
        verified = reader.verify_blobs(
            manifest, on_error=lambda seg, exc: failures.append((seg.key, str(exc)))
        )
        self.stats.scrubbed_segments += verified
        for key, reason in failures:
            self._quarantine(key, reason)

    def _quarantine(self, key: str, reason: str) -> None:
        """Pull a corrupt blob out of the vault (kept aside for forensics)."""
        self.stats.scrub_errors += 1
        self.quarantined[key] = reason
        try:
            path = self.vault.path_of(key)
        except StoreError:
            return  # already gone (GC won the race); the record stands
        target = self.quarantine_dir / f"{key}.bin"
        # Link the inode into quarantine first, then drop the vault's name:
        # the bytes stay reachable for forensics and the key is gone from the
        # dedup namespace in one ordered pair of metadata operations.
        try:
            if not target.exists():
                os.link(path, target)
            self.vault.delete(key)
        except (OSError, StoreError):  # pragma: no cover - lost a race
            pass
        _LOG.warning("quarantined blob %s: %s", key, reason)

    # -- health --------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """The `/healthz` document: liveness plus scrub/GC/dedup vitals."""
        manifests = 0
        for name in self._tenant_names():
            snapshot = scan_manifest_dir(self.tenants_dir / name)
            manifests += sum(len(v) for v in snapshot.committed.values())
        blobs = sum(1 for key in self.vault.keys() if key.startswith(CAS_PREFIX))
        stats = self.stats
        return {
            "status": "degraded" if self.quarantined else "ok",
            "tenants": len(self._tenant_names()),
            "manifests": manifests,
            "blobs": blobs,
            "blob_bytes": self.vault.used_bytes,
            "active_pushes": len(self._sessions),
            "quarantined": sorted(self.quarantined),
            "stats": {
                "pushes": stats.pushes,
                "blobs_ingested": stats.blobs_ingested,
                "bytes_ingested": stats.bytes_ingested,
                "blobs_deduped": stats.blobs_deduped,
                "manifests_committed": stats.manifests_committed,
                "gc_runs": stats.gc_runs,
                "gc_swept_blobs": stats.gc_swept_blobs,
                "gc_retired_manifests": stats.gc_retired_manifests,
                "gc_standdowns": stats.gc_standdowns,
                "scrubbed_segments": stats.scrubbed_segments,
                "scrub_errors": stats.scrub_errors,
                "expired_sessions": stats.expired_sessions,
                "requests": stats.requests,
                "errors": dict(stats.errors),
            },
        }


# -- helpers -----------------------------------------------------------------


def _json(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _err(message: str) -> bytes:
    return _json({"error": message})


def _json_body(request: Request) -> Dict[str, Any]:
    try:
        payload = json.loads(request.body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    return payload


def _read_window(path: Path, start: int, stop: int) -> bytes:
    with open(path, "rb") as handle:
        handle.seek(start)
        return handle.read(stop - start)


def _lease_pid(lease: Path) -> Optional[int]:
    parts = lease.name.split("-")
    try:
        return int(parts[1])
    except (IndexError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, other user
        return True
    return True


class RegistryServerThread:
    """Run a :class:`RegistryServer` on a private loop in a daemon thread.

    The in-process harness the example, the benchmark and the tests use:
    ``with RegistryServerThread(root) as srv: client = RegistryClient(srv.url)``.
    The server object is reachable as ``.server`` for white-box assertions.
    """

    def __init__(self, root: "str | os.PathLike[str]", **kwargs: Any) -> None:
        self._root = root
        self._kwargs = kwargs
        self.server: Optional[RegistryServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        assert self.server is not None, "server thread not started"
        return f"http://{self.server.host}:{self.server.port}"

    def __enter__(self) -> "RegistryServerThread":
        self._thread = threading.Thread(target=self._run, name="repro-registry", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("registry server thread did not start in time")
        if self._error is not None:
            raise RuntimeError(f"registry server failed to start: {self._error}")
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.server = RegistryServer(self._root, **self._kwargs)
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to __enter__
            self._error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.close())
            loop.close()
