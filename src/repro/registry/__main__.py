"""``python -m repro.registry`` — the console-script entry point."""

import sys

from repro.registry.cli import main

sys.exit(main())
