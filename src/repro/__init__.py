"""repro — a from-scratch reproduction of MLP-Offload (SC '25).

MLP-Offload is a multi-level, multi-path offloading engine for LLM
pre-training under GPU memory constraints.  This package reimplements the
paper's contribution (the offloading engine) together with every substrate it
depends on — a ZeRO-3-style training runtime stand-in, an asynchronous I/O
engine, memory/storage tier management, and a discrete-event cluster
simulator used to regenerate the paper's evaluation at paper scale.

Top-level subpackages
---------------------
``repro.core``
    The MLP-Offload engine itself: performance-model-driven subgroup
    placement across virtual tiers, cache-friendly update ordering,
    tier-exclusive concurrency control and delayed mixed-precision gradient
    conversion.
``repro.zero``
    The DeepSpeed-ZeRO-3-style baseline offloading engine and the progressive
    ablation variants used in the paper's ablation study.
``repro.tiers``
    Memory/storage tier substrate: tier specifications (Table 1 testbeds),
    file-backed NVMe/PFS stores, host buffer pools and the host subgroup
    cache.
``repro.aio``
    Asynchronous I/O engine (libaio / DeepNVMe stand-in): thread-pool async
    reads/writes, bandwidth throttling, process-exclusive locks and
    bandwidth microbenchmarks.
``repro.train``
    LLM training substrate: Table 2 model geometries, mixed-precision state,
    subgroup sharding, vectorized CPU Adam, gradient accumulation, parallel
    topology and a functional trainer for end-to-end tests.
``repro.sim``
    Discrete-event simulator reproducing iteration timelines (forward,
    backward, update with overlapped I/O) on the paper's testbeds.
``repro.bench``
    The experiment harness regenerating every table and figure of the
    paper's evaluation section.
"""

from repro._version import __version__

__all__ = ["__version__"]
