"""Mixed-precision state management (FP16 working copy, FP32 master copy).

Mixed-precision training keeps two copies of the model parameters: an FP16
(or BF16) working copy used by forward/backward, and an FP32 master copy used
by the optimizer for numerical stability (§2, "Mixed Precision Training").
Gradients are produced in FP16 and must be up-converted to FP32 before the
Adam update.

Where that conversion happens is one of the paper's design points:

* the ZeRO-3 baseline converts FP16→FP32 on the host during the backward
  pass and flushes the FP32 gradients to disk, inflating every subsequent
  subgroup fetch by 4 bytes/parameter;
* MLP-Offload keeps the FP16 gradients in the host accumulation buffer and
  converts *in place at update time* ("delayed in-place mixed-precision
  gradient conversion", §3.2), which is cheap because CPU conversion
  throughput (~65 GB/s) dwarfs tier fetch bandwidth.

Both policies are built from the primitives in this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def fp32_to_fp16(array: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Down-convert FP32 values to FP16 (the GPU working copy)."""
    if out is None:
        return array.astype(np.float16)
    if out.shape != array.shape:
        raise ValueError("output shape mismatch")
    np.copyto(out, array.astype(np.float16, copy=False))
    return out


def fp16_to_fp32(array: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Up-convert FP16 values to FP32 (for the optimizer update)."""
    if out is None:
        return array.astype(np.float32)
    if out.shape != array.shape:
        raise ValueError("output shape mismatch")
    np.copyto(out, array.astype(np.float32, copy=False))
    return out


@dataclass
class MixedPrecisionState:
    """The two parameter copies of one shard (or subgroup).

    ``master`` is the authoritative FP32 copy updated by Adam; ``working`` is
    the FP16 copy used for forward/backward and refreshed from ``master``
    after each update.
    """

    master: np.ndarray
    working: np.ndarray

    def __post_init__(self) -> None:
        if self.master.dtype != np.float32:
            raise TypeError("master copy must be float32")
        if self.working.dtype != np.float16:
            raise TypeError("working copy must be float16")
        if self.master.shape != self.working.shape:
            raise ValueError("master and working copies must share a shape")

    @classmethod
    def from_fp32(cls, master: np.ndarray) -> "MixedPrecisionState":
        master = master.astype(np.float32, copy=False)
        return cls(master=master, working=master.astype(np.float16))

    def sync_working(self) -> None:
        """Refresh the FP16 working copy from the FP32 master copy (H2D push)."""
        np.copyto(self.working, self.master.astype(np.float16, copy=False))

    def max_divergence(self) -> float:
        """Largest |master - working| (useful as a staleness check in tests)."""
        return float(np.max(np.abs(self.master - self.working.astype(np.float32)))) if self.master.size else 0.0


class GradScaler:
    """Dynamic loss scaling for FP16 gradients.

    FP16 gradients underflow easily; standard practice multiplies the loss by
    a scale factor before backward and divides the gradients by it before the
    update, growing the scale while steps succeed and shrinking it on
    overflow.  The functional trainer uses this to keep tiny-model training
    numerically faithful to the mixed-precision recipe.
    """

    def __init__(
        self,
        init_scale: float = 2.0**16,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 200,
        min_scale: float = 1.0,
        max_scale: float = 2.0**24,
    ) -> None:
        if init_scale <= 0 or min_scale <= 0 or max_scale < min_scale:
            raise ValueError("invalid scale bounds")
        if growth_factor <= 1.0 or not 0.0 < backoff_factor < 1.0:
            raise ValueError("growth_factor must be > 1 and backoff_factor in (0, 1)")
        if growth_interval < 1:
            raise ValueError("growth_interval must be >= 1")
        self.scale = float(init_scale)
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self.min_scale = min_scale
        self.max_scale = max_scale
        self._good_steps = 0
        self.overflow_count = 0

    def scale_loss(self, loss: float) -> float:
        return loss * self.scale

    def unscale(self, grad: np.ndarray) -> np.ndarray:
        """Return ``grad / scale`` in FP32."""
        return grad.astype(np.float32) / self.scale

    @staticmethod
    def has_overflow(grad: np.ndarray) -> bool:
        """Whether a gradient contains non-finite values."""
        return not bool(np.isfinite(grad).all())

    def update(self, found_overflow: bool) -> None:
        """Adjust the scale after a step: back off on overflow, grow after a streak."""
        if found_overflow:
            self.scale = max(self.min_scale, self.scale * self.backoff_factor)
            self._good_steps = 0
            self.overflow_count += 1
            return
        self._good_steps += 1
        if self._good_steps >= self.growth_interval:
            self.scale = min(self.max_scale, self.scale * self.growth_factor)
            self._good_steps = 0


def conversion_seconds(nbytes_fp16: int, cpu_fp16_to_fp32_bw: float) -> float:
    """Time to up-convert ``nbytes_fp16`` of FP16 gradients on the CPU.

    Used by the performance model and the simulator to account for the
    (small) cost of MLP-Offload's delayed conversion, which the paper
    measures at ~65 GB/s on Testbed-1 — an order of magnitude above tier
    fetch bandwidth, hence "typically negligible" (§3.2).
    """
    if nbytes_fp16 < 0:
        raise ValueError("nbytes_fp16 must be non-negative")
    if cpu_fp16_to_fp32_bw <= 0:
        raise ValueError("cpu_fp16_to_fp32_bw must be positive")
    return nbytes_fp16 / cpu_fp16_to_fp32_bw
