"""Functional training loop wiring the NumPy transformer to an offloading engine.

The trainer reproduces the phase structure of mixed-precision ZeRO-3
training on one worker:

1. **forward** — run the FP16 working copy through the functional
   transformer on a micro-batch;
2. **backward** — compute gradients, slice them into subgroups, hand each
   FP16 subgroup gradient to the engine's backward hook (which either keeps
   it on the host or up-converts and flushes it, depending on the engine);
3. **update** — invoke the engine's update phase, which fetches each
   subgroup's optimizer state from the virtual tier, runs the CPU Adam and
   pushes refreshed FP16 parameters back into the working copy.

It exists for correctness: the end-to-end tests train the same tiny model
with the MLP-Offload engine, with the ZeRO-3 baseline engine and with the
in-memory reference below, and require identical parameters.  Timing figures
at paper scale come from :mod:`repro.sim`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from typing import TYPE_CHECKING

from repro.train.adam import AdamConfig, AdamState, adam_update
from repro.train.data import SyntheticTokenDataset
from repro.train.gradients import GradientAccumulator
from repro.train.model_zoo import ModelConfig
from repro.train.sharding import ShardLayout, build_shard_layout, flat_views
from repro.train.transformer import TransformerLM

if TYPE_CHECKING:  # pragma: no cover - import is for type checkers only
    from repro.core.engine import OffloadEngineBase, UpdateReport


@dataclass(frozen=True)
class TrainerConfig:
    """Knobs of the functional training loop."""

    micro_batch_size: int = 1
    gradient_accumulation_steps: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.micro_batch_size < 1:
            raise ValueError("micro_batch_size must be >= 1")
        if self.gradient_accumulation_steps < 1:
            raise ValueError("gradient_accumulation_steps must be >= 1")


@dataclass
class IterationReport:
    """Phase breakdown and losses of one training iteration."""

    iteration: int
    losses: List[float]
    forward_seconds: float
    backward_seconds: float
    update_report: UpdateReport
    #: Version committed (or started) by this iteration's checkpoint hook,
    #: ``None`` when checkpointing is off or the interval skipped it.
    checkpoint_version: Optional[int] = None

    @property
    def mean_loss(self) -> float:
        return float(np.mean(self.losses)) if self.losses else float("nan")

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds + self.update_report.stats.wall_seconds


class FunctionalTrainer:
    """Drives one rank's training through an offloading engine."""

    def __init__(
        self,
        model_config: ModelConfig,
        engine: OffloadEngineBase,
        *,
        trainer_config: Optional[TrainerConfig] = None,
        dataset: Optional[SyntheticTokenDataset] = None,
        resume: bool = False,
        checkpoint_version: Optional[int] = None,
    ) -> None:
        self.model_config = model_config
        self.config = trainer_config if trainer_config is not None else TrainerConfig()
        self.model = TransformerLM(model_config)
        self.engine = engine
        if engine.layout.num_ranks != 1:
            raise ValueError("the functional trainer drives exactly one rank")
        if engine.layout.total_params != self.model.num_params:
            raise ValueError(
                f"shard layout covers {engine.layout.total_params} parameters but the model has "
                f"{self.model.num_params}"
            )
        self.dataset = dataset if dataset is not None else SyntheticTokenDataset(
            vocab_size=model_config.vocab_size,
            sequence_length=model_config.sequence_length,
            num_records=4096,
            seed=self.config.seed,
        )
        self._views = flat_views(None, engine.layout, rank=0)
        #: The checkpoint a ``resume`` construction restored from (``None``
        #: for a fresh start).  With ``checkpoint_coordination`` on its
        #: ``global_version`` is the job-wide cut the engine resolved — never
        #: a torn per-rank version.
        self.last_restored = None
        if resume or checkpoint_version is not None:
            # Restart path: rebuild the engine (and this trainer's working
            # copy and dataset position) from a committed checkpoint, so the
            # resumed trajectory continues bit-for-bit where the snapshot
            # was taken.  Under global coordination the engine resolves the
            # newest globally committed version and discards torn-commit
            # leftovers before reading.
            restored = engine.restore_checkpoint(checkpoint_version)
            self.last_restored = restored
            self.params_fp16 = restored.fp16_params
            self._step = int(restored.user_data.get("trainer_step", 0))
        else:
            # FP16 working copy of the full (single-rank) parameter vector.
            master = self.model.init_params(seed=self.config.seed)
            self.params_fp16 = master.astype(np.float16)
            engine.initialize(master)
            self._step = 0

    # -- one iteration -------------------------------------------------------

    def train_iteration(self) -> IterationReport:
        """Run one full iteration: accumulation micro-steps then one update phase."""
        losses: List[float] = []
        forward_seconds = 0.0
        backward_seconds = 0.0
        for _micro in range(self.config.gradient_accumulation_steps):
            batch = self.dataset.batch(self._step, self.config.micro_batch_size)
            self._step += 1

            start = time.perf_counter()
            loss, cache = self.model.forward(self.params_fp16, batch.tokens, batch.targets)
            forward_seconds += time.perf_counter() - start
            losses.append(loss)

            start = time.perf_counter()
            grads = self.model.backward(cache)
            for index, view in self._views.items():
                grad_fp16 = grads[view].astype(np.float16)
                backward_seconds += self.engine.on_backward_gradient(index, grad_fp16)
            self.engine.on_microbatch_complete()
            backward_seconds += time.perf_counter() - start

        update_report = self.engine.run_update(self.params_fp16)
        # Iteration-boundary checkpoint hook: the snapshot is captured here
        # (links plus staged copies) and drains concurrently with the next
        # iteration's forward/backward/update.
        checkpoint_version = self.engine.maybe_checkpoint(
            self.params_fp16, user_data={"trainer_step": self._step}
        )
        report = IterationReport(
            iteration=self.engine.update_count - 1,
            losses=losses,
            forward_seconds=forward_seconds,
            backward_seconds=backward_seconds,
            update_report=update_report,
            checkpoint_version=checkpoint_version,
        )
        return report

    def train(self, num_iterations: int) -> List[IterationReport]:
        """Run ``num_iterations`` full iterations and return their reports."""
        if num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        return [self.train_iteration() for _ in range(num_iterations)]

    # -- state access ----------------------------------------------------------

    def master_params(self) -> np.ndarray:
        """The rank's FP32 master parameters gathered from the engine."""
        return self.engine.fetch_master_params()

    def working_params(self) -> np.ndarray:
        """The FP16 working copy (what the forward pass sees)."""
        return self.params_fp16


class InMemoryReferenceTrainer:
    """Offloading-free reference producing bit-identical results to the engines.

    Uses the same gradient accumulation, FP16 gradient casts and vectorized
    Adam as the offloading path, but keeps every subgroup's optimizer state
    in memory — the ground truth the equivalence tests compare against.
    """

    def __init__(
        self,
        model_config: ModelConfig,
        *,
        subgroup_size: int,
        adam: Optional[AdamConfig] = None,
        trainer_config: Optional[TrainerConfig] = None,
        dataset: Optional[SyntheticTokenDataset] = None,
    ) -> None:
        self.model_config = model_config
        self.config = trainer_config if trainer_config is not None else TrainerConfig()
        self.adam = adam if adam is not None else AdamConfig()
        self.model = TransformerLM(model_config)
        self.layout: ShardLayout = build_shard_layout(
            self.model.num_params, num_ranks=1, subgroup_size=subgroup_size
        )
        self._views = flat_views(None, self.layout, rank=0)
        self.dataset = dataset if dataset is not None else SyntheticTokenDataset(
            vocab_size=model_config.vocab_size,
            sequence_length=model_config.sequence_length,
            num_records=4096,
            seed=self.config.seed,
        )
        master = self.model.init_params(seed=self.config.seed)
        self.params_fp16 = master.astype(np.float16)
        self.accumulator = GradientAccumulator(self.layout, rank=0)
        self.states: Dict[int, AdamState] = {}
        for sg in self.layout.subgroups_for_rank(0):
            self.states[sg.index] = AdamState.zeros(
                sg.num_params, init=master[self._views[sg.index]]
            )
        self._step = 0

    def train_iteration(self) -> List[float]:
        """One iteration; returns the micro-batch losses."""
        losses: List[float] = []
        for _micro in range(self.config.gradient_accumulation_steps):
            batch = self.dataset.batch(self._step, self.config.micro_batch_size)
            self._step += 1
            loss, cache = self.model.forward(self.params_fp16, batch.tokens, batch.targets)
            losses.append(loss)
            grads = self.model.backward(cache)
            for index, view in self._views.items():
                self.accumulator.accumulate(index, grads[view].astype(np.float16))
            self.accumulator.mark_microbatch_done()
        for index, view in self._views.items():
            grad = self.accumulator.gradient_fp32(index)
            state = self.states[index]
            adam_update(state, grad, self.adam)
            np.copyto(self.params_fp16[view], state.params.astype(np.float16))
        self.accumulator.reset()
        return losses

    def train(self, num_iterations: int) -> List[List[float]]:
        return [self.train_iteration() for _ in range(num_iterations)]

    def master_params(self) -> np.ndarray:
        flat = np.zeros(self.layout.total_params, dtype=np.float32)
        for index, view in self._views.items():
            flat[view] = self.states[index].params
        return flat

    def working_params(self) -> np.ndarray:
        return self.params_fp16
