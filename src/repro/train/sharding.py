"""ZeRO-3 sharding: ranks → model shards → subgroups.

ZeRO-3 partitions model parameters, gradients and optimizer state across the
data-parallel ranks; each rank's shard is further decomposed into fixed-size
*subgroups* (DeepSpeed's ``sub_group_size``) that are the unit of offloading,
prefetching and CPU update (§2, "Sharded Model and Optimizer States Into
Subgroups").

The layout computed here is purely index arithmetic — which global parameter
interval belongs to which rank and subgroup — shared by the functional engine
(which materializes NumPy slices per subgroup) and the simulator (which only
needs sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.train.model_zoo import FP16_GRAD_BYTES, OPTIMIZER_STATE_BYTES

#: DeepSpeed's default subgroup size (parameters per subgroup).
DEFAULT_SUBGROUP_SIZE = 1_000_000_000
#: The subgroup size the paper uses for all evaluated approaches (§4.1).
PAPER_SUBGROUP_SIZE = 100_000_000


@dataclass(frozen=True)
class Subgroup:
    """One subgroup of a rank's shard.

    Attributes
    ----------
    rank:
        Owning data-parallel rank.
    index:
        Subgroup index within the rank (0-based; the "subgroup ID" whose
        processing order MLP-Offload permutes).
    global_start / global_stop:
        Half-open interval of global flat parameter indices covered.
    """

    rank: int
    index: int
    global_start: int
    global_stop: int

    def __post_init__(self) -> None:
        if self.global_stop <= self.global_start:
            raise ValueError("subgroup must cover at least one parameter")
        if self.rank < 0 or self.index < 0:
            raise ValueError("rank and index must be non-negative")

    @property
    def num_params(self) -> int:
        return self.global_stop - self.global_start

    @property
    def optimizer_state_bytes(self) -> int:
        """Bytes of FP32 params+momentum+variance for this subgroup."""
        return self.num_params * OPTIMIZER_STATE_BYTES

    @property
    def fp16_gradient_bytes(self) -> int:
        return self.num_params * FP16_GRAD_BYTES

    @property
    def key(self) -> str:
        """Stable storage key for this subgroup's offloaded state."""
        return f"rank{self.rank}-sg{self.index:05d}"


@dataclass(frozen=True)
class ShardLayout:
    """Sharding of a model's flat parameter space across ranks and subgroups."""

    total_params: int
    num_ranks: int
    subgroup_size: int
    rank_intervals: Tuple[Tuple[int, int], ...]
    subgroups: Tuple[Subgroup, ...]

    @property
    def num_subgroups(self) -> int:
        return len(self.subgroups)

    def subgroups_for_rank(self, rank: int) -> List[Subgroup]:
        if not 0 <= rank < self.num_ranks:
            raise IndexError(f"rank {rank} out of range for {self.num_ranks} ranks")
        return [sg for sg in self.subgroups if sg.rank == rank]

    def rank_params(self, rank: int) -> int:
        start, stop = self.rank_intervals[rank]
        return stop - start

    def max_subgroups_per_rank(self) -> int:
        counts: Dict[int, int] = {}
        for sg in self.subgroups:
            counts[sg.rank] = counts.get(sg.rank, 0) + 1
        return max(counts.values()) if counts else 0

    def validate(self) -> None:
        """Internal consistency checks (used by tests and property checks)."""
        covered = 0
        for rank, (start, stop) in enumerate(self.rank_intervals):
            if stop < start:
                raise ValueError(f"rank {rank} has negative-size interval")
            covered += stop - start
            rank_subgroups = self.subgroups_for_rank(rank)
            if stop > start:
                if not rank_subgroups:
                    raise ValueError(f"rank {rank} owns parameters but no subgroups")
                if rank_subgroups[0].global_start != start or rank_subgroups[-1].global_stop != stop:
                    raise ValueError(f"rank {rank} subgroups do not tile its interval")
                for prev, cur in zip(rank_subgroups, rank_subgroups[1:]):
                    if prev.global_stop != cur.global_start:
                        raise ValueError(f"rank {rank} subgroups are not contiguous")
        if covered != self.total_params:
            raise ValueError(
                f"rank intervals cover {covered} parameters, expected {self.total_params}"
            )


def build_shard_layout(
    total_params: int,
    num_ranks: int,
    subgroup_size: int = PAPER_SUBGROUP_SIZE,
) -> ShardLayout:
    """Partition ``total_params`` across ``num_ranks`` ranks and fixed-size subgroups.

    Parameters are split as evenly as possible across ranks (the first
    ``total_params % num_ranks`` ranks receive one extra parameter), and each
    rank's interval is cut into subgroups of at most ``subgroup_size``
    parameters, the last one possibly smaller.
    """
    if total_params < 1:
        raise ValueError("total_params must be >= 1")
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    if subgroup_size < 1:
        raise ValueError("subgroup_size must be >= 1")

    base = total_params // num_ranks
    remainder = total_params % num_ranks
    intervals: List[Tuple[int, int]] = []
    cursor = 0
    for rank in range(num_ranks):
        size = base + (1 if rank < remainder else 0)
        intervals.append((cursor, cursor + size))
        cursor += size

    subgroups: List[Subgroup] = []
    for rank, (start, stop) in enumerate(intervals):
        rank_params = stop - start
        if rank_params == 0:
            continue
        count = math.ceil(rank_params / subgroup_size)
        for index in range(count):
            sg_start = start + index * subgroup_size
            sg_stop = min(sg_start + subgroup_size, stop)
            subgroups.append(
                Subgroup(rank=rank, index=index, global_start=sg_start, global_stop=sg_stop)
            )

    layout = ShardLayout(
        total_params=total_params,
        num_ranks=num_ranks,
        subgroup_size=subgroup_size,
        rank_intervals=tuple(intervals),
        subgroups=tuple(subgroups),
    )
    layout.validate()
    return layout


def flat_views(array, layout: ShardLayout, rank: int) -> Dict[int, "slice"]:
    """Return ``{subgroup_index: slice}`` into a *rank-local* flat array.

    The functional engine stores each rank's shard as one contiguous flat
    array; this helper maps subgroup indices onto slices of that array.
    """
    start, _stop = layout.rank_intervals[rank]
    views: Dict[int, slice] = {}
    for sg in layout.subgroups_for_rank(rank):
        views[sg.index] = slice(sg.global_start - start, sg.global_stop - start)
    return views
