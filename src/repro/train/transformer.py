"""A functional NumPy decoder-only transformer with hand-written backward pass.

The offloading engines only ever see flat parameter/gradient vectors at
subgroup granularity, but the end-to-end correctness tests need a *real*
model producing *real* gradients so that we can verify:

* training with MLP-Offload (real file offloading, reordered updates, delayed
  gradient conversion) yields exactly the same parameters as an in-memory
  reference run;
* the cache-friendly reordering does not change results (order independence
  of the Adam update);
* gradient accumulation across micro-batches matches large-batch training.

This module implements a small GPT-style causal language model — token and
positional embeddings, pre-LayerNorm attention and GELU MLP blocks with
residual connections, and a tied LM head — entirely in NumPy with a manual
backward pass.  Parameters live in a single flat FP32 vector so that ZeRO-3
style sharding (:mod:`repro.train.sharding`) applies directly.

The implementation favours clarity and testability over speed (the paper's
figures come from the simulator, not from this model), but all inner loops
are vectorized over batch/sequence dimensions per the HPC guides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.train.model_zoo import ModelConfig


@dataclass(frozen=True)
class ParameterSpec:
    """One named parameter tensor inside the flat parameter vector."""

    name: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))

    @property
    def stop(self) -> int:
        return self.offset + self.size


def _gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU (the Megatron/GPT-2 variant)."""
    return 0.5 * x * (1.0 + np.tanh(math.sqrt(2.0 / math.pi) * (x + 0.044715 * x**3)))


def _gelu_grad(x: np.ndarray) -> np.ndarray:
    c = math.sqrt(2.0 / math.pi)
    inner = c * (x + 0.044715 * x**3)
    tanh_inner = np.tanh(inner)
    sech2 = 1.0 - tanh_inner**2
    return 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * c * (1.0 + 3 * 0.044715 * x**2)


def _layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5):
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean) * inv_std
    out = x_hat * gamma + beta
    cache = (x_hat, inv_std, gamma)
    return out, cache


def _layer_norm_backward(dout: np.ndarray, cache) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    x_hat, inv_std, gamma = cache
    dgamma = (dout * x_hat).sum(axis=tuple(range(dout.ndim - 1)))
    dbeta = dout.sum(axis=tuple(range(dout.ndim - 1)))
    dx_hat = dout * gamma
    dx = (
        dx_hat
        - dx_hat.mean(axis=-1, keepdims=True)
        - x_hat * (dx_hat * x_hat).mean(axis=-1, keepdims=True)
    ) * inv_std
    return dx, dgamma, dbeta


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class TransformerLM:
    """GPT-style causal language model over a flat FP32 parameter vector."""

    def __init__(self, config: ModelConfig, *, init_std: float = 0.02) -> None:
        self.config = config
        self.init_std = init_std
        self._specs: List[ParameterSpec] = []
        self._index: Dict[str, ParameterSpec] = {}
        self._build_layout()

    # -- parameter layout --------------------------------------------------

    def _register(self, name: str, shape: Tuple[int, ...], offset: int) -> int:
        spec = ParameterSpec(name=name, shape=shape, offset=offset)
        self._specs.append(spec)
        self._index[name] = spec
        return offset + spec.size

    def _build_layout(self) -> None:
        c = self.config
        d = c.hidden_dim
        offset = 0
        offset = self._register("tok_emb", (c.vocab_size, d), offset)
        offset = self._register("pos_emb", (c.sequence_length, d), offset)
        for layer in range(c.num_layers):
            prefix = f"layer{layer}."
            offset = self._register(prefix + "ln1_g", (d,), offset)
            offset = self._register(prefix + "ln1_b", (d,), offset)
            offset = self._register(prefix + "w_qkv", (d, 3 * d), offset)
            offset = self._register(prefix + "b_qkv", (3 * d,), offset)
            offset = self._register(prefix + "w_out", (d, d), offset)
            offset = self._register(prefix + "b_out", (d,), offset)
            offset = self._register(prefix + "ln2_g", (d,), offset)
            offset = self._register(prefix + "ln2_b", (d,), offset)
            offset = self._register(prefix + "w_fc", (d, 4 * d), offset)
            offset = self._register(prefix + "b_fc", (4 * d,), offset)
            offset = self._register(prefix + "w_proj", (4 * d, d), offset)
            offset = self._register(prefix + "b_proj", (d,), offset)
        offset = self._register("lnf_g", (d,), offset)
        offset = self._register("lnf_b", (d,), offset)
        self._num_params = offset

    @property
    def num_params(self) -> int:
        """Total number of trainable parameters of the functional model."""
        return self._num_params

    @property
    def parameter_specs(self) -> Tuple[ParameterSpec, ...]:
        return tuple(self._specs)

    def spec(self, name: str) -> ParameterSpec:
        return self._index[name]

    def view(self, flat: np.ndarray, name: str) -> np.ndarray:
        """A reshaped view of parameter ``name`` inside the flat vector ``flat``."""
        spec = self._index[name]
        return flat[spec.offset : spec.stop].reshape(spec.shape)

    def init_params(self, seed: int = 0) -> np.ndarray:
        """Initialize a flat FP32 parameter vector (GPT-2 style initialization)."""
        rng = np.random.default_rng(seed)
        flat = np.zeros(self._num_params, dtype=np.float32)
        scale_proj = self.init_std / math.sqrt(2.0 * self.config.num_layers)
        for spec in self._specs:
            view = flat[spec.offset : spec.stop].reshape(spec.shape)
            if spec.name.endswith(("_g", "lnf_g")):
                view[...] = 1.0
            elif spec.name.endswith("_b") or spec.name.endswith(("b_qkv", "b_fc", "b_proj", "b_out")):
                view[...] = 0.0
            elif spec.name.endswith(("w_proj", "w_out")):
                view[...] = rng.normal(0.0, scale_proj, size=spec.shape)
            else:
                view[...] = rng.normal(0.0, self.init_std, size=spec.shape)
        return flat

    # -- forward / backward -------------------------------------------------

    def forward(self, flat_params: np.ndarray, tokens: np.ndarray, targets: np.ndarray):
        """Compute mean next-token cross-entropy loss and the backward cache.

        ``flat_params`` may be FP16 or FP32; compute happens in FP32 (matching
        the numerics of FP16-storage/FP32-accumulate mixed precision closely
        enough for the correctness tests, which compare like with like).
        """
        if tokens.ndim != 2:
            raise ValueError("tokens must be (batch, sequence)")
        if tokens.shape != targets.shape:
            raise ValueError("tokens and targets must share a shape")
        c = self.config
        batch, seq = tokens.shape
        if seq > c.sequence_length:
            raise ValueError(f"sequence length {seq} exceeds model maximum {c.sequence_length}")
        params = flat_params.astype(np.float32, copy=False)

        tok_emb = self.view(params, "tok_emb")
        pos_emb = self.view(params, "pos_emb")
        x = tok_emb[tokens] + pos_emb[:seq][None, :, :]

        mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        layer_caches = []
        for layer in range(c.num_layers):
            x, cache = self._layer_forward(params, layer, x, mask)
            layer_caches.append(cache)

        lnf_out, lnf_cache = _layer_norm(x, self.view(params, "lnf_g"), self.view(params, "lnf_b"))
        logits = lnf_out @ tok_emb.T
        probs = _softmax(logits, axis=-1)
        # Mean token cross entropy.
        flat_probs = probs.reshape(-1, c.vocab_size)
        flat_targets = targets.reshape(-1)
        nll = -np.log(np.clip(flat_probs[np.arange(flat_targets.size), flat_targets], 1e-12, None))
        loss = float(nll.mean())

        cache = {
            "tokens": tokens,
            "targets": targets,
            "probs": probs,
            "lnf_out": lnf_out,
            "lnf_cache": lnf_cache,
            "layer_caches": layer_caches,
            "params": params,
            "mask": mask,
            "seq": seq,
        }
        return loss, cache

    def _layer_forward(self, params: np.ndarray, layer: int, x: np.ndarray, mask: np.ndarray):
        c = self.config
        d = c.hidden_dim
        h = c.num_heads
        dh = c.head_dim
        prefix = f"layer{layer}."
        batch, seq, _ = x.shape

        ln1_out, ln1_cache = _layer_norm(
            x, self.view(params, prefix + "ln1_g"), self.view(params, prefix + "ln1_b")
        )
        w_qkv = self.view(params, prefix + "w_qkv")
        b_qkv = self.view(params, prefix + "b_qkv")
        qkv = ln1_out @ w_qkv + b_qkv
        q, k, v = np.split(qkv, 3, axis=-1)
        # (batch, heads, seq, head_dim)
        q = q.reshape(batch, seq, h, dh).transpose(0, 2, 1, 3)
        k = k.reshape(batch, seq, h, dh).transpose(0, 2, 1, 3)
        v = v.reshape(batch, seq, h, dh).transpose(0, 2, 1, 3)
        scores = q @ k.transpose(0, 1, 3, 2) / math.sqrt(dh)
        scores = np.where(mask[None, None, :, :], -1e9, scores)
        attn = _softmax(scores, axis=-1)
        ctx = attn @ v  # (batch, heads, seq, head_dim)
        ctx_merged = ctx.transpose(0, 2, 1, 3).reshape(batch, seq, d)
        w_out = self.view(params, prefix + "w_out")
        b_out = self.view(params, prefix + "b_out")
        attn_out = ctx_merged @ w_out + b_out
        x_attn = x + attn_out

        ln2_out, ln2_cache = _layer_norm(
            x_attn, self.view(params, prefix + "ln2_g"), self.view(params, prefix + "ln2_b")
        )
        w_fc = self.view(params, prefix + "w_fc")
        b_fc = self.view(params, prefix + "b_fc")
        fc_pre = ln2_out @ w_fc + b_fc
        fc_act = _gelu(fc_pre)
        w_proj = self.view(params, prefix + "w_proj")
        b_proj = self.view(params, prefix + "b_proj")
        mlp_out = fc_act @ w_proj + b_proj
        out = x_attn + mlp_out

        cache = {
            "ln1_out": ln1_out,
            "ln1_cache": ln1_cache,
            "q": q,
            "k": k,
            "v": v,
            "attn": attn,
            "ctx_merged": ctx_merged,
            "x_attn": x_attn,
            "ln2_out": ln2_out,
            "ln2_cache": ln2_cache,
            "fc_pre": fc_pre,
            "fc_act": fc_act,
        }
        return out, cache

    def backward(self, cache) -> np.ndarray:
        """Compute the flat FP32 gradient of the mean loss w.r.t. every parameter."""
        c = self.config
        params = cache["params"]
        tokens = cache["tokens"]
        targets = cache["targets"]
        probs = cache["probs"]
        seq = cache["seq"]
        batch = tokens.shape[0]
        grads = np.zeros(self._num_params, dtype=np.float32)

        tok_emb = self.view(params, "tok_emb")
        d_tok_emb = self.view(grads, "tok_emb")
        d_pos_emb = self.view(grads, "pos_emb")

        # Cross-entropy + softmax backward.
        dlogits = probs.copy()
        flat = dlogits.reshape(-1, c.vocab_size)
        flat[np.arange(targets.size), targets.reshape(-1)] -= 1.0
        dlogits /= float(targets.size)

        lnf_out = cache["lnf_out"]
        # logits = lnf_out @ tok_emb.T  (tied head)
        d_lnf_out = dlogits @ tok_emb
        d_tok_emb += np.einsum("bsv,bsd->vd", dlogits, lnf_out)

        dx, dgamma, dbeta = _layer_norm_backward(d_lnf_out, cache["lnf_cache"])
        self.view(grads, "lnf_g")[...] += dgamma
        self.view(grads, "lnf_b")[...] += dbeta

        for layer in reversed(range(c.num_layers)):
            dx = self._layer_backward(params, grads, layer, dx, cache["layer_caches"][layer], cache["mask"])

        # Embedding lookups.
        np.add.at(d_tok_emb, tokens.reshape(-1), dx.reshape(-1, c.hidden_dim))
        d_pos_emb[:seq] += dx.sum(axis=0)
        return grads

    def _layer_backward(self, params, grads, layer: int, dout: np.ndarray, cache, mask) -> np.ndarray:
        c = self.config
        d = c.hidden_dim
        h = c.num_heads
        dh = c.head_dim
        prefix = f"layer{layer}."
        batch, seq, _ = dout.shape

        # out = x_attn + mlp_out
        d_x_attn = dout.copy()
        d_mlp_out = dout

        # MLP branch.
        fc_act = cache["fc_act"]
        w_proj = self.view(params, prefix + "w_proj")
        self.view(grads, prefix + "w_proj")[...] += np.einsum("bsf,bsd->fd", fc_act, d_mlp_out)
        self.view(grads, prefix + "b_proj")[...] += d_mlp_out.sum(axis=(0, 1))
        d_fc_act = d_mlp_out @ w_proj.T
        d_fc_pre = d_fc_act * _gelu_grad(cache["fc_pre"])
        ln2_out = cache["ln2_out"]
        w_fc = self.view(params, prefix + "w_fc")
        self.view(grads, prefix + "w_fc")[...] += np.einsum("bsd,bsf->df", ln2_out, d_fc_pre)
        self.view(grads, prefix + "b_fc")[...] += d_fc_pre.sum(axis=(0, 1))
        d_ln2_out = d_fc_pre @ w_fc.T
        d_x_attn_from_ln2, dgamma2, dbeta2 = _layer_norm_backward(d_ln2_out, cache["ln2_cache"])
        self.view(grads, prefix + "ln2_g")[...] += dgamma2
        self.view(grads, prefix + "ln2_b")[...] += dbeta2
        d_x_attn += d_x_attn_from_ln2

        # x_attn = x + attn_out
        d_x = d_x_attn.copy()
        d_attn_out = d_x_attn

        ctx_merged = cache["ctx_merged"]
        w_out = self.view(params, prefix + "w_out")
        self.view(grads, prefix + "w_out")[...] += np.einsum("bsd,bse->de", ctx_merged, d_attn_out)
        self.view(grads, prefix + "b_out")[...] += d_attn_out.sum(axis=(0, 1))
        d_ctx_merged = d_attn_out @ w_out.T
        d_ctx = d_ctx_merged.reshape(batch, seq, h, dh).transpose(0, 2, 1, 3)

        attn = cache["attn"]
        v = cache["v"]
        d_attn = d_ctx @ v.transpose(0, 1, 3, 2)
        d_v = attn.transpose(0, 1, 3, 2) @ d_ctx
        # Softmax backward.
        d_scores = attn * (d_attn - (d_attn * attn).sum(axis=-1, keepdims=True))
        d_scores = np.where(mask[None, None, :, :], 0.0, d_scores)
        d_scores /= math.sqrt(dh)
        q = cache["q"]
        k = cache["k"]
        d_q = d_scores @ k
        d_k = d_scores.transpose(0, 1, 3, 2) @ q

        # Merge heads back and propagate through the QKV projection.
        def merge(t: np.ndarray) -> np.ndarray:
            return t.transpose(0, 2, 1, 3).reshape(batch, seq, d)

        d_qkv = np.concatenate([merge(d_q), merge(d_k), merge(d_v)], axis=-1)
        ln1_out = cache["ln1_out"]
        w_qkv = self.view(params, prefix + "w_qkv")
        self.view(grads, prefix + "w_qkv")[...] += np.einsum("bsd,bse->de", ln1_out, d_qkv)
        self.view(grads, prefix + "b_qkv")[...] += d_qkv.sum(axis=(0, 1))
        d_ln1_out = d_qkv @ w_qkv.T
        d_x_from_ln1, dgamma1, dbeta1 = _layer_norm_backward(d_ln1_out, cache["ln1_cache"])
        self.view(grads, prefix + "ln1_g")[...] += dgamma1
        self.view(grads, prefix + "ln1_b")[...] += dbeta1
        d_x += d_x_from_ln1
        return d_x

    # -- convenience ---------------------------------------------------------

    def loss_and_grad(self, flat_params: np.ndarray, tokens: np.ndarray, targets: np.ndarray):
        """Forward + backward in one call; returns ``(loss, flat_grads)``."""
        loss, cache = self.forward(flat_params, tokens, targets)
        return loss, self.backward(cache)

    def loss(self, flat_params: np.ndarray, tokens: np.ndarray, targets: np.ndarray) -> float:
        loss, _ = self.forward(flat_params, tokens, targets)
        return loss
