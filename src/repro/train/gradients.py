"""Host-side gradient accumulation buffers.

During the backward pass the FP16 gradients of each subgroup are flushed from
the GPU to a host accumulation buffer; with gradient accumulation enabled the
buffer sums the contributions of several micro-batches before one update
phase consumes them (§4.5).

The buffer is also where the two gradient policies diverge:

* the ZeRO-3 baseline up-converts the accumulated gradients to FP32 and
  flushes them to the third-level tier during the backward pass;
* MLP-Offload leaves them in FP16 on the host and converts at update time.

:class:`GradientAccumulator` implements the host buffer itself and is shared
by both engines; the policies live in :mod:`repro.core.gradient_policy`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.train.sharding import ShardLayout, Subgroup


class GradientAccumulator:
    """Per-rank FP16 gradient accumulation buffer, indexed by subgroup.

    Accumulation is performed in FP32 internally to avoid the catastrophic
    rounding of repeated FP16 adds, and exposed in FP16 (the storage format
    the paper reserves on the host for "the FP16 gradients of all subgroups",
    §3.2) or FP32 on demand.
    """

    def __init__(self, layout: ShardLayout, rank: int) -> None:
        self.layout = layout
        self.rank = rank
        self._subgroups: Dict[int, Subgroup] = {
            sg.index: sg for sg in layout.subgroups_for_rank(rank)
        }
        self._buffers: Dict[int, np.ndarray] = {
            index: np.zeros(sg.num_params, dtype=np.float32)
            for index, sg in self._subgroups.items()
        }
        self._accumulated_steps = 0

    @property
    def subgroup_indices(self) -> List[int]:
        return sorted(self._subgroups)

    @property
    def accumulated_steps(self) -> int:
        """Number of micro-batches accumulated since the last :meth:`reset`."""
        return self._accumulated_steps

    @property
    def nbytes_fp16(self) -> int:
        """Host bytes needed to hold the accumulated gradients in FP16."""
        return int(sum(buf.size * 2 for buf in self._buffers.values()))

    def accumulate(self, subgroup_index: int, grad_fp16: np.ndarray) -> None:
        """Add one micro-batch's FP16 gradient for ``subgroup_index``."""
        buffer = self._buffer(subgroup_index)
        if grad_fp16.size != buffer.size:
            raise ValueError(
                f"gradient size {grad_fp16.size} != subgroup size {buffer.size}"
            )
        buffer += grad_fp16.astype(np.float32, copy=False).reshape(-1)

    def mark_microbatch_done(self) -> None:
        """Record that one full micro-batch's gradients have been accumulated."""
        self._accumulated_steps += 1

    def gradient_fp16(self, subgroup_index: int) -> np.ndarray:
        """The accumulated gradient of one subgroup, in FP16 (host storage format)."""
        return self._buffer(subgroup_index).astype(np.float16)

    def gradient_fp32(
        self, subgroup_index: int, *, average: bool = True, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """The accumulated gradient in FP32, optionally averaged over micro-batches.

        ``out`` (a preallocated FP32 array of the subgroup's size) makes the
        call allocation-free: the buffer is copied into it instead of into a
        fresh array, with bitwise-identical results.
        """
        buffer = self._buffer(subgroup_index)
        if out is None:
            grad = buffer.copy()
        else:
            np.copyto(out, buffer)
            grad = out
        if average and self._accumulated_steps > 1:
            grad /= float(self._accumulated_steps)
        return grad

    def reset(self, subgroup_indices: Optional[Iterable[int]] = None) -> None:
        """Zero the buffers (all of them, or just the listed subgroups)."""
        indices = self.subgroup_indices if subgroup_indices is None else list(subgroup_indices)
        for index in indices:
            self._buffer(index)[:] = 0.0
        if subgroup_indices is None:
            self._accumulated_steps = 0

    def _buffer(self, subgroup_index: int) -> np.ndarray:
        try:
            return self._buffers[subgroup_index]
        except KeyError:
            raise KeyError(
                f"rank {self.rank} has no subgroup {subgroup_index}; "
                f"known: {self.subgroup_indices}"
            ) from None
