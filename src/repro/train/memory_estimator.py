"""GPU / host memory footprint estimation (DeepSpeed memory-estimator stand-in).

The paper's runtime configuration rules (§4.1) require that:

* the aggregated GPU memory holds the FP16 parameters, activation
  checkpoints, and at least one subgroup's FP16 gradients;
* the host memory holds the runtime buffers (gradient accumulation,
  all-reduce buckets, ZeRO-3 bookkeeping — 250-350 GB depending on the model,
  per Figure 10's discussion) plus at least three subgroups of pinned I/O
  buffers;
* everything else (the FP32 optimizer state) spills to the third-level tier.

:func:`estimate_memory` reproduces that accounting.  The simulator uses it to
size the host cache (and hence how much of Figure 10's "Host Mem." slice each
model gets); the functional engine uses it to validate configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.train.model_zoo import (
    FP16_BYTES,
    FP16_GRAD_BYTES,
    FP32_GRAD_BYTES,
    OPTIMIZER_STATE_BYTES,
    ModelConfig,
)
from repro.train.parallelism import ParallelTopology
from repro.util.bytesize import GiB


@dataclass(frozen=True)
class MemoryBreakdown:
    """Byte-level memory budget of one training configuration."""

    # GPU side (per GPU)
    gpu_fp16_params: float
    gpu_activations: float
    gpu_subgroup_grads: float
    gpu_total: float
    gpu_capacity: float
    # Host side (per node)
    host_runtime_buffers: float
    host_grad_accum: float
    host_pinned_buffers: float
    host_cache_available: float
    host_total_required: float
    host_capacity: float
    # Third-level tier
    offloaded_optimizer_bytes: float

    @property
    def fits_gpu(self) -> bool:
        return self.gpu_total <= self.gpu_capacity

    @property
    def fits_host(self) -> bool:
        return self.host_total_required <= self.host_capacity


def runtime_buffer_bytes(model: ModelConfig) -> float:
    """ZeRO-3 runtime bookkeeping on the host (allocator pools, all-reduce buckets…).

    The paper reports 250–350 GB proportional to model size (§4.3).  We model
    it as an affine function of total parameters calibrated to those two
    endpoints (40B → ~250 GB, 120B → ~350 GB).
    """
    p_billion = model.total_params / 1e9
    gigabytes = 250.0 + (350.0 - 250.0) * (min(max(p_billion, 40.0), 130.0) - 40.0) / (120.0 - 40.0)
    return gigabytes * GiB


def estimate_memory(
    model: ModelConfig,
    topology: ParallelTopology,
    *,
    gpu_memory: float,
    host_memory: float,
    subgroup_size: int,
    micro_batch_size: int = 1,
    pinned_buffer_subgroups: int = 3,
    activation_checkpointing: bool = True,
    baseline_fp32_grads: bool = False,
) -> MemoryBreakdown:
    """Estimate the memory budget of one configuration.

    Parameters
    ----------
    baseline_fp32_grads:
        ``True`` for the ZeRO-3 baseline, whose offloaded subgroups also
        carry FP32 gradients (16 bytes/param + 4 bytes/param); ``False`` for
        MLP-Offload, whose subgroups carry only the 12 bytes/param optimizer
        state while FP16 gradients stay in the host accumulation buffer.
    """
    if subgroup_size < 1:
        raise ValueError("subgroup_size must be >= 1")
    if pinned_buffer_subgroups < 1:
        raise ValueError("pinned_buffer_subgroups must be >= 1")

    world = topology.world_size
    params_per_rank = model.total_params / world
    tp = topology.tensor_parallel

    # -- GPU side ---------------------------------------------------------
    # FP16 parameters are sharded by ZeRO-3 across data-parallel ranks but
    # must be gathered layer-by-layer; the steady-state residency is the
    # rank's own shard plus the working set of gathered layers (we charge two
    # layers' worth of gathered parameters).
    own_shard = params_per_rank * FP16_BYTES
    gathered_working_set = 2 * (model.params_per_layer / tp) * FP16_BYTES
    gpu_fp16_params = own_shard + gathered_working_set
    gpu_activations = model.activation_bytes(micro_batch_size, checkpointing=activation_checkpointing) / tp
    gpu_subgroup_grads = subgroup_size * FP16_GRAD_BYTES
    gpu_total = gpu_fp16_params + gpu_activations + gpu_subgroup_grads

    # -- Host side --------------------------------------------------------
    workers_per_node = topology.workers_per_node
    host_runtime = runtime_buffer_bytes(model)
    # FP16 gradient accumulation buffers for every subgroup owned by the
    # node's workers (reserved regardless of engine; §3.2).
    host_grad_accum = workers_per_node * params_per_rank * FP16_GRAD_BYTES
    subgroup_bytes = subgroup_size * (
        OPTIMIZER_STATE_BYTES + (FP32_GRAD_BYTES if baseline_fp32_grads else 0)
    )
    host_pinned = workers_per_node * pinned_buffer_subgroups * subgroup_bytes
    host_required = host_runtime + host_grad_accum + host_pinned
    host_cache_available = max(0.0, host_memory - host_required)

    offloaded = workers_per_node * params_per_rank * (
        OPTIMIZER_STATE_BYTES + (FP32_GRAD_BYTES if baseline_fp32_grads else 0)
    )

    return MemoryBreakdown(
        gpu_fp16_params=gpu_fp16_params,
        gpu_activations=gpu_activations,
        gpu_subgroup_grads=gpu_subgroup_grads,
        gpu_total=gpu_total,
        gpu_capacity=gpu_memory,
        host_runtime_buffers=host_runtime,
        host_grad_accum=host_grad_accum,
        host_pinned_buffers=host_pinned,
        host_cache_available=host_cache_available,
        host_total_required=host_required,
        host_capacity=host_memory,
        offloaded_optimizer_bytes=offloaded,
    )
