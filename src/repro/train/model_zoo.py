"""Model geometries used by the paper's evaluation (Table 2).

The paper evaluates seven decoder-only transformer configurations between
40B and 280B parameters, each described by its number of layers ``N_L``,
hidden dimension ``D_H`` and attention heads ``A_H``.  This module captures
those geometries, the standard GPT-style parameter-count formula used to
derive total parameter counts, and the derived byte footprints (FP16 model,
FP32 optimizer state) that drive both the functional engine and the
simulator.

Parameter-count model
---------------------
For a decoder-only transformer with tied embeddings, vocabulary ``V``,
sequence length ``S``, ``N_L`` layers and hidden size ``D_H``:

* per-layer attention parameters: ``4 * D_H^2`` (Q, K, V, output projections)
  plus biases ``4 * D_H``;
* per-layer MLP parameters: ``8 * D_H^2`` (two projections with the usual
  4x expansion) plus biases ``5 * D_H``;
* per-layer LayerNorm parameters: ``4 * D_H``;
* embeddings: ``V * D_H`` plus positional ``S * D_H``;
* final LayerNorm: ``2 * D_H``.

This is the same first-order counting used by Megatron and the DeepSpeed
memory estimator; small deviations (a few percent) from the marketing sizes
are expected and irrelevant to the I/O behaviour studied here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

#: Default vocabulary size (LLaMA2 tokenizer, used by the paper's dataset prep).
DEFAULT_VOCAB_SIZE = 32000
#: Default sequence length (OPT-style configuration, §4.1).
DEFAULT_SEQUENCE_LENGTH = 2048

#: Bytes per parameter of FP16 model state.
FP16_BYTES = 2
#: Bytes per parameter of FP32 state.
FP32_BYTES = 4
#: Optimizer state per parameter in mixed-precision Adam training: FP32
#: master parameters + momentum + variance (3 * 4 bytes).  Together with the
#: FP32 gradients the baseline also materializes, this is the "8x larger than
#: FP16 parameters" ratio quoted in the paper's conclusion (16 B vs 2 B).
OPTIMIZER_STATE_BYTES = 12
#: FP32 gradient bytes per parameter (flushed to disk by the ZeRO-3 baseline).
FP32_GRAD_BYTES = 4
#: FP16 gradient bytes per parameter (kept on the host by MLP-Offload).
FP16_GRAD_BYTES = 2


@dataclass(frozen=True)
class ModelConfig:
    """A decoder-only transformer geometry.

    Attributes
    ----------
    name:
        Human-readable label, e.g. ``"40B"``.
    num_layers / hidden_dim / num_heads:
        The Table 2 geometry (``N_L``, ``D_H``, ``A_H``).
    vocab_size / sequence_length:
        Embedding geometry; defaults follow the paper's setup (§4.1).
    """

    name: str
    num_layers: int
    hidden_dim: int
    num_heads: int
    vocab_size: int = DEFAULT_VOCAB_SIZE
    sequence_length: int = DEFAULT_SEQUENCE_LENGTH

    def __post_init__(self) -> None:
        if self.num_layers < 1 or self.hidden_dim < 1 or self.num_heads < 1:
            raise ValueError("model dimensions must be positive")
        if self.hidden_dim % self.num_heads != 0:
            raise ValueError(
                f"hidden_dim {self.hidden_dim} must be divisible by num_heads {self.num_heads}"
            )
        if self.vocab_size < 1 or self.sequence_length < 1:
            raise ValueError("vocab_size and sequence_length must be positive")

    # -- parameter counting ---------------------------------------------

    @property
    def head_dim(self) -> int:
        return self.hidden_dim // self.num_heads

    @property
    def params_per_layer(self) -> int:
        """Parameters of one transformer block (attention + MLP + norms)."""
        d = self.hidden_dim
        attention = 4 * d * d + 4 * d
        mlp = 8 * d * d + 5 * d
        norms = 4 * d
        return attention + mlp + norms

    @property
    def embedding_params(self) -> int:
        """Token + positional embedding parameters (embeddings are tied to the LM head)."""
        return self.vocab_size * self.hidden_dim + self.sequence_length * self.hidden_dim

    @property
    def total_params(self) -> int:
        """Total trainable parameters."""
        return self.num_layers * self.params_per_layer + self.embedding_params + 2 * self.hidden_dim

    @property
    def total_params_billions(self) -> float:
        return self.total_params / 1e9

    # -- byte footprints --------------------------------------------------

    @property
    def fp16_model_bytes(self) -> int:
        """Bytes of the FP16 parameter copy used by forward/backward."""
        return self.total_params * FP16_BYTES

    @property
    def fp16_gradient_bytes(self) -> int:
        return self.total_params * FP16_GRAD_BYTES

    @property
    def fp32_gradient_bytes(self) -> int:
        return self.total_params * FP32_GRAD_BYTES

    @property
    def optimizer_state_bytes(self) -> int:
        """Bytes of FP32 master params + momentum + variance."""
        return self.total_params * OPTIMIZER_STATE_BYTES

    def activation_bytes(self, micro_batch_size: int = 1, *, checkpointing: bool = True) -> int:
        """Approximate activation memory for one micro-batch.

        With activation checkpointing only the per-layer boundary activations
        (one ``S x D_H`` FP16 tensor per layer) are retained, plus one layer's
        worth of recomputation workspace; without it, roughly the classic
        ``S * D_H * (34 + 5 * A_H * S / D_H)`` bytes per layer are live.
        """
        if micro_batch_size < 1:
            raise ValueError("micro_batch_size must be >= 1")
        s, d = self.sequence_length, self.hidden_dim
        if checkpointing:
            boundary = self.num_layers * s * d * FP16_BYTES
            workspace = s * d * (34 + 5 * self.num_heads * s / d)
            return int(micro_batch_size * (boundary + workspace))
        per_layer = s * d * (34 + 5 * self.num_heads * s / d)
        return int(micro_batch_size * self.num_layers * per_layer)

    def scaled_to(self, name: str, *, num_layers: int | None = None, hidden_dim: int | None = None) -> "ModelConfig":
        """Return a copy with selected dimensions overridden (for tiny test models)."""
        return replace(
            self,
            name=name,
            num_layers=num_layers if num_layers is not None else self.num_layers,
            hidden_dim=hidden_dim if hidden_dim is not None else self.hidden_dim,
        )


def _zoo() -> Dict[str, ModelConfig]:
    configs = [
        # Table 2: N_L, D_H, A_H.  The 20B model is used in §3.1 as the
        # host-memory-only baseline; it is not in Table 2 but its geometry
        # follows the same family (GPT-NeoX-20B-like).
        ModelConfig(name="20B", num_layers=44, hidden_dim=6144, num_heads=64),
        ModelConfig(name="40B", num_layers=128, hidden_dim=5120, num_heads=40),
        ModelConfig(name="52B", num_layers=64, hidden_dim=8192, num_heads=64),
        ModelConfig(name="70B", num_layers=80, hidden_dim=8192, num_heads=64),
        ModelConfig(name="100B", num_layers=124, hidden_dim=8192, num_heads=64),
        ModelConfig(name="120B", num_layers=96, hidden_dim=10240, num_heads=80),
        ModelConfig(name="130B", num_layers=70, hidden_dim=12288, num_heads=96),
        ModelConfig(name="280B", num_layers=72, hidden_dim=16384, num_heads=128),
    ]
    return {c.name: c for c in configs}


#: The paper's model configurations keyed by name (Table 2 plus the 20B baseline).
MODEL_ZOO: Dict[str, ModelConfig] = _zoo()

#: Names appearing in Table 2 proper, in the paper's column order.
TABLE2_NAMES: Tuple[str, ...] = ("40B", "52B", "70B", "100B", "120B", "130B", "280B")


def model_by_name(name: str) -> ModelConfig:
    """Look up a paper model configuration by its Table 2 label (e.g. ``"70B"``)."""
    key = name.strip().upper()
    if key not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[key]


def smallest_offload_model() -> ModelConfig:
    """The smallest model whose optimizer state no longer fits in 512 GB host memory.

    The paper uses 40B as the smallest evaluated configuration for exactly
    this reason (§4.1: "We do not consider models smaller than 40B").
    """
    return MODEL_ZOO["40B"]


def tiny_test_model(
    *,
    num_layers: int = 2,
    hidden_dim: int = 64,
    num_heads: int = 4,
    vocab_size: int = 128,
    sequence_length: int = 32,
    name: str = "tiny",
) -> ModelConfig:
    """A miniature geometry for functional end-to-end tests."""
    return ModelConfig(
        name=name,
        num_layers=num_layers,
        hidden_dim=hidden_dim,
        num_heads=num_heads,
        vocab_size=vocab_size,
        sequence_length=sequence_length,
    )
