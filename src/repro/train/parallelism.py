"""Data / tensor parallel topology.

The paper's single-node experiments use pure ZeRO-3 data parallelism across
the node's GPUs; the weak-scaling experiments (§4.4) use tensor parallelism
within a node (4-way) and data parallelism across nodes, because DeepSpeed
cannot combine ZeRO-3 with pipeline parallelism.

:class:`ParallelTopology` captures that process grid and the collective
communication volumes the simulator charges to the interconnect:

* ZeRO-3 parameter gathering: every forward and backward pass all-gathers the
  FP16 parameters of the layers being executed (the "1.5x higher
  communication overheads" of §2);
* gradient reduce-scatter across data-parallel ranks;
* tensor-parallel activation all-reduces within a node (fast NVLink-class
  links, charged separately from the inter-node fabric).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.train.model_zoo import FP16_BYTES, ModelConfig


@dataclass(frozen=True)
class ParallelTopology:
    """A (data-parallel × tensor-parallel) process grid.

    Attributes
    ----------
    data_parallel:
        Number of data-parallel replicas (ZeRO-3 shards the model/optimizer
        state across these).
    tensor_parallel:
        Tensor-parallel degree (within a node in the paper's runs).
    gpus_per_node:
        GPUs per compute node; used to derive the node count.
    """

    data_parallel: int
    tensor_parallel: int = 1
    gpus_per_node: int = 4

    def __post_init__(self) -> None:
        if self.data_parallel < 1 or self.tensor_parallel < 1:
            raise ValueError("parallel degrees must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")

    @property
    def world_size(self) -> int:
        """Total number of worker processes (= GPUs)."""
        return self.data_parallel * self.tensor_parallel

    @property
    def num_nodes(self) -> int:
        """Number of compute nodes, assuming dense packing of GPUs."""
        return max(1, -(-self.world_size // self.gpus_per_node))

    @property
    def workers_per_node(self) -> int:
        return min(self.world_size, self.gpus_per_node)

    # -- communication volume models -------------------------------------

    def zero3_gather_bytes_per_pass(self, model: ModelConfig) -> int:
        """Bytes all-gathered per rank per forward (or backward) pass.

        ZeRO-3 reconstructs each layer's FP16 parameters on demand: every
        rank receives the full FP16 parameter set once per pass, i.e.
        ``(1 - 1/N) * P * 2`` bytes cross the fabric into each rank.
        """
        n = self.data_parallel
        if n == 1:
            return 0
        full = model.total_params * FP16_BYTES // max(1, self.tensor_parallel)
        return int(full * (n - 1) / n)

    def gradient_reduce_bytes(self, model: ModelConfig) -> int:
        """Bytes reduce-scattered per rank per backward pass (FP16 gradients)."""
        n = self.data_parallel
        if n == 1:
            return 0
        full = model.total_params * FP16_BYTES // max(1, self.tensor_parallel)
        return int(full * (n - 1) / n)

    def tensor_parallel_bytes_per_layer(self, model: ModelConfig, micro_batch_size: int = 1) -> int:
        """Bytes all-reduced within the tensor-parallel group per transformer layer.

        Megatron-style tensor parallelism performs two activation all-reduces
        per layer, each over an ``S × D_H`` FP16 activation tensor.
        """
        if self.tensor_parallel == 1:
            return 0
        t = self.tensor_parallel
        activation = model.sequence_length * model.hidden_dim * FP16_BYTES * micro_batch_size
        # Ring all-reduce volume per rank: 2 * (t-1)/t * payload, twice per layer.
        return int(2 * 2 * activation * (t - 1) / t)

    def params_per_rank(self, model: ModelConfig) -> int:
        """Parameters whose optimizer state each rank owns under ZeRO-3."""
        return -(-model.total_params // self.world_size)

    @classmethod
    def single_node(cls, gpus: int = 4) -> "ParallelTopology":
        """Pure data parallelism on one node (the paper's §4.2 setup)."""
        return cls(data_parallel=gpus, tensor_parallel=1, gpus_per_node=gpus)

    @classmethod
    def weak_scaling(cls, num_nodes: int, gpus_per_node: int = 4) -> "ParallelTopology":
        """Tensor parallel within a node, data parallel across nodes (§4.4)."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        return cls(
            data_parallel=num_nodes,
            tensor_parallel=gpus_per_node,
            gpus_per_node=gpus_per_node,
        )
