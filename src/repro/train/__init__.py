"""LLM training substrate (ZeRO-3 runtime stand-in).

This subpackage provides everything the offloading engines need from a
training runtime, without CUDA or DeepSpeed:

* :mod:`repro.train.model_zoo` — the paper's Table 2 model geometries and
  transformer parameter-count formulas;
* :mod:`repro.train.transformer` — a small, functional NumPy transformer with
  hand-written backward pass, used by end-to-end correctness tests;
* :mod:`repro.train.mixed_precision` — FP16/FP32 master-copy management and
  loss scaling;
* :mod:`repro.train.adam` — a vectorized CPU Adam operating per subgroup;
* :mod:`repro.train.sharding` — ZeRO-3 rank sharding and subgroup partitioning;
* :mod:`repro.train.gradients` — FP16 host gradient-accumulation buffers;
* :mod:`repro.train.parallelism` — data/tensor-parallel process topology;
* :mod:`repro.train.data` — synthetic token batches (OSCAR/LLaMA2-tokenizer stand-in);
* :mod:`repro.train.memory_estimator` — GPU/host memory footprint estimation;
* :mod:`repro.train.trainer` — a functional training loop that drives an
  offloading engine through forward/backward/update phases.
"""

from repro.train.model_zoo import (
    MODEL_ZOO,
    ModelConfig,
    model_by_name,
    smallest_offload_model,
)
from repro.train.adam import AdamConfig, AdamState, adam_update
from repro.train.mixed_precision import (
    GradScaler,
    MixedPrecisionState,
    fp16_to_fp32,
    fp32_to_fp16,
)
from repro.train.sharding import ShardLayout, Subgroup, build_shard_layout
from repro.train.gradients import GradientAccumulator
from repro.train.parallelism import ParallelTopology
from repro.train.data import SyntheticTokenDataset, TrainingBatch
from repro.train.memory_estimator import MemoryBreakdown, estimate_memory
from repro.train.trainer import FunctionalTrainer, IterationReport, TrainerConfig

__all__ = [
    "ModelConfig",
    "MODEL_ZOO",
    "model_by_name",
    "smallest_offload_model",
    "AdamConfig",
    "AdamState",
    "adam_update",
    "MixedPrecisionState",
    "GradScaler",
    "fp16_to_fp32",
    "fp32_to_fp16",
    "Subgroup",
    "ShardLayout",
    "build_shard_layout",
    "GradientAccumulator",
    "ParallelTopology",
    "SyntheticTokenDataset",
    "TrainingBatch",
    "MemoryBreakdown",
    "estimate_memory",
    "FunctionalTrainer",
    "TrainerConfig",
    "IterationReport",
]
