"""Synthetic token data (OSCAR-en / LLaMA2-tokenizer stand-in).

The paper pre-processes a 79K-record subset of OSCAR-en with the LLaMA2
tokenizer into sequences of length 2048.  The offloading path never inspects
token values — only the batch geometry (sequence length, micro-batch size,
gradient-accumulation steps) matters to the evaluation — so a deterministic
synthetic token stream is a faithful substitute (documented in DESIGN.md).

The generator produces Zipf-distributed token ids, which keeps the embedding
gradient sparsity pattern qualitatively similar to natural text for the
functional correctness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class TrainingBatch:
    """One micro-batch of token ids and next-token targets."""

    tokens: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        if self.tokens.shape != self.targets.shape:
            raise ValueError("tokens and targets must share a shape")
        if self.tokens.ndim != 2:
            raise ValueError("batches are 2-D: (micro_batch, sequence)")

    @property
    def micro_batch_size(self) -> int:
        return int(self.tokens.shape[0])

    @property
    def sequence_length(self) -> int:
        return int(self.tokens.shape[1])


class SyntheticTokenDataset:
    """Deterministic synthetic token stream.

    Parameters
    ----------
    vocab_size:
        Size of the vocabulary to draw token ids from.
    sequence_length:
        Tokens per sequence (2048 in the paper's configuration).
    num_records:
        Number of distinct sequences before the stream wraps (79_000 mimics
        the paper's OSCAR-en subset; tests use far fewer).
    seed:
        RNG seed; two datasets with the same seed yield identical batches,
        which the equivalence tests rely on.
    zipf_exponent:
        Skew of the token-id distribution (1.1 approximates natural text).
    """

    def __init__(
        self,
        vocab_size: int,
        sequence_length: int,
        *,
        num_records: int = 79_000,
        seed: int = 2024,
        zipf_exponent: float = 1.1,
    ) -> None:
        if vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
        if sequence_length < 2:
            raise ValueError("sequence_length must be >= 2")
        if num_records < 1:
            raise ValueError("num_records must be >= 1")
        if zipf_exponent <= 1.0:
            raise ValueError("zipf_exponent must be > 1")
        self.vocab_size = vocab_size
        self.sequence_length = sequence_length
        self.num_records = num_records
        self.seed = seed
        self.zipf_exponent = zipf_exponent

    def _record(self, index: int) -> np.ndarray:
        """The ``index``-th sequence (deterministic in ``(seed, index)``)."""
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, index % self.num_records]))
        # Zipf sampling, clipped into the vocabulary; token 0 is reserved as BOS.
        draws = rng.zipf(self.zipf_exponent, size=self.sequence_length + 1)
        tokens = np.clip(draws, 1, self.vocab_size - 1).astype(np.int64)
        tokens[0] = 0
        return tokens

    def batch(self, step: int, micro_batch_size: int) -> TrainingBatch:
        """The micro-batch consumed at global micro-step ``step``."""
        if micro_batch_size < 1:
            raise ValueError("micro_batch_size must be >= 1")
        sequences = [
            self._record(step * micro_batch_size + i) for i in range(micro_batch_size)
        ]
        stacked = np.stack(sequences)
        return TrainingBatch(tokens=stacked[:, :-1], targets=stacked[:, 1:])

    def __iter__(self) -> Iterator[TrainingBatch]:
        step = 0
        while True:
            yield self.batch(step, 1)
            step += 1

    def batches(self, num_steps: int, micro_batch_size: int) -> Iterator[TrainingBatch]:
        """A finite iterator of ``num_steps`` micro-batches."""
        for step in range(num_steps):
            yield self.batch(step, micro_batch_size)
